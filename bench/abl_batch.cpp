/**
 * @file
 * Ablation: IOhost poll batch size.  Large batches amortize the
 * per-wakeup cost under throughput load (memcached) but are useless
 * for ping-pong latency, where each request travels alone.
 */
#include <cstdio>

#include "common.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    stats::Table table("Ablation: IOhost poll batch size");
    table.setHeader({"batch", "RR latency [usec] (N=1)",
                     "memcached [Ktps] (N=6)"});

    for (size_t batch : {1u, 4u, 8u, 16u, 32u}) {
        bench::SweepOptions opt;
        opt.tweak = [batch](models::ModelConfig &mc) {
            mc.iohost_batch_max = batch;
        };
        auto rr = bench::runNetperfRr(ModelKind::Vrio, 1, opt);
        auto mc = bench::runRequestResponse(
            ModelKind::Vrio, 6,
            workloads::RequestResponseServer::memcached(), opt);
        table.addRow({std::to_string(batch),
                      strFormat("%.1f", rr.latency_us.mean()),
                      strFormat("%.1f", mc.total_tps / 1000.0)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("batching pays under load (per-wakeup work amortizes "
                "across the batch) and is neutral for lone ping-pong "
                "requests.\n");
    return 0;
}
