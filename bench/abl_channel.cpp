/**
 * @file
 * Ablation: the vRIO transport-channel design space (Sections 4.1,
 * 4.2, 4.6).  The paper chooses SRIOV+ELI over direct cables to
 * minimize the added hop's cost; the alternatives it discusses — a
 * traditional paravirtual channel (T_virtio, used around migration)
 * and routing the channel through the rack switch (the
 * fault-tolerant wiring) — each give something back.
 */
#include <cstdio>

#include "common.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelConfig;
using models::ModelKind;

namespace {

struct Variant
{
    const char *name;
    ModelConfig::VrioChannel channel;
    bool via_switch;
};

} // namespace

int
main()
{
    const Variant variants[] = {
        {"T_sriov, direct cables (paper default)",
         ModelConfig::VrioChannel::Tsriov, false},
        {"T_sriov, via rack switch",
         ModelConfig::VrioChannel::Tsriov, true},
        {"T_virtio, direct cables",
         ModelConfig::VrioChannel::Tvirtio, false},
    };

    stats::Table table("Ablation: vRIO channel variants");
    table.setHeader({"channel", "RR latency [usec] (N=1)",
                     "stream [Gbps] (N=4)", "exits/txn"});

    for (const Variant &v : variants) {
        bench::SweepOptions opt;
        opt.tweak = [&v](ModelConfig &mc) {
            mc.vrio_channel = v.channel;
            mc.vrio_via_switch = v.via_switch;
        };
        auto rr = bench::runNetperfRr(ModelKind::Vrio, 1, opt);

        // Exits per transaction measured directly.
        bench::Experiment exp(ModelKind::Vrio, 1, opt);
        exp.settle();
        exp.model->guest(0).vm().events() = {};
        auto &gen = exp.rack->generator(0);
        unsigned session = gen.newSession();
        auto &guest = exp.model->guest(0);
        guest.setNetHandler([&guest](Bytes, net::MacAddress src,
                                     uint64_t) {
            guest.sendNet(src, Bytes(1, 1));
        });
        gen.setHandler(session, [](Bytes, net::MacAddress, uint64_t) {});
        gen.send(session, guest.mac(), Bytes(1, 1));
        exp.sim->runUntil(exp.sim->now() +
                          sim::Tick(20) * sim::kMillisecond);
        uint64_t exits = exp.model->guest(0).vm().events().sync_exits;

        auto st = bench::runNetperfStream(ModelKind::Vrio, 4, opt);
        table.addRow({v.name, strFormat("%.1f", rr.latency_us.mean()),
                      strFormat("%.2f", st.total_gbps),
                      std::to_string(exits)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("the paper's choice (SRIOV + ELI + direct cables) is "
                "the latency-minimizing corner; the fallbacks trade "
                "latency for flexibility (switch) or for running "
                "without SRIOV at all (T_virtio).\n");
    return 0;
}
