/**
 * @file
 * Ablation: polling energy and the monitor/mwait tradeoff the paper
 * sketches in Section 4.6 ("this cost can be reduced by trading off
 * some latency and utilizing the CPU's monitor/mwait capability").
 *
 * A polling sidecore burns full power regardless of load; an
 * mwait-parked sidecore burns near-idle power while waiting but pays
 * a wakeup penalty on every arrival.  We measure the latency cost
 * directly (vRIO RR with increasing pickup latency) and combine the
 * Webserver utilizations with a simple per-core power model
 * (E7-8890 v3: 165 W / 18 cores ~ 9.2 W busy or spinning; ~1.5 W in
 * a parked C-state).
 */
#include <cstdio>

#include "common.hpp"
#include "util/strutil.hpp"
#include "workloads/filebench.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

constexpr double kBusyWatts = 165.0 / 18.0;
constexpr double kParkedWatts = 1.5;

double
webserverUtilization(ModelKind kind, unsigned sidecores)
{
    bench::SweepOptions opt;
    opt.vmhosts = 2;
    opt.sidecores = sidecores;
    opt.tweak = [](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.ramdisk_cfg.capacity_bytes = 32ull << 20;
    };
    bench::Experiment exp(kind, 10, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::FilebenchWebserver>> wls;
    for (unsigned v = 0; v < 10; ++v) {
        wls.push_back(std::make_unique<workloads::FilebenchWebserver>(
            exp.model->guest(v), exp.sim->random().split(),
            workloads::FilebenchWebserver::Config{}));
        wls.back()->start();
    }
    sim::Tick start = exp.sim->now();
    exp.sim->runUntil(start + sim::Tick(2) * sim::kSecond);

    double util = 0;
    auto resources = exp.model->ioResources();
    for (const auto *res : resources)
        util += res->utilizationSince(start);
    return util / double(resources.size());
}

} // namespace

int
main()
{
    // Part 1: the latency price of mwait-style pickup at the IOhost.
    stats::Table lat("Energy ablation (1/2): RR latency vs IOhost "
                     "pickup latency (mwait depth)");
    lat.setHeader({"pickup [ns]", "mean RR latency [usec]"});
    for (unsigned ns : {300u, 1000u, 2500u, 5000u}) {
        bench::SweepOptions opt;
        opt.tweak = [ns](models::ModelConfig &mc) {
            mc.iohost_poll_pickup = sim::Tick(ns) * sim::kNanosecond;
        };
        auto rr = bench::runNetperfRr(ModelKind::Vrio, 1, opt);
        lat.addRow({std::to_string(ns),
                    strFormat("%.1f", rr.latency_us.mean())});
    }
    std::printf("%s\n", lat.toString().c_str());

    // Part 2: sidecore power under the Webserver load.
    double elvis_util = webserverUtilization(ModelKind::Elvis, 1);
    double vrio_util = webserverUtilization(ModelKind::Vrio, 1);

    stats::Table power("Energy ablation (2/2): sidecore power, "
                       "Webserver on 2 VMhosts x 5 VMs");
    power.setHeader({"setup", "sidecores", "mean util", "polling W",
                     "mwait W"});
    auto row = [&](const char *name, unsigned n, double util) {
        double polling = n * kBusyWatts; // spinning = burning
        double mwait =
            n * (kBusyWatts * util + kParkedWatts * (1.0 - util));
        power.addRow({name, std::to_string(n),
                      strFormat("%.0f%%", util * 100.0),
                      strFormat("%.1f", polling),
                      strFormat("%.1f", mwait)});
    };
    row("elvis (1 per VMhost)", 2, elvis_util);
    row("vrio (consolidated)", 1, vrio_util);
    std::printf("%s\n", power.toString().c_str());

    std::printf("consolidation already saves a full always-burning "
                "core; mwait parking would reclaim most of the "
                "remaining idle power for ~2 us of added pickup "
                "latency.\n");
    return 0;
}
