/**
 * @file
 * Ablation: the vRIO channel MTU (Section 4.4's engineering choice).
 *
 * MTU 8100 is the largest jumbo size whose TSO fragments (with
 * headers) pack a full 64KB message into the 17-page SKB budget, so
 * reassembly is zero-copy.  9000 looks bigger but breaks the budget;
 * 1500 multiplies the per-message fragment count.  We report the
 * static page math and measured bulk block-write throughput.
 */
#include <cstdio>

#include "common.hpp"
#include "models/vrio.hpp"
#include "transport/encap.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

struct MtuResult
{
    double write_mbps;
    uint64_t copied_bytes;
};

MtuResult
bulkWrites(uint32_t mtu)
{
    bench::SweepOptions opt;
    opt.tweak = [mtu](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.vrio_mtu = mtu;
        mc.ramdisk_cfg.capacity_bytes = 64ull << 20;
    };
    bench::Experiment exp(ModelKind::Vrio, 1, opt);
    exp.settle();

    auto &guest = exp.model->guest(0);
    uint64_t bytes_done = 0;
    std::function<void(uint64_t)> next = [&](uint64_t sector) {
        Bytes data(256 * 1024, 0x33);
        uint64_t nsec = data.size() / virtio::kSectorSize;
        if (sector + nsec >= guest.blockCapacitySectors())
            sector = 0;
        guest.submitBlock(
            {virtio::BlkType::Out, sector, uint32_t(nsec),
             std::move(data)},
            [&, sector, nsec](virtio::BlkStatus s, Bytes) {
                if (s == virtio::BlkStatus::Ok)
                    bytes_done += nsec * virtio::kSectorSize;
                next(sector + nsec);
            });
    };
    next(0);
    sim::Tick span = sim::Tick(300) * sim::kMillisecond;
    exp.sim->runUntil(exp.sim->now() + span);

    auto &vm = static_cast<models::VrioModel &>(*exp.model);
    return {double(bytes_done) * 8.0 / sim::ticksToSeconds(span) / 1e6,
            vm.hypervisor().copiedBytes()};
}

} // namespace

int
main()
{
    stats::Table table("Ablation: vRIO channel MTU");
    table.setHeader({"MTU", "frags/64KB", "SKB pages", "zero-copy",
                     "write Mbps", "copied bytes"});

    for (uint32_t mtu : {1500u, 4000u, net::kMtuVrioJumbo,
                         net::kMtuJumboMax}) {
        uint32_t msg = 64 * 1024;
        uint32_t mss = net::mssForMtu(mtu);
        uint32_t frags = (msg + mss - 1) / mss;
        auto res = bulkWrites(mtu);
        table.addRow({std::to_string(mtu), std::to_string(frags),
                      std::to_string(transport::skbPagesNeeded(msg, mtu)),
                      transport::zeroCopyEligible(msg, mtu) ? "yes"
                                                            : "no",
                      strFormat("%.0f", res.write_mbps),
                      strFormat("%llu",
                                (unsigned long long)res.copied_bytes)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("8100 is the sweet spot: <=17 SKB pages (zero-copy "
                "reassembly) with near-minimal fragment count; 9000 "
                "needs 22 pages and falls back to copying.\n");
    return 0;
}
