/**
 * @file
 * Resilience ablation (not a paper figure): how the interposable
 * models degrade and recover under injected faults.
 *
 * Three experiments:
 *   1. Block loss sweep — Filebench 4KB random pairs while the vRIO
 *      T-channel drops 0 .. 1% of frames.  The Section 4.5
 *      retransmission protocol must complete every request at small
 *      loss rates with bounded p99 inflation; local models (baseline,
 *      elvis) have no remote channel and anchor the comparison.
 *   2. IOhost outage timeline — ops completed per 20ms bucket across
 *      a scripted crash/restart window.  Throughput must fall to ~0
 *      while the IOhost is dark and return to steady state after it
 *      revives, with no failed requests (retransmission + the disk
 *      scheduler's one-outstanding-request-per-block invariant make
 *      blind replays safe).
 *   3. Fault mix — corruption, delay, reordering, RX-ring squeeze and
 *      sidecore stalls against vRIO, plus a TCP-stream loss sweep
 *      where recovery happens in the guest's adaptive TCP stack
 *      (congestion window + SRTT-tracked RTO + fast retransmit)
 *      instead of the block protocol, under both i.i.d. and
 *      Gilbert-Elliott burst loss.
 *
 * VRIO_RESILIENCE_SMOKE=1 (or the suite-wide VRIO_BENCH_SMOKE=1)
 * shrinks every run (CI smoke test / golden harness).
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common.hpp"
#include "fault/injector.hpp"
#include "models/vrio.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

bool
smoke()
{
    const char *env = std::getenv("VRIO_RESILIENCE_SMOKE");
    return (env && env[0] == '1') || bench::smokeMode();
}

bench::SweepOptions
baseOptions()
{
    bench::SweepOptions opt;
    if (smoke()) {
        opt.warmup = sim::Tick(10) * sim::kMillisecond;
        opt.measure = sim::Tick(40) * sim::kMillisecond;
    } else {
        opt.measure = sim::Tick(200) * sim::kMillisecond;
    }
    opt.tweak = [](models::ModelConfig &mc) { mc.with_block = true; };
    return opt;
}

std::vector<std::unique_ptr<workloads::FilebenchRandom>>
startFilebenchPairs(bench::Experiment &exp, unsigned n_vms)
{
    std::vector<std::unique_ptr<workloads::FilebenchRandom>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        workloads::FilebenchRandom::Config cfg;
        cfg.readers = 1;
        cfg.writers = 1;
        wls.push_back(std::make_unique<workloads::FilebenchRandom>(
            exp.model->guest(v), exp.sim->random().split(), cfg));
        wls.back()->start();
    }
    return wls;
}

// -- experiment 1: block loss sweep -------------------------------------

struct BlockCell
{
    double ops_per_sec = 0;
    double p99_us = 0;
    uint64_t retransmits = 0;
    uint64_t errors = 0;
};

BlockCell
measureBlockCell(bench::Experiment &exp,
                 std::vector<std::unique_ptr<workloads::FilebenchRandom>>
                     &wls)
{
    BlockCell out;
    stats::Histogram merged;
    for (auto &wl : wls) {
        out.ops_per_sec += wl->opsPerSec(*exp.sim);
        out.errors += wl->ioErrors();
        bench::mergeHistogram(merged, wl->latencyUs());
    }
    out.p99_us = merged.count() ? merged.percentile(99) : 0;
    if (auto *vm = dynamic_cast<models::VrioModel *>(exp.model)) {
        for (unsigned v = 0; v < exp.model->numVms(); ++v)
            out.retransmits += vm->clientRetransmissions(v);
    }
    return out;
}

BlockCell
runBlockCell(ModelKind kind, const fault::FaultPlan &plan)
{
    const unsigned n_vms = 2;
    bench::SweepOptions opt = baseOptions();
    bench::Experiment exp(kind, n_vms, opt);
    exp.settle();
    auto inj = bench::attachInjector(exp, plan);

    auto wls = startFilebenchPairs(exp, n_vms);
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);
    return measureBlockCell(exp, wls);
}

void
blockLossSweep(const std::vector<double> &loss_rates)
{
    const ModelKind kinds[] = {ModelKind::Baseline, ModelKind::Elvis,
                               ModelKind::Vrio, ModelKind::VrioNoPoll};

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<BlockCell>> slots;
    for (double loss : loss_rates) {
        for (ModelKind kind : kinds) {
            char label[64];
            std::snprintf(label, sizeof(label), "block %s loss=%g",
                          models::modelKindName(kind), loss);
            slots.push_back(
                runner.defer<BlockCell>(label, [kind, loss]() {
                    fault::FaultPlan plan;
                    plan.seed = 43;
                    plan.dropRate(loss);
                    return runBlockCell(kind, plan);
                }));
        }
    }
    runner.run();

    stats::Table ops("Resilience 1a: Filebench pairs under channel loss "
                     "[ops/sec]");
    stats::Table p99("Resilience 1b: block p99 latency [us]");
    stats::Table recov("Resilience 1c: vRIO protocol recoveries "
                       "(retransmits / errors)");
    ops.setHeader({"loss", "base", "elvis", "vrio", "vrio-nopoll"});
    p99.setHeader({"loss", "base", "elvis", "vrio", "vrio-nopoll"});
    recov.setHeader({"loss", "vrio-retx", "vrio-err", "nopoll-retx",
                     "nopoll-err"});

    size_t i = 0;
    for (double loss : loss_rates) {
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f", loss);
        std::vector<double> ops_row, p99_row;
        const BlockCell *vrio_cell = nullptr, *nopoll_cell = nullptr;
        for (ModelKind kind : kinds) {
            const BlockCell &c = *slots[i++];
            ops_row.push_back(c.ops_per_sec);
            p99_row.push_back(c.p99_us);
            if (kind == ModelKind::Vrio)
                vrio_cell = &c;
            else if (kind == ModelKind::VrioNoPoll)
                nopoll_cell = &c;
        }
        ops.addRow(lbl, ops_row, 0);
        p99.addRow(lbl, p99_row, 1);
        recov.addRow(lbl,
                     {double(vrio_cell->retransmits),
                      double(vrio_cell->errors),
                      double(nopoll_cell->retransmits),
                      double(nopoll_cell->errors)},
                     0);
    }
    std::printf("%s\n", ops.toString().c_str());
    std::printf("%s\n", p99.toString().c_str());
    std::printf("%s\n", recov.toString().c_str());
}

// -- experiment 2: IOhost outage timeline -------------------------------

struct OutageResult
{
    std::vector<uint64_t> bucket_ops;
    size_t outage_first_bucket = 0;
    size_t outage_last_bucket = 0;
    uint64_t errors = 0;
    uint64_t retransmits = 0;
    uint64_t offline_rx_drops = 0;
    double steady_before = 0;
    double steady_after = 0;
};

OutageResult
runOutageTimeline()
{
    const unsigned n_vms = 2;
    const sim::Tick bucket = sim::Tick(20) * sim::kMillisecond;
    const size_t lead_buckets = smoke() ? 3 : 10;
    const sim::Tick outage = smoke()
                                 ? sim::Tick(100) * sim::kMillisecond
                                 : sim::Tick(300) * sim::kMillisecond;
    const size_t tail_buckets = smoke() ? 10 : 25;

    bench::SweepOptions opt = baseOptions();
    bench::Experiment exp(ModelKind::Vrio, n_vms, opt);
    exp.settle();

    auto wls = startFilebenchPairs(exp, n_vms);
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();

    // Script the crash at an absolute tick after the lead-in.
    fault::FaultPlan plan;
    plan.seed = 44;
    plan.killIoHost(exp.sim->now() + sim::Tick(lead_buckets) * bucket,
                    outage);
    auto inj = bench::attachInjector(exp, plan);

    const size_t outage_buckets =
        size_t((outage + bucket - 1) / bucket);
    const size_t total_buckets =
        lead_buckets + outage_buckets + tail_buckets;

    OutageResult out;
    out.outage_first_bucket = lead_buckets;
    out.outage_last_bucket = lead_buckets + outage_buckets - 1;
    uint64_t prev_ops = 0;
    for (size_t b = 0; b < total_buckets; ++b) {
        exp.sim->runUntil(exp.sim->now() + bucket);
        uint64_t now_ops = 0;
        for (auto &wl : wls)
            now_ops += wl->opsCompleted();
        out.bucket_ops.push_back(now_ops - prev_ops);
        prev_ops = now_ops;
    }

    auto *vm = dynamic_cast<models::VrioModel *>(exp.model);
    for (unsigned v = 0; v < n_vms; ++v)
        out.retransmits += vm->clientRetransmissions(v);
    for (auto &wl : wls)
        out.errors += wl->ioErrors();
    out.offline_rx_drops = vm->hypervisor().offlineRxDrops();

    for (size_t b = 0; b < lead_buckets; ++b)
        out.steady_before += double(out.bucket_ops[b]);
    out.steady_before /= double(lead_buckets);
    const size_t settled = 5; // skip the post-restart catch-up burst
    size_t after_start = out.outage_last_bucket + 1 + settled;
    size_t after_n = 0;
    for (size_t b = after_start; b < total_buckets; ++b, ++after_n)
        out.steady_after += double(out.bucket_ops[b]);
    if (after_n > 0)
        out.steady_after /= double(after_n);
    return out;
}

void
outageTimeline()
{
    OutageResult r = runOutageTimeline();

    stats::Table table("Resilience 2: vRIO IOhost crash/restart "
                       "timeline (Filebench pairs)");
    table.setHeader({"t_ms", "ops", "iohost"});
    for (size_t b = 0; b < r.bucket_ops.size(); ++b) {
        bool dark = b >= r.outage_first_bucket &&
                    b <= r.outage_last_bucket;
        table.addRow({std::to_string(b * 20),
                      std::to_string(r.bucket_ops[b]),
                      dark ? "down" : "up"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("outage summary: steady_before=%.0f ops/bucket, "
                "steady_after=%.0f ops/bucket, retransmits=%llu, "
                "frames_dropped_at_dead_iohost=%llu, io_errors=%llu\n",
                r.steady_before, r.steady_after,
                (unsigned long long)r.retransmits,
                (unsigned long long)r.offline_rx_drops,
                (unsigned long long)r.errors);
    std::printf("expected shape: ops fall to ~0 while down, then "
                "recover to the pre-outage rate with zero errors.\n\n");
}

// -- experiment 3: fault mix + guest-TCP loss recovery ------------------

struct MixScenario
{
    const char *name;
    fault::FaultPlan plan;
};

std::vector<MixScenario>
mixScenarios(sim::Tick warmup)
{
    // Windows are relative to the start of measurement; cells add the
    // absolute offset at settle time via plan adjustments below.
    sim::Tick win_at = warmup + sim::Tick(20) * sim::kMillisecond;
    sim::Tick win_len = smoke() ? sim::Tick(10) * sim::kMillisecond
                                : sim::Tick(100) * sim::kMillisecond;
    std::vector<MixScenario> out;
    out.push_back({"clean", fault::FaultPlan{}});
    {
        fault::FaultPlan p;
        p.seed = 45;
        p.corruptRate(0.005);
        out.push_back({"corrupt-0.5%", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 46;
        p.delayRate(0.005, sim::Tick(200) * sim::kMicrosecond);
        out.push_back({"delay-0.5%", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 47;
        p.reorderRate(0.01, sim::Tick(50) * sim::kMicrosecond);
        out.push_back({"reorder-1%", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 48;
        p.squeezeRxRing(win_at, win_len, 8);
        out.push_back({"rx-squeeze-8", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 49;
        p.stallSidecore(0, win_at, win_len);
        out.push_back({"sidecore-stall", p});
    }
    return out;
}

void
faultMix()
{
    bench::SweepOptions probe = baseOptions();
    auto scenarios = mixScenarios(probe.warmup);

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<BlockCell>> slots;
    for (const MixScenario &sc : scenarios) {
        fault::FaultPlan plan = sc.plan;
        slots.push_back(runner.defer<BlockCell>(
            std::string("mix ") + sc.name,
            [plan]() { return runBlockCell(ModelKind::Vrio, plan); }));
    }
    runner.run();

    stats::Table table("Resilience 3a: vRIO fault mix (Filebench pairs)");
    table.setHeader({"fault", "ops/sec", "p99_us", "retx", "errors"});
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const BlockCell &c = *slots[i];
        table.addRow(scenarios[i].name,
                     {c.ops_per_sec, c.p99_us, double(c.retransmits),
                      double(c.errors)},
                     0);
    }
    std::printf("%s\n", table.toString().c_str());
}

bench::FaultedStreamResult
runStreamCell(double loss_rate, bool burst)
{
    bench::SweepOptions opt = baseOptions();
    opt.tweak = nullptr; // no block device needed

    fault::FaultPlan plan;
    plan.seed = 50;
    if (loss_rate > 0) {
        if (burst) {
            // Bursts span several TSO chunks (3 jumbo frames each).
            // The short smoke window needs more frequent, shorter
            // bursts to stay statistically busy.
            plan.burstLoss(loss_rate, smoke() ? 8 : 16);
        }
        else
            plan.dropRate(loss_rate);
    }

    // The adaptive guest-TCP stack recovers channel loss: the
    // congestion window collapses and regrows, the SRTT-tracked RTO
    // backs off, and triple duplicate acks trigger fast retransmit —
    // no fixed per-chunk timer needed.
    workloads::NetperfStream::Config cfg;
    cfg.adaptive = true;
    cfg.tcp.max_window = 32;
    cfg.tcp.initial_ssthresh = 16;
    return bench::runNetperfStreamFaulted(ModelKind::Vrio, 1, opt, plan,
                                          cfg);
}

void
streamLossSweep(const std::vector<double> &loss_rates)
{
    bench::SweepRunner runner;
    std::vector<std::shared_ptr<bench::FaultedStreamResult>> slots;
    std::vector<std::string> labels;
    for (double loss : loss_rates) {
        char label[64];
        std::snprintf(label, sizeof(label), "stream loss=%g", loss);
        slots.push_back(runner.defer<bench::FaultedStreamResult>(
            label, [loss]() { return runStreamCell(loss, false); }));
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f", loss);
        labels.push_back(lbl);
    }
    // One burst scenario at the highest rate: equal average loss,
    // correlated into Gilbert-Elliott bursts.
    double top = loss_rates.back();
    slots.push_back(runner.defer<bench::FaultedStreamResult>(
        "stream burst", [top]() { return runStreamCell(top, true); }));
    {
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f-ge", top);
        labels.push_back(lbl);
    }
    runner.run();

    stats::Table table("Resilience 3b: vRIO TCP stream under channel "
                       "loss (adaptive guest-TCP: cwnd + SRTT RTO + "
                       "fast retransmit)");
    table.setHeader({"loss", "gbps", "retx", "timeouts", "fast_retx",
                     "cwnd_peak", "srtt_us"});
    for (size_t i = 0; i < slots.size(); ++i) {
        const auto &c = *slots[i];
        table.addRow(labels[i],
                     {c.total_gbps, double(c.tcp_retransmits),
                      double(c.tcp_timeouts),
                      double(c.tcp_fast_retransmits), c.cwnd_peak,
                      c.srtt_last_us},
                     2);
    }
    std::printf("%s\n", table.toString().c_str());
}

} // namespace

int
main()
{
    std::vector<double> block_loss =
        smoke() ? std::vector<double>{0.0, 1e-3}
                : std::vector<double>{0.0, 1e-4, 1e-3, 5e-3, 1e-2};
    // Smoke windows are short (40 ms); a 2% rate keeps the stream
    // cells (including the rare-event burst cell) statistically busy
    // enough to exercise recovery.
    std::vector<double> stream_loss =
        smoke() ? std::vector<double>{0.0, 2e-2}
                : std::vector<double>{0.0, 1e-3, 1e-2};

    blockLossSweep(block_loss);
    outageTimeline();
    faultMix();
    streamLossSweep(stream_loss);

    std::printf("acceptance: at loss <= 0.001 vRIO completes every "
                "request (errors = 0) with bounded p99 inflation; the "
                "outage timeline recovers to its pre-crash rate.\n");
    return 0;
}
