/**
 * @file
 * Resilience ablation (not a paper figure): how the interposable
 * models degrade and recover under injected faults.
 *
 * Four experiments:
 *   1. Block loss sweep — Filebench 4KB random pairs while the vRIO
 *      T-channel drops 0 .. 1% of frames.  The Section 4.5
 *      retransmission protocol must complete every request at small
 *      loss rates with bounded p99 inflation; local models (baseline,
 *      elvis) have no remote channel and anchor the comparison.
 *   2. IOhost outage timeline — ops completed per 20ms bucket across
 *      a scripted crash/restart window.  Throughput must fall to ~0
 *      while the IOhost is dark and return to steady state after it
 *      revives, with no failed requests (retransmission + the disk
 *      scheduler's one-outstanding-request-per-block invariant make
 *      blind replays safe).
 *   3. Fault mix — corruption, delay, reordering, RX-ring squeeze and
 *      sidecore stalls against vRIO, plus a TCP-stream loss sweep
 *      where recovery happens in the guest's adaptive TCP stack
 *      (congestion window + SRTT-tracked RTO + fast retransmit)
 *      instead of the block protocol, under both i.i.d. and
 *      Gilbert-Elliott burst loss.
 *   4. Detection + recovery — the cfg.recovery layer (IOhost
 *      heartbeats, worker watchdog, client retry, standby failover)
 *      against a wedged worker, a dead switch port, and a permanent
 *      IOhost outage; reports detection latency, recovery time,
 *      goodput dip and the stranded-request count after a drain
 *      (which must be zero).  VRIO_RESILIENCE_RECOVERY=1 runs only
 *      this section (the CI recovery lane).
 *
 * VRIO_RESILIENCE_SMOKE=1 (or the suite-wide VRIO_BENCH_SMOKE=1)
 * shrinks every run (CI smoke test / golden harness).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common.hpp"
#include "fault/injector.hpp"
#include "models/vrio.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

bool
smoke()
{
    const char *env = std::getenv("VRIO_RESILIENCE_SMOKE");
    return (env && env[0] == '1') || bench::smokeMode();
}

bench::SweepOptions
baseOptions()
{
    bench::SweepOptions opt;
    if (smoke()) {
        opt.warmup = sim::Tick(10) * sim::kMillisecond;
        opt.measure = sim::Tick(40) * sim::kMillisecond;
    } else {
        opt.measure = sim::Tick(200) * sim::kMillisecond;
    }
    opt.tweak = [](models::ModelConfig &mc) { mc.with_block = true; };
    return opt;
}

std::vector<std::unique_ptr<workloads::FilebenchRandom>>
startFilebenchPairs(bench::Experiment &exp, unsigned n_vms)
{
    std::vector<std::unique_ptr<workloads::FilebenchRandom>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        workloads::FilebenchRandom::Config cfg;
        cfg.readers = 1;
        cfg.writers = 1;
        wls.push_back(std::make_unique<workloads::FilebenchRandom>(
            exp.model->guest(v), exp.sim->random().split(), cfg));
        wls.back()->start();
    }
    return wls;
}

// -- experiment 1: block loss sweep -------------------------------------

struct BlockCell
{
    double ops_per_sec = 0;
    double p99_us = 0;
    uint64_t retransmits = 0;
    uint64_t errors = 0;
};

BlockCell
measureBlockCell(bench::Experiment &exp,
                 std::vector<std::unique_ptr<workloads::FilebenchRandom>>
                     &wls)
{
    BlockCell out;
    stats::Histogram merged;
    for (auto &wl : wls) {
        out.ops_per_sec += wl->opsPerSec(*exp.sim);
        out.errors += wl->ioErrors();
        bench::mergeHistogram(merged, wl->latencyUs());
    }
    out.p99_us = merged.count() ? merged.percentile(99) : 0;
    if (auto *vm = dynamic_cast<models::VrioModel *>(exp.model)) {
        for (unsigned v = 0; v < exp.model->numVms(); ++v)
            out.retransmits += vm->clientRetransmissions(v);
    }
    return out;
}

BlockCell
runBlockCell(ModelKind kind, const fault::FaultPlan &plan)
{
    const unsigned n_vms = 2;
    bench::SweepOptions opt = baseOptions();
    bench::Experiment exp(kind, n_vms, opt);
    exp.settle();
    auto inj = bench::attachInjector(exp, plan);

    auto wls = startFilebenchPairs(exp, n_vms);
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);
    return measureBlockCell(exp, wls);
}

void
blockLossSweep(const std::vector<double> &loss_rates)
{
    const ModelKind kinds[] = {ModelKind::Baseline, ModelKind::Elvis,
                               ModelKind::Vrio, ModelKind::VrioNoPoll};

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<BlockCell>> slots;
    for (double loss : loss_rates) {
        for (ModelKind kind : kinds) {
            char label[64];
            std::snprintf(label, sizeof(label), "block %s loss=%g",
                          models::modelKindName(kind), loss);
            slots.push_back(
                runner.defer<BlockCell>(label, [kind, loss]() {
                    fault::FaultPlan plan;
                    plan.seed = 43;
                    plan.dropRate(loss);
                    return runBlockCell(kind, plan);
                }));
        }
    }
    runner.run();

    stats::Table ops("Resilience 1a: Filebench pairs under channel loss "
                     "[ops/sec]");
    stats::Table p99("Resilience 1b: block p99 latency [us]");
    stats::Table recov("Resilience 1c: vRIO protocol recoveries "
                       "(retransmits / errors)");
    ops.setHeader({"loss", "base", "elvis", "vrio", "vrio-nopoll"});
    p99.setHeader({"loss", "base", "elvis", "vrio", "vrio-nopoll"});
    recov.setHeader({"loss", "vrio-retx", "vrio-err", "nopoll-retx",
                     "nopoll-err"});

    size_t i = 0;
    for (double loss : loss_rates) {
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f", loss);
        std::vector<double> ops_row, p99_row;
        const BlockCell *vrio_cell = nullptr, *nopoll_cell = nullptr;
        for (ModelKind kind : kinds) {
            const BlockCell &c = *slots[i++];
            ops_row.push_back(c.ops_per_sec);
            p99_row.push_back(c.p99_us);
            if (kind == ModelKind::Vrio)
                vrio_cell = &c;
            else if (kind == ModelKind::VrioNoPoll)
                nopoll_cell = &c;
        }
        ops.addRow(lbl, ops_row, 0);
        p99.addRow(lbl, p99_row, 1);
        recov.addRow(lbl,
                     {double(vrio_cell->retransmits),
                      double(vrio_cell->errors),
                      double(nopoll_cell->retransmits),
                      double(nopoll_cell->errors)},
                     0);
    }
    std::printf("%s\n", ops.toString().c_str());
    std::printf("%s\n", p99.toString().c_str());
    std::printf("%s\n", recov.toString().c_str());
}

// -- experiment 2: IOhost outage timeline -------------------------------

struct OutageResult
{
    std::vector<uint64_t> bucket_ops;
    size_t outage_first_bucket = 0;
    size_t outage_last_bucket = 0;
    uint64_t errors = 0;
    uint64_t retransmits = 0;
    uint64_t offline_rx_drops = 0;
    double steady_before = 0;
    double steady_after = 0;
};

OutageResult
runOutageTimeline()
{
    const unsigned n_vms = 2;
    const sim::Tick bucket = sim::Tick(20) * sim::kMillisecond;
    const size_t lead_buckets = smoke() ? 3 : 10;
    const sim::Tick outage = smoke()
                                 ? sim::Tick(100) * sim::kMillisecond
                                 : sim::Tick(300) * sim::kMillisecond;
    const size_t tail_buckets = smoke() ? 10 : 25;

    bench::SweepOptions opt = baseOptions();
    bench::Experiment exp(ModelKind::Vrio, n_vms, opt);
    exp.settle();

    auto wls = startFilebenchPairs(exp, n_vms);
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();

    // Script the crash at an absolute tick after the lead-in.
    fault::FaultPlan plan;
    plan.seed = 44;
    plan.killIoHost(exp.sim->now() + sim::Tick(lead_buckets) * bucket,
                    outage);
    auto inj = bench::attachInjector(exp, plan);

    const size_t outage_buckets =
        size_t((outage + bucket - 1) / bucket);
    const size_t total_buckets =
        lead_buckets + outage_buckets + tail_buckets;

    OutageResult out;
    out.outage_first_bucket = lead_buckets;
    out.outage_last_bucket = lead_buckets + outage_buckets - 1;
    uint64_t prev_ops = 0;
    for (size_t b = 0; b < total_buckets; ++b) {
        exp.sim->runUntil(exp.sim->now() + bucket);
        uint64_t now_ops = 0;
        for (auto &wl : wls)
            now_ops += wl->opsCompleted();
        out.bucket_ops.push_back(now_ops - prev_ops);
        prev_ops = now_ops;
    }

    auto *vm = dynamic_cast<models::VrioModel *>(exp.model);
    for (unsigned v = 0; v < n_vms; ++v)
        out.retransmits += vm->clientRetransmissions(v);
    for (auto &wl : wls)
        out.errors += wl->ioErrors();
    out.offline_rx_drops = vm->hypervisor().offlineRxDrops();

    for (size_t b = 0; b < lead_buckets; ++b)
        out.steady_before += double(out.bucket_ops[b]);
    out.steady_before /= double(lead_buckets);
    const size_t settled = 5; // skip the post-restart catch-up burst
    size_t after_start = out.outage_last_bucket + 1 + settled;
    size_t after_n = 0;
    for (size_t b = after_start; b < total_buckets; ++b, ++after_n)
        out.steady_after += double(out.bucket_ops[b]);
    if (after_n > 0)
        out.steady_after /= double(after_n);
    return out;
}

void
outageTimeline()
{
    OutageResult r = runOutageTimeline();

    stats::Table table("Resilience 2: vRIO IOhost crash/restart "
                       "timeline (Filebench pairs)");
    table.setHeader({"t_ms", "ops", "iohost"});
    for (size_t b = 0; b < r.bucket_ops.size(); ++b) {
        bool dark = b >= r.outage_first_bucket &&
                    b <= r.outage_last_bucket;
        table.addRow({std::to_string(b * 20),
                      std::to_string(r.bucket_ops[b]),
                      dark ? "down" : "up"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("outage summary: steady_before=%.0f ops/bucket, "
                "steady_after=%.0f ops/bucket, retransmits=%llu, "
                "frames_dropped_at_dead_iohost=%llu, io_errors=%llu\n",
                r.steady_before, r.steady_after,
                (unsigned long long)r.retransmits,
                (unsigned long long)r.offline_rx_drops,
                (unsigned long long)r.errors);
    std::printf("expected shape: ops fall to ~0 while down, then "
                "recover to the pre-outage rate with zero errors.\n\n");
}

// -- experiment 3: fault mix + guest-TCP loss recovery ------------------

struct MixScenario
{
    const char *name;
    fault::FaultPlan plan;
};

std::vector<MixScenario>
mixScenarios(sim::Tick warmup)
{
    // Windows are relative to the start of measurement; cells add the
    // absolute offset at settle time via plan adjustments below.
    sim::Tick win_at = warmup + sim::Tick(20) * sim::kMillisecond;
    sim::Tick win_len = smoke() ? sim::Tick(10) * sim::kMillisecond
                                : sim::Tick(100) * sim::kMillisecond;
    std::vector<MixScenario> out;
    out.push_back({"clean", fault::FaultPlan{}});
    {
        fault::FaultPlan p;
        p.seed = 45;
        p.corruptRate(0.005);
        out.push_back({"corrupt-0.5%", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 46;
        p.delayRate(0.005, sim::Tick(200) * sim::kMicrosecond);
        out.push_back({"delay-0.5%", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 47;
        p.reorderRate(0.01, sim::Tick(50) * sim::kMicrosecond);
        out.push_back({"reorder-1%", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 48;
        p.squeezeRxRing(win_at, win_len, 8);
        out.push_back({"rx-squeeze-8", p});
    }
    {
        fault::FaultPlan p;
        p.seed = 49;
        p.stallSidecore(0, win_at, win_len);
        out.push_back({"sidecore-stall", p});
    }
    return out;
}

void
faultMix()
{
    bench::SweepOptions probe = baseOptions();
    auto scenarios = mixScenarios(probe.warmup);

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<BlockCell>> slots;
    for (const MixScenario &sc : scenarios) {
        fault::FaultPlan plan = sc.plan;
        slots.push_back(runner.defer<BlockCell>(
            std::string("mix ") + sc.name,
            [plan]() { return runBlockCell(ModelKind::Vrio, plan); }));
    }
    runner.run();

    stats::Table table("Resilience 3a: vRIO fault mix (Filebench pairs)");
    table.setHeader({"fault", "ops/sec", "p99_us", "retx", "errors"});
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const BlockCell &c = *slots[i];
        table.addRow(scenarios[i].name,
                     {c.ops_per_sec, c.p99_us, double(c.retransmits),
                      double(c.errors)},
                     0);
    }
    std::printf("%s\n", table.toString().c_str());
}

bench::FaultedStreamResult
runStreamCell(double loss_rate, bool burst)
{
    bench::SweepOptions opt = baseOptions();
    opt.tweak = nullptr; // no block device needed

    fault::FaultPlan plan;
    plan.seed = 50;
    if (loss_rate > 0) {
        if (burst) {
            // Bursts span several TSO chunks (3 jumbo frames each).
            // The short smoke window needs more frequent, shorter
            // bursts to stay statistically busy.
            plan.burstLoss(loss_rate, smoke() ? 8 : 16);
        }
        else
            plan.dropRate(loss_rate);
    }

    // The adaptive guest-TCP stack recovers channel loss: the
    // congestion window collapses and regrows, the SRTT-tracked RTO
    // backs off, and triple duplicate acks trigger fast retransmit —
    // no fixed per-chunk timer needed.
    workloads::NetperfStream::Config cfg;
    cfg.adaptive = true;
    cfg.tcp.max_window = 32;
    cfg.tcp.initial_ssthresh = 16;
    return bench::runNetperfStreamFaulted(ModelKind::Vrio, 1, opt, plan,
                                          cfg);
}

void
streamLossSweep(const std::vector<double> &loss_rates)
{
    bench::SweepRunner runner;
    std::vector<std::shared_ptr<bench::FaultedStreamResult>> slots;
    std::vector<std::string> labels;
    for (double loss : loss_rates) {
        char label[64];
        std::snprintf(label, sizeof(label), "stream loss=%g", loss);
        slots.push_back(runner.defer<bench::FaultedStreamResult>(
            label, [loss]() { return runStreamCell(loss, false); }));
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f", loss);
        labels.push_back(lbl);
    }
    // One burst scenario at the highest rate: equal average loss,
    // correlated into Gilbert-Elliott bursts.
    double top = loss_rates.back();
    slots.push_back(runner.defer<bench::FaultedStreamResult>(
        "stream burst", [top]() { return runStreamCell(top, true); }));
    {
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f-ge", top);
        labels.push_back(lbl);
    }
    runner.run();

    stats::Table table("Resilience 3b: vRIO TCP stream under channel "
                       "loss (adaptive guest-TCP: cwnd + SRTT RTO + "
                       "fast retransmit)");
    table.setHeader({"loss", "gbps", "retx", "timeouts", "fast_retx",
                     "cwnd_peak", "srtt_us"});
    for (size_t i = 0; i < slots.size(); ++i) {
        const auto &c = *slots[i];
        table.addRow(labels[i],
                     {c.total_gbps, double(c.tcp_retransmits),
                      double(c.tcp_timeouts),
                      double(c.tcp_fast_retransmits), c.cwnd_peak,
                      c.srtt_last_us},
                     2);
    }
    std::printf("%s\n", table.toString().c_str());
}

// -- experiment 4: detection + recovery (cfg.recovery) ------------------

/**
 * Each cell runs Filebench pairs plus one adaptive TCP stream while a
 * partial fault lands mid-run with the recovery layer armed
 * (heartbeats + watchdog + retry + optional standby).  The timeline
 * is bucketed so detection latency, recovery time and the goodput dip
 * are measurable; afterwards the workloads are stopped and the run
 * drains so stranded requests can be counted (must be zero).
 */
enum class RecoveryFault
{
    WedgedWorker,  ///< worker 0 wedges; the IOhost watchdog re-steers
    DeadPort,      ///< the client-side switch port blackholes 30 ms
    IohostOutage,  ///< the primary dies for good; standby failover
    LiveRehome,    ///< planned drain-mirror-flip onto the warm peer
};

struct RecoveryCell
{
    std::vector<uint64_t> bucket_ops;
    double steady = 0;
    double detect_ms = -1;
    double recover_ms = -1;
    /** Worst post-fault bucket as a fraction of the steady rate. */
    double dip_frac = 1;
    uint64_t retransmits = 0;
    uint64_t tcp_retransmits = 0;
    uint64_t duplicates = 0;
    uint64_t abandoned = 0;
    uint64_t failovers = 0;
    uint64_t errors = 0;
    uint64_t stranded = 0;
};

RecoveryCell
runRecoveryCell(RecoveryFault f)
{
    const unsigned n_vms = 2;
    const sim::Tick bucket = sim::Tick(10) * sim::kMillisecond;
    const size_t lead = 4;
    const size_t post = smoke() ? 8 : 16;
    const sim::Tick drain =
        sim::Tick(smoke() ? 60 : 150) * sim::kMillisecond;

    bench::SweepOptions opt = baseOptions();
    // Two workers so the watchdog has somewhere to re-steer to.
    opt.sidecores = (f == RecoveryFault::WedgedWorker) ? 2 : 1;
    opt.seed = 51;
    opt.tweak = [f](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.recovery.enabled = true;
        // Port-down and failover are switch-topology faults; the
        // wedge scenario keeps the default direct links so the
        // watchdog path is measured on its own.
        if (f != RecoveryFault::WedgedWorker)
            mc.vrio_via_switch = true;
        if (f == RecoveryFault::IohostOutage)
            mc.recovery.standby = true;
        // The planned flip is a rack-layer operation (DESIGN.md §16):
        // two IOhosts mirroring warm state over a shared volume.
        if (f == RecoveryFault::LiveRehome) {
            mc.rack.iohosts = 2;
            mc.rack.replication = true;
            mc.rack.shared_volume = true;
        }
    };

    bench::Experiment exp(ModelKind::Vrio, n_vms, opt);
    // The detection-latency read-out below consumes the tracer's
    // recovery instants; arm it for that category even when no
    // exporter is (the ring is memory-only and schedules nothing).
    auto &tracer = exp.sim->telemetry().tracer;
    if (!tracer.enabled())
        tracer.enable(1u << 14, telemetry::cat::kRecovery);
    exp.settle();
    auto *vm = dynamic_cast<models::VrioModel *>(exp.model);

    auto wls = startFilebenchPairs(exp, n_vms);
    workloads::NetperfStream::Config scfg;
    scfg.adaptive = true;
    scfg.tcp.max_window = 16;
    auto &gen = exp.rack->generator(0);
    auto stream = std::make_unique<workloads::NetperfStream>(
        gen, gen.newSession(), exp.model->guest(0), opt.costs, scfg);
    stream->start();

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    stream->resetStats();

    const sim::Tick fault_at =
        exp.sim->now() + sim::Tick(lead) * bucket;
    fault::FaultPlan plan;
    plan.seed = 52;
    switch (f) {
    case RecoveryFault::WedgedWorker:
        plan.wedgeWorker(0, fault_at);
        break;
    case RecoveryFault::DeadPort:
        // Both clients sit behind the IOhost's one client NIC; with
        // no alternate path its dead port blackholes the channel.
        plan.killSwitchPort(vm->iohostClientNics()[0]->queueMac(0),
                            fault_at, sim::Tick(30) * sim::kMillisecond);
        break;
    case RecoveryFault::IohostOutage:
        // The primary never comes back inside the run: recovery must
        // come from the standby, not from waiting out the outage.
        plan.killIoHost(fault_at, sim::Tick(10) * sim::kSecond);
        break;
    case RecoveryFault::LiveRehome:
        // Not a fault at all: VM 0 is flipped from its home onto the
        // warm peer under load.  The plan stays empty.
        vm->scheduleRehome(0, 1, fault_at);
        break;
    }
    auto inj = bench::attachInjector(exp, plan);
    (void)inj;

    RecoveryCell out;
    uint64_t prev_ops = 0;
    for (size_t b = 0; b < lead + post; ++b) {
        exp.sim->runUntil(exp.sim->now() + bucket);
        uint64_t now_ops = 0;
        for (auto &wl : wls)
            now_ops += wl->opsCompleted();
        out.bucket_ops.push_back(now_ops - prev_ops);
        prev_ops = now_ops;
    }

    // Detection: the recovery layer records a tracer instant at the
    // exact declaration tick — "recovery.wedge" from the watchdog,
    // "recovery.hb_lapse" from a client's heartbeat monitor — so the
    // latency is read from the trace instead of re-derived per fault
    // kind from model accessors.
    if (f == RecoveryFault::LiveRehome) {
        // Nothing is detected — the flip is commanded.  The latency
        // that matters is the client blackout: flip tick to the first
        // response accepted from the new home.
        out.detect_ms =
            sim::ticksToMicros(vm->clientLastBlackout(0)) / 1e3;
    } else {
        const char *detect_event = f == RecoveryFault::WedgedWorker
                                       ? "recovery.wedge"
                                       : "recovery.hb_lapse";
        sim::Tick detect_tick = 0;
        if (tracer.firstInstant(detect_event, fault_at, detect_tick))
            out.detect_ms =
                sim::ticksToMicros(detect_tick - fault_at) / 1e3;
    }

    for (size_t b = 0; b < lead; ++b)
        out.steady += double(out.bucket_ops[b]);
    out.steady /= double(lead);
    double min_ops = out.steady;
    for (size_t b = lead; b < out.bucket_ops.size(); ++b)
        min_ops = std::min(min_ops, double(out.bucket_ops[b]));
    out.dip_frac = out.steady > 0 ? min_ops / out.steady : 0;
    // Recovery: end of the first post-fault bucket back at >= 50% of
    // the steady rate *after* the dip bottomed out (an early bucket
    // can stay healthy while pinned devices are still dark).
    size_t min_b = lead;
    for (size_t b = lead; b < out.bucket_ops.size(); ++b)
        if (double(out.bucket_ops[b]) < double(out.bucket_ops[min_b]))
            min_b = b;
    for (size_t b = min_b; b < out.bucket_ops.size(); ++b) {
        if (double(out.bucket_ops[b]) >= 0.5 * out.steady) {
            out.recover_ms = sim::ticksToMicros(
                                 sim::Tick(b + 1 - lead) * bucket) /
                             1e3;
            break;
        }
    }
    // The planned flip never loses service, so "time back to 50%"
    // would just pick out bucket noise around the minimum.
    if (f == RecoveryFault::LiveRehome)
        out.recover_ms = 0;

    for (unsigned v = 0; v < n_vms; ++v) {
        out.retransmits += vm->clientRetransmissions(v);
        out.failovers += vm->clientFailovers(v);
    }
    out.tcp_retransmits = stream->tcpRetransmits();
    out.duplicates = vm->hypervisor().duplicatesSuppressed();
    if (auto *standby = vm->standbyHypervisor())
        out.duplicates += standby->duplicatesSuppressed();
    if (f == RecoveryFault::LiveRehome)
        out.duplicates += vm->rackHypervisor(1).duplicatesSuppressed();
    out.abandoned = vm->hypervisor().requestsAbandoned();

    // Stop the closed loops and drain: every in-flight request must
    // complete (possibly as an error) — zero stranded requests.
    for (auto &wl : wls)
        wl->stop();
    stream->stop();
    exp.sim->runUntil(exp.sim->now() + drain);
    for (auto &wl : wls) {
        out.errors += wl->ioErrors();
        out.stranded += wl->outstandingOps();
    }
    out.stranded += stream->outstandingChunks();
    for (unsigned v = 0; v < n_vms; ++v)
        out.stranded += vm->clientPendingBlocks(v);
    return out;
}

void
recoverySection()
{
    const struct
    {
        const char *name;
        RecoveryFault fault;
    } scenarios[] = {
        {"wedged-worker", RecoveryFault::WedgedWorker},
        {"dead-port", RecoveryFault::DeadPort},
        {"iohost-outage", RecoveryFault::IohostOutage},
        {"live-rehome", RecoveryFault::LiveRehome},
    };

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<RecoveryCell>> slots;
    for (const auto &sc : scenarios) {
        RecoveryFault f = sc.fault;
        slots.push_back(runner.defer<RecoveryCell>(
            std::string("recovery ") + sc.name,
            [f]() { return runRecoveryCell(f); }));
    }
    runner.run();

    stats::Table table("Resilience 4: failure detection + recovery "
                       "(heartbeats, watchdog, retry, standby "
                       "failover)");
    table.setHeader({"fault", "detect_ms", "recover_ms", "dip%",
                     "retx", "tcp_retx", "dup", "abandoned", "failover",
                     "errors", "stranded"});
    for (size_t i = 0; i < slots.size(); ++i) {
        const RecoveryCell &c = *slots[i];
        table.addRow(scenarios[i].name,
                     {c.detect_ms, c.recover_ms, 100.0 * c.dip_frac,
                      double(c.retransmits), double(c.tcp_retransmits),
                      double(c.duplicates), double(c.abandoned),
                      double(c.failovers), double(c.errors),
                      double(c.stranded)},
                     1);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("expected shape: finite detect/recover per fault "
                "class, failover=2 only for iohost-outage, and zero "
                "stranded requests after the drain.  live-rehome is "
                "the planned drain-mirror-flip: detect_ms carries the "
                "client blackout (flip to first response from the new "
                "home, well under the 8 ms heartbeat-lapse budget), "
                "no failover, near-zero dip.\n\n");
}

} // namespace

int
main()
{
    if (const char *env = std::getenv("VRIO_RESILIENCE_RECOVERY");
        env && env[0] == '1') {
        // CI recovery lane: just the detection/recovery scenarios.
        recoverySection();
        return 0;
    }
    std::vector<double> block_loss =
        smoke() ? std::vector<double>{0.0, 1e-3}
                : std::vector<double>{0.0, 1e-4, 1e-3, 5e-3, 1e-2};
    // Smoke windows are short (40 ms); a 2% rate keeps the stream
    // cells (including the rare-event burst cell) statistically busy
    // enough to exercise recovery.
    std::vector<double> stream_loss =
        smoke() ? std::vector<double>{0.0, 2e-2}
                : std::vector<double>{0.0, 1e-3, 1e-2};

    blockLossSweep(block_loss);
    outageTimeline();
    faultMix();
    streamLossSweep(stream_loss);
    recoverySection();

    std::printf("acceptance: at loss <= 0.001 vRIO completes every "
                "request (errors = 0) with bounded p99 inflation; the "
                "outage timeline recovers to its pre-crash rate; every "
                "recovery scenario detects and recovers in finite time "
                "with zero stranded requests.\n");
    return 0;
}
