/**
 * @file
 * Ablation: IOhost RX ring size (the Section 4.5 anecdote — 512
 * descriptors lost frames "in the wild"; 4096 eliminated the loss).
 *
 * Four VMhosts burst large encrypted writes at one worker; small
 * rings overflow, every drop costs a >=10 ms retransmission timeout.
 */
#include <cstdio>

#include "common.hpp"
#include "interpose/services.hpp"
#include "models/vrio.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

struct RingResult
{
    uint64_t drops = 0;
    uint64_t retransmissions = 0;
    double write_latency_ms = 0;
};

RingResult
burst(size_t ring)
{
    bench::SweepOptions opt;
    std::vector<std::unique_ptr<interpose::Chain>> chains;
    opt.tweak = [&](models::ModelConfig &mc) {
        mc.num_vmhosts = 4;
        mc.with_block = true;
        mc.iohost_rx_ring = ring;
        mc.chain_factory = [&chains](uint32_t,
                                     bool is_block) -> interpose::Chain * {
            if (!is_block)
                return nullptr;
            Bytes key(32, 1);
            auto chain = std::make_unique<interpose::Chain>();
            chain->append(
                std::make_unique<interpose::EncryptionService>(key, 1.0));
            chains.push_back(std::move(chain));
            return chains.back().get();
        };
    };
    bench::Experiment exp(ModelKind::Vrio, 4, opt);
    exp.settle();

    stats::Histogram latency_ms;
    int outstanding = 0;
    for (unsigned v = 0; v < 4; ++v) {
        auto &guest = exp.model->guest(v);
        for (int i = 0; i < 24; ++i) {
            Bytes data(64 * 1024, uint8_t(i));
            sim::Tick t0 = exp.sim->now();
            ++outstanding;
            guest.submitBlock(
                {virtio::BlkType::Out, uint64_t(i) * 128, 128,
                 std::move(data)},
                [&, t0](virtio::BlkStatus, Bytes) {
                    latency_ms.add(
                        sim::ticksToMicros(exp.sim->now() - t0) / 1e3);
                    --outstanding;
                });
        }
    }
    exp.sim->runUntil(exp.sim->now() + sim::Tick(5) * sim::kSecond);

    auto &vm = static_cast<models::VrioModel &>(*exp.model);
    RingResult res;
    for (const net::Nic *nic : vm.allNics())
        res.drops += nic->rxDrops();
    for (unsigned v = 0; v < 4; ++v)
        res.retransmissions += vm.clientRetransmissions(v);
    res.write_latency_ms = latency_ms.mean();
    return res;
}

} // namespace

int
main()
{
    stats::Table table("Ablation: IOhost RX ring size under a "
                       "4-VMhost write burst");
    table.setHeader({"ring", "frames dropped", "retransmissions",
                     "mean write latency [ms]"});
    for (size_t ring : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
        auto res = burst(ring);
        table.addRow({std::to_string(ring), std::to_string(res.drops),
                      std::to_string(res.retransmissions),
                      strFormat("%.2f", res.write_latency_ms)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Section 4.5: growing the IOhost Rx ring from 512 to "
                "4096 packets eliminated in-the-wild loss; every drop "
                "costs at least one 10 ms timeout.\n");
    return 0;
}
