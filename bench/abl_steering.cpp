/**
 * @file
 * Ablation: the I/O hypervisor's order-preserving steering policy
 * (Section 4.1) vs a naive round-robin spray, on a synthetic trace.
 *
 * Round-robin balances perfectly but lets a device's packets execute
 * on different workers concurrently, reordering them and forcing
 * client network stacks to cope; the vRIO policy pins in-flight
 * devices, preserving order at a small balance cost.
 */
#include <cstdio>

#include "iohost/steering.hpp"
#include "sim/random.hpp"
#include "stats/table.hpp"
#include "util/strutil.hpp"

using namespace vrio;

namespace {

struct TraceResult
{
    uint64_t reorders = 0;   ///< packets that could bypass a peer
    double balance = 0;      ///< max/mean worker load
};

/**
 * Synthetic trace: packets of D devices arrive in bursts; service
 * times vary, so packets of one device on *different* workers can
 * complete out of order.  We count a potential reorder whenever a
 * packet is placed on a different worker than an earlier in-flight
 * packet of the same device.
 */
TraceResult
runTrace(bool order_preserving, unsigned workers, unsigned devices,
         uint64_t packets, uint64_t seed)
{
    sim::Random rng(seed);
    iohost::SteeringPolicy policy(workers);
    std::vector<uint64_t> load(workers, 0);
    std::vector<uint64_t> total(workers, 0);
    unsigned rr = 0;

    struct Flying
    {
        uint32_t device;
        unsigned worker;
    };
    std::vector<Flying> flying;
    std::map<uint32_t, unsigned> last_worker;
    std::map<uint32_t, uint64_t> inflight_of;
    TraceResult res;

    for (uint64_t i = 0; i < packets; ++i) {
        // Drain a few random completions to keep ~8 in flight.
        while (flying.size() > 8) {
            size_t idx = rng.uniformInt(0, flying.size() - 1);
            Flying f = flying[idx];
            flying.erase(flying.begin() + idx);
            --load[f.worker];
            --inflight_of[f.device];
            if (order_preserving)
                policy.complete(f.device, f.worker);
        }
        uint32_t dev = uint32_t(rng.uniformInt(0, devices - 1));
        unsigned w;
        if (order_preserving) {
            w = policy.steer(dev);
        } else {
            w = rr++ % workers;
        }
        if (inflight_of[dev] > 0 && w != last_worker[dev])
            ++res.reorders;
        ++inflight_of[dev];
        last_worker[dev] = w;
        ++load[w];
        ++total[w];
        flying.push_back({dev, w});
    }

    uint64_t max_load = 0, sum = 0;
    for (unsigned w = 0; w < workers; ++w) {
        max_load = std::max(max_load, total[w]);
        sum += total[w];
    }
    res.balance = double(max_load) / (double(sum) / workers);
    return res;
}

} // namespace

int
main()
{
    stats::Table table("Ablation: steering policy (4 workers, 100K "
                       "packets)");
    table.setHeader({"devices", "policy", "potential reorders",
                     "balance (max/mean)"});

    for (unsigned devices : {2u, 8u, 64u}) {
        for (bool preserve : {true, false}) {
            auto res = runTrace(preserve, 4, devices, 100000, 7);
            table.addRow({std::to_string(devices),
                          preserve ? "order-preserving" : "round-robin",
                          std::to_string(res.reorders),
                          strFormat("%.3f", res.balance)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("the vRIO policy never splits a device's in-flight "
                "packets across workers (0 reorders) at a modest "
                "balance cost when devices are few.\n");
    return 0;
}
