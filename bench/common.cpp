#include "common.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "fault/injector.hpp"
#include "models/vrio.hpp"
#include "util/logging.hpp"

namespace vrio::bench {

bool
smokeMode()
{
    const char *env = std::getenv("VRIO_BENCH_SMOKE");
    return env && env[0] == '1';
}

SweepOptions::SweepOptions()
{
    if (smokeMode()) {
        warmup = sim::Tick(10) * sim::kMillisecond;
        measure = sim::Tick(40) * sim::kMillisecond;
    }
}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("VRIO_BENCH_JOBS")) {
        long v = std::atol(env);
        if (v >= 1)
            return unsigned(v);
        vrio_warn("ignoring bad VRIO_BENCH_JOBS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : njobs(jobs > 0 ? jobs : defaultJobs())
{}

void
SweepRunner::add(std::string label, std::function<void()> task)
{
    cells.push_back(Cell{std::move(label), std::move(task)});
}

std::shared_ptr<RrResult>
SweepRunner::netperfRr(models::ModelKind kind, unsigned n_vms,
                       SweepOptions opt)
{
    std::string label = std::string("rr ") + models::modelKindName(kind) +
                        " n=" + std::to_string(n_vms);
    return defer<RrResult>(std::move(label), [kind, n_vms, opt]() {
        return runNetperfRr(kind, n_vms, opt);
    });
}

std::shared_ptr<StreamResult>
SweepRunner::netperfStream(models::ModelKind kind, unsigned n_vms,
                           SweepOptions opt)
{
    std::string label = std::string("stream ") +
                        models::modelKindName(kind) +
                        " n=" + std::to_string(n_vms);
    return defer<StreamResult>(std::move(label), [kind, n_vms, opt]() {
        return runNetperfStream(kind, n_vms, opt);
    });
}

std::shared_ptr<TpsResult>
SweepRunner::requestResponse(models::ModelKind kind, unsigned n_vms,
                             workloads::RequestResponseServer::Config wcfg,
                             SweepOptions opt)
{
    std::string label = std::string("reqresp ") +
                        models::modelKindName(kind) +
                        " n=" + std::to_string(n_vms);
    return defer<TpsResult>(std::move(label),
                            [kind, n_vms, wcfg, opt]() {
                                return runRequestResponse(kind, n_vms,
                                                          wcfg, opt);
                            });
}

void
SweepRunner::runCell(Cell &cell, bool verbose)
{
    if (!verbose) {
        cell.task();
        return;
    }
    auto t0 = std::chrono::steady_clock::now();
    cell.task();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    // stderr so stdout tables stay byte-identical.
    static std::mutex io_mutex;
    std::lock_guard<std::mutex> lock(io_mutex);
    std::fprintf(stderr, "[sweep] %-32s %9.1f ms\n", cell.label.c_str(),
                 ms);
}

void
SweepRunner::run()
{
    const char *env = std::getenv("VRIO_BENCH_VERBOSE");
    bool verbose = env && env[0] == '1';

    unsigned workers = unsigned(std::min<size_t>(njobs, cells.size()));
    if (workers <= 1) {
        for (Cell &cell : cells)
            runCell(cell, verbose);
        cells.clear();
        return;
    }

    std::atomic<size_t> next{0};
    auto worker = [this, &next, verbose]() {
        while (true) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;
            runCell(cells[i], verbose);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    cells.clear();
}

using models::ModelConfig;
using models::ModelKind;
using sim::kMillisecond;

Experiment::Experiment(ModelKind kind, unsigned n_vms,
                       const SweepOptions &opt)
{
    core::TestbedOptions options;
    options.vmhosts = opt.vmhosts;
    options.sidecores = opt.sidecores;
    options.generators = opt.generators;
    options.costs = opt.costs;
    options.seed = opt.seed;
    options.configure = opt.tweak;
    testbed = std::make_unique<core::Testbed>(kind, n_vms, options);
    sim = &testbed->simulation();
    rack = &testbed->rack();
    model = &testbed->model();
}

void
Experiment::settle()
{
    testbed->settle();
}

void
mergeHistogram(stats::Histogram &into, const stats::Histogram &from)
{
    for (double v : from.raw())
        into.add(v);
}

double
busyCycles(const std::vector<const sim::Resource *> &resources, double ghz)
{
    double cycles = 0;
    for (const auto *res : resources) {
        cycles +=
            sim::ticksToSeconds(res->busyTicks()) * ghz * 1e9;
    }
    return cycles;
}

RrResult
runNetperfRr(ModelKind kind, unsigned n_vms, const SweepOptions &opt)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::NetperfRr>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::NetperfRr>(
            gen, session, exp.model->guest(v),
            workloads::NetperfRr::Config{}));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    auto io_before = exp.model->ioResources();
    std::vector<uint64_t> contended_before, completed_before;
    for (const auto *res : io_before) {
        contended_before.push_back(res->contendedJobs());
        completed_before.push_back(res->completed());
    }

    exp.sim->runUntil(exp.sim->now() + opt.measure);

    RrResult out;
    for (auto &wl : wls) {
        mergeHistogram(out.latency_us, wl->latencyUs());
        out.transactions += wl->transactions();
    }
    auto io_after = exp.model->ioResources();
    uint64_t contended = 0, completed = 0;
    for (size_t i = 0; i < io_after.size(); ++i) {
        contended += io_after[i]->contendedJobs() - contended_before[i];
        completed += io_after[i]->completed() - completed_before[i];
    }
    out.contended_fraction =
        completed > 0 ? double(contended) / double(completed) : 0.0;
    return out;
}

StreamResult
runNetperfStream(ModelKind kind, unsigned n_vms, const SweepOptions &opt)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::NetperfStream>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::NetperfStream>(
            gen, session, exp.model->guest(v), opt.costs,
            workloads::NetperfStream::Config{}));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();

    // Cycle accounting for Fig. 10: guest vCPUs plus I/O cores.
    double cycles_before = 0;
    for (unsigned v = 0; v < n_vms; ++v) {
        cycles_before += busyCycles(
            {&exp.model->guest(v).vm().vcpu().resource()},
            opt.costs.guest_ghz);
    }
    double io_ghz = (kind == ModelKind::Vrio ||
                     kind == ModelKind::VrioNoPoll)
                        ? opt.costs.iohost_ghz
                        : opt.costs.guest_ghz;
    cycles_before += busyCycles(exp.model->ioResources(), io_ghz);

    exp.sim->runUntil(exp.sim->now() + opt.measure);

    StreamResult out;
    uint64_t bytes = 0;
    for (auto &wl : wls) {
        out.total_gbps += wl->throughputGbps(*exp.sim);
        bytes += wl->bytesReceived();
    }

    double cycles_after = 0;
    for (unsigned v = 0; v < n_vms; ++v) {
        cycles_after += busyCycles(
            {&exp.model->guest(v).vm().vcpu().resource()},
            opt.costs.guest_ghz);
    }
    cycles_after += busyCycles(exp.model->ioResources(), io_ghz);

    double messages = double(bytes) / 64.0;
    out.cycles_per_msg =
        messages > 0 ? (cycles_after - cycles_before) / messages : 0.0;
    return out;
}

uint64_t
registryCounterSum(Experiment &exp, std::string_view name)
{
    return exp.sim->telemetry().metrics.sumCounters(name);
}

std::unique_ptr<fault::FaultInjector>
attachInjector(Experiment &exp, const fault::FaultPlan &plan)
{
    auto *vrio_model = dynamic_cast<models::VrioModel *>(exp.model);
    if (!vrio_model || plan.empty())
        return nullptr;
    auto inj = std::make_unique<fault::FaultInjector>(*exp.sim, "fault",
                                                      plan);
    inj->attach(*vrio_model);
    // attach() wires only model-owned targets; port-down windows hit
    // the rack's ToR switch, which the experiment owns.
    inj->attachSwitch(exp.rack->rackSwitch());
    inj->arm();
    return inj;
}

FaultedStreamResult
runNetperfStreamFaulted(ModelKind kind, unsigned n_vms,
                        const SweepOptions &opt,
                        const fault::FaultPlan &plan,
                        workloads::NetperfStream::Config scfg)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();
    auto inj = attachInjector(exp, plan);

    std::vector<std::unique_ptr<workloads::NetperfStream>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::NetperfStream>(
            gen, session, exp.model->guest(v), opt.costs, scfg));
        wls.back()->start();
    }
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    FaultedStreamResult out;
    for (auto &wl : wls) {
        out.total_gbps += wl->throughputGbps(*exp.sim);
        out.tcp_retransmits += wl->tcpRetransmits();
        if (wl->tcp()) {
            // Post-warmup deltas: the injector arms before the lossy
            // warmup, so the cumulative machine counters would charge
            // warmup losses to the measured window.
            out.tcp_timeouts += wl->tcpTimeouts();
            out.tcp_fast_retransmits += wl->tcpFastRetransmits();
            out.cwnd_peak =
                std::max(out.cwnd_peak, wl->cwndTrace().max());
            out.srtt_last_us =
                std::max(out.srtt_last_us, wl->srttTrace().last());
        }
    }
    out.link_lost = registryCounterSum(exp, "net.link.lost");
    out.faults_injected = registryCounterSum(exp, "fault.injected");
    return out;
}

TpsResult
runRequestResponse(ModelKind kind, unsigned n_vms,
                   workloads::RequestResponseServer::Config wcfg,
                   const SweepOptions &opt)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::RequestResponseServer>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::RequestResponseServer>(
            gen, session, exp.model->guest(v), wcfg));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    TpsResult out;
    for (auto &wl : wls) {
        out.total_tps += wl->throughputTps(*exp.sim);
        mergeHistogram(out.latency_us, wl->latencyUs());
    }
    return out;
}

} // namespace vrio::bench
