#include "common.hpp"

#include "util/logging.hpp"

namespace vrio::bench {

using models::ModelConfig;
using models::ModelKind;
using sim::kMillisecond;

Experiment::Experiment(ModelKind kind, unsigned n_vms,
                       const SweepOptions &opt)
{
    core::TestbedOptions options;
    options.vmhosts = opt.vmhosts;
    options.sidecores = opt.sidecores;
    options.generators = opt.generators;
    options.costs = opt.costs;
    options.seed = opt.seed;
    options.configure = opt.tweak;
    testbed = std::make_unique<core::Testbed>(kind, n_vms, options);
    sim = &testbed->simulation();
    rack = &testbed->rack();
    model = &testbed->model();
}

void
Experiment::settle()
{
    testbed->settle();
}

void
mergeHistogram(stats::Histogram &into, const stats::Histogram &from)
{
    for (double v : from.raw())
        into.add(v);
}

double
busyCycles(const std::vector<const sim::Resource *> &resources, double ghz)
{
    double cycles = 0;
    for (const auto *res : resources) {
        cycles +=
            sim::ticksToSeconds(res->busyTicks()) * ghz * 1e9;
    }
    return cycles;
}

RrResult
runNetperfRr(ModelKind kind, unsigned n_vms, const SweepOptions &opt)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::NetperfRr>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::NetperfRr>(
            gen, session, exp.model->guest(v),
            workloads::NetperfRr::Config{}));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    auto io_before = exp.model->ioResources();
    std::vector<uint64_t> contended_before, completed_before;
    for (const auto *res : io_before) {
        contended_before.push_back(res->contendedJobs());
        completed_before.push_back(res->completed());
    }

    exp.sim->runUntil(exp.sim->now() + opt.measure);

    RrResult out;
    for (auto &wl : wls) {
        mergeHistogram(out.latency_us, wl->latencyUs());
        out.transactions += wl->transactions();
    }
    auto io_after = exp.model->ioResources();
    uint64_t contended = 0, completed = 0;
    for (size_t i = 0; i < io_after.size(); ++i) {
        contended += io_after[i]->contendedJobs() - contended_before[i];
        completed += io_after[i]->completed() - completed_before[i];
    }
    out.contended_fraction =
        completed > 0 ? double(contended) / double(completed) : 0.0;
    return out;
}

StreamResult
runNetperfStream(ModelKind kind, unsigned n_vms, const SweepOptions &opt)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::NetperfStream>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::NetperfStream>(
            gen, session, exp.model->guest(v), opt.costs,
            workloads::NetperfStream::Config{}));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();

    // Cycle accounting for Fig. 10: guest vCPUs plus I/O cores.
    double cycles_before = 0;
    for (unsigned v = 0; v < n_vms; ++v) {
        cycles_before += busyCycles(
            {&exp.model->guest(v).vm().vcpu().resource()},
            opt.costs.guest_ghz);
    }
    double io_ghz = (kind == ModelKind::Vrio ||
                     kind == ModelKind::VrioNoPoll)
                        ? opt.costs.iohost_ghz
                        : opt.costs.guest_ghz;
    cycles_before += busyCycles(exp.model->ioResources(), io_ghz);

    exp.sim->runUntil(exp.sim->now() + opt.measure);

    StreamResult out;
    uint64_t bytes = 0;
    for (auto &wl : wls) {
        out.total_gbps += wl->throughputGbps(*exp.sim);
        bytes += wl->bytesReceived();
    }

    double cycles_after = 0;
    for (unsigned v = 0; v < n_vms; ++v) {
        cycles_after += busyCycles(
            {&exp.model->guest(v).vm().vcpu().resource()},
            opt.costs.guest_ghz);
    }
    cycles_after += busyCycles(exp.model->ioResources(), io_ghz);

    double messages = double(bytes) / 64.0;
    out.cycles_per_msg =
        messages > 0 ? (cycles_after - cycles_before) / messages : 0.0;
    return out;
}

TpsResult
runRequestResponse(ModelKind kind, unsigned n_vms,
                   workloads::RequestResponseServer::Config wcfg,
                   const SweepOptions &opt)
{
    Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::RequestResponseServer>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        auto &gen = exp.rack->generator(v % opt.generators);
        unsigned session = gen.newSession();
        wls.push_back(std::make_unique<workloads::RequestResponseServer>(
            gen, session, exp.model->guest(v), wcfg));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    TpsResult out;
    for (auto &wl : wls) {
        out.total_tps += wl->throughputTps(*exp.sim);
        mergeHistogram(out.latency_us, wl->latencyUs());
    }
    return out;
}

} // namespace vrio::bench
