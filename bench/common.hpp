/**
 * @file
 * Shared experiment harness for the table/figure reproduction
 * binaries.  Each bench builds a rack + model + workloads, warms up,
 * measures, and prints the paper's rows via stats::Table.
 */
#ifndef VRIO_BENCH_COMMON_HPP
#define VRIO_BENCH_COMMON_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/plan.hpp"
#include "models/io_model.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"
#include "workloads/filebench.hpp"
#include "workloads/netperf.hpp"
#include "workloads/request_response.hpp"

namespace vrio::fault {
class FaultInjector;
}

namespace vrio::bench {

/**
 * True when VRIO_BENCH_SMOKE=1: every bench shrinks its simulated
 * warmup/measure windows so the whole fig/tab/abl suite runs in
 * seconds.  Outputs stay fully deterministic — the golden-run
 * regression harness (tests/golden_test.cpp) snapshots exactly these
 * reduced runs.
 */
bool smokeMode();

struct SweepOptions
{
    /** Defaults shrink to 10/40 ms under smokeMode(). */
    SweepOptions();

    sim::Tick warmup = sim::Tick(30) * sim::kMillisecond;
    sim::Tick measure = sim::Tick(250) * sim::kMillisecond;
    unsigned vmhosts = 1;
    /** Per-VMhost sidecores (Elvis) / total IOhost workers (vRIO). */
    unsigned sidecores = 1;
    /** Generators in the rack; VM v drives generator v % generators. */
    unsigned generators = 1;
    models::CostParams costs{};
    uint64_t seed = 42;
    /** Extra knobs forwarded to the model config. */
    std::function<void(models::ModelConfig &)> tweak;
};

/** A complete experiment instance (thin wrapper over core::Testbed
 *  exposing pointer-style members the bench code uses). */
struct Experiment
{
    std::unique_ptr<core::Testbed> testbed;
    sim::Simulation *sim = nullptr;
    models::Rack *rack = nullptr;
    models::IoModel *model = nullptr;

    Experiment(models::ModelKind kind, unsigned n_vms,
               const SweepOptions &opt);

    /** Run the vRIO control handshake etc. */
    void settle();
};

struct RrResult
{
    stats::Histogram latency_us; ///< merged across all VMs
    uint64_t transactions = 0;
    /** Fraction of IOhost packets that waited for a worker (Fig. 8). */
    double contended_fraction = 0;
};

/** Netperf UDP RR, one session per VM, closed loop. */
RrResult runNetperfRr(models::ModelKind kind, unsigned n_vms,
                      const SweepOptions &opt);

struct StreamResult
{
    double total_gbps = 0;
    /** Guest+host cycles consumed per 64B message (Fig. 10). */
    double cycles_per_msg = 0;
};

/** Netperf TCP stream (64B messages), guest -> generator. */
StreamResult runNetperfStream(models::ModelKind kind, unsigned n_vms,
                              const SweepOptions &opt);

/**
 * Attach-and-arm a fault injector when the model is a vRIO wiring and
 * the plan does something; returns null (and leaves the run untouched)
 * otherwise.
 */
std::unique_ptr<fault::FaultInjector>
attachInjector(Experiment &exp, const fault::FaultPlan &plan);

struct FaultedStreamResult
{
    double total_gbps = 0;
    /** All retransmissions (legacy RTO / adaptive timeout + fast). */
    uint64_t tcp_retransmits = 0;
    uint64_t tcp_timeouts = 0;
    uint64_t tcp_fast_retransmits = 0;
    /** Peak congestion window over the measure window [chunks]. */
    double cwnd_peak = 0;
    /** SRTT at end of run [us] (adaptive mode only). */
    double srtt_last_us = 0;
    /** Frames the wiring lost, from `net.link.lost` (registry sum). */
    uint64_t link_lost = 0;
    /** Faults the injector realized, from `fault.injected`. */
    uint64_t faults_injected = 0;
};

/**
 * Sum one registry counter across every label set in this
 * experiment's simulation (0 when no such series exists).  Benches
 * read rack-wide telemetry this way instead of enumerating objects.
 */
uint64_t registryCounterSum(Experiment &exp, std::string_view name);

/**
 * Netperf TCP stream driven through a fault plan (loss sweeps); the
 * stream config selects the legacy fixed-window or the adaptive
 * congestion-controlled stack.
 */
FaultedStreamResult
runNetperfStreamFaulted(models::ModelKind kind, unsigned n_vms,
                        const SweepOptions &opt,
                        const fault::FaultPlan &plan,
                        workloads::NetperfStream::Config scfg);

struct TpsResult
{
    double total_tps = 0;
    stats::Histogram latency_us;
};

/** Apache / memcached style macrobenchmark. */
TpsResult runRequestResponse(models::ModelKind kind, unsigned n_vms,
                             workloads::RequestResponseServer::Config wcfg,
                             const SweepOptions &opt);

/**
 * Parallel executor for independent sweep cells.
 *
 * Each cell builds its own self-contained Experiment + Simulation, so
 * cells share no mutable state and can run on a thread pool.  Results
 * land in per-cell slots handed out at defer time; consuming them in
 * defer order after run() yields tables byte-identical to a
 * sequential sweep regardless of worker count or scheduling.
 *
 * Worker count: explicit constructor argument, else the
 * VRIO_BENCH_JOBS environment variable, else hardware_concurrency.
 * Set VRIO_BENCH_VERBOSE=1 to log per-cell wall-clock to stderr
 * (stdout stays byte-identical).
 */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 = defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    /** VRIO_BENCH_JOBS, else hardware_concurrency, else 1. */
    static unsigned defaultJobs();

    unsigned jobs() const { return njobs; }

    /**
     * Queue a cell computing a value of type T; the returned slot is
     * filled during run().  @p fn must be self-contained (no shared
     * mutable state with other cells).
     */
    template <typename T, typename Fn>
    std::shared_ptr<T>
    defer(std::string label, Fn fn)
    {
        auto slot = std::make_shared<T>();
        add(std::move(label),
            [slot, fn = std::move(fn)]() { *slot = fn(); });
        return slot;
    }

    /** Queue a Netperf UDP RR cell (see runNetperfRr). */
    std::shared_ptr<RrResult> netperfRr(models::ModelKind kind,
                                        unsigned n_vms, SweepOptions opt);

    /** Queue a Netperf stream cell (see runNetperfStream). */
    std::shared_ptr<StreamResult> netperfStream(models::ModelKind kind,
                                                unsigned n_vms,
                                                SweepOptions opt);

    /** Queue a request/response macrobenchmark cell. */
    std::shared_ptr<TpsResult>
    requestResponse(models::ModelKind kind, unsigned n_vms,
                    workloads::RequestResponseServer::Config wcfg,
                    SweepOptions opt);

    /** Execute all queued cells; returns once every slot is filled. */
    void run();

  private:
    struct Cell
    {
        std::string label;
        std::function<void()> task;
    };

    unsigned njobs;
    std::vector<Cell> cells;

    void add(std::string label, std::function<void()> task);
    void runCell(Cell &cell, bool verbose);
};

/** Merge a histogram's samples into another. */
void mergeHistogram(stats::Histogram &into, const stats::Histogram &from);

/** Busy cycles consumed by a set of core resources (at ghz). */
double busyCycles(const std::vector<const sim::Resource *> &resources,
                  double ghz);

} // namespace vrio::bench

#endif // VRIO_BENCH_COMMON_HPP
