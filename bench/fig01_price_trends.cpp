/**
 * @file
 * Reproduces Fig. 1: relative cost vs relative added capability for
 * adjacent CPU and NIC upgrades.  Shape target: every CPU point lies
 * below the break-even diagonal (compute upgrades carry a premium);
 * every NIC point lies above it (bandwidth outpaces cost).
 */
#include <cstdio>

#include "cost/pricing.hpp"
#include "stats/table.hpp"
#include "util/strutil.hpp"

using namespace vrio;

int
main()
{
    stats::Table table("Figure 1: added hardware vs added cost "
                       "(adjacent upgrades)");
    table.setHeader({"kind", "upgrade", "cost x", "gain y",
                     "vs diagonal"});

    unsigned cpu_below = 0, cpu_total = 0;
    for (const auto &pt : cost::cpuUpgradePoints()) {
        ++cpu_total;
        cpu_below += pt.gain_ratio < pt.cost_ratio;
        table.addRow({"CPU", pt.from + " -> " + pt.to,
                      strFormat("%.2f", pt.cost_ratio),
                      strFormat("%.2f", pt.gain_ratio),
                      pt.gain_ratio < pt.cost_ratio ? "below" : "above"});
    }
    unsigned nic_above = 0, nic_total = 0;
    for (const auto &pt : cost::nicUpgradePoints()) {
        ++nic_total;
        nic_above += pt.gain_ratio > pt.cost_ratio;
        table.addRow({"NIC", pt.from + " -> " + pt.to,
                      strFormat("%.2f", pt.cost_ratio),
                      strFormat("%.2f", pt.gain_ratio),
                      pt.gain_ratio > pt.cost_ratio ? "above" : "below"});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("CPU points below the break-even diagonal: %u/%u\n",
                cpu_below, cpu_total);
    std::printf("NIC points above the break-even diagonal: %u/%u\n",
                nic_above, nic_total);
    std::printf("paper shape: all CPU points below, all NIC points "
                "above the diagonal.\n");
    return 0;
}
