/**
 * @file
 * Reproduces Fig. 3: vRIO rack price relative to Elvis under
 * different PCIe-SSD consolidation ratios.  Shape target: savings
 * between ~8%% (no drive reduction) and ~38%% (full consolidation),
 * monotone in the consolidation ratio.
 */
#include <cstdio>

#include "cost/rack_cost.hpp"
#include "stats/table.hpp"
#include "util/strutil.hpp"

using namespace vrio;

int
main()
{
    stats::Table table("Figure 3: vRIO price relative to Elvis vs SSD "
                       "consolidation ratio");
    table.setHeader({"setup", "ratio", "drive", "elvis $", "vrio $",
                     "relative"});

    double min_saving = 1.0, max_saving = 0.0;
    for (unsigned n : {3u, 6u}) {
        for (bool big : {false, true}) {
            for (unsigned v = n; v >= 1; --v) {
                auto cmp = cost::ssdConsolidation(n, v, big);
                double rel = cmp.relative();
                min_saving = std::min(min_saving, 1.0 - rel);
                max_saving = std::max(max_saving, 1.0 - rel);
                table.addRow(
                    {strFormat("R930 x %u", n),
                     strFormat("%u=>%u", n, v),
                     big ? "6.4TB" : "3.2TB",
                     strFormat("%.0fK", cmp.elvis_price / 1000.0),
                     strFormat("%.0fK", cmp.vrio_price / 1000.0),
                     strFormat("%.1f%%", rel * 100.0)});
            }
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("cost reduction range: %.0f%% - %.0f%% "
                "(paper: 8%% - 38%%).\n",
                min_saving * 100.0, max_saving * 100.0);
    return 0;
}
