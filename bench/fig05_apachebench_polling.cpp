/**
 * @file
 * Reproduces Fig. 5: ApacheBench aggregate requests/sec vs number of
 * VMs for all five models, including the no-poll vRIO ablation.
 * Shape: throughput ordering inversely tracks the Table-3 event sum —
 * optimum >= vrio > elvis > vrio-no-poll > baseline at high N.
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Vrio,
                               ModelKind::Elvis, ModelKind::VrioNoPoll,
                               ModelKind::Baseline};

    stats::Table table("Figure 5: ApacheBench aggregate requests/sec "
                       "vs number of VMs");
    table.setHeader({"vms", "optimum", "vrio", "elvis", "vrio w/o poll",
                     "baseline"});

    bench::SweepRunner runner;
    std::vector<std::vector<std::shared_ptr<bench::TpsResult>>> cells;
    for (unsigned n = 1; n <= 7; ++n) {
        cells.emplace_back();
        for (ModelKind kind : kinds) {
            cells.back().push_back(runner.requestResponse(
                kind, n, workloads::RequestResponseServer::apache(),
                opt));
        }
    }
    runner.run();

    for (unsigned n = 1; n <= 7; ++n) {
        std::vector<double> row;
        for (const auto &res : cells[n - 1])
            row.push_back(res->total_tps);
        table.addRow(std::to_string(n), row, 0);
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("paper shape: performance inversely correlates with the "
                "Table-3 event sum:\n"
                "optimum(2) ~ vrio(2) > elvis(4) > vrio-no-poll(6) > "
                "baseline(9).\n");
    return 0;
}
