/**
 * @file
 * Reproduces Fig. 7: Netperf UDP RR average latency vs number of VMs
 * for baseline / vrio / elvis / optimum.  Also reproduces Fig. 8 (the
 * vRIO-vs-optimum latency gap and the contended-packet fraction) from
 * the same runs, since the paper derives it from this experiment.
 *
 * Shape targets: optimum ~30-32 us and nearly flat; vRIO ~12 us above
 * optimum with a slowly growing gap; Elvis 8 us *below* vRIO at N=1
 * but crossing above it around N=6; baseline worst and rising.
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;

    const ModelKind kinds[] = {ModelKind::Baseline, ModelKind::Vrio,
                               ModelKind::Elvis, ModelKind::Optimum};

    stats::Table table("Figure 7: Netperf RR average latency [usec] "
                       "vs number of VMs");
    table.setHeader({"vms", "baseline", "vrio", "elvis", "optimum"});

    stats::Table gap("Figure 8: vRIO latency gap vs optimum [usec] and "
                     "IOhost contention [%]");
    gap.setHeader({"vms", "latency gap", "contention"});

    bench::SweepRunner runner;
    std::vector<std::vector<std::shared_ptr<bench::RrResult>>> cells;
    for (unsigned n = 1; n <= 7; ++n) {
        cells.emplace_back();
        for (ModelKind kind : kinds)
            cells.back().push_back(runner.netperfRr(kind, n, opt));
    }
    runner.run();

    for (unsigned n = 1; n <= 7; ++n) {
        std::vector<double> row;
        double vrio_mean = 0, optimum_mean = 0, vrio_contention = 0;
        for (size_t k = 0; k < std::size(kinds); ++k) {
            const bench::RrResult &res = *cells[n - 1][k];
            row.push_back(res.latency_us.mean());
            if (kinds[k] == ModelKind::Vrio) {
                vrio_mean = res.latency_us.mean();
                vrio_contention = res.contended_fraction;
            }
            if (kinds[k] == ModelKind::Optimum)
                optimum_mean = res.latency_us.mean();
        }
        table.addRow(std::to_string(n), row, 1);
        gap.addRow(std::to_string(n),
                   {vrio_mean - optimum_mean, vrio_contention * 100.0},
                   1);
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("%s\n", gap.toString().c_str());
    std::printf("paper anchors: optimum 30-32us flat; vrio = optimum + "
                "~12us (gap drifting up ~1us by N=7);\n"
                "elvis = vrio - 8us at N=1, crossing vrio near N=6; "
                "baseline highest and rising.\n");
    return 0;
}
