/**
 * @file
 * Reproduces Fig. 9: Netperf TCP stream throughput (64B messages) vs
 * number of VMs.  Shape: elvis tracks the optimum; vRIO is 5-8%
 * below; the baseline is roughly half.
 *
 * VRIO_FIG09_LOSS_SWEEP=1 switches to a loss-sweep mode that is not
 * in the paper: one vRIO VM runs the adaptive (congestion-controlled)
 * guest-TCP stack while the T-channel loses frames, once as i.i.d.
 * drops and once as Gilbert-Elliott bursts at the same average rate.
 * Throughput should fall with the loss rate (qualitatively following
 * the Mathis 1/sqrt(p) trend) and bursts should hurt more than
 * uniform loss because they defeat fast retransmit and force timeouts.
 */
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "fault/injector.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

workloads::NetperfStream::Config
adaptiveConfig()
{
    workloads::NetperfStream::Config cfg;
    cfg.adaptive = true;
    cfg.tcp.max_window = 32;
    cfg.tcp.initial_ssthresh = 16;
    return cfg;
}

void
lossSweep()
{
    const double losses[] = {0.0, 1e-4, 1e-3, 3e-3, 1e-2};
    // Frames per loss burst (GE mode).  A 16KB chunk spans ~3 jumbo
    // frames, so bursts this long wipe out several consecutive chunks
    // -- the regime where correlated loss starves the cumulative-ack
    // clock and forces timeouts that isolated drops would not.
    const double mean_burst = 64;

    bench::SweepOptions opt;
    opt.tweak = nullptr;
    // Bursts at the lower rates are rare events (avg_loss/64 per
    // frame); a longer window keeps every cell statistically busy.
    opt.measure = sim::Tick(1000) * sim::kMillisecond;

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<bench::FaultedStreamResult>> iid_cells,
        ge_cells;
    for (double loss : losses) {
        char label[64];
        std::snprintf(label, sizeof(label), "iid loss=%g", loss);
        iid_cells.push_back(runner.defer<bench::FaultedStreamResult>(
            label, [loss, opt]() {
                fault::FaultPlan plan;
                plan.seed = 51;
                plan.dropRate(loss);
                return bench::runNetperfStreamFaulted(
                    ModelKind::Vrio, 1, opt, plan, adaptiveConfig());
            }));
        std::snprintf(label, sizeof(label), "burst loss=%g", loss);
        ge_cells.push_back(runner.defer<bench::FaultedStreamResult>(
            label, [loss, opt, mean_burst]() {
                fault::FaultPlan plan;
                plan.seed = 51;
                if (loss > 0)
                    plan.burstLoss(loss, mean_burst);
                return bench::runNetperfStreamFaulted(
                    ModelKind::Vrio, 1, opt, plan, adaptiveConfig());
            }));
    }
    runner.run();

    stats::Table table("Figure 9 (loss-sweep mode): adaptive guest-TCP "
                       "stream vs channel loss, i.i.d. vs "
                       "Gilbert-Elliott bursts (vRIO, 1 VM)");
    table.setHeader({"loss", "iid_gbps", "iid_retx", "iid_timeouts",
                     "ge_gbps", "ge_retx", "ge_timeouts"});
    for (size_t i = 0; i < std::size(losses); ++i) {
        char lbl[32];
        std::snprintf(lbl, sizeof(lbl), "%.4f", losses[i]);
        const auto &iid = *iid_cells[i];
        const auto &ge = *ge_cells[i];
        table.addRow(lbl,
                     {iid.total_gbps, double(iid.tcp_retransmits),
                      double(iid.tcp_timeouts), ge.total_gbps,
                      double(ge.tcp_retransmits),
                      double(ge.tcp_timeouts)},
                     2);
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("expected shape: throughput declines with loss "
                "(Mathis-like); equal-rate Gilbert-Elliott bursts "
                "(mean length %.0f frames) degrade it more than "
                "i.i.d. drops.\n",
                mean_burst);
}

} // namespace

int
main()
{
    if (const char *env = std::getenv("VRIO_FIG09_LOSS_SWEEP");
        env && env[0] == '1') {
        lossSweep();
        return 0;
    }

    bench::SweepOptions opt;

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Elvis,
                               ModelKind::Vrio, ModelKind::Baseline};

    stats::Table table("Figure 9: Netperf stream throughput [Gbps] vs "
                       "number of VMs");
    table.setHeader({"vms", "optimum", "elvis", "vrio", "baseline"});

    bench::SweepRunner runner;
    std::vector<std::vector<std::shared_ptr<bench::StreamResult>>> cells;
    for (unsigned n = 1; n <= 7; ++n) {
        cells.emplace_back();
        for (ModelKind kind : kinds)
            cells.back().push_back(runner.netperfStream(kind, n, opt));
    }
    runner.run();

    for (unsigned n = 1; n <= 7; ++n) {
        std::vector<double> row;
        for (const auto &res : cells[n - 1])
            row.push_back(res->total_gbps);
        table.addRow(std::to_string(n), row, 2);
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("paper shape: elvis ~= optimum; vrio 5-8%% lower; "
                "baseline ~half; ~0.85 Gbps per VM, linear in N.\n");
    return 0;
}
