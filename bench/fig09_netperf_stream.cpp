/**
 * @file
 * Reproduces Fig. 9: Netperf TCP stream throughput (64B messages) vs
 * number of VMs.  Shape: elvis tracks the optimum; vRIO is 5-8%
 * below; the baseline is roughly half.
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Elvis,
                               ModelKind::Vrio, ModelKind::Baseline};

    stats::Table table("Figure 9: Netperf stream throughput [Gbps] vs "
                       "number of VMs");
    table.setHeader({"vms", "optimum", "elvis", "vrio", "baseline"});

    bench::SweepRunner runner;
    std::vector<std::vector<std::shared_ptr<bench::StreamResult>>> cells;
    for (unsigned n = 1; n <= 7; ++n) {
        cells.emplace_back();
        for (ModelKind kind : kinds)
            cells.back().push_back(runner.netperfStream(kind, n, opt));
    }
    runner.run();

    for (unsigned n = 1; n <= 7; ++n) {
        std::vector<double> row;
        for (const auto &res : cells[n - 1])
            row.push_back(res->total_gbps);
        table.addRow(std::to_string(n), row, 2);
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("paper shape: elvis ~= optimum; vrio 5-8%% lower; "
                "baseline ~half; ~0.85 Gbps per VM, linear in N.\n");
    return 0;
}
