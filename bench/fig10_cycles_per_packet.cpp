/**
 * @file
 * Reproduces Fig. 10: per-message processing cycles for Netperf
 * stream with one VM, relative to the optimum.
 * Shape target: optimum +0%, vrio +9%, elvis +1%, baseline +40%.
 */
#include <cstdio>

#include "common.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;
    if (!bench::smokeMode())
        opt.measure = sim::Tick(500) * sim::kMillisecond;

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Vrio,
                               ModelKind::Elvis, ModelKind::Baseline};

    double cycles[4] = {0, 0, 0, 0};
    for (int k = 0; k < 4; ++k) {
        auto res = bench::runNetperfStream(kinds[k], 1, opt);
        cycles[k] = res.cycles_per_msg;
    }

    stats::Table table("Figure 10: stream per-message processing cycles "
                       "(N=1)");
    table.setHeader({"model", "cycles/message", "vs optimum"});
    for (int k = 0; k < 4; ++k) {
        table.addRow({models::modelKindName(kinds[k]),
                      vrio::strFormat("%.0f", cycles[k]),
                      vrio::strFormat("%+.0f%%", (cycles[k] / cycles[0] -
                                                  1.0) * 100.0)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("paper: optimum +0%%, vrio +9%%, elvis +1%%, "
                "baseline +40%%.\n");
    return 0;
}
