/**
 * @file
 * Reproduces Fig. 11: throughput with an equalized core count.  The
 * interposable models at N=7 use 7+1 cores; giving the optimum all 8
 * cores (8 VMs) shows the price of interposition.
 */
#include <cstdio>

#include "common.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;
    opt.generators = 2;

    stats::Table table("Figure 11: stream throughput with 8 cores "
                       "[Gbps]");
    table.setHeader({"setup", "Gbps", "vs optimum-8vms"});

    double opt8 = bench::runNetperfStream(ModelKind::Optimum, 8, opt)
                      .total_gbps;
    struct Row
    {
        const char *name;
        ModelKind kind;
        unsigned vms;
    };
    const Row rows[] = {
        {"optimum 8vms", ModelKind::Optimum, 8},
        {"optimum", ModelKind::Optimum, 7},
        {"elvis", ModelKind::Elvis, 7},
        {"vrio", ModelKind::Vrio, 7},
        {"baseline", ModelKind::Baseline, 7},
    };
    for (const Row &r : rows) {
        double gbps = r.vms == 8 && r.kind == ModelKind::Optimum
                          ? opt8
                          : bench::runNetperfStream(r.kind, r.vms, opt)
                                .total_gbps;
        table.addRow({r.name, vrio::strFormat("%.2f", gbps),
                      vrio::strFormat("%+.0f%%",
                                      (gbps / opt8 - 1.0) * 100.0)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("paper: optimum-8vms 0%%; optimum -13%%, elvis -11%%, "
                "vrio -18%%, baseline -54%%.\n");
    return 0;
}
