/**
 * @file
 * Reproduces Fig. 12: memcached (memslap) and Apache (ApacheBench)
 * throughput vs number of VMs.  Shape: vRIO approaches the optimum
 * while Elvis falls behind at higher load (interrupt tax); baseline
 * is far below.
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Vrio,
                               ModelKind::Elvis, ModelKind::Baseline};

    struct Wl
    {
        const char *name;
        workloads::RequestResponseServer::Config cfg;
        const char *unit;
    };
    const Wl wls[] = {
        {"Figure 12a: memcached [Ktps]",
         workloads::RequestResponseServer::memcached(), "Ktps"},
        {"Figure 12b: apache [Ktps]",
         workloads::RequestResponseServer::apache(), "Ktps"},
    };

    bench::SweepRunner runner;
    // cells[workload][n-1][kind]
    std::vector<std::vector<std::vector<std::shared_ptr<bench::TpsResult>>>>
        cells;
    for (const Wl &wl : wls) {
        cells.emplace_back();
        for (unsigned n = 1; n <= 7; ++n) {
            cells.back().emplace_back();
            for (ModelKind kind : kinds) {
                cells.back().back().push_back(
                    runner.requestResponse(kind, n, wl.cfg, opt));
            }
        }
    }
    runner.run();

    for (size_t w = 0; w < std::size(wls); ++w) {
        stats::Table table(wls[w].name);
        table.setHeader({"vms", "optimum", "vrio", "elvis", "baseline"});
        for (unsigned n = 1; n <= 7; ++n) {
            std::vector<double> row;
            for (const auto &res : cells[w][n - 1])
                row.push_back(res->total_tps / 1000.0);
            table.addRow(std::to_string(n), row, 1);
        }
        std::printf("%s\n", table.toString().c_str());
    }
    std::printf("paper shape: vrio approaches optimum; elvis falls "
                "behind as N grows; baseline worst.\n");
    return 0;
}
