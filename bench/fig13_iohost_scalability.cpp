/**
 * @file
 * Reproduces Fig. 13: one IOhost serving four logical VMhosts (each
 * with its own load generator), N = 4..28 VMs, with 1/2/4 IOhost
 * sidecores.
 *
 * Shape targets: (a) RR latency falls as sidecores are added; the
 * N=16 bump comes from the load generators' NUMA topology (the 4th
 * session lands on their second socket).  (b) Stream throughput
 * scales linearly until a sidecore saturates around 13 Gbps; curves
 * for different sidecore counts coincide while unsaturated.
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    const unsigned sidecore_counts[] = {1, 2, 4};

    stats::Table lat("Figure 13a: Netperf RR latency [usec], one IOhost "
                     "serving 4 VMhosts");
    lat.setHeader({"vms", "1 sidecore", "2 sidecores", "4 sidecores"});
    stats::Table thr("Figure 13b: Netperf stream throughput [Gbps]");
    thr.setHeader({"vms", "1 sidecore", "2 sidecores", "4 sidecores"});

    bench::SweepRunner runner;
    std::vector<std::vector<std::shared_ptr<bench::RrResult>>> rr_cells;
    std::vector<std::vector<std::shared_ptr<bench::StreamResult>>>
        st_cells;
    for (unsigned n = 4; n <= 28; n += 4) {
        rr_cells.emplace_back();
        st_cells.emplace_back();
        for (unsigned sc : sidecore_counts) {
            bench::SweepOptions opt;
            opt.vmhosts = 4;
            opt.generators = 4;
            opt.sidecores = sc;
            if (!bench::smokeMode())
                opt.measure = sim::Tick(150) * sim::kMillisecond;
            rr_cells.back().push_back(
                runner.netperfRr(ModelKind::Vrio, n, opt));
            st_cells.back().push_back(
                runner.netperfStream(ModelKind::Vrio, n, opt));
        }
    }
    runner.run();

    for (unsigned n = 4, row = 0; n <= 28; n += 4, ++row) {
        std::vector<double> lat_row, thr_row;
        for (size_t i = 0; i < std::size(sidecore_counts); ++i) {
            lat_row.push_back(rr_cells[row][i]->latency_us.mean());
            thr_row.push_back(st_cells[row][i]->total_gbps);
        }
        lat.addRow(std::to_string(n), lat_row, 1);
        thr.addRow(std::to_string(n), thr_row, 2);
    }

    std::printf("%s\n", lat.toString().c_str());
    std::printf("%s\n", thr.toString().c_str());
    std::printf("paper shapes: (a) more sidecores -> lower latency; "
                "NUMA bump at N=16 on the generators.\n"
                "(b) linear until a sidecore saturates (~13 Gbps per "
                "sidecore, ~13 VMs); sidecore-count curves coincide "
                "while unsaturated.\n");
    return 0;
}
