/**
 * @file
 * Rack-layer companion to Fig. 13: N IOhosts behind the rack switch
 * serving 4 VMhosts (DESIGN.md §15), with the cross-VM request
 * coalescer on and off.
 *
 * Workload: closed-loop 4KB reads at queue depth 4, striped so the
 * VMs homed on the same IOhost touch adjacent LBAs of the shared
 * backend volume in the same round — the cross-VM adjacency the
 * coalescer merges into one backend submission.  The backing ramdisk
 * serializes requests through its DMA channel at a fixed per-request
 * cost, so at this depth the un-merged rack is channel-saturated and
 * merging G requests saves (G-1) channel occupancies per round.
 *
 * Shape targets: (a) throughput scales with IOhost count at a fixed
 * VMs-per-IOhost load, and coalescing-on >= coalescing-off at every
 * rack width; (b) the coalescing gain grows with VMs per IOhost
 * (more mergeable neighbors per window).
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

/**
 * Closed-loop striped reader: VM rank r of a G-VM IOhost group reads
 * slot i*G + r (4KB slots) in round i, so one round of the group is a
 * contiguous G*4KB extent; `depth` loops share the round counter, so
 * a VM keeps that many rounds in flight.  Deterministic — no RNG.
 */
class StripedReader
{
  public:
    StripedReader(models::GuestEndpoint &guest, unsigned rank,
                  unsigned group, unsigned depth, double think_cycles)
        : guest(guest), rank(rank), group(group), depth(depth),
          think_cycles(think_cycles), sim_(&guest.vm().sim())
    {
        slots = guest.blockCapacitySectors() / kSlotSectors;
    }

    void start()
    {
        epoch = sim_->now();
        for (unsigned q = 0; q < depth; ++q)
            loop();
    }

    void resetStats()
    {
        ops_ = errors_ = 0;
        latency.reset();
        epoch = sim_->now();
    }

    uint64_t opsCompleted() const { return ops_; }
    uint64_t ioErrors() const { return errors_; }
    const stats::Histogram &latencyUs() const { return latency; }

    double opsPerSec(sim::Simulation &sim) const
    {
        double seconds = sim::ticksToSeconds(sim.now() - epoch);
        return seconds > 0 ? double(ops_) / seconds : 0.0;
    }

  private:
    static constexpr uint32_t kSlotSectors = 8; // 4KB

    models::GuestEndpoint &guest;
    unsigned rank;
    unsigned group;
    unsigned depth;
    double think_cycles;
    sim::Simulation *sim_;
    uint64_t slots = 0;
    uint64_t round = 0;

    uint64_t ops_ = 0;
    uint64_t errors_ = 0;
    stats::Histogram latency;
    sim::Tick epoch = 0;

    void loop()
    {
        block::BlockRequest req;
        req.kind = virtio::BlkType::In;
        req.sector = ((round * group + rank) % slots) * kSlotSectors;
        req.nsectors = kSlotSectors;
        ++round;

        sim::Tick issued = sim_->now();
        guest.submitBlock(std::move(req), [this, issued](
                                              virtio::BlkStatus s,
                                              Bytes) {
            if (s != virtio::BlkStatus::Ok) {
                ++errors_;
            } else {
                ++ops_;
                latency.add(sim::ticksToMicros(sim_->now() - issued));
            }
            guest.vm().vcpu().runPreempt(think_cycles,
                                         [this]() { loop(); });
        });
    }
};

struct RackCell
{
    double kiops = 0;
    double mean_lat_us = 0;
    uint64_t staged = 0;
    uint64_t runs = 0;
    uint64_t merged_parts = 0;
};

RackCell
runRack(unsigned iohosts, unsigned vms_per_iohost, bool coalesce)
{
    unsigned n_vms = iohosts * vms_per_iohost;
    bench::SweepOptions opt;
    opt.vmhosts = 4;
    opt.generators = 1;
    opt.sidecores = 2;
    if (!bench::smokeMode())
        opt.measure = sim::Tick(150) * sim::kMillisecond;
    opt.tweak = [=](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.vrio_via_switch = true;
        mc.rack.iohosts = iohosts;
        mc.rack.coalesce = coalesce;
        mc.rack.shared_volume = true;
        mc.rack.coalesce_max = vms_per_iohost;
        // Wide enough to catch a whole group even when the backend
        // channel has staggered it by a request latency per member;
        // once a full round merges, completions re-synchronize and the
        // eager coalesce_max flush short-circuits the window wait.
        mc.rack.coalesce_window = sim::Tick(8 * vms_per_iohost) *
                                  sim::kMicrosecond;
    };

    bench::Experiment exp(ModelKind::Vrio, n_vms, opt);
    exp.settle();

    // VM v is homed on IOhost v % iohosts (PlacementPolicy::bootAssign),
    // so its rank within the IOhost's group is v / iohosts.
    std::vector<std::unique_ptr<StripedReader>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        wls.push_back(std::make_unique<StripedReader>(
            exp.model->guest(v), v / iohosts, vms_per_iohost, 4, 2500));
        wls.back()->start();
    }
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    RackCell cell;
    stats::Histogram lat;
    for (auto &wl : wls) {
        cell.kiops += wl->opsPerSec(*exp.sim) / 1e3;
        bench::mergeHistogram(lat, wl->latencyUs());
    }
    cell.mean_lat_us = lat.mean();
    cell.staged = bench::registryCounterSum(exp, "rack.coalesce.staged");
    cell.runs = bench::registryCounterSum(exp, "rack.coalesce.runs");
    cell.merged_parts =
        bench::registryCounterSum(exp, "rack.coalesce.merged_parts");
    return cell;
}

double
mergedPct(const RackCell &cell)
{
    return cell.staged
               ? 100.0 * double(cell.merged_parts) / double(cell.staged)
               : 0.0;
}

} // namespace

int
main()
{
    const unsigned rack_widths[] = {1, 2, 4};
    const unsigned group_sizes[] = {2, 4, 8};
    const unsigned kGroupAtWidth = 4;  // VMs/IOhost for table (a)
    const unsigned kWidthAtGroup = 2;  // IOhosts for table (b)

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<RackCell>> width_off, width_on;
    for (unsigned r : rack_widths) {
        width_off.push_back(runner.defer<RackCell>(
            "rack R=" + std::to_string(r) + " off",
            [r]() { return runRack(r, kGroupAtWidth, false); }));
        width_on.push_back(runner.defer<RackCell>(
            "rack R=" + std::to_string(r) + " on",
            [r]() { return runRack(r, kGroupAtWidth, true); }));
    }
    std::vector<std::shared_ptr<RackCell>> group_off, group_on;
    for (unsigned g : group_sizes) {
        group_off.push_back(runner.defer<RackCell>(
            "group G=" + std::to_string(g) + " off",
            [g]() { return runRack(kWidthAtGroup, g, false); }));
        group_on.push_back(runner.defer<RackCell>(
            "group G=" + std::to_string(g) + " on",
            [g]() { return runRack(kWidthAtGroup, g, true); }));
    }
    runner.run();

    stats::Table width("Figure 13-rack (a): rack throughput at 4 VMs "
                       "per IOhost [kIOPS]");
    width.setHeader({"iohosts", "coalesce off", "coalesce on", "on/off",
                     "merged %"});
    for (size_t i = 0; i < std::size(rack_widths); ++i) {
        const RackCell &off = *width_off[i];
        const RackCell &on = *width_on[i];
        width.addRow(std::to_string(rack_widths[i]),
                     {off.kiops, on.kiops,
                      off.kiops > 0 ? on.kiops / off.kiops : 0.0,
                      mergedPct(on)},
                     2);
    }

    stats::Table group("Figure 13-rack (b): coalescing gain vs VMs per "
                       "IOhost, 2 IOhosts [kIOPS]");
    group.setHeader({"vms/iohost", "coalesce off", "coalesce on",
                     "on/off", "lat off [us]", "lat on [us]"});
    for (size_t i = 0; i < std::size(group_sizes); ++i) {
        const RackCell &off = *group_off[i];
        const RackCell &on = *group_on[i];
        group.addRow(std::to_string(group_sizes[i]),
                     {off.kiops, on.kiops,
                      off.kiops > 0 ? on.kiops / off.kiops : 0.0,
                      off.mean_lat_us, on.mean_lat_us},
                     2);
    }

    std::printf("%s\n", width.toString().c_str());
    std::printf("%s\n", group.toString().c_str());
    std::printf("paper shapes: (a) throughput scales with rack width at "
                "fixed VMs/IOhost; coalescing-on >= coalescing-off at "
                "every width.\n"
                "(b) the coalescing gain grows with VMs per IOhost "
                "(more mergeable neighbors per window).\n");
    return 0;
}
