/**
 * @file
 * Reproduces Fig. 14: Filebench 4KB random I/O against a 1GB-class
 * ramdisk block device — local for elvis/baseline, remote (at the
 * IOhost) for vRIO.
 *
 * Shape targets: with 1 reader (latency-bound), elvis > vrio > base;
 * with 2 reader/writer pairs, vRIO counterintuitively overtakes Elvis
 * because Elvis guests suffer two orders of magnitude more
 * involuntary context switches (completions from the low-latency
 * local device preempt running threads).
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

struct Scenario
{
    const char *name;
    unsigned readers;
    unsigned writers;
};

double
runScenario(ModelKind kind, unsigned n_vms, const Scenario &sc,
            uint64_t *ctx_switches = nullptr)
{
    bench::SweepOptions opt;
    if (!bench::smokeMode())
        opt.measure = sim::Tick(200) * sim::kMillisecond;
    opt.tweak = [](models::ModelConfig &mc) { mc.with_block = true; };

    bench::Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::FilebenchRandom>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        workloads::FilebenchRandom::Config cfg;
        cfg.readers = sc.readers;
        cfg.writers = sc.writers;
        wls.push_back(std::make_unique<workloads::FilebenchRandom>(
            exp.model->guest(v), exp.sim->random().split(), cfg));
        wls.back()->start();
    }
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    double ops = 0;
    for (auto &wl : wls)
        ops += wl->opsPerSec(*exp.sim);
    if (ctx_switches) {
        *ctx_switches = 0;
        for (unsigned v = 0; v < n_vms; ++v)
            *ctx_switches +=
                exp.model->guest(v).vm().contextSwitches();
    }
    return ops;
}

} // namespace

int
main()
{
    const Scenario scenarios[] = {
        {"Figure 14a: 1 reader [ops/sec]", 1, 0},
        {"Figure 14b: 1 pair [ops/sec]", 1, 1},
        {"Figure 14c: 2 pairs [ops/sec]", 2, 2},
    };
    const ModelKind kinds[] = {ModelKind::Elvis, ModelKind::Vrio,
                               ModelKind::Baseline};

    for (const Scenario &sc : scenarios) {
        stats::Table table(sc.name);
        table.setHeader({"vms", "elvis", "vrio", "base"});
        for (unsigned n = 1; n <= 7; n += 2) {
            std::vector<double> row;
            for (ModelKind kind : kinds)
                row.push_back(runScenario(kind, n, sc));
            table.addRow(std::to_string(n), row, 0);
        }
        std::printf("%s\n", table.toString().c_str());
    }

    // The mechanism behind the 2-pairs reversal: involuntary guest
    // context switches (paper: two orders of magnitude more under
    // Elvis).
    uint64_t elvis_ctx = 0, vrio_ctx = 0;
    runScenario(ModelKind::Elvis, 1, scenarios[2], &elvis_ctx);
    runScenario(ModelKind::Vrio, 1, scenarios[2], &vrio_ctx);
    std::printf("involuntary context switches (2 pairs, 1 VM): "
                "elvis=%llu vrio=%llu (ratio %.0fx)\n",
                (unsigned long long)elvis_ctx,
                (unsigned long long)vrio_ctx,
                vrio_ctx ? double(elvis_ctx) / double(vrio_ctx) : 0.0);
    std::printf("paper shapes: 1 reader: elvis > vrio > base; "
                "2 pairs: vrio > elvis.\n");
    return 0;
}
