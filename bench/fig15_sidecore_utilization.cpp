/**
 * @file
 * Reproduces Fig. 15: sidecore CPU utilization under the Filebench
 * Webserver personality — two VMhosts x five VMs.
 *
 * Elvis dedicates one sidecore per VMhost; both sit underutilized
 * ("spending together about 150% CPU on useless polling").  vRIO
 * consolidates both hosts onto a single remote sidecore, which is
 * correspondingly busier.
 */
#include <cstdio>

#include "common.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

struct UtilResult
{
    std::vector<double> mean_util; ///< per sidecore, percent
    std::vector<stats::TimeSeries> traces;
};

UtilResult
runWebserver(ModelKind kind)
{
    bench::SweepOptions opt;
    bench::Experiment exp(
        kind, 10,
        [&]() {
            bench::SweepOptions o = opt;
            o.vmhosts = 2;
            o.sidecores = 1;
            o.tweak = [](models::ModelConfig &mc) {
                mc.with_block = true;
                mc.ramdisk_cfg.capacity_bytes = 32ull << 20;
            };
            return o;
        }());
    exp.settle();

    std::vector<std::unique_ptr<workloads::FilebenchWebserver>> wls;
    for (unsigned v = 0; v < 10; ++v) {
        wls.push_back(std::make_unique<workloads::FilebenchWebserver>(
            exp.model->guest(v), exp.sim->random().split(),
            workloads::FilebenchWebserver::Config{}));
        wls.back()->start();
    }

    auto resources = exp.model->ioResources();
    sim::Tick window = sim::Tick(100) * sim::kMillisecond;
    sim::Tick span = sim::Tick(3) * sim::kSecond;
    std::vector<std::unique_ptr<sim::UtilizationSampler>> samplers;
    for (const auto *res : resources) {
        samplers.push_back(std::make_unique<sim::UtilizationSampler>(
            exp.sim->events(), *res, window, exp.sim->now() + span));
    }
    exp.sim->runUntil(exp.sim->now() + span);

    UtilResult out;
    for (auto &sampler : samplers) {
        out.mean_util.push_back(sampler->series().mean());
        out.traces.push_back(sampler->series());
    }
    return out;
}

std::string
sparkline(const stats::TimeSeries &ts)
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#", "%", "@"};
    std::string out;
    for (const auto &p : ts.points()) {
        int idx = int(p.value / 10.0);
        idx = std::clamp(idx, 0, 9);
        out += levels[idx];
    }
    return out;
}

} // namespace

int
main()
{
    auto elvis = runWebserver(ModelKind::Elvis);
    auto vrio_res = runWebserver(ModelKind::Vrio);

    stats::Table table("Figure 15: sidecore CPU utilization, Webserver "
                       "personality (5 VMs x 2 VMhosts)");
    table.setHeader({"setup", "mean util [%]"});
    for (size_t i = 0; i < elvis.mean_util.size(); ++i) {
        table.addRow(strFormat("elvis sidecore %zu", i + 1),
                     {elvis.mean_util[i]}, 1);
    }
    for (size_t i = 0; i < vrio_res.mean_util.size(); ++i) {
        table.addRow("vrio sidecore", {vrio_res.mean_util[i]}, 1);
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf("utilization over time (100ms windows, 0-100%%):\n");
    for (size_t i = 0; i < elvis.traces.size(); ++i) {
        std::printf("  elvis sc%zu |%s|\n", i + 1,
                    sparkline(elvis.traces[i]).c_str());
    }
    for (const auto &trace : vrio_res.traces)
        std::printf("  vrio  sc  |%s|\n", sparkline(trace).c_str());

    double elvis_total = 0;
    for (double u : elvis.mean_util)
        elvis_total += u;
    std::printf("\nelvis sidecores burn %.0f%% CPU combined "
                "(the rest of 200%% is polling waste); the single "
                "consolidated vRIO sidecore runs at %.0f%%.\n",
                elvis_total, vrio_res.mean_util.at(0));
    std::printf("paper shape: two underutilized Elvis sidecores "
                "(~150%% combined waste) vs one busier vRIO sidecore.\n");
    return 0;
}
