/**
 * @file
 * Reproduces Fig. 16: the two consolidation payoffs.
 *
 * (a) Tradeoff (2=>1): two VMhosts x five webserver VMs.  Elvis needs
 *     one sidecore per host (2 total); vRIO serves both hosts with a
 *     single remote sidecore at a small throughput cost (paper: -8%),
 *     while the baseline with N+1 cores per host loses ~half.
 *
 * (b) Imbalance (2=>2): same rack, but only one VMhost is active and
 *     its I/O is encrypted (AES-256 interposition).  With the same
 *     two-sidecore budget, Elvis can only use the busy host's local
 *     sidecore, while vRIO's two consolidated sidecores both serve
 *     the busy host (paper: +82% for vRIO).
 */
#include <cstdio>

#include "common.hpp"
#include "interpose/services.hpp"
#include "util/strutil.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

struct WebserverRun
{
    double total_mbps = 0;
};

WebserverRun
runWebserver(ModelKind kind, unsigned sidecores, bool only_first_host,
             bool encrypt)
{
    bench::SweepOptions opt;
    opt.vmhosts = 2;
    opt.sidecores = sidecores;
    if (!bench::smokeMode())
        opt.measure = sim::Tick(400) * sim::kMillisecond;

    std::vector<std::unique_ptr<interpose::Chain>> chains;
    opt.tweak = [&](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.ramdisk_cfg.capacity_bytes = 32ull << 20;
        if (encrypt) {
            mc.chain_factory = [&chains](uint32_t, bool is_block)
                -> interpose::Chain * {
                if (!is_block)
                    return nullptr;
                Bytes key(32, 0x5a);
                auto chain = std::make_unique<interpose::Chain>();
                chain->append(
                    std::make_unique<interpose::EncryptionService>(key));
                chains.push_back(std::move(chain));
                return chains.back().get();
            };
        }
    };

    bench::Experiment exp(kind, 10, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::FilebenchWebserver>> wls;
    for (unsigned v = 0; v < 10; ++v) {
        // VMs are distributed round-robin: even indexes on host 0.
        if (only_first_host && v % 2 != 0)
            continue;
        wls.push_back(std::make_unique<workloads::FilebenchWebserver>(
            exp.model->guest(v), exp.sim->random().split(),
            workloads::FilebenchWebserver::Config{}));
        wls.back()->start();
    }
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    WebserverRun out;
    for (auto &wl : wls)
        out.total_mbps += wl->throughputMbps(*exp.sim);
    return out;
}

} // namespace

int
main()
{
    // (a) Tradeoff: elvis 1 sidecore/host (2 total) vs vrio 1 total.
    double elvis_a =
        runWebserver(ModelKind::Elvis, 1, false, false).total_mbps;
    double vrio_a =
        runWebserver(ModelKind::Vrio, 1, false, false).total_mbps;
    double base_a =
        runWebserver(ModelKind::Baseline, 1, false, false).total_mbps;

    stats::Table ta("Figure 16a: sidecore consolidation tradeoff "
                    "(2=>1), Webserver [Mbps]");
    ta.setHeader({"setup", "Mbps", "vs elvis"});
    ta.addRow({"elvis (2 sidecores)", strFormat("%.0f", elvis_a), "0%"});
    ta.addRow({"vrio (1 sidecore)", strFormat("%.0f", vrio_a),
               strFormat("%+.0f%%", (vrio_a / elvis_a - 1) * 100)});
    ta.addRow({"baseline (N+1 cores)", strFormat("%.0f", base_a),
               strFormat("%+.0f%%", (base_a / elvis_a - 1) * 100)});
    std::printf("%s\n", ta.toString().c_str());

    // (b) Imbalance: one busy host + AES-256 interposition; both
    //     setups have a two-sidecore budget.
    double elvis_b =
        runWebserver(ModelKind::Elvis, 1, true, true).total_mbps;
    double vrio_b =
        runWebserver(ModelKind::Vrio, 2, true, true).total_mbps;

    stats::Table tb("Figure 16b: load imbalance (2=>2) with AES-256 "
                    "interposition [Mbps]");
    tb.setHeader({"setup", "Mbps", "vs elvis"});
    tb.addRow({"elvis (1 usable sidecore)", strFormat("%.0f", elvis_b),
               "0%"});
    tb.addRow({"vrio (2 consolidated)", strFormat("%.0f", vrio_b),
               strFormat("%+.0f%%", (vrio_b / elvis_b - 1) * 100)});
    std::printf("%s\n", tb.toString().c_str());

    std::printf("paper: (a) elvis 0%%, vrio -8%%, baseline -51%%; "
                "(b) vrio +82%%.\n");
    return 0;
}
