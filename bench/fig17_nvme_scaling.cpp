/**
 * @file
 * Fig. 17 (extension): NVMe multi-queue scaling — per-VM I/O-queues
 * passthrough (Chen et al.) against the same NVMe device interposed
 * behind vRIO's shared queue pair, as the VM count grows.
 *
 * Both columns run Filebench 4KB random I/O (3 readers + 1 writer per
 * VM) over SSD-backed NVMe namespaces.  Passthrough gives every VM a
 * dedicated SQ/CQ pair in its own memory: doorbells don't exit and
 * completions interrupt the guest directly, so per-VM IOPS stays
 * roughly flat until the device itself saturates.  The interposed
 * path funnels every VM through one IOhost-side queue pair behind the
 * vRIO transport, so per-VM throughput degrades and tail latency
 * grows with the VM count — the crossover that motivates interposable
 * remote I/O having to compete with passthrough efficiency.
 *
 * Env: VRIO_FIG17_MAX_VMS caps the sweep (default 8),
 *      VRIO_FIG17_QD sets the SQ/CQ ring depth (default 32).
 */
#include <cstdio>
#include <cstdlib>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

struct Cell
{
    double kiops_per_vm = 0;
    double p99_us = 0;
    uint64_t doorbells = 0;
    uint64_t interrupts = 0;
};

Cell
runCell(ModelKind kind, unsigned n_vms, uint16_t qd)
{
    bench::SweepOptions opt;
    if (!bench::smokeMode())
        opt.measure = sim::Tick(200) * sim::kMillisecond;
    opt.tweak = [qd](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.block_use_ssd = true;
        // A fast PCIe drive with real internal parallelism: the
        // device must not be the bottleneck, or the queue-path
        // difference the figure measures would be invisible.
        mc.ssd_cfg = block::SsdConfig::pcieSx300();
        mc.ssd_cfg.capacity_bytes = 16ull << 20; // per VM
        mc.block_backend = models::ModelConfig::BlockBackend::Nvme;
        mc.nvme_queue_depth = qd;
    };

    bench::Experiment exp(kind, n_vms, opt);
    exp.settle();

    std::vector<std::unique_ptr<workloads::FilebenchRandom>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        workloads::FilebenchRandom::Config cfg;
        cfg.readers = 3;
        cfg.writers = 1;
        wls.push_back(std::make_unique<workloads::FilebenchRandom>(
            exp.model->guest(v), exp.sim->random().split(), cfg));
        wls.back()->start();
    }
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    Cell c;
    stats::Histogram merged;
    double ops = 0;
    for (auto &wl : wls) {
        ops += wl->opsPerSec(*exp.sim);
        bench::mergeHistogram(merged, wl->latencyUs());
    }
    c.kiops_per_vm = ops / n_vms / 1000.0;
    c.p99_us = merged.percentile(99);
    c.doorbells = bench::registryCounterSum(exp, "nvme.doorbell.writes");
    c.interrupts = bench::registryCounterSum(exp, "nvme.cq.interrupts");
    return c;
}

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    if (const char *env = std::getenv(name); env && *env) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return unsigned(v);
    }
    return fallback;
}

} // namespace

int
main()
{
    unsigned max_vms = envUnsigned("VRIO_FIG17_MAX_VMS", 8);
    uint16_t qd = uint16_t(envUnsigned("VRIO_FIG17_QD", 32));

    std::vector<unsigned> counts;
    for (unsigned n = 1; n <= max_vms; n *= 2)
        counts.push_back(n);

    bench::SweepRunner runner;
    std::vector<std::shared_ptr<Cell>> pt, vrio;
    for (unsigned n : counts) {
        pt.push_back(runner.defer<Cell>(
            "fig17 nvme-pt vms=" + std::to_string(n),
            [n, qd]() {
                return runCell(ModelKind::NvmePassthrough, n, qd);
            }));
        vrio.push_back(runner.defer<Cell>(
            "fig17 vrio vms=" + std::to_string(n),
            [n, qd]() { return runCell(ModelKind::Vrio, n, qd); }));
    }
    runner.run();

    stats::Table table("Figure 17: NVMe queue scaling, filebench 4KB "
                       "random (3r+1w per VM, SSD)");
    table.setHeader({"vms", "pt kIOPS/VM", "pt p99us", "vrio kIOPS/VM",
                     "vrio p99us"});
    for (size_t i = 0; i < counts.size(); ++i) {
        table.addRow(std::to_string(counts[i]),
                     {pt[i]->kiops_per_vm, pt[i]->p99_us,
                      vrio[i]->kiops_per_vm, vrio[i]->p99_us},
                     1);
    }
    std::printf("%s\n", table.toString().c_str());

    const Cell &pl = *pt.back(), &vl = *vrio.back();
    std::printf("telemetry at %u VMs: nvme.doorbell.writes pt=%llu "
                "vrio=%llu; nvme.cq.interrupts pt=%llu vrio=%llu\n",
                counts.back(), (unsigned long long)pl.doorbells,
                (unsigned long long)vl.doorbells,
                (unsigned long long)pl.interrupts,
                (unsigned long long)vl.interrupts);
    std::printf("paper shapes: passthrough per-VM IOPS stays ~flat with "
                "VM count; the interposed shared queue degrades per-VM "
                "IOPS and inflates p99.\n");
    return 0;
}
