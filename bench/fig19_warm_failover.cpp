/**
 * @file
 * Figure 19 (repo extension, DESIGN.md §16): warm-state replication
 * failover versus cold failover, plus planned live re-homing.
 *
 * Three cells on the same 2-IOhost rack under closed-loop Filebench
 * pairs:
 *
 *   cold   — replication off.  IOhost 0 crashes for a bounded window;
 *            its clients fail over to IOhost 1 with nothing waiting
 *            for them: every in-flight request waits out a client
 *            retransmit timeout and re-executes at the new home.
 *   warm   — replication on.  The same crash, but IOhost 1 holds the
 *            mirrored duplicate filter and in-service table, so
 *            activation replays the dead primary's unfinished work
 *            immediately and answers retries of committed writes from
 *            the committed table.
 *   rehome — replication on, no fault: a planned drain-mirror-flip of
 *            one VM onto the warm peer under load (live re-homing).
 *
 * Reported per cell: a bucketed ops timeline, the recovery dip (total
 * throughput lost versus steady state across the post-fault window),
 * and the blackout (flip tick to first accepted response at the new
 * home).  Expected shape: warm dip strictly below cold dip, duplicate
 * suppressions in the warm cell where the cold cell silently
 * re-executes, and a planned re-home blackout well under the 8 ms
 * detection budget that any failover pays before recovery even
 * starts.  The warm timeline also shows the R=2 availability
 * tradeoff honestly: while the peer is dead the survivor's bounded
 * replication window fills and backpressures admission, so warm
 * throughput dips deeper mid-outage and then snaps back the instant
 * the peer revives and acks — whereas cold keeps serving but loses
 * every in-flight request to retransmit timeouts.  Zero errors and
 * zero stranded requests everywhere.
 *
 * Env knobs: VRIO_FIG19_SMOKE=1 shrinks the run (also implied by
 * VRIO_BENCH_SMOKE=1); VRIO_FIG19_OUTAGE_MS overrides the crash
 * window; VRIO_FIG19_VMS overrides the VM count (multiples of 2).
 * VRIO_FIG19_FAILBACK=1 adds a fourth cell: the warm crash with
 * rack.failback on — after the dead IOhost revives and resumes
 * heartbeating, its refugee VMs re-steer back to their boot home
 * (dwell-gated), so the cell asserts the rack ends rebalanced
 * (clientHomeIoHost(v) == v % 2) with failback moves recorded.  Off
 * by default: the golden snapshot covers the classic three cells.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common.hpp"
#include "fault/injector.hpp"
#include "models/vrio.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

bool
smoke()
{
    const char *env = std::getenv("VRIO_FIG19_SMOKE");
    return (env && env[0] == '1') || bench::smokeMode();
}

unsigned
vmCount()
{
    if (const char *env = std::getenv("VRIO_FIG19_VMS"); env && *env) {
        long n = std::atol(env);
        if (n >= 2)
            return unsigned(n + (n & 1)); // even: half per IOhost
    }
    return 4;
}

sim::Tick
outageLength()
{
    if (const char *env = std::getenv("VRIO_FIG19_OUTAGE_MS");
        env && *env) {
        long ms = std::atol(env);
        if (ms >= 1)
            return sim::Tick(ms) * sim::kMillisecond;
    }
    return sim::Tick(12) * sim::kMillisecond;
}

enum class Scenario
{
    Cold,     ///< crash, replication off
    Warm,     ///< crash, replication on
    Rehome,   ///< planned flip, replication on, no fault
    Failback, ///< warm crash + rack.failback: refugees return home
};

struct Fig19Cell
{
    std::vector<uint64_t> bucket_ops;
    double steady = 0;       ///< ops per bucket before the event
    double dip_pct = 0;      ///< % of steady throughput lost post-event
    double blackout_ms = 0;  ///< mean over the VMs that moved
    uint64_t failovers = 0;
    uint64_t rehomes = 0;
    uint64_t warm_replays = 0;
    uint64_t commit_hits = 0;
    uint64_t duplicates = 0;
    uint64_t errors = 0;
    uint64_t stranded = 0;
    uint64_t held = 0;       ///< held responses left after the drain
    uint64_t failbacks = 0;  ///< dwell-gated returns to the boot home
    bool homes_restored = false; ///< every VM back on IOhost v % 2
};

Fig19Cell
runCell(Scenario sc)
{
    const unsigned n_vms = vmCount();
    const sim::Tick bucket = sim::Tick(5) * sim::kMillisecond;
    const size_t lead = smoke() ? 4 : 6;
    const size_t post = smoke() ? 16 : 20;
    const sim::Tick outage = outageLength();
    const sim::Tick drain =
        sim::Tick(smoke() ? 100 : 150) * sim::kMillisecond;

    bench::SweepOptions opt;
    opt.vmhosts = 2;
    opt.sidecores = 2;
    opt.seed = 53;
    if (smoke()) {
        opt.warmup = sim::Tick(10) * sim::kMillisecond;
    }
    opt.tweak = [sc](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.vrio_via_switch = true;
        mc.recovery.enabled = true;
        mc.rack.iohosts = 2;
        mc.rack.shared_volume = true;
        mc.rack.replication = sc != Scenario::Cold;
        mc.rack.failback = sc == Scenario::Failback;
    };

    bench::Experiment exp(ModelKind::Vrio, n_vms, opt);
    exp.settle();
    auto *vm = dynamic_cast<models::VrioModel *>(exp.model);

    std::vector<std::unique_ptr<workloads::FilebenchRandom>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        workloads::FilebenchRandom::Config cfg;
        cfg.readers = 2;
        cfg.writers = 1;
        wls.push_back(std::make_unique<workloads::FilebenchRandom>(
            exp.model->guest(v), exp.sim->random().split(), cfg));
        wls.back()->start();
    }
    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();

    // The event lands at a bucket boundary after the lead-in.
    const sim::Tick event_at =
        exp.sim->now() + sim::Tick(lead) * bucket;
    std::unique_ptr<fault::FaultInjector> inj;
    if (sc == Scenario::Rehome) {
        vm->scheduleRehome(0, 1, event_at);
    } else {
        fault::FaultPlan plan;
        plan.seed = 54;
        plan.killIoHost(event_at, outage, 0);
        inj = bench::attachInjector(exp, plan);
    }

    Fig19Cell out;
    uint64_t prev_ops = 0;
    for (size_t b = 0; b < lead + post; ++b) {
        exp.sim->runUntil(exp.sim->now() + bucket);
        uint64_t now_ops = 0;
        for (auto &wl : wls)
            now_ops += wl->opsCompleted();
        out.bucket_ops.push_back(now_ops - prev_ops);
        prev_ops = now_ops;
    }

    for (size_t b = 0; b < lead; ++b)
        out.steady += double(out.bucket_ops[b]);
    out.steady /= double(lead);
    // Recovery dip: total ops lost versus steady across the whole
    // post-event window.  A min-bucket metric saturates at 100% for
    // any failover (the detection window is dead time whatever the
    // peer holds); the deficit integrates how quickly service really
    // comes back — replay-at-activation versus waiting out client
    // retransmit timers and re-executing.
    double expected = out.steady * double(post), got = 0;
    for (size_t b = lead; b < out.bucket_ops.size(); ++b)
        got += double(out.bucket_ops[b]);
    out.dip_pct = expected > 0
                      ? std::max(0.0, 100.0 * (expected - got) / expected)
                      : 0;

    // Blackout: flip tick to first accepted response at the new home,
    // averaged over the VMs that moved (those homed on IOhost 0 —
    // bootAssign is round-robin — for the crash cells, VM 0 alone for
    // the planned re-home).
    unsigned moved = 0;
    for (unsigned v = 0; v < n_vms; ++v) {
        if (sc == Scenario::Rehome ? v != 0 : v % 2 != 0)
            continue;
        out.blackout_ms +=
            sim::ticksToMicros(vm->clientLastBlackout(v)) / 1e3;
        ++moved;
    }
    if (moved)
        out.blackout_ms /= double(moved);
    for (unsigned v = 0; v < n_vms; ++v) {
        out.failovers += vm->clientFailovers(v);
        out.rehomes += vm->clientRehomes(v);
    }
    for (unsigned k = 0; k < 2; ++k) {
        auto &hv = vm->rackHypervisor(k);
        out.warm_replays += hv.warmReplays();
        out.commit_hits += hv.commitHits();
        out.duplicates += hv.duplicatesSuppressed();
    }

    for (auto &wl : wls)
        wl->stop();
    exp.sim->runUntil(exp.sim->now() + drain);
    for (auto &wl : wls) {
        out.errors += wl->ioErrors();
        out.stranded += wl->outstandingOps();
    }
    for (unsigned v = 0; v < n_vms; ++v)
        out.stranded += vm->clientPendingBlocks(v);
    for (unsigned k = 0; k < 2; ++k)
        out.held += vm->rackHypervisor(k).heldResponses();
    out.homes_restored = true;
    for (unsigned v = 0; v < n_vms; ++v) {
        out.failbacks += vm->clientFailbacks(v);
        if (vm->clientHomeIoHost(v) != v % 2)
            out.homes_restored = false;
    }
    return out;
}

} // namespace

int
main()
{
    bench::SweepRunner runner;
    auto cold = runner.defer<Fig19Cell>(
        "fig19 cold", []() { return runCell(Scenario::Cold); });
    auto warm = runner.defer<Fig19Cell>(
        "fig19 warm", []() { return runCell(Scenario::Warm); });
    auto rehome = runner.defer<Fig19Cell>(
        "fig19 rehome", []() { return runCell(Scenario::Rehome); });
    const char *fb_env = std::getenv("VRIO_FIG19_FAILBACK");
    const bool with_failback = fb_env && *fb_env && *fb_env != '0';
    std::shared_ptr<Fig19Cell> failback;
    if (with_failback)
        failback = runner.defer<Fig19Cell>(
            "fig19 failback", []() { return runCell(Scenario::Failback); });
    runner.run();

    stats::Table timeline("Figure 19 (a): failover timeline, IOhost 0 "
                          "crash at t=" +
                          std::to_string(5 * (smoke() ? 4 : 6)) +
                          "ms [ops per 5ms bucket]");
    timeline.setHeader({"t_ms", "cold", "warm", "rehome"});
    for (size_t b = 0; b < cold->bucket_ops.size(); ++b) {
        timeline.addRow(std::to_string(b * 5),
                        {double(cold->bucket_ops[b]),
                         double(warm->bucket_ops[b]),
                         double(rehome->bucket_ops[b])},
                        0);
    }

    stats::Table summary("Figure 19 (b): recovery summary (dip = % of "
                         "steady throughput lost over the post-event "
                         "window; blackout = flip to first response)");
    summary.setHeader({"mode", "dip%", "blackout_ms", "failover",
                       "rehome", "replays", "commit_hits", "dup",
                       "errors", "stranded", "held"});
    const struct
    {
        const char *name;
        const Fig19Cell *c;
    } rows[] = {{"cold", cold.get()},
                {"warm", warm.get()},
                {"rehome", rehome.get()}};
    for (const auto &r : rows) {
        summary.addRow(r.name,
                       {r.c->dip_pct, r.c->blackout_ms,
                        double(r.c->failovers), double(r.c->rehomes),
                        double(r.c->warm_replays),
                        double(r.c->commit_hits),
                        double(r.c->duplicates), double(r.c->errors),
                        double(r.c->stranded), double(r.c->held)},
                       2);
    }

    std::printf("%s\n", timeline.toString().c_str());
    std::printf("%s\n", summary.toString().c_str());

    if (with_failback) {
        stats::Table fb("Figure 19 (c): fail-back after the revive "
                        "(warm crash + rack.failback)");
        fb.setHeader({"mode", "dip%", "blackout_ms", "failover",
                      "failback", "errors", "stranded",
                      "homes_restored"});
        fb.addRow("failback",
                  {failback->dip_pct, failback->blackout_ms,
                   double(failback->failovers),
                   double(failback->failbacks),
                   double(failback->errors),
                   double(failback->stranded),
                   failback->homes_restored ? 1.0 : 0.0},
                  2);
        std::printf("%s\n", fb.toString().c_str());
        std::printf("failback acceptance: refugees returned to their "
                    "boot home after the revive (failbacks > 0): %s; "
                    "rack rebalanced (home == vm %% 2 for every VM): "
                    "%s; warm cell left refugees stranded on the "
                    "survivor: %s\n",
                    failback->failbacks > 0 ? "yes" : "NO",
                    failback->homes_restored ? "yes" : "NO",
                    !warm->homes_restored ? "yes" : "NO");
    }
    std::printf("expected shape: warm dip strictly below cold dip "
                "(activation seeds the duplicate filter and replays "
                "the mirrored in-service table; dup > 0 warm, dup = 0 "
                "cold means cold re-executed what warm suppressed), "
                "warm blackout = the bounded window-backpressure "
                "stall while the peer is down, re-home blackout below "
                "the 8 ms detection budget, and zero errors / "
                "stranded / held everywhere.\n");
    std::printf("acceptance: warm_dip < cold_dip: %s; "
                "rehome_blackout < 8 ms: %s\n",
                warm->dip_pct < cold->dip_pct ? "yes" : "NO",
                rehome->blackout_ms < 8.0 ? "yes" : "NO");
    return 0;
}
