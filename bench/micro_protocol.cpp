/**
 * @file
 * Google-benchmark microbenchmarks of the protocol-level primitives:
 * the real code that would sit on vRIO's data path (encapsulation,
 * TSO splitting, reassembly, virtqueue operations, AES, CRC32,
 * steering).  These measure *host* (benchmark machine) performance of
 * the implementations, independent of the simulator.
 */
#include <benchmark/benchmark.h>

#include "crypto/modes.hpp"
#include "iohost/steering.hpp"
#include "net/tso.hpp"
#include "sim/random.hpp"
#include "transport/encap.hpp"
#include "transport/reassembly.hpp"
#include "transport/segmenter.hpp"
#include "util/crc32.hpp"
#include "virtio/virtqueue.hpp"

using namespace vrio;

namespace {

transport::TransportHeader
netHeader(uint32_t len)
{
    transport::TransportHeader hdr;
    hdr.type = transport::MsgType::NetOut;
    hdr.device_id = 1;
    hdr.total_len = len;
    return hdr;
}

void
BM_Encapsulate(benchmark::State &state)
{
    Bytes payload(size_t(state.range(0)), 0x42);
    auto src = net::MacAddress::local(1);
    auto dst = net::MacAddress::local(2);
    uint32_t id = 0;
    for (auto _ : state) {
        auto frame = transport::encapsulate(
            src, dst, ++id, netHeader(uint32_t(payload.size())),
            payload);
        benchmark::DoNotOptimize(frame);
    }
    state.SetBytesProcessed(state.iterations() *
                            int64_t(payload.size()));
}
BENCHMARK(BM_Encapsulate)->Arg(64)->Arg(1500)->Arg(16384)->Arg(65000);

void
BM_TsoSegment64K(benchmark::State &state)
{
    Bytes payload(65000, 0x42);
    auto frame = transport::encapsulate(net::MacAddress::local(1),
                                        net::MacAddress::local(2), 1,
                                        netHeader(65000), payload);
    uint32_t mtu = uint32_t(state.range(0));
    for (auto _ : state) {
        auto segs = net::tsoSegment(*frame, mtu);
        benchmark::DoNotOptimize(segs);
    }
    state.SetBytesProcessed(state.iterations() * 65000);
}
BENCHMARK(BM_TsoSegment64K)->Arg(1500)->Arg(8100);

void
BM_ReassembleMessage(benchmark::State &state)
{
    Bytes payload(size_t(state.range(0)), 0x42);
    auto frame = transport::encapsulate(
        net::MacAddress::local(1), net::MacAddress::local(2), 1,
        netHeader(uint32_t(payload.size())), payload);
    auto segs = net::tsoSegment(*frame, net::kMtuVrioJumbo);

    sim::EventQueue eq;
    transport::Reassembler reasm(eq, net::kMtuVrioJumbo);
    for (auto _ : state) {
        bool done = false;
        for (const auto &seg : segs) {
            if (auto msg = reasm.feed(*seg))
                done = true;
        }
        benchmark::DoNotOptimize(done);
    }
    state.SetBytesProcessed(state.iterations() *
                            int64_t(payload.size()));
}
BENCHMARK(BM_ReassembleMessage)->Arg(4096)->Arg(65000);

void
BM_SegmentLargeRequest(benchmark::State &state)
{
    Bytes payload(256 * 1024, 0x55);
    transport::TransportHeader proto;
    proto.type = transport::MsgType::BlkReq;
    for (auto _ : state) {
        auto parts = transport::segmentRequest(proto, payload);
        benchmark::DoNotOptimize(parts);
    }
    state.SetBytesProcessed(state.iterations() * 256 * 1024);
}
BENCHMARK(BM_SegmentLargeRequest);

void
BM_VirtqueueRoundTrip(benchmark::State &state)
{
    virtio::GuestMemory mem(1 << 20);
    virtio::DriverQueue drv(mem, 256);
    virtio::DeviceQueue dev(mem, drv.ringAddr(), 256);
    uint64_t buf = mem.alloc(2048);
    for (auto _ : state) {
        auto head = drv.addChain({{buf, 2048}}, {});
        auto chain = dev.popAvail();
        dev.pushUsed(chain->head, 0);
        auto used = drv.popUsed();
        benchmark::DoNotOptimize(used);
        benchmark::DoNotOptimize(head);
    }
}
BENCHMARK(BM_VirtqueueRoundTrip);

void
BM_AesCtr(benchmark::State &state)
{
    Bytes key(32, 0x11);
    crypto::Aes aes(key);
    Bytes data(size_t(state.range(0)), 0x42);
    for (auto _ : state) {
        auto out = crypto::ctrCrypt(aes, 7, data);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * int64_t(data.size()));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_Crc32(benchmark::State &state)
{
    Bytes data(size_t(state.range(0)), 0x42);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(data));
    state.SetBytesProcessed(state.iterations() * int64_t(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_SteeringDecision(benchmark::State &state)
{
    iohost::SteeringPolicy policy(4);
    sim::Random rng(9);
    std::vector<std::pair<uint32_t, unsigned>> flying;
    for (auto _ : state) {
        uint32_t dev = uint32_t(rng.uniformInt(0, 31));
        flying.emplace_back(dev, policy.steer(dev));
        if (flying.size() > 16) {
            auto [d, w] = flying.front();
            flying.erase(flying.begin());
            policy.complete(d, w);
        }
    }
}
BENCHMARK(BM_SteeringDecision);

} // namespace

BENCHMARK_MAIN();
