/**
 * @file
 * Microbenchmark for the DES + network hot path: raw event
 * schedule/fire throughput, cancellation churn (retransmit-timer
 * pattern), and frame allocation throughput.  Printed as plain
 * `name: value` lines so CI logs keep a perf trajectory across PRs.
 *
 * The interesting costs are per-event callback storage (heap closure
 * vs small-buffer), per-event handle state, and per-frame payload
 * allocation; all three dominate end-to-end bench wall-clock because
 * every simulated packet crosses the event queue several times.
 */
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "telemetry/telemetry.hpp"

using namespace vrio;
using sim::EventQueue;
using sim::Tick;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Schedule-and-fire throughput with small lambda captures. */
double
benchScheduleFire(uint64_t total)
{
    EventQueue eq;
    uint64_t fired = 0;
    const unsigned batch = 512;
    auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (unsigned i = 0; i < batch; ++i)
            eq.schedule(Tick(i), [&fired]() { ++fired; });
        eq.runToCompletion();
    }
    return double(fired) / secondsSince(t0);
}

/**
 * Schedule-and-fire with a fat capture (mimics the link/NIC closures
 * that carry a frame pointer plus bookkeeping).
 */
double
benchScheduleFireFatCapture(uint64_t total)
{
    EventQueue eq;
    uint64_t fired = 0;
    struct Fat
    {
        void *a = nullptr;
        void *b = nullptr;
        uint64_t c = 0;
        uint64_t d = 0;
    } fat;
    const unsigned batch = 512;
    auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (unsigned i = 0; i < batch; ++i) {
            eq.schedule(Tick(i), [&fired, fat]() {
                fired += 1 + uint64_t(fat.a != nullptr);
            });
        }
        eq.runToCompletion();
    }
    return double(fired) / secondsSince(t0);
}

/**
 * Retransmission-timer pattern: arm a long timer per "request",
 * complete the request quickly (cancel the timer), repeat.  The seed
 * queue kept each cancelled closure in the heap until its tick was
 * reached, so this is where lazy-deletion compaction pays off.
 */
double
benchCancelChurn(uint64_t total, size_t *peak_heap)
{
    EventQueue eq;
    uint64_t done = 0;
    *peak_heap = 0;
    const unsigned batch = 512;
    const Tick timeout = Tick(10) * sim::kMillisecond;
    auto t0 = std::chrono::steady_clock::now();
    while (done < total) {
        std::vector<sim::EventHandle> timers;
        timers.reserve(batch);
        for (unsigned i = 0; i < batch; ++i)
            timers.push_back(eq.schedule(timeout, []() {}));
        for (auto &h : timers)
            h.cancel();
        done += batch;
        // One real event so simulated time advances a little.
        eq.schedule(Tick(1) * sim::kMicrosecond, []() {});
        eq.runUntil(eq.now() + Tick(2) * sim::kMicrosecond);
    }
    double rate = double(done) / secondsSince(t0);
    // All cancelled timers are still ticks away from expiring; a
    // compacting queue reports a small heap here, the seed reports
    // ~total entries resident.
    *peak_heap = size_t(eq.empty() ? 0 : 1);
    return rate;
}

/**
 * Same-tick batch firing: many events share each tick (bursty arrival
 * pattern — a TSO chunk's segments, a poll batch's completions).
 * runUntil() pops the whole tick cohort in one pass instead of
 * re-entering the scheduler loop per event; this measures that path.
 */
double
benchSameTickBatch(uint64_t total)
{
    EventQueue eq;
    uint64_t fired = 0;
    const unsigned cohort = 64; ///< events per tick
    const unsigned ticks = 8;
    auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (unsigned t = 1; t <= ticks; ++t)
            for (unsigned i = 0; i < cohort; ++i)
                eq.schedule(Tick(t), [&fired]() { ++fired; });
        eq.runToCompletion();
    }
    return double(fired) / secondsSince(t0);
}

/**
 * Schedule-and-fire with telemetry attached: the event queue bumps
 * its fired counter + per-tick/depth histograms, and an armed tracer
 * takes one instant per batch.  The delta against the plain row is
 * the *armed* telemetry cost; the <2% contract (DESIGN.md §12) is on
 * the disabled path, which the plain row exercises.
 */
double
benchScheduleFireTelemetry(uint64_t total)
{
    telemetry::Hub hub;
    EventQueue eq;
    eq.attachTelemetry(&hub.metrics.counter("sim.events.fired"),
                       &hub.metrics.histogram("sim.events.per_tick"),
                       &hub.metrics.histogram("sim.events.depth"));
    hub.tracer.enable();
    uint16_t track = hub.tracer.intern("micro");
    uint16_t name = hub.tracer.intern("micro.batch");
    uint64_t fired = 0;
    const unsigned batch = 512;
    auto t0 = std::chrono::steady_clock::now();
    while (fired < total) {
        for (unsigned i = 0; i < batch; ++i)
            eq.schedule(Tick(i), [&fired]() { ++fired; });
        eq.runToCompletion();
        if (hub.tracer.enabled())
            hub.tracer.instant(track, name, eq.now(),
                               telemetry::cat::kSim, fired);
    }
    return double(fired) / secondsSince(t0);
}

/** Frame build/drop throughput with a ring-sized live window. */
double
benchFrameChurn(uint64_t total)
{
    net::EtherHeader eh;
    eh.src = net::MacAddress::local(1);
    eh.dst = net::MacAddress::local(2);
    eh.ether_type = uint16_t(net::EtherType::Ipv4);
    std::vector<uint8_t> payload(64, 0xab);
    std::deque<net::FramePtr> ring;
    uint64_t made = 0;
    auto t0 = std::chrono::steady_clock::now();
    while (made < total) {
        ring.push_back(net::makeFrame(eh, payload));
        if (ring.size() > 256)
            ring.pop_front();
        ++made;
    }
    return double(made) / secondsSince(t0);
}

/**
 * Sharded epoch loop at Fig 13 scale: 16 VMhost shards plus a rack
 * and an IOhost shard, each VMhost running a dense local event chain
 * (100 ns spacing) that pings the IOhost across a 3.2 us link every
 * 16th event — roughly the local-to-remote event ratio of a vRIO
 * netperf run.  The lookahead window therefore holds ~32 local
 * events per shard per epoch, which is the granularity the
 * conservative barrier has to amortize.  Identical event population
 * for every thread count; only the worker count varies.
 */
double
benchShardedEpoch(unsigned threads, uint64_t total)
{
    const unsigned hosts = 16;
    const Tick spacing = Tick(100) * sim::kNanosecond;
    const Tick link = Tick(3200) * sim::kNanosecond;

    sim::Simulation::Config sc;
    sc.seed = 42;
    sc.shards = hosts + 2;
    sc.threads = threads;
    sim::Simulation sim(sc);

    const uint32_t io_shard = hosts + 1;
    for (unsigned h = 1; h <= hosts; ++h) {
        sim.noteCrossShardLink(h, io_shard, link);
        sim.noteCrossShardLink(io_shard, h, link);
    }

    struct HostLoop
    {
        sim::Simulation *sim;
        uint32_t io_shard;
        Tick spacing, link;
        uint64_t remaining;

        void
        step()
        {
            if (remaining-- == 0)
                return;
            if ((remaining & 15) == 0) {
                // Request to the IOhost; it answers across the link.
                uint32_t back = sim::Simulation::currentShardIndex();
                sim->scheduleCross(io_shard, link, [this, back]() {
                    sim->scheduleCross(back, link, []() {});
                });
            }
            sim->events().schedule(spacing, [this]() { step(); });
        }
    };

    std::vector<HostLoop> loops(hosts);
    for (unsigned h = 0; h < hosts; ++h) {
        loops[h] = {&sim, io_shard, spacing, link, total / hosts};
        sim::ShardScope scope(sim, h + 1);
        sim.events().schedule(spacing, [&loops, h]() { loops[h].step(); });
    }

    auto &fired = sim.telemetry().metrics.counter("sim.events.fired");
    uint64_t before = fired.value();
    auto t0 = std::chrono::steady_clock::now();
    sim.runToCompletion();
    return double(fired.value() - before) / secondsSince(t0);
}

/** Resource submit/complete throughput (adds the FIFO-queue layer). */
double
benchResourceChurn(uint64_t total)
{
    EventQueue eq;
    sim::Resource res(eq, "micro");
    uint64_t done = 0;
    const unsigned batch = 256;
    auto t0 = std::chrono::steady_clock::now();
    while (done < total) {
        for (unsigned i = 0; i < batch; ++i)
            res.submit(Tick(10), [&done]() { ++done; });
        eq.runToCompletion();
    }
    return double(done) / secondsSince(t0);
}

} // namespace

int
main()
{
    const uint64_t kEvents = 4'000'000;
    const uint64_t kFrames = 2'000'000;

    double plain = benchScheduleFire(kEvents);
    std::printf("schedule_fire_events_per_sec: %.0f\n", plain);
    double telem = benchScheduleFireTelemetry(kEvents);
    std::printf("schedule_fire_telemetry_events_per_sec: %.0f\n", telem);
    std::printf("telemetry_overhead_pct: %.2f\n",
                100.0 * (plain - telem) / plain);
    std::printf("schedule_fire_fat_events_per_sec: %.0f\n",
                benchScheduleFireFatCapture(kEvents));
    size_t peak = 0;
    std::printf("cancel_churn_timers_per_sec: %.0f\n",
                benchCancelChurn(kEvents, &peak));
    std::printf("same_tick_batch_events_per_sec: %.0f\n",
                benchSameTickBatch(kEvents));
    std::printf("resource_jobs_per_sec: %.0f\n",
                benchResourceChurn(kEvents / 2));
    std::printf("frames_per_sec: %.0f\n", benchFrameChurn(kFrames));

    // Fig 13-scale parallel sweep.  Speedups are meaningful only up
    // to the machine's core count, so print that alongside; a 1-core
    // CI runner will legitimately show ~1.0x across the row.
    std::printf("hardware_concurrency: %u\n",
                std::thread::hardware_concurrency());
    double base = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        double rate = benchShardedEpoch(threads, kEvents / 2);
        if (threads == 1)
            base = rate;
        std::printf("sharded_epoch_t%u_events_per_sec: %.0f\n", threads,
                    rate);
        std::printf("sharded_epoch_t%u_speedup: %.2f\n", threads,
                    rate / base);
    }
    return 0;
}
