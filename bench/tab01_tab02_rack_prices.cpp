/**
 * @file
 * Reproduces Table 1 (Dell R930 per-server price, components and
 * throughput) and Table 2 (overall Elvis vs vRIO rack prices) from
 * the paper's published component prices.
 */
#include <cstdio>

#include "cost/rack_cost.hpp"
#include "stats/table.hpp"
#include "util/strutil.hpp"

using namespace vrio;

int
main()
{
    cost::ComponentPrices prices;

    stats::Table t1("Table 1: Dell R930 per-server price, components "
                    "and throughput");
    t1.setHeader({"component", "elvis", "vmhost", "light iohost",
                  "heavy iohost"});
    const cost::ServerConfig servers[] = {
        cost::elvisServer(), cost::vrioVmHost(), cost::lightIoHost(),
        cost::heavyIoHost()};

    auto row = [&](const char *label, auto get) {
        std::vector<std::string> cells{label};
        for (const auto &s : servers)
            cells.push_back(get(s));
        t1.addRow(cells);
    };
    row("18-core CPUs", [](const auto &s) {
        return std::to_string(s.cpus);
    });
    row("8GB DIMMs", [](const auto &s) {
        return std::to_string(s.dram_8gb);
    });
    row("16GB DIMMs", [](const auto &s) {
        return std::to_string(s.dram_16gb);
    });
    row("10Gbps NIC DP", [](const auto &s) {
        return std::to_string(s.nic_10g);
    });
    row("40Gbps NIC DP", [](const auto &s) {
        return std::to_string(s.nic_40g);
    });
    row("memory [GB]", [](const auto &s) {
        return std::to_string(s.memoryGb());
    });
    row("total price", [&](const auto &s) {
        return strFormat("$%.1fK", s.price(prices) / 1000.0);
    });
    row("total Gbps", [](const auto &s) {
        return strFormat("%.2f", s.totalGbps());
    });
    // Required Gbps per Section 3: VMhosts carry 1.5x an Elvis
    // server's VM load; the IOhost carries 2x the VMhosts' traffic.
    double elvis_req = cost::requiredGbps(72);
    double vmhost_req = elvis_req * 1.5;
    double light_req = 2 * 2 * vmhost_req;
    double heavy_req = 2 * light_req;
    t1.addRow({"required Gbps", strFormat("%.2f", elvis_req),
               strFormat("%.2f", vmhost_req),
               strFormat("%.2f", light_req),
               strFormat("%.2f", heavy_req)});
    std::printf("%s\n", t1.toString().c_str());
    std::printf("paper: $44.5K / $47.0K / $26.0K / $44.2K; "
                "40 / 80 / 160 / 320 Gbps; required 26.72 / 40.08 / "
                "160.31 / 320.63.\n\n");

    stats::Table t2("Table 2: overall Elvis vs vRIO rack prices");
    t2.setHeader({"setup", "elvis servers", "vrio servers",
                  "elvis price", "vrio price", "diff"});
    for (unsigned n : {3u, 6u}) {
        auto elvis = cost::elvisRack(n);
        auto vrio_setup = cost::vrioRack(n);
        double ep = elvis.price(prices);
        double vp = vrio_setup.price(prices);
        t2.addRow({strFormat("R930 x %u", n), std::to_string(n),
                   vrio_setup.name.substr(5),
                   strFormat("$%.1fK", ep / 1000.0),
                   strFormat("$%.1fK", vp / 1000.0),
                   strFormat("%+.0f%%", (vp / ep - 1.0) * 100.0)});
    }
    std::printf("%s\n", t2.toString().c_str());
    std::printf("paper: $133.4K vs $120.0K (-10%%); $266.9K vs $232.3K "
                "(-13%%).\n");
    return 0;
}
