/**
 * @file
 * Reproduces Table 3: exits and interrupts induced by one
 * request-response transaction under each virtual I/O model.  Unlike
 * the paper's qualitative table, these counts are *measured* by the
 * instrumented simulator executing a single transaction.
 */
#include <cstdio>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;

    stats::Table table(
        "Table 3: events per request-response (measured)");
    table.setHeader({"I/O model", "sync exits", "guest intrpts",
                     "intrpt injection", "host intrpts", "IOhost intrpts",
                     "sum"});

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Vrio,
                               ModelKind::Elvis, ModelKind::VrioNoPoll,
                               ModelKind::Baseline};

    for (ModelKind kind : kinds) {
        bench::Experiment exp(kind, 1, opt);
        exp.settle();
        exp.model->guest(0).vm().events() = {};
        uint64_t iohost_before = exp.model->iohostInterrupts();

        auto &gen = exp.rack->generator(0);
        unsigned session = gen.newSession();
        auto &guest = exp.model->guest(0);
        bool done = false;
        guest.setNetHandler([&](Bytes, net::MacAddress src, uint64_t) {
            guest.sendNet(src, Bytes(1, 1));
        });
        gen.setHandler(session,
                       [&](Bytes, net::MacAddress, uint64_t) {
                           done = true;
                       });
        gen.send(session, guest.mac(), Bytes(1, 1));
        exp.sim->runUntil(exp.sim->now() +
                          sim::Tick(50) * sim::kMillisecond);
        if (!done)
            std::fprintf(stderr, "warning: transaction did not finish\n");

        hv::IoEventCounts e = exp.model->guest(0).vm().events();
        uint64_t iohost = exp.model->iohostInterrupts() - iohost_before;
        uint64_t sum = e.sum() + iohost;
        table.addRow({models::modelKindName(kind),
                      std::to_string(e.sync_exits),
                      std::to_string(e.guest_interrupts),
                      std::to_string(e.injections),
                      std::to_string(e.host_interrupts),
                      std::to_string(iohost), std::to_string(sum)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("paper rows: optimum 0/2/0/0/- (2); vrio 0/2/0/0/0 (2); "
                "elvis 0/2/0/2/- (4);\n"
                "vrio w/o poll 0/2/0/0/4 (6); baseline 3/2/2/2/- (9).\n");
    return 0;
}
