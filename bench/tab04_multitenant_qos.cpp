/**
 * @file
 * Table 4 extension (DESIGN.md §17): per-tenant tail latency under a
 * noisy neighbor, with the multi-tenant QoS subsystem off vs on.
 *
 * One rack IOhost serves N VMs driven by open-loop bounded-Pareto
 * block arrivals (workloads::OpenLoopBlock).  VM 0 is the deliberate
 * noisy neighbor at a multiple of every other tenant's rate; the rest
 * are well-behaved victims with connection churn and a latency SLO.
 *
 *   off — the historical FIFO fan-out: the noisy tenant's bursts
 *         queue ahead of everyone in the RX rings and the victims pay
 *         the p99/p999 price for traffic they didn't send.
 *   on  — cfg.rack.qos: weighted-fair queueing caps the noisy
 *         tenant at its share, the deadline lane promotes victims
 *         whose SLO slack is exhausted, and admission control sheds
 *         the over-budget tenant once aggregate depth crosses the
 *         high-water mark.
 *
 * Reported per tenant: completed ops, mean, p99/p999 (interpolated —
 * stats::Histogram::percentileInterpolated), SLO violation rate; per
 * cell: scheduler counters (qos.sched.deferrals, qos.admission.shed,
 * promotions) and aggregate throughput.  Expected shape: victim p99
 * improves >= 2x with QoS on while aggregate throughput stays within
 * 10% (the shed load was beyond capacity either way), and the noisy
 * tenant — not the victims — absorbs the deferrals and sheds.
 *
 * Env knobs: VRIO_TAB04_MT_VMS (tenant count, >= 2),
 * VRIO_TAB04_MT_RATE (victim req/s), VRIO_TAB04_MT_NOISE (noisy
 * neighbor's rate multiple).
 */
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common.hpp"
#include "interpose/services.hpp"
#include "models/vrio.hpp"
#include "workloads/open_loop.hpp"

using namespace vrio;
using models::ModelKind;

namespace {

unsigned
vmCount()
{
    if (const char *env = std::getenv("VRIO_TAB04_MT_VMS"); env && *env) {
        long n = std::atol(env);
        if (n >= 2)
            return unsigned(n);
    }
    return 4;
}

double
victimRate()
{
    if (const char *env = std::getenv("VRIO_TAB04_MT_RATE"); env && *env) {
        double r = std::atof(env);
        if (r > 0)
            return r;
    }
    return 15000;
}

double
noiseMultiple()
{
    if (const char *env = std::getenv("VRIO_TAB04_MT_NOISE");
        env && *env) {
        double m = std::atof(env);
        if (m >= 1)
            return m;
    }
    return 8;
}

constexpr sim::Tick kVictimSlo = sim::Tick(500) * sim::kMicrosecond;

struct TenantRow
{
    uint64_t ops = 0;
    uint64_t overflows = 0;
    uint64_t churns = 0;
    uint64_t errors = 0;
    double mean_us = 0;
    double p99_us = 0;
    double p999_us = 0;
};

struct QosCell
{
    std::vector<TenantRow> tenants;
    stats::Histogram victim_latency; ///< merged across victims
    double total_ops_per_sec = 0;
    uint64_t sheds = 0;
    uint64_t deferrals = 0;
    uint64_t promotions = 0;
    uint64_t slo_violations = 0;
};

QosCell
runCell(bool qos_on)
{
    const unsigned n_vms = vmCount();
    bench::SweepOptions opt;
    opt.vmhosts = 2;
    // One IOhost worker: the fan-out itself is the contended
    // resource, which is the regime QoS scheduling is for.
    opt.sidecores = 1;
    opt.seed = 97;
    std::vector<std::unique_ptr<interpose::Chain>> chains;
    opt.tweak = [qos_on, n_vms, &chains](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.vrio_via_switch = true;
        mc.rack.iohosts = 1;
        // Per-tenant encryption at rest on the IOhost (AES-NI-class
        // rate).  This is what makes the *worker* — not the 10 Gbps
        // links — the contended resource: a 4KB write costs ~9 usec
        // of worker time but only ~3 usec of wire time, so the noisy
        // tenant's flood piles up exactly where the QoS scheduler
        // sits instead of in the network.
        mc.chain_factory = [&chains](uint32_t,
                                     bool is_block) -> interpose::Chain * {
            if (!is_block)
                return nullptr;
            Bytes key(32, 0x7c);
            auto chain = std::make_unique<interpose::Chain>();
            chain->append(std::make_unique<interpose::EncryptionService>(
                key, /*cycles_per_byte=*/4.0));
            chains.push_back(std::move(chain));
            return chains.back().get();
        };
        if (qos_on) {
            mc.rack.qos.enabled = true;
            // Equal weights: the contract is fair shares, and the
            // noisy tenant is noisy by rate, not by entitlement.
            mc.rack.qos.default_weight = 1.0;
            // Admission headroom sized so a victim's own Pareto burst
            // (tens of requests) never crosses its shed line — only a
            // tenant with a *persistent* backlog (the aggressor) does.
            // A shed costs that tenant a client RTO (~10 ms), so the
            // shed line is the difference between trimming the flood
            // and handing victims a retransmit tail.
            mc.rack.qos.high_water = 96;
            mc.rack.qos.tenant_floor = 48;
            mc.rack.qos.slos.assign(n_vms, kVictimSlo);
            mc.rack.qos.slos[0] = 0; // the aggressor gets no SLO
        }
    };

    bench::Experiment exp(ModelKind::Vrio, n_vms, opt);
    exp.settle();
    auto *vm = dynamic_cast<models::VrioModel *>(exp.model);

    std::vector<std::unique_ptr<workloads::OpenLoopBlock>> wls;
    for (unsigned v = 0; v < n_vms; ++v) {
        workloads::OpenLoopBlock::Config cfg;
        cfg.rate = v == 0 ? victimRate() * noiseMultiple()
                          : victimRate();
        if (v == 0) {
            // The aggressor streams writes — with encryption at rest
            // they carry the maximum worker cycles per request, which
            // is exactly the traffic that starves small-I/O tenants
            // behind a FIFO fan-out.  It keeps the default
            // heavy-tailed arrivals (alpha 1.5): sustained bursts far
            // above its fair share.
            cfg.write_fraction = 1.0;
        } else {
            // Victims burst too, but within their own share — so any
            // milliseconds they see come from the neighbor, not from
            // queueing behind themselves.
            cfg.pareto_alpha = 2.5;
            cfg.pareto_bound = 100;
        }
        // Victims model real tenant sessions: heavy-tailed arrivals
        // plus connection turnover.  The aggressor is one immortal
        // firehose connection.
        cfg.churn_ops_mean = v == 0 ? 0 : 400;
        wls.push_back(std::make_unique<workloads::OpenLoopBlock>(
            exp.model->guest(v), exp.sim->random().split(), cfg));
        wls.back()->start();
    }

    exp.sim->runUntil(exp.sim->now() + opt.warmup);
    for (auto &wl : wls)
        wl->resetStats();
    exp.sim->runUntil(exp.sim->now() + opt.measure);

    QosCell out;
    for (unsigned v = 0; v < n_vms; ++v) {
        TenantRow row;
        row.ops = wls[v]->opsCompleted();
        row.overflows = wls[v]->overflows();
        row.churns = wls[v]->churns();
        row.errors = wls[v]->ioErrors();
        const stats::Histogram &h = wls[v]->latencyUs();
        row.mean_us = h.mean();
        row.p99_us = h.percentileInterpolated(99.0);
        row.p999_us = h.percentileInterpolated(99.9);
        out.tenants.push_back(row);
        out.total_ops_per_sec += wls[v]->opsPerSec(*exp.sim);
        if (v != 0)
            bench::mergeHistogram(out.victim_latency, h);
    }
    auto &hv = vm->rackHypervisor(0);
    out.sheds = hv.qosSheds();
    out.deferrals = hv.qosDeferrals();
    out.promotions = hv.qosPromotions();
    out.slo_violations = hv.qosSloViolations();
    for (auto &wl : wls)
        wl->stop();
    return out;
}

} // namespace

int
main()
{
    const unsigned n_vms = vmCount();
    bench::SweepRunner runner;
    auto off = runner.defer<QosCell>("tab04mt qos-off",
                                     []() { return runCell(false); });
    auto on = runner.defer<QosCell>("tab04mt qos-on",
                                    []() { return runCell(true); });
    runner.run();

    stats::Table table(
        "Table 4 (multi-tenant): per-tenant latency [usec] under a "
        "noisy neighbor (tenant 0 at " +
        std::to_string(unsigned(noiseMultiple())) +
        "x the victim rate)");
    table.setHeader({"tenant", "ops", "mean", "p99", "p999", "drop",
                     "churn"});
    for (unsigned v = 0; v < n_vms; ++v) {
        const struct
        {
            const char *suffix;
            const QosCell *c;
        } cells[] = {{"/off", off.get()}, {"/on", on.get()}};
        for (const auto &cell : cells) {
            const TenantRow &r = cell.c->tenants[v];
            std::string name = (v == 0 ? "noisy0" : "victim") +
                               std::string(v == 0 ? "" : std::to_string(v)) +
                               cell.suffix;
            table.addRow(name,
                         {double(r.ops), r.mean_us, r.p99_us, r.p999_us,
                          double(r.overflows), double(r.churns)},
                         1);
        }
    }

    stats::Table summary("QoS scheduler accounting (victim SLO " +
                         std::to_string(unsigned(
                             sim::ticksToMicros(kVictimSlo))) +
                         " usec)");
    summary.setHeader({"mode", "agg_kops_s", "victim_p99", "shed",
                       "defer", "promote", "slo_viol"});
    const struct
    {
        const char *name;
        const QosCell *c;
    } rows[] = {{"off", off.get()}, {"on", on.get()}};
    for (const auto &r : rows) {
        summary.addRow(
            r.name,
            {r.c->total_ops_per_sec / 1e3,
             r.c->victim_latency.percentileInterpolated(99.0),
             double(r.c->sheds), double(r.c->deferrals),
             double(r.c->promotions), double(r.c->slo_violations)},
            1);
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("%s\n", summary.toString().c_str());

    double p99_off = off->victim_latency.percentileInterpolated(99.0);
    double p99_on = on->victim_latency.percentileInterpolated(99.0);
    double agg_ratio =
        off->total_ops_per_sec > 0
            ? on->total_ops_per_sec / off->total_ops_per_sec
            : 0;
    std::printf(
        "expected shape: weighted-fair queueing + the deadline lane "
        "cap the noisy tenant at its share, so victim p99 collapses "
        "versus FIFO while the aggressor absorbs the sheds and "
        "deferrals; aggregate throughput holds (the shed load was "
        "past capacity in both cells).\n");
    std::printf("acceptance: victim p99 improves >= 2x: %s "
                "(%.1f -> %.1f usec, %.2fx); aggregate throughput "
                "within 10%%: %s (ratio %.3f)\n",
                p99_off >= 2.0 * p99_on ? "yes" : "NO", p99_off,
                p99_on, p99_on > 0 ? p99_off / p99_on : 0,
                agg_ratio >= 0.9 ? "yes" : "NO", agg_ratio);
    return 0;
}
