/**
 * @file
 * Reproduces Table 4: Netperf RR tail latency with one VM.
 *
 * Shape target (mixed results, per the paper): elvis has lower
 * 99.9/99.99 percentiles than vRIO, but vRIO has a lower 99.999% and
 * maximum — elvis's critical path crosses host interrupt context
 * (rare, very long stalls) while vRIO's crosses the IOhost worker
 * (more frequent, shorter disturbances).
 *
 * VRIO_TAB04_INTERP=1 appends a second table using
 * stats::Histogram::percentileInterpolated — linear interpolation
 * within the winning bucket instead of the bucket's upper edge, so
 * sparse tails read a point estimate rather than a step function.
 * Off by default (the golden snapshot covers the classic table only).
 */
#include <cstdio>
#include <cstdlib>

#include "common.hpp"

using namespace vrio;
using models::ModelKind;

int
main()
{
    bench::SweepOptions opt;
    // Tail percentiles need the long run; smoke mode keeps the
    // shrunk default window (fewer samples, still deterministic).
    if (!bench::smokeMode())
        opt.measure = sim::Tick(4) * sim::kSecond;

    stats::Table table("Table 4: tail latency [usec] for one VM");
    table.setHeader(
        {"percentile", "optimum", "elvis", "vrio"});

    const ModelKind kinds[] = {ModelKind::Optimum, ModelKind::Elvis,
                               ModelKind::Vrio};
    std::vector<stats::Histogram> hists(3);
    for (size_t k = 0; k < 3; ++k) {
        auto res = bench::runNetperfRr(kinds[k], 1, opt);
        hists[k] = std::move(res.latency_us);
    }

    const double percentiles[] = {99.9, 99.99, 99.999, 100.0};
    const char *names[] = {"99.9%", "99.99%", "99.999%", "100%"};
    for (int p = 0; p < 4; ++p) {
        table.addRow(names[p],
                     {hists[0].percentile(percentiles[p]),
                      hists[1].percentile(percentiles[p]),
                      hists[2].percentile(percentiles[p])},
                     0);
    }

    std::printf("%s\n", table.toString().c_str());

    if (const char *env = std::getenv("VRIO_TAB04_INTERP");
        env && *env && *env != '0') {
        stats::Table interp(
            "Table 4 (interpolated percentiles) [usec]");
        interp.setHeader({"percentile", "optimum", "elvis", "vrio"});
        for (int p = 0; p < 4; ++p) {
            interp.addRow(
                names[p],
                {hists[0].percentileInterpolated(percentiles[p]),
                 hists[1].percentileInterpolated(percentiles[p]),
                 hists[2].percentileInterpolated(percentiles[p])},
                1);
        }
        std::printf("%s\n", interp.toString().c_str());
    }

    std::printf("paper: optimum 35/42/214/227; elvis 53/71/466/480; "
                "vrio 60/156/258/274.\n"
                "shape: elvis wins at 99.9/99.99; vrio wins at 99.999 "
                "and max.\n");
    return 0;
}
