file(REMOVE_RECURSE
  "CMakeFiles/abl_batch.dir/abl_batch.cpp.o"
  "CMakeFiles/abl_batch.dir/abl_batch.cpp.o.d"
  "abl_batch"
  "abl_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
