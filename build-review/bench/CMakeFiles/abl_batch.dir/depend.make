# Empty dependencies file for abl_batch.
# This may be replaced when dependencies are built.
