file(REMOVE_RECURSE
  "CMakeFiles/abl_channel.dir/abl_channel.cpp.o"
  "CMakeFiles/abl_channel.dir/abl_channel.cpp.o.d"
  "abl_channel"
  "abl_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
