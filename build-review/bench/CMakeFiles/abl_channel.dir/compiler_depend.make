# Empty compiler generated dependencies file for abl_channel.
# This may be replaced when dependencies are built.
