file(REMOVE_RECURSE
  "CMakeFiles/abl_energy.dir/abl_energy.cpp.o"
  "CMakeFiles/abl_energy.dir/abl_energy.cpp.o.d"
  "abl_energy"
  "abl_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
