# Empty compiler generated dependencies file for abl_energy.
# This may be replaced when dependencies are built.
