file(REMOVE_RECURSE
  "CMakeFiles/abl_mtu_sweep.dir/abl_mtu_sweep.cpp.o"
  "CMakeFiles/abl_mtu_sweep.dir/abl_mtu_sweep.cpp.o.d"
  "abl_mtu_sweep"
  "abl_mtu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mtu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
