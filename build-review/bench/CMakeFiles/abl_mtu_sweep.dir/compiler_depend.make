# Empty compiler generated dependencies file for abl_mtu_sweep.
# This may be replaced when dependencies are built.
