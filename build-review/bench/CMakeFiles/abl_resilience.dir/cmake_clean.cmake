file(REMOVE_RECURSE
  "CMakeFiles/abl_resilience.dir/abl_resilience.cpp.o"
  "CMakeFiles/abl_resilience.dir/abl_resilience.cpp.o.d"
  "abl_resilience"
  "abl_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
