# Empty compiler generated dependencies file for abl_resilience.
# This may be replaced when dependencies are built.
