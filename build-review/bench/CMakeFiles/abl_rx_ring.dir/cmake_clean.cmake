file(REMOVE_RECURSE
  "CMakeFiles/abl_rx_ring.dir/abl_rx_ring.cpp.o"
  "CMakeFiles/abl_rx_ring.dir/abl_rx_ring.cpp.o.d"
  "abl_rx_ring"
  "abl_rx_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rx_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
