# Empty compiler generated dependencies file for abl_rx_ring.
# This may be replaced when dependencies are built.
