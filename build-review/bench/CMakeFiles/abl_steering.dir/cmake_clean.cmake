file(REMOVE_RECURSE
  "CMakeFiles/abl_steering.dir/abl_steering.cpp.o"
  "CMakeFiles/abl_steering.dir/abl_steering.cpp.o.d"
  "abl_steering"
  "abl_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
