# Empty dependencies file for abl_steering.
# This may be replaced when dependencies are built.
