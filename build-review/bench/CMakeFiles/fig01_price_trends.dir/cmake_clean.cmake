file(REMOVE_RECURSE
  "CMakeFiles/fig01_price_trends.dir/fig01_price_trends.cpp.o"
  "CMakeFiles/fig01_price_trends.dir/fig01_price_trends.cpp.o.d"
  "fig01_price_trends"
  "fig01_price_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_price_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
