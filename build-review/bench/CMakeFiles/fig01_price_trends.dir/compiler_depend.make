# Empty compiler generated dependencies file for fig01_price_trends.
# This may be replaced when dependencies are built.
