file(REMOVE_RECURSE
  "CMakeFiles/fig03_ssd_consolidation.dir/fig03_ssd_consolidation.cpp.o"
  "CMakeFiles/fig03_ssd_consolidation.dir/fig03_ssd_consolidation.cpp.o.d"
  "fig03_ssd_consolidation"
  "fig03_ssd_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ssd_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
