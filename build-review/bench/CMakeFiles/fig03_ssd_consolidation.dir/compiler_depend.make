# Empty compiler generated dependencies file for fig03_ssd_consolidation.
# This may be replaced when dependencies are built.
