file(REMOVE_RECURSE
  "CMakeFiles/fig05_apachebench_polling.dir/fig05_apachebench_polling.cpp.o"
  "CMakeFiles/fig05_apachebench_polling.dir/fig05_apachebench_polling.cpp.o.d"
  "fig05_apachebench_polling"
  "fig05_apachebench_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_apachebench_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
