# Empty compiler generated dependencies file for fig05_apachebench_polling.
# This may be replaced when dependencies are built.
