file(REMOVE_RECURSE
  "CMakeFiles/fig07_netperf_rr_latency.dir/fig07_netperf_rr_latency.cpp.o"
  "CMakeFiles/fig07_netperf_rr_latency.dir/fig07_netperf_rr_latency.cpp.o.d"
  "fig07_netperf_rr_latency"
  "fig07_netperf_rr_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_netperf_rr_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
