# Empty compiler generated dependencies file for fig07_netperf_rr_latency.
# This may be replaced when dependencies are built.
