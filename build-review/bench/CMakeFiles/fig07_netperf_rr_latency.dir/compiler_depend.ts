# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_netperf_rr_latency.
