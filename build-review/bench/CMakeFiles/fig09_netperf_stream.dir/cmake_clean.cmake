file(REMOVE_RECURSE
  "CMakeFiles/fig09_netperf_stream.dir/fig09_netperf_stream.cpp.o"
  "CMakeFiles/fig09_netperf_stream.dir/fig09_netperf_stream.cpp.o.d"
  "fig09_netperf_stream"
  "fig09_netperf_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_netperf_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
