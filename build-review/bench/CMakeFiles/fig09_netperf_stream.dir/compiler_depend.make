# Empty compiler generated dependencies file for fig09_netperf_stream.
# This may be replaced when dependencies are built.
