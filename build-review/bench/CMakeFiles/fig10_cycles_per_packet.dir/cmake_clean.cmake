file(REMOVE_RECURSE
  "CMakeFiles/fig10_cycles_per_packet.dir/fig10_cycles_per_packet.cpp.o"
  "CMakeFiles/fig10_cycles_per_packet.dir/fig10_cycles_per_packet.cpp.o.d"
  "fig10_cycles_per_packet"
  "fig10_cycles_per_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cycles_per_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
