# Empty compiler generated dependencies file for fig10_cycles_per_packet.
# This may be replaced when dependencies are built.
