file(REMOVE_RECURSE
  "CMakeFiles/fig11_equal_cores.dir/fig11_equal_cores.cpp.o"
  "CMakeFiles/fig11_equal_cores.dir/fig11_equal_cores.cpp.o.d"
  "fig11_equal_cores"
  "fig11_equal_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_equal_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
