# Empty dependencies file for fig11_equal_cores.
# This may be replaced when dependencies are built.
