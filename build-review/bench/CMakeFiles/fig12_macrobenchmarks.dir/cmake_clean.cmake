file(REMOVE_RECURSE
  "CMakeFiles/fig12_macrobenchmarks.dir/fig12_macrobenchmarks.cpp.o"
  "CMakeFiles/fig12_macrobenchmarks.dir/fig12_macrobenchmarks.cpp.o.d"
  "fig12_macrobenchmarks"
  "fig12_macrobenchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_macrobenchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
