# Empty compiler generated dependencies file for fig12_macrobenchmarks.
# This may be replaced when dependencies are built.
