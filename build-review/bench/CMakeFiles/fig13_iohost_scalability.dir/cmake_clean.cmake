file(REMOVE_RECURSE
  "CMakeFiles/fig13_iohost_scalability.dir/fig13_iohost_scalability.cpp.o"
  "CMakeFiles/fig13_iohost_scalability.dir/fig13_iohost_scalability.cpp.o.d"
  "fig13_iohost_scalability"
  "fig13_iohost_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_iohost_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
