file(REMOVE_RECURSE
  "CMakeFiles/fig14_filebench_ramdisk.dir/fig14_filebench_ramdisk.cpp.o"
  "CMakeFiles/fig14_filebench_ramdisk.dir/fig14_filebench_ramdisk.cpp.o.d"
  "fig14_filebench_ramdisk"
  "fig14_filebench_ramdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_filebench_ramdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
