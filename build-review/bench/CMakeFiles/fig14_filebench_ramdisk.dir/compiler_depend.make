# Empty compiler generated dependencies file for fig14_filebench_ramdisk.
# This may be replaced when dependencies are built.
