file(REMOVE_RECURSE
  "CMakeFiles/fig15_sidecore_utilization.dir/fig15_sidecore_utilization.cpp.o"
  "CMakeFiles/fig15_sidecore_utilization.dir/fig15_sidecore_utilization.cpp.o.d"
  "fig15_sidecore_utilization"
  "fig15_sidecore_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sidecore_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
