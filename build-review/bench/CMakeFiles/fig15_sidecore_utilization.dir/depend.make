# Empty dependencies file for fig15_sidecore_utilization.
# This may be replaced when dependencies are built.
