file(REMOVE_RECURSE
  "CMakeFiles/fig16_consolidation.dir/fig16_consolidation.cpp.o"
  "CMakeFiles/fig16_consolidation.dir/fig16_consolidation.cpp.o.d"
  "fig16_consolidation"
  "fig16_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
