# Empty compiler generated dependencies file for fig16_consolidation.
# This may be replaced when dependencies are built.
