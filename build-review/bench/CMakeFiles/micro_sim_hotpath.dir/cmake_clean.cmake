file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_hotpath.dir/micro_sim_hotpath.cpp.o"
  "CMakeFiles/micro_sim_hotpath.dir/micro_sim_hotpath.cpp.o.d"
  "micro_sim_hotpath"
  "micro_sim_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
