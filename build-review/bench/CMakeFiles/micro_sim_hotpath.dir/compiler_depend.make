# Empty compiler generated dependencies file for micro_sim_hotpath.
# This may be replaced when dependencies are built.
