file(REMOVE_RECURSE
  "CMakeFiles/tab01_tab02_rack_prices.dir/tab01_tab02_rack_prices.cpp.o"
  "CMakeFiles/tab01_tab02_rack_prices.dir/tab01_tab02_rack_prices.cpp.o.d"
  "tab01_tab02_rack_prices"
  "tab01_tab02_rack_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_tab02_rack_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
