# Empty dependencies file for tab01_tab02_rack_prices.
# This may be replaced when dependencies are built.
