file(REMOVE_RECURSE
  "CMakeFiles/tab03_interrupt_accounting.dir/tab03_interrupt_accounting.cpp.o"
  "CMakeFiles/tab03_interrupt_accounting.dir/tab03_interrupt_accounting.cpp.o.d"
  "tab03_interrupt_accounting"
  "tab03_interrupt_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_interrupt_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
