# Empty compiler generated dependencies file for tab03_interrupt_accounting.
# This may be replaced when dependencies are built.
