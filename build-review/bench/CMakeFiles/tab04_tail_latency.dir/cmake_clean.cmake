file(REMOVE_RECURSE
  "CMakeFiles/tab04_tail_latency.dir/tab04_tail_latency.cpp.o"
  "CMakeFiles/tab04_tail_latency.dir/tab04_tail_latency.cpp.o.d"
  "tab04_tail_latency"
  "tab04_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
