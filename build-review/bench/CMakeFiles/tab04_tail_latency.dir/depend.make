# Empty dependencies file for tab04_tail_latency.
# This may be replaced when dependencies are built.
