file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_rack.dir/heterogeneous_rack.cpp.o"
  "CMakeFiles/heterogeneous_rack.dir/heterogeneous_rack.cpp.o.d"
  "heterogeneous_rack"
  "heterogeneous_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
