# Empty compiler generated dependencies file for heterogeneous_rack.
# This may be replaced when dependencies are built.
