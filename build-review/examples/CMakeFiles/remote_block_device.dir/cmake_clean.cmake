file(REMOVE_RECURSE
  "CMakeFiles/remote_block_device.dir/remote_block_device.cpp.o"
  "CMakeFiles/remote_block_device.dir/remote_block_device.cpp.o.d"
  "remote_block_device"
  "remote_block_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_block_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
