# Empty dependencies file for remote_block_device.
# This may be replaced when dependencies are built.
