file(REMOVE_RECURSE
  "CMakeFiles/sidecore_consolidation.dir/sidecore_consolidation.cpp.o"
  "CMakeFiles/sidecore_consolidation.dir/sidecore_consolidation.cpp.o.d"
  "sidecore_consolidation"
  "sidecore_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidecore_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
