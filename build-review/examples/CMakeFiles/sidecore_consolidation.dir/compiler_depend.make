# Empty compiler generated dependencies file for sidecore_consolidation.
# This may be replaced when dependencies are built.
