# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("sim")
subdirs("virtio")
subdirs("net")
subdirs("hv")
subdirs("block")
subdirs("crypto")
subdirs("interpose")
subdirs("transport")
subdirs("iohost")
subdirs("models")
subdirs("fault")
subdirs("workloads")
subdirs("cost")
subdirs("core")
