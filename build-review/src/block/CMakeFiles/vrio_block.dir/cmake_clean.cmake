file(REMOVE_RECURSE
  "CMakeFiles/vrio_block.dir/alignment.cpp.o"
  "CMakeFiles/vrio_block.dir/alignment.cpp.o.d"
  "CMakeFiles/vrio_block.dir/disk_scheduler.cpp.o"
  "CMakeFiles/vrio_block.dir/disk_scheduler.cpp.o.d"
  "CMakeFiles/vrio_block.dir/ram_disk.cpp.o"
  "CMakeFiles/vrio_block.dir/ram_disk.cpp.o.d"
  "CMakeFiles/vrio_block.dir/ssd_model.cpp.o"
  "CMakeFiles/vrio_block.dir/ssd_model.cpp.o.d"
  "libvrio_block.a"
  "libvrio_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
