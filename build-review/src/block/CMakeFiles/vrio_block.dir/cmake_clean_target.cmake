file(REMOVE_RECURSE
  "libvrio_block.a"
)
