# Empty dependencies file for vrio_block.
# This may be replaced when dependencies are built.
