file(REMOVE_RECURSE
  "CMakeFiles/vrio_core.dir/testbed.cpp.o"
  "CMakeFiles/vrio_core.dir/testbed.cpp.o.d"
  "libvrio_core.a"
  "libvrio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
