file(REMOVE_RECURSE
  "libvrio_core.a"
)
