# Empty dependencies file for vrio_core.
# This may be replaced when dependencies are built.
