file(REMOVE_RECURSE
  "CMakeFiles/vrio_cost.dir/pricing.cpp.o"
  "CMakeFiles/vrio_cost.dir/pricing.cpp.o.d"
  "CMakeFiles/vrio_cost.dir/rack_cost.cpp.o"
  "CMakeFiles/vrio_cost.dir/rack_cost.cpp.o.d"
  "libvrio_cost.a"
  "libvrio_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
