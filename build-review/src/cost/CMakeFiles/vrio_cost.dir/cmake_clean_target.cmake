file(REMOVE_RECURSE
  "libvrio_cost.a"
)
