# Empty compiler generated dependencies file for vrio_cost.
# This may be replaced when dependencies are built.
