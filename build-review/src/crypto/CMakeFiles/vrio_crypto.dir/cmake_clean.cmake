file(REMOVE_RECURSE
  "CMakeFiles/vrio_crypto.dir/aes.cpp.o"
  "CMakeFiles/vrio_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/vrio_crypto.dir/modes.cpp.o"
  "CMakeFiles/vrio_crypto.dir/modes.cpp.o.d"
  "libvrio_crypto.a"
  "libvrio_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
