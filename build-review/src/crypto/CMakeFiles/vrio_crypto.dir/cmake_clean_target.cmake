file(REMOVE_RECURSE
  "libvrio_crypto.a"
)
