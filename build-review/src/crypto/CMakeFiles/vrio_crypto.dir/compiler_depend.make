# Empty compiler generated dependencies file for vrio_crypto.
# This may be replaced when dependencies are built.
