file(REMOVE_RECURSE
  "CMakeFiles/vrio_fault.dir/injector.cpp.o"
  "CMakeFiles/vrio_fault.dir/injector.cpp.o.d"
  "CMakeFiles/vrio_fault.dir/plan.cpp.o"
  "CMakeFiles/vrio_fault.dir/plan.cpp.o.d"
  "libvrio_fault.a"
  "libvrio_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
