file(REMOVE_RECURSE
  "libvrio_fault.a"
)
