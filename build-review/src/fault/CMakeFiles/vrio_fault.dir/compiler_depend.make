# Empty compiler generated dependencies file for vrio_fault.
# This may be replaced when dependencies are built.
