
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/core.cpp" "src/hv/CMakeFiles/vrio_hv.dir/core.cpp.o" "gcc" "src/hv/CMakeFiles/vrio_hv.dir/core.cpp.o.d"
  "/root/repo/src/hv/vm.cpp" "src/hv/CMakeFiles/vrio_hv.dir/vm.cpp.o" "gcc" "src/hv/CMakeFiles/vrio_hv.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/vrio_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/virtio/CMakeFiles/vrio_virtio.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/vrio_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
