file(REMOVE_RECURSE
  "CMakeFiles/vrio_hv.dir/core.cpp.o"
  "CMakeFiles/vrio_hv.dir/core.cpp.o.d"
  "CMakeFiles/vrio_hv.dir/vm.cpp.o"
  "CMakeFiles/vrio_hv.dir/vm.cpp.o.d"
  "libvrio_hv.a"
  "libvrio_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
