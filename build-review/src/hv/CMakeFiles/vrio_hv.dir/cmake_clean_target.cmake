file(REMOVE_RECURSE
  "libvrio_hv.a"
)
