# Empty compiler generated dependencies file for vrio_hv.
# This may be replaced when dependencies are built.
