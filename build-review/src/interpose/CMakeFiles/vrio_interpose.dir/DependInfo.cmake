
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interpose/rle.cpp" "src/interpose/CMakeFiles/vrio_interpose.dir/rle.cpp.o" "gcc" "src/interpose/CMakeFiles/vrio_interpose.dir/rle.cpp.o.d"
  "/root/repo/src/interpose/service.cpp" "src/interpose/CMakeFiles/vrio_interpose.dir/service.cpp.o" "gcc" "src/interpose/CMakeFiles/vrio_interpose.dir/service.cpp.o.d"
  "/root/repo/src/interpose/services.cpp" "src/interpose/CMakeFiles/vrio_interpose.dir/services.cpp.o" "gcc" "src/interpose/CMakeFiles/vrio_interpose.dir/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/vrio_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/vrio_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/vrio_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/vrio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
