file(REMOVE_RECURSE
  "CMakeFiles/vrio_interpose.dir/rle.cpp.o"
  "CMakeFiles/vrio_interpose.dir/rle.cpp.o.d"
  "CMakeFiles/vrio_interpose.dir/service.cpp.o"
  "CMakeFiles/vrio_interpose.dir/service.cpp.o.d"
  "CMakeFiles/vrio_interpose.dir/services.cpp.o"
  "CMakeFiles/vrio_interpose.dir/services.cpp.o.d"
  "libvrio_interpose.a"
  "libvrio_interpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_interpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
