file(REMOVE_RECURSE
  "libvrio_interpose.a"
)
