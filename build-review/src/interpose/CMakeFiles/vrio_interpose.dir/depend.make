# Empty dependencies file for vrio_interpose.
# This may be replaced when dependencies are built.
