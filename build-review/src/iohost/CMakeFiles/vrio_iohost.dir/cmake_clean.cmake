file(REMOVE_RECURSE
  "CMakeFiles/vrio_iohost.dir/io_hypervisor.cpp.o"
  "CMakeFiles/vrio_iohost.dir/io_hypervisor.cpp.o.d"
  "CMakeFiles/vrio_iohost.dir/steering.cpp.o"
  "CMakeFiles/vrio_iohost.dir/steering.cpp.o.d"
  "libvrio_iohost.a"
  "libvrio_iohost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_iohost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
