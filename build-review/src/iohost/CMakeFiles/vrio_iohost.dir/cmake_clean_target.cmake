file(REMOVE_RECURSE
  "libvrio_iohost.a"
)
