# Empty compiler generated dependencies file for vrio_iohost.
# This may be replaced when dependencies are built.
