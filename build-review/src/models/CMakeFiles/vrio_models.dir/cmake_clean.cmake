file(REMOVE_RECURSE
  "CMakeFiles/vrio_models.dir/baseline.cpp.o"
  "CMakeFiles/vrio_models.dir/baseline.cpp.o.d"
  "CMakeFiles/vrio_models.dir/elvis.cpp.o"
  "CMakeFiles/vrio_models.dir/elvis.cpp.o.d"
  "CMakeFiles/vrio_models.dir/generator.cpp.o"
  "CMakeFiles/vrio_models.dir/generator.cpp.o.d"
  "CMakeFiles/vrio_models.dir/io_model.cpp.o"
  "CMakeFiles/vrio_models.dir/io_model.cpp.o.d"
  "CMakeFiles/vrio_models.dir/optimum.cpp.o"
  "CMakeFiles/vrio_models.dir/optimum.cpp.o.d"
  "CMakeFiles/vrio_models.dir/rack.cpp.o"
  "CMakeFiles/vrio_models.dir/rack.cpp.o.d"
  "CMakeFiles/vrio_models.dir/virtio_blk_dev.cpp.o"
  "CMakeFiles/vrio_models.dir/virtio_blk_dev.cpp.o.d"
  "CMakeFiles/vrio_models.dir/virtio_net_dev.cpp.o"
  "CMakeFiles/vrio_models.dir/virtio_net_dev.cpp.o.d"
  "CMakeFiles/vrio_models.dir/vrio.cpp.o"
  "CMakeFiles/vrio_models.dir/vrio.cpp.o.d"
  "libvrio_models.a"
  "libvrio_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
