file(REMOVE_RECURSE
  "libvrio_models.a"
)
