# Empty dependencies file for vrio_models.
# This may be replaced when dependencies are built.
