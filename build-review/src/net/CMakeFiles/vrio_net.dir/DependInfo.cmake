
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ether.cpp" "src/net/CMakeFiles/vrio_net.dir/ether.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/ether.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/vrio_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/frame_pool.cpp" "src/net/CMakeFiles/vrio_net.dir/frame_pool.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/frame_pool.cpp.o.d"
  "/root/repo/src/net/inet.cpp" "src/net/CMakeFiles/vrio_net.dir/inet.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/inet.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/vrio_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/link.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/vrio_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/mac.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/vrio_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/vrio_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/tso.cpp" "src/net/CMakeFiles/vrio_net.dir/tso.cpp.o" "gcc" "src/net/CMakeFiles/vrio_net.dir/tso.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/vrio_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/vrio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
