file(REMOVE_RECURSE
  "CMakeFiles/vrio_net.dir/ether.cpp.o"
  "CMakeFiles/vrio_net.dir/ether.cpp.o.d"
  "CMakeFiles/vrio_net.dir/frame.cpp.o"
  "CMakeFiles/vrio_net.dir/frame.cpp.o.d"
  "CMakeFiles/vrio_net.dir/frame_pool.cpp.o"
  "CMakeFiles/vrio_net.dir/frame_pool.cpp.o.d"
  "CMakeFiles/vrio_net.dir/inet.cpp.o"
  "CMakeFiles/vrio_net.dir/inet.cpp.o.d"
  "CMakeFiles/vrio_net.dir/link.cpp.o"
  "CMakeFiles/vrio_net.dir/link.cpp.o.d"
  "CMakeFiles/vrio_net.dir/mac.cpp.o"
  "CMakeFiles/vrio_net.dir/mac.cpp.o.d"
  "CMakeFiles/vrio_net.dir/nic.cpp.o"
  "CMakeFiles/vrio_net.dir/nic.cpp.o.d"
  "CMakeFiles/vrio_net.dir/switch.cpp.o"
  "CMakeFiles/vrio_net.dir/switch.cpp.o.d"
  "CMakeFiles/vrio_net.dir/tso.cpp.o"
  "CMakeFiles/vrio_net.dir/tso.cpp.o.d"
  "libvrio_net.a"
  "libvrio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
