file(REMOVE_RECURSE
  "libvrio_net.a"
)
