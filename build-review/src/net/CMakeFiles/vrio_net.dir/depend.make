# Empty dependencies file for vrio_net.
# This may be replaced when dependencies are built.
