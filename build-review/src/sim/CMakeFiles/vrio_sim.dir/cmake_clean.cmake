file(REMOVE_RECURSE
  "CMakeFiles/vrio_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vrio_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vrio_sim.dir/random.cpp.o"
  "CMakeFiles/vrio_sim.dir/random.cpp.o.d"
  "CMakeFiles/vrio_sim.dir/resource.cpp.o"
  "CMakeFiles/vrio_sim.dir/resource.cpp.o.d"
  "CMakeFiles/vrio_sim.dir/simulation.cpp.o"
  "CMakeFiles/vrio_sim.dir/simulation.cpp.o.d"
  "libvrio_sim.a"
  "libvrio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
