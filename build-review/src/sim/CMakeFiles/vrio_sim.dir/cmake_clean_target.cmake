file(REMOVE_RECURSE
  "libvrio_sim.a"
)
