# Empty dependencies file for vrio_sim.
# This may be replaced when dependencies are built.
