
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/vrio_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/vrio_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/registry.cpp" "src/stats/CMakeFiles/vrio_stats.dir/registry.cpp.o" "gcc" "src/stats/CMakeFiles/vrio_stats.dir/registry.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/vrio_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/vrio_stats.dir/table.cpp.o.d"
  "/root/repo/src/stats/time_series.cpp" "src/stats/CMakeFiles/vrio_stats.dir/time_series.cpp.o" "gcc" "src/stats/CMakeFiles/vrio_stats.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
