file(REMOVE_RECURSE
  "CMakeFiles/vrio_stats.dir/histogram.cpp.o"
  "CMakeFiles/vrio_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/vrio_stats.dir/registry.cpp.o"
  "CMakeFiles/vrio_stats.dir/registry.cpp.o.d"
  "CMakeFiles/vrio_stats.dir/table.cpp.o"
  "CMakeFiles/vrio_stats.dir/table.cpp.o.d"
  "CMakeFiles/vrio_stats.dir/time_series.cpp.o"
  "CMakeFiles/vrio_stats.dir/time_series.cpp.o.d"
  "libvrio_stats.a"
  "libvrio_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
