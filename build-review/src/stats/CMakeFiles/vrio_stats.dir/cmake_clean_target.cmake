file(REMOVE_RECURSE
  "libvrio_stats.a"
)
