# Empty dependencies file for vrio_stats.
# This may be replaced when dependencies are built.
