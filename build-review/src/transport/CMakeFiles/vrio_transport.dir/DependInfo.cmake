
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/control.cpp" "src/transport/CMakeFiles/vrio_transport.dir/control.cpp.o" "gcc" "src/transport/CMakeFiles/vrio_transport.dir/control.cpp.o.d"
  "/root/repo/src/transport/encap.cpp" "src/transport/CMakeFiles/vrio_transport.dir/encap.cpp.o" "gcc" "src/transport/CMakeFiles/vrio_transport.dir/encap.cpp.o.d"
  "/root/repo/src/transport/header.cpp" "src/transport/CMakeFiles/vrio_transport.dir/header.cpp.o" "gcc" "src/transport/CMakeFiles/vrio_transport.dir/header.cpp.o.d"
  "/root/repo/src/transport/reassembly.cpp" "src/transport/CMakeFiles/vrio_transport.dir/reassembly.cpp.o" "gcc" "src/transport/CMakeFiles/vrio_transport.dir/reassembly.cpp.o.d"
  "/root/repo/src/transport/retransmit.cpp" "src/transport/CMakeFiles/vrio_transport.dir/retransmit.cpp.o" "gcc" "src/transport/CMakeFiles/vrio_transport.dir/retransmit.cpp.o.d"
  "/root/repo/src/transport/segmenter.cpp" "src/transport/CMakeFiles/vrio_transport.dir/segmenter.cpp.o" "gcc" "src/transport/CMakeFiles/vrio_transport.dir/segmenter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/vrio_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/vrio_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/vrio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
