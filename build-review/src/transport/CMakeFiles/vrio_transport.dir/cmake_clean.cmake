file(REMOVE_RECURSE
  "CMakeFiles/vrio_transport.dir/control.cpp.o"
  "CMakeFiles/vrio_transport.dir/control.cpp.o.d"
  "CMakeFiles/vrio_transport.dir/encap.cpp.o"
  "CMakeFiles/vrio_transport.dir/encap.cpp.o.d"
  "CMakeFiles/vrio_transport.dir/header.cpp.o"
  "CMakeFiles/vrio_transport.dir/header.cpp.o.d"
  "CMakeFiles/vrio_transport.dir/reassembly.cpp.o"
  "CMakeFiles/vrio_transport.dir/reassembly.cpp.o.d"
  "CMakeFiles/vrio_transport.dir/retransmit.cpp.o"
  "CMakeFiles/vrio_transport.dir/retransmit.cpp.o.d"
  "CMakeFiles/vrio_transport.dir/segmenter.cpp.o"
  "CMakeFiles/vrio_transport.dir/segmenter.cpp.o.d"
  "libvrio_transport.a"
  "libvrio_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
