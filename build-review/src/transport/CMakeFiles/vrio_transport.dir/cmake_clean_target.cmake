file(REMOVE_RECURSE
  "libvrio_transport.a"
)
