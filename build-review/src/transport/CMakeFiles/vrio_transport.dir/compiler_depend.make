# Empty compiler generated dependencies file for vrio_transport.
# This may be replaced when dependencies are built.
