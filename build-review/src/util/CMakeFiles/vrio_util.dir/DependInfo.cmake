
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/byte_buffer.cpp" "src/util/CMakeFiles/vrio_util.dir/byte_buffer.cpp.o" "gcc" "src/util/CMakeFiles/vrio_util.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/util/CMakeFiles/vrio_util.dir/crc32.cpp.o" "gcc" "src/util/CMakeFiles/vrio_util.dir/crc32.cpp.o.d"
  "/root/repo/src/util/hexdump.cpp" "src/util/CMakeFiles/vrio_util.dir/hexdump.cpp.o" "gcc" "src/util/CMakeFiles/vrio_util.dir/hexdump.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/vrio_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/vrio_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/strutil.cpp" "src/util/CMakeFiles/vrio_util.dir/strutil.cpp.o" "gcc" "src/util/CMakeFiles/vrio_util.dir/strutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
