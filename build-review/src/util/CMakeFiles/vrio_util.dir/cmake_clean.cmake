file(REMOVE_RECURSE
  "CMakeFiles/vrio_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/vrio_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/vrio_util.dir/crc32.cpp.o"
  "CMakeFiles/vrio_util.dir/crc32.cpp.o.d"
  "CMakeFiles/vrio_util.dir/hexdump.cpp.o"
  "CMakeFiles/vrio_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/vrio_util.dir/logging.cpp.o"
  "CMakeFiles/vrio_util.dir/logging.cpp.o.d"
  "CMakeFiles/vrio_util.dir/strutil.cpp.o"
  "CMakeFiles/vrio_util.dir/strutil.cpp.o.d"
  "libvrio_util.a"
  "libvrio_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
