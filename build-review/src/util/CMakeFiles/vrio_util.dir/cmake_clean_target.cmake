file(REMOVE_RECURSE
  "libvrio_util.a"
)
