# Empty dependencies file for vrio_util.
# This may be replaced when dependencies are built.
