
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virtio/guest_memory.cpp" "src/virtio/CMakeFiles/vrio_virtio.dir/guest_memory.cpp.o" "gcc" "src/virtio/CMakeFiles/vrio_virtio.dir/guest_memory.cpp.o.d"
  "/root/repo/src/virtio/virtio_blk.cpp" "src/virtio/CMakeFiles/vrio_virtio.dir/virtio_blk.cpp.o" "gcc" "src/virtio/CMakeFiles/vrio_virtio.dir/virtio_blk.cpp.o.d"
  "/root/repo/src/virtio/virtio_net.cpp" "src/virtio/CMakeFiles/vrio_virtio.dir/virtio_net.cpp.o" "gcc" "src/virtio/CMakeFiles/vrio_virtio.dir/virtio_net.cpp.o.d"
  "/root/repo/src/virtio/virtqueue.cpp" "src/virtio/CMakeFiles/vrio_virtio.dir/virtqueue.cpp.o" "gcc" "src/virtio/CMakeFiles/vrio_virtio.dir/virtqueue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
