file(REMOVE_RECURSE
  "CMakeFiles/vrio_virtio.dir/guest_memory.cpp.o"
  "CMakeFiles/vrio_virtio.dir/guest_memory.cpp.o.d"
  "CMakeFiles/vrio_virtio.dir/virtio_blk.cpp.o"
  "CMakeFiles/vrio_virtio.dir/virtio_blk.cpp.o.d"
  "CMakeFiles/vrio_virtio.dir/virtio_net.cpp.o"
  "CMakeFiles/vrio_virtio.dir/virtio_net.cpp.o.d"
  "CMakeFiles/vrio_virtio.dir/virtqueue.cpp.o"
  "CMakeFiles/vrio_virtio.dir/virtqueue.cpp.o.d"
  "libvrio_virtio.a"
  "libvrio_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
