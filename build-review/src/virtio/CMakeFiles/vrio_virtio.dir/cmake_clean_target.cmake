file(REMOVE_RECURSE
  "libvrio_virtio.a"
)
