# Empty dependencies file for vrio_virtio.
# This may be replaced when dependencies are built.
