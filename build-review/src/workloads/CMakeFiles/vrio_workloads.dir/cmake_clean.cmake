file(REMOVE_RECURSE
  "CMakeFiles/vrio_workloads.dir/filebench.cpp.o"
  "CMakeFiles/vrio_workloads.dir/filebench.cpp.o.d"
  "CMakeFiles/vrio_workloads.dir/netperf.cpp.o"
  "CMakeFiles/vrio_workloads.dir/netperf.cpp.o.d"
  "CMakeFiles/vrio_workloads.dir/request_response.cpp.o"
  "CMakeFiles/vrio_workloads.dir/request_response.cpp.o.d"
  "CMakeFiles/vrio_workloads.dir/tcp_congestion.cpp.o"
  "CMakeFiles/vrio_workloads.dir/tcp_congestion.cpp.o.d"
  "libvrio_workloads.a"
  "libvrio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
