file(REMOVE_RECURSE
  "libvrio_workloads.a"
)
