# Empty dependencies file for vrio_workloads.
# This may be replaced when dependencies are built.
