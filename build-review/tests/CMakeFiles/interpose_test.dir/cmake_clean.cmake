file(REMOVE_RECURSE
  "CMakeFiles/interpose_test.dir/interpose_test.cpp.o"
  "CMakeFiles/interpose_test.dir/interpose_test.cpp.o.d"
  "interpose_test"
  "interpose_test.pdb"
  "interpose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
