# Empty dependencies file for interpose_test.
# This may be replaced when dependencies are built.
