file(REMOVE_RECURSE
  "CMakeFiles/iohost_test.dir/iohost_test.cpp.o"
  "CMakeFiles/iohost_test.dir/iohost_test.cpp.o.d"
  "iohost_test"
  "iohost_test.pdb"
  "iohost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iohost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
