# Empty dependencies file for iohost_test.
# This may be replaced when dependencies are built.
