
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/stats_test.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/fault/CMakeFiles/vrio_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/vrio_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/vrio_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/models/CMakeFiles/vrio_models.dir/DependInfo.cmake"
  "/root/repo/build-review/src/iohost/CMakeFiles/vrio_iohost.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hv/CMakeFiles/vrio_hv.dir/DependInfo.cmake"
  "/root/repo/build-review/src/block/CMakeFiles/vrio_block.dir/DependInfo.cmake"
  "/root/repo/build-review/src/virtio/CMakeFiles/vrio_virtio.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interpose/CMakeFiles/vrio_interpose.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/vrio_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/transport/CMakeFiles/vrio_transport.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/vrio_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/vrio_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/vrio_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cost/CMakeFiles/vrio_cost.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/vrio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
