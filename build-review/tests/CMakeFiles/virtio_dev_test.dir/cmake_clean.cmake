file(REMOVE_RECURSE
  "CMakeFiles/virtio_dev_test.dir/virtio_dev_test.cpp.o"
  "CMakeFiles/virtio_dev_test.dir/virtio_dev_test.cpp.o.d"
  "virtio_dev_test"
  "virtio_dev_test.pdb"
  "virtio_dev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtio_dev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
