# Empty compiler generated dependencies file for virtio_dev_test.
# This may be replaced when dependencies are built.
