# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
include("/root/repo/build-review/tests/stats_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/virtio_test[1]_include.cmake")
include("/root/repo/build-review/tests/net_test[1]_include.cmake")
include("/root/repo/build-review/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-review/tests/block_test[1]_include.cmake")
include("/root/repo/build-review/tests/interpose_test[1]_include.cmake")
include("/root/repo/build-review/tests/transport_test[1]_include.cmake")
include("/root/repo/build-review/tests/iohost_test[1]_include.cmake")
include("/root/repo/build-review/tests/models_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads_test[1]_include.cmake")
include("/root/repo/build-review/tests/cost_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/transport_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/virtio_dev_test[1]_include.cmake")
include("/root/repo/build-review/tests/sweep_test[1]_include.cmake")
include("/root/repo/build-review/tests/fault_test[1]_include.cmake")
include("/root/repo/build-review/tests/golden_test[1]_include.cmake")
