/**
 * @file
 * Heterogeneity example (Section 5): the vRIO channel is plain
 * Ethernet, so one IOhost serves a KVM guest, an ESXi guest, and a
 * bare-metal OS identically — and applies the same centralized
 * interposition policy (here: metering plus an L2 firewall) to all
 * of them, with no support needed from any local hypervisor.
 *
 * Build tree: ./build/examples/heterogeneous_rack
 */
#include <cstdio>

#include "core/vrio.hpp"

using namespace vrio;

int
main()
{
    // Centralized services deployed once, at the I/O hypervisor.
    auto metering = std::make_unique<interpose::MeteringService>();
    auto *metering_raw = metering.get();
    auto firewall = std::make_unique<interpose::FirewallService>();
    auto *firewall_raw = firewall.get();
    interpose::Chain chain;
    chain.append(std::move(metering));
    chain.append(std::move(firewall));

    core::TestbedOptions options;
    options.configure = [&](models::ModelConfig &mc) {
        mc.client_kinds = {hv::ClientKind::KvmGuest,
                           hv::ClientKind::EsxiGuest,
                           hv::ClientKind::BareMetalX86};
        mc.chain_factory = [&](uint32_t, bool is_block) {
            return is_block ? nullptr : &chain;
        };
    };
    core::Testbed tb(models::ModelKind::Vrio, 3, options);
    tb.settle();

    auto &gen = tb.generator();
    std::vector<unsigned> sessions;
    std::vector<int> received(3, 0);
    for (unsigned v = 0; v < 3; ++v) {
        sessions.push_back(gen.newSession());
        auto &guest = tb.guest(v);
        guest.setNetHandler([&guest](Bytes, net::MacAddress src,
                                     uint64_t) {
            guest.sendNet(src, Bytes(64, 0x42));
        });
        gen.setHandler(sessions[v],
                       [&received, v](Bytes, net::MacAddress, uint64_t) {
                           ++received[v];
                       });
    }

    auto ping_all = [&](int times) {
        for (int i = 0; i < times; ++i) {
            for (unsigned v = 0; v < 3; ++v)
                gen.send(sessions[v], tb.guest(v).mac(), Bytes(32, 1));
            tb.runFor(sim::Tick(2) * sim::kMillisecond);
        }
    };

    ping_all(50);
    for (unsigned v = 0; v < 3; ++v) {
        std::printf("%-16s responses=%3d  metered: %llu ops / %llu "
                    "bytes\n",
                    hv::clientKindName(tb.guest(v).vm().kind()),
                    received[v],
                    (unsigned long long)metering_raw->opsSeen(
                        0x5600 + v),
                    (unsigned long long)metering_raw->bytesSeen(
                        0x5600 + v));
    }

    // Policy change, one place, all hypervisors: block the ESXi
    // guest's traffic at the I/O hypervisor.
    std::printf("\n[policy] deny frames from the ESXi guest's MAC\n");
    interpose::FirewallService::Rule rule;
    rule.src = tb.guest(1).mac();
    firewall_raw->deny(rule);

    std::vector<int> before = received;
    ping_all(50);
    for (unsigned v = 0; v < 3; ++v) {
        std::printf("%-16s further responses: %d%s\n",
                    hv::clientKindName(tb.guest(v).vm().kind()),
                    received[v] - before[v],
                    v == 1 ? "  (firewalled)" : "");
    }
    std::printf("\nfirewall drops at the IOhost: %llu\n",
                (unsigned long long)firewall_raw->droppedCount());
    return 0;
}
