/**
 * @file
 * Live migration example — the Section 4.6 capability the paper
 * describes ("This architecture facilitates VM live migration between
 * VMhosts that share an IOhost") whose dynamic switch the authors
 * left unimplemented.  Here a VM under active request/response load
 * moves between VMhosts; the IOhost simply redirects its T-MAC to the
 * other port, and the outside world — which only knows the front-end
 * (F) address — never notices.
 *
 * Build tree: ./build/examples/live_migration
 */
#include <cstdio>

#include "core/vrio.hpp"

using namespace vrio;

int
main()
{
    core::TestbedOptions options;
    options.vmhosts = 2;
    options.configure = [](models::ModelConfig &mc) {
        mc.spare_client_slots = 1; // migration headroom on each host
    };
    core::Testbed tb(models::ModelKind::Vrio, 2, options);
    tb.settle();
    auto &vm = static_cast<models::VrioModel &>(tb.model());

    auto &gen = tb.generator();
    unsigned session = gen.newSession();
    workloads::NetperfRr rr(gen, session, tb.guest(0), {});
    rr.start();

    auto report = [&](const char *phase) {
        std::printf("%-22s host=%u  txns=%6llu  mean=%.1f us\n", phase,
                    vm.clientHost(0),
                    (unsigned long long)rr.transactions(),
                    rr.latencyUs().mean());
        rr.resetStats();
    };

    tb.runFor(sim::Tick(100) * sim::kMillisecond);
    report("before migration:");

    vm.migrateClient(0, 1);
    tb.runFor(sim::Tick(100) * sim::kMillisecond);
    report("after move to host 1:");

    vm.migrateClient(0, 0);
    tb.runFor(sim::Tick(100) * sim::kMillisecond);
    report("after move back:");

    std::printf("\nthe client kept its F-MAC throughout; the load "
                "generator never re-resolved anything — the IOhost "
                "re-pointed the T-channel and traffic continued.\n");
    return 0;
}
