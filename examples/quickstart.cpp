/**
 * @file
 * Quickstart: build a small vRIO rack — two VMs whose paravirtual I/O
 * is processed by a remote IOhost sidecore — run a request/response
 * exchange against a load generator, and print latency plus the
 * virtualization-event accounting (the currency of the paper's
 * Table 3).
 *
 * Build tree: ./build/examples/quickstart
 */
#include <cstdio>

#include "core/vrio.hpp"

using namespace vrio;

int
main()
{
    // A rack with one generator, one VMhost, and a vRIO IOhost with a
    // single remote sidecore serving both VMs.
    core::Testbed tb(models::ModelKind::Vrio, /*num_vms=*/2);
    tb.settle(); // device-creation handshake over the control channel

    // Run netperf-style request/response against each guest.
    auto &gen = tb.generator();
    std::vector<std::unique_ptr<workloads::NetperfRr>> loops;
    for (unsigned v = 0; v < 2; ++v) {
        unsigned session = gen.newSession();
        loops.push_back(std::make_unique<workloads::NetperfRr>(
            gen, session, tb.guest(v), workloads::NetperfRr::Config{}));
        loops.back()->start();
    }

    tb.runFor(sim::Tick(100) * sim::kMillisecond);

    for (unsigned v = 0; v < 2; ++v) {
        const auto &lat = loops[v]->latencyUs();
        std::printf("vm%u: %llu transactions, mean %.1f us, "
                    "p99 %.1f us\n",
                    v, (unsigned long long)loops[v]->transactions(),
                    lat.mean(), lat.percentile(99));
    }

    // The whole point of vRIO: no exits, no injections, no host
    // interrupts — just two exitless guest interrupts per transaction.
    const auto &e = tb.guest(0).vm().events();
    std::printf("\nvm0 events: exits=%llu guest-irqs=%llu "
                "injections=%llu host-irqs=%llu\n",
                (unsigned long long)e.sync_exits,
                (unsigned long long)e.guest_interrupts,
                (unsigned long long)e.injections,
                (unsigned long long)e.host_interrupts);

    auto &vm = static_cast<models::VrioModel &>(tb.model());
    std::printf("IOhost processed %llu transport messages; "
                "interrupts taken: %llu (polling)\n",
                (unsigned long long)vm.hypervisor().messagesProcessed(),
                (unsigned long long)vm.hypervisor().interruptsTaken());
    return 0;
}
