/**
 * @file
 * Remote block device example ("Making a Local Device Remote",
 * Section 5): a VM's block device lives at the IOhost, reached over
 * the vRIO transport.  We inject 3% frame loss on the channel and
 * watch the Section-4.5 retransmission protocol (10 ms doubling
 * timeouts, unique request identifiers, stale-response filtering)
 * keep the device correct.
 *
 * Build tree: ./build/examples/remote_block_device
 */
#include <cstdio>

#include "core/vrio.hpp"

using namespace vrio;

int
main()
{
    core::TestbedOptions options;
    options.configure = [](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.vrio_channel_loss = 0.03; // 3% frame loss, both directions
    };
    core::Testbed tb(models::ModelKind::Vrio, 1, options);
    tb.settle();

    auto &guest = tb.guest(0);
    std::printf("remote device: %llu sectors, reached over a lossy "
                "Ethernet channel\n",
                (unsigned long long)guest.blockCapacitySectors());

    // Write a recognizable pattern across 32 extents, then read it
    // back; every request crosses the wire and may be dropped.
    const int kExtents = 32;
    int completed = 0, failed = 0;
    std::map<int, Bytes> expected;

    std::function<void(int)> write_next = [&](int i) {
        if (i >= kExtents)
            return;
        Bytes data(64 * 1024);
        for (size_t j = 0; j < data.size(); ++j)
            data[j] = uint8_t(i * 37 + j);
        expected[i] = data;
        guest.submitBlock(
            {virtio::BlkType::Out, uint64_t(i) * 128, 128, data},
            [&, i](virtio::BlkStatus s, Bytes) {
                s == virtio::BlkStatus::Ok ? ++completed : ++failed;
                write_next(i + 1);
            });
    };
    write_next(0);
    tb.runFor(sim::Tick(30) * sim::kSecond);
    std::printf("writes: %d ok, %d failed\n", completed, failed);

    int verified = 0, corrupt = 0;
    for (int i = 0; i < kExtents; ++i) {
        guest.submitBlock(
            {virtio::BlkType::In, uint64_t(i) * 128, 128, {}},
            [&, i](virtio::BlkStatus s, Bytes data) {
                if (s == virtio::BlkStatus::Ok && data == expected[i])
                    ++verified;
                else
                    ++corrupt;
            });
        tb.runFor(sim::Tick(2) * sim::kSecond);
    }
    std::printf("reads: %d verified, %d corrupt\n", verified, corrupt);

    auto &vm = static_cast<models::VrioModel &>(tb.model());
    std::printf("\nprotocol work under 3%% loss: %llu retransmissions, "
                "%llu stale responses ignored\n",
                (unsigned long long)vm.clientRetransmissions(0),
                (unsigned long long)vm.clientStaleResponses(0));
    std::printf("(data integrity held: the guest disk scheduler's "
                "single-outstanding-request-per-block invariant makes "
                "blind retransmission safe.)\n");
    return 0;
}
