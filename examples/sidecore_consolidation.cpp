/**
 * @file
 * Sidecore consolidation study: the paper's headline tradeoff,
 * price and performance together.
 *
 * Performance side: two VMhosts x five webserver VMs; Elvis burns a
 * sidecore per host while vRIO serves both hosts with one remote
 * sidecore at a small throughput cost.  Price side: the Section-3
 * rack configurator quantifies what halving the sidecores buys.
 *
 * Build tree: ./build/examples/sidecore_consolidation
 */
#include <cstdio>

#include "core/vrio.hpp"

using namespace vrio;

namespace {

double
webserverMbps(models::ModelKind kind)
{
    core::TestbedOptions options;
    options.vmhosts = 2;
    options.sidecores = 1;
    options.configure = [](models::ModelConfig &mc) {
        mc.with_block = true;
        mc.ramdisk_cfg.capacity_bytes = 32ull << 20;
    };
    core::Testbed tb(kind, 10, options);
    tb.settle();

    std::vector<std::unique_ptr<workloads::FilebenchWebserver>> wls;
    for (unsigned v = 0; v < 10; ++v) {
        wls.push_back(std::make_unique<workloads::FilebenchWebserver>(
            tb.guest(v), tb.simulation().random().split(),
            workloads::FilebenchWebserver::Config{}));
        wls.back()->start();
    }
    tb.runFor(sim::Tick(100) * sim::kMillisecond); // warmup
    for (auto &wl : wls)
        wl->resetStats();
    tb.runFor(sim::Tick(400) * sim::kMillisecond);

    double mbps = 0;
    for (auto &wl : wls)
        mbps += wl->throughputMbps(tb.simulation());
    return mbps;
}

} // namespace

int
main()
{
    std::printf("-- performance: Filebench Webserver, 2 VMhosts x 5 "
                "VMs --\n");
    double elvis = webserverMbps(models::ModelKind::Elvis);
    double vrio_mbps = webserverMbps(models::ModelKind::Vrio);
    std::printf("elvis (one sidecore per host): %8.0f Mbps\n", elvis);
    std::printf("vrio  (one remote sidecore):   %8.0f Mbps (%.1f%%)\n",
                vrio_mbps, (vrio_mbps / elvis - 1.0) * 100.0);

    std::printf("\n-- price: what the freed sidecores buy (Section 3) "
                "--\n");
    cost::ComponentPrices prices;
    for (unsigned n : {3u, 6u}) {
        auto e = cost::elvisRack(n);
        auto v = cost::vrioRack(n);
        double ep = e.price(prices);
        double vp = v.price(prices);
        std::printf("%u servers: elvis $%.1fK (%u VM cores) vs "
                    "vrio $%.1fK (%u VM cores): %.0f%% cheaper\n",
                    n, ep / 1000.0, e.vmCores(), vp / 1000.0,
                    v.vmCores(), (1.0 - vp / ep) * 100.0);
    }

    std::printf("\nthe tradeoff in one line: give up ~8%% webserver "
                "throughput, save ~10-13%% of the rack price, keep "
                "the same VM core count.\n");
    return 0;
}
