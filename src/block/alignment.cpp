#include "block/alignment.hpp"

#include "util/logging.hpp"

namespace vrio::block {

ZeroCopySplit
splitForZeroCopy(uint64_t offset, uint64_t length, uint64_t alignment)
{
    vrio_assert(alignment > 0, "alignment must be positive");
    ZeroCopySplit split;
    if (length == 0)
        return split;

    uint64_t first_aligned = (offset + alignment - 1) / alignment * alignment;
    uint64_t end = offset + length;
    uint64_t last_aligned = end / alignment * alignment;

    if (first_aligned >= last_aligned) {
        // No full aligned unit inside the extent.
        split.head_copy = length;
        return split;
    }
    split.head_copy = first_aligned - offset;
    split.aligned = last_aligned - first_aligned;
    split.tail_copy = end - last_aligned;
    return split;
}

} // namespace vrio::block
