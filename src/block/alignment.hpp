/**
 * @file
 * Sector-alignment decomposition for zero-copy block writes.
 *
 * Section 4.4: when the IOhost writes IOclient data to a block
 * device, "writes to a block device must be aligned to sector size,
 * so the worker uses for zero copy inner portions of the buffer that
 * are aligned, while copying the buffer edges."  splitForZeroCopy()
 * computes that decomposition; the I/O hypervisor charges copy cycles
 * only for the edge bytes.
 */
#ifndef VRIO_BLOCK_ALIGNMENT_HPP
#define VRIO_BLOCK_ALIGNMENT_HPP

#include <cstdint>

namespace vrio::block {

/** Decomposition of a byte extent against an alignment boundary. */
struct ZeroCopySplit
{
    /** Bytes before the first aligned boundary (must be copied). */
    uint64_t head_copy = 0;
    /** Aligned middle usable without copying. */
    uint64_t aligned = 0;
    /** Bytes after the last aligned boundary (must be copied). */
    uint64_t tail_copy = 0;

    uint64_t copied() const { return head_copy + tail_copy; }
    uint64_t total() const { return head_copy + aligned + tail_copy; }
};

/**
 * Split the extent [offset, offset+length) by @p alignment.
 * When the extent contains no full aligned unit, everything is a
 * head copy.
 */
ZeroCopySplit splitForZeroCopy(uint64_t offset, uint64_t length,
                               uint64_t alignment);

} // namespace vrio::block

#endif // VRIO_BLOCK_ALIGNMENT_HPP
