/**
 * @file
 * Asynchronous block device interface.
 */
#ifndef VRIO_BLOCK_BLOCK_DEVICE_HPP
#define VRIO_BLOCK_BLOCK_DEVICE_HPP

#include <functional>
#include <span>

#include "sim/simulation.hpp"
#include "util/byte_buffer.hpp"
#include "virtio/virtio_blk.hpp"

namespace vrio::block {

/** One I/O request against a device (sectors of 512 bytes). */
struct BlockRequest
{
    virtio::BlkType kind = virtio::BlkType::In;
    uint64_t sector = 0;
    uint32_t nsectors = 0;
    /** Payload for writes; empty for reads/flushes. */
    Bytes data;

    uint64_t byteLength() const
    {
        return uint64_t(nsectors) * virtio::kSectorSize;
    }
    /** First sector past the request. */
    uint64_t endSector() const { return sector + nsectors; }
    /** True if the sector ranges intersect. */
    bool overlaps(const BlockRequest &other) const
    {
        return sector < other.endSector() && other.sector < endSector();
    }
};

/** Completion: status plus data (for reads). */
using BlockCallback = std::function<void(virtio::BlkStatus, Bytes)>;

class BlockDevice : public sim::SimObject
{
  public:
    using SimObject::SimObject;

    virtual uint64_t capacitySectors() const = 0;

    /**
     * Submit a request; @p done fires at simulated completion time.
     * Out-of-range requests complete with IoErr.
     */
    virtual void submit(BlockRequest req, BlockCallback done) = 0;

    uint64_t completedRequests() const { return completed; }

    /**
     * Apply a replicated write out of band (warm-state mirroring): no
     * timing, no completion, no request accounting — the bytes simply
     * land, keeping a replica's store in step with committed writes at
     * its primary.  Devices without a reachable data store return
     * false and the mirrored write is dropped (the replica then serves
     * stale data, which is the pre-replication status quo).
     */
    virtual bool mirrorWrite(uint64_t sector, std::span<const uint8_t> data)
    {
        (void)sector;
        (void)data;
        return false;
    }

  protected:
    uint64_t completed = 0;
};

} // namespace vrio::block

#endif // VRIO_BLOCK_BLOCK_DEVICE_HPP
