#include "block/disk_scheduler.hpp"

#include "util/logging.hpp"

namespace vrio::block {

bool
DiskScheduler::conflicts(const BlockRequest &req, uint64_t before_id) const
{
    if (req.kind == virtio::BlkType::Flush) {
        // A flush conflicts with everything in flight and everything
        // queued before it (it is a barrier).
        return !in_flight.empty() ||
               (!pending.empty() && pending.front().id < before_id);
    }
    for (const auto &flying : in_flight) {
        if (flying.req.kind == virtio::BlkType::Flush ||
            flying.req.overlaps(req))
            return true;
    }
    for (const auto &p : pending) {
        if (p.id >= before_id)
            break;
        if (p.req.kind == virtio::BlkType::Flush || p.req.overlaps(req))
            return true;
    }
    return false;
}

void
DiskScheduler::submit(BlockRequest req, BlockCallback done, uint32_t queue)
{
    Pending p{std::move(req), std::move(done), next_id++, queue};
    if (conflicts(p.req, p.id)) {
        ++deferred;
        pending.push_back(std::move(p));
        return;
    }
    dispatchNow(std::move(p));
}

size_t
DiskScheduler::queueDepth(uint32_t queue) const
{
    size_t depth = 0;
    for (const auto &flying : in_flight)
        depth += flying.queue == queue;
    for (const auto &p : pending)
        depth += p.queue == queue;
    return depth;
}

void
DiskScheduler::dispatchNow(Pending p)
{
    uint64_t id = p.id;
    in_flight.push_back(Flying{id, p.queue, p.req});
    BlockCallback user_done = std::move(p.done);
    dispatch(std::move(p.req),
             [this, id, user_done = std::move(user_done)](
                 virtio::BlkStatus status, Bytes data) {
                 for (auto it = in_flight.begin(); it != in_flight.end();
                      ++it) {
                     if (it->id == id) {
                         in_flight.erase(it);
                         break;
                     }
                 }
                 user_done(status, std::move(data));
                 drain();
             });
}

void
DiskScheduler::drain()
{
    // Dispatch every pending request that no longer conflicts; FIFO
    // scan preserves per-block order because a pending request still
    // conflicts with earlier pending overlapping requests.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (!conflicts(it->req, it->id)) {
                Pending p = std::move(*it);
                pending.erase(it);
                dispatchNow(std::move(p));
                progress = true;
                break;
            }
        }
    }
}

} // namespace vrio::block
