/**
 * @file
 * Guest-OS disk scheduler invariant.
 *
 * Section 4.5 of the paper leans on the fact that "it is the
 * responsibility of the guest OS disk scheduler (not its driver) to
 * reorder requests, making sure that each individual block has only
 * one outstanding request associated with it, while all subsequent
 * requests for that block are pending."  That invariant is what makes
 * vRIO's blind retransmission of presumed-lost block requests safe.
 * DiskScheduler enforces it: requests whose sector range overlaps an
 * in-flight request are held back until the conflict drains.
 */
#ifndef VRIO_BLOCK_DISK_SCHEDULER_HPP
#define VRIO_BLOCK_DISK_SCHEDULER_HPP

#include <deque>
#include <list>

#include "block/block_device.hpp"

namespace vrio::block {

class DiskScheduler
{
  public:
    /** Sink receiving dispatched (conflict-free) requests. */
    using Dispatch = std::function<void(BlockRequest, BlockCallback)>;

    explicit DiskScheduler(Dispatch dispatch)
        : dispatch(std::move(dispatch))
    {}

    /**
     * Queue a request.  It is dispatched immediately when no in-flight
     * request overlaps its sector range; otherwise it waits.  Pending
     * requests dispatch FIFO as conflicts drain (a request also
     * conflicts with *earlier pending* requests it overlaps, which
     * preserves per-block ordering).
     *
     * @p queue tags the request with its originating submission queue
     * so multi-queue frontends (NVMe SQs) can see per-queue occupancy
     * and arbitrate work-conservingly instead of over a single opaque
     * FIFO.  Single-queue callers leave it at 0.
     */
    void submit(BlockRequest req, BlockCallback done, uint32_t queue = 0);

    size_t inFlight() const { return in_flight.size(); }
    size_t pendingCount() const { return pending.size(); }
    uint64_t deferrals() const { return deferred; }
    /**
     * Requests from @p queue currently owned by the scheduler (at the
     * device or held back on a conflict).  Drops back to zero as
     * completions drain, so an arbiter capping each SQ's outstanding
     * work reads exactly this.
     */
    size_t queueDepth(uint32_t queue) const;

  private:
    struct Pending
    {
        BlockRequest req;
        BlockCallback done;
        uint64_t id;
        uint32_t queue;
    };

    struct Flying
    {
        uint64_t id;
        uint32_t queue;
        BlockRequest req;
    };

    Dispatch dispatch;
    /** Sector ranges currently at the device, keyed by internal id. */
    std::list<Flying> in_flight;
    std::deque<Pending> pending;
    uint64_t next_id = 0;
    uint64_t deferred = 0;

    bool conflicts(const BlockRequest &req, uint64_t before_id) const;
    void dispatchNow(Pending p);
    void drain();
};

} // namespace vrio::block

#endif // VRIO_BLOCK_DISK_SCHEDULER_HPP
