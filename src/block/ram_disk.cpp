#include "block/ram_disk.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace vrio::block {

RamDisk::RamDisk(sim::Simulation &sim, std::string name, RamDiskConfig cfg)
    : BlockDevice(sim, std::move(name)), cfg(cfg),
      store(cfg.capacity_bytes, 0),
      channel(sim.events(), this->name() + ".chan")
{
    vrio_assert(cfg.capacity_bytes % virtio::kSectorSize == 0,
                "capacity must be sector-aligned");
}

uint64_t
RamDisk::capacitySectors() const
{
    return cfg.capacity_bytes / virtio::kSectorSize;
}

bool
RamDisk::inRange(const BlockRequest &req) const
{
    return req.endSector() <= capacitySectors() &&
           req.endSector() >= req.sector;
}

void
RamDisk::submit(BlockRequest req, BlockCallback done)
{
    if (req.kind != virtio::BlkType::Flush && !inRange(req)) {
        // Complete asynchronously for uniform caller behaviour.
        sim().events().schedule(cfg.request_latency,
                                [done = std::move(done)]() {
                                    done(virtio::BlkStatus::IoErr, {});
                                });
        return;
    }
    if (req.kind == virtio::BlkType::Out &&
        req.data.size() != req.byteLength()) {
        vrio_panic("write payload ", req.data.size(),
                   " != request length ", req.byteLength());
    }

    // FLUSH and TRIM move no data: they cost a fixed service time,
    // distinct from the transfer-sized read/write path.
    sim::Tick service;
    switch (req.kind) {
      case virtio::BlkType::Flush:
        service = cfg.flush_latency ? cfg.flush_latency
                                    : cfg.request_latency;
        break;
      case virtio::BlkType::Discard:
        service = cfg.trim_latency;
        break;
      default:
        service = cfg.request_latency +
                  sim::bytesToTicks(req.byteLength(), cfg.gbps);
    }
    channel.submit(
        service, [this, req = std::move(req), done = std::move(done)]() {
            ++completed;
            uint64_t off = req.sector * virtio::kSectorSize;
            switch (req.kind) {
              case virtio::BlkType::In: {
                Bytes out(store.begin() + off,
                          store.begin() + off + req.byteLength());
                done(virtio::BlkStatus::Ok, std::move(out));
                break;
              }
              case virtio::BlkType::Out:
                std::memcpy(store.data() + off, req.data.data(),
                            req.data.size());
                done(virtio::BlkStatus::Ok, {});
                break;
              case virtio::BlkType::Flush:
                done(virtio::BlkStatus::Ok, {});
                break;
              case virtio::BlkType::Discard:
                // Deallocate: subsequent reads see zeroes.
                std::memset(store.data() + off, 0, req.byteLength());
                done(virtio::BlkStatus::Ok, {});
                break;
              default:
                done(virtio::BlkStatus::Unsupported, {});
            }
        });
}

bool
RamDisk::mirrorWrite(uint64_t sector, std::span<const uint8_t> data)
{
    uint64_t off = sector * virtio::kSectorSize;
    if (off + data.size() > store.size())
        return false;
    std::memcpy(store.data() + off, data.data(), data.size());
    return true;
}

Bytes
RamDisk::peek(uint64_t sector, uint32_t nsectors) const
{
    uint64_t off = sector * virtio::kSectorSize;
    uint64_t len = uint64_t(nsectors) * virtio::kSectorSize;
    vrio_assert(off + len <= store.size(), "peek out of range");
    return Bytes(store.begin() + off, store.begin() + off + len);
}

void
RamDisk::poke(uint64_t sector, std::span<const uint8_t> data)
{
    uint64_t off = sector * virtio::kSectorSize;
    vrio_assert(off + data.size() <= store.size(), "poke out of range");
    std::memcpy(store.data() + off, data.data(), data.size());
}

} // namespace vrio::block
