/**
 * @file
 * RAM-backed block device with a real data store.
 *
 * The paper uses a 1 GB ramdisk per VM to approximate future fast I/O
 * devices ("Making a Local Device Remote", Section 5).  Our RamDisk
 * keeps genuine bytes so tests can verify end-to-end data integrity
 * through the vRIO encapsulation, loss, and retransmission machinery.
 */
#ifndef VRIO_BLOCK_RAM_DISK_HPP
#define VRIO_BLOCK_RAM_DISK_HPP

#include "block/block_device.hpp"
#include "sim/resource.hpp"

namespace vrio::block {

struct RamDiskConfig
{
    uint64_t capacity_bytes = 64ull << 20;
    /** Fixed per-request software/DMA overhead. */
    sim::Tick request_latency = sim::Tick(5) * sim::kMicrosecond;
    /** Copy bandwidth of the backing memory. */
    double gbps = 80.0;
    /** FLUSH service time; 0 = same as request_latency. */
    sim::Tick flush_latency = 0;
    /**
     * TRIM (Discard) service time per request.  A ramdisk deallocates
     * by dropping page references, so the default is cheaper than a
     * data-moving request.
     */
    sim::Tick trim_latency = sim::Tick(2) * sim::kMicrosecond;
};

class RamDisk : public BlockDevice
{
  public:
    RamDisk(sim::Simulation &sim, std::string name, RamDiskConfig cfg);

    uint64_t capacitySectors() const override;
    void submit(BlockRequest req, BlockCallback done) override;
    bool mirrorWrite(uint64_t sector,
                     std::span<const uint8_t> data) override;

    /** Direct peek for tests (bypasses timing). */
    Bytes peek(uint64_t sector, uint32_t nsectors) const;
    /** Direct poke for tests (bypasses timing). */
    void poke(uint64_t sector, std::span<const uint8_t> data);

  private:
    RamDiskConfig cfg;
    Bytes store;
    sim::Resource channel;

    bool inRange(const BlockRequest &req) const;
};

} // namespace vrio::block

#endif // VRIO_BLOCK_RAM_DISK_HPP
