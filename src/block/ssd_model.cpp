#include "block/ssd_model.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace vrio::block {

SsdConfig
SsdConfig::pcieSx300()
{
    SsdConfig cfg;
    cfg.read_latency = sim::Tick(25) * sim::kMicrosecond;
    cfg.write_latency = sim::Tick(15) * sim::kMicrosecond;
    cfg.gbps = 21.6; // 2.7 GB/s per the SX300 datasheet
    cfg.queue_depth = 32;
    return cfg;
}

SsdConfig
SsdConfig::sata()
{
    return SsdConfig{};
}

SsdModel::SsdModel(sim::Simulation &sim, std::string name, SsdConfig cfg)
    : BlockDevice(sim, std::move(name)), cfg(cfg),
      store(cfg.capacity_bytes, 0),
      channels(sim.events(), this->name() + ".chan", cfg.queue_depth)
{
    vrio_assert(cfg.capacity_bytes % virtio::kSectorSize == 0,
                "capacity must be sector-aligned");
}

uint64_t
SsdModel::capacitySectors() const
{
    return cfg.capacity_bytes / virtio::kSectorSize;
}

void
SsdModel::submit(BlockRequest req, BlockCallback done)
{
    bool in_range = req.endSector() <= capacitySectors() &&
                    req.endSector() >= req.sector;
    if (req.kind != virtio::BlkType::Flush && !in_range) {
        sim().events().schedule(cfg.read_latency,
                                [done = std::move(done)]() {
                                    done(virtio::BlkStatus::IoErr, {});
                                });
        return;
    }

    sim::Tick service;
    switch (req.kind) {
      case virtio::BlkType::Flush:
        service = cfg.flush_latency ? cfg.flush_latency
                                    : cfg.write_latency;
        break;
      case virtio::BlkType::Discard:
        service = cfg.trim_latency;
        break;
      case virtio::BlkType::In:
        service = cfg.read_latency +
                  sim::bytesToTicks(req.byteLength(), cfg.gbps);
        break;
      default:
        service = cfg.write_latency +
                  sim::bytesToTicks(req.byteLength(), cfg.gbps);
    }
    channels.submit(
        service, [this, req = std::move(req), done = std::move(done)]() {
            ++completed;
            uint64_t off = req.sector * virtio::kSectorSize;
            switch (req.kind) {
              case virtio::BlkType::In: {
                Bytes out(store.begin() + off,
                          store.begin() + off + req.byteLength());
                done(virtio::BlkStatus::Ok, std::move(out));
                break;
              }
              case virtio::BlkType::Out:
                vrio_assert(req.data.size() == req.byteLength(),
                            "short write payload");
                std::memcpy(store.data() + off, req.data.data(),
                            req.data.size());
                done(virtio::BlkStatus::Ok, {});
                break;
              case virtio::BlkType::Flush:
                done(virtio::BlkStatus::Ok, {});
                break;
              case virtio::BlkType::Discard:
                std::memset(store.data() + off, 0, req.byteLength());
                done(virtio::BlkStatus::Ok, {});
                break;
              default:
                done(virtio::BlkStatus::Unsupported, {});
            }
        });
}

} // namespace vrio::block
