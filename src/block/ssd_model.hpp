/**
 * @file
 * Timed SSD model.
 *
 * Parameterized to represent either the SATA SSDs of the paper's
 * follow-up measurement (reader throughput 75-95% of Elvis under the
 * baseline) or a FusionIO SX300-class PCIe drive (2.7 GB/s, the
 * device consolidated in Fig. 3).  Data is held in a real store so
 * integrity tests work against SSDs too.
 */
#ifndef VRIO_BLOCK_SSD_MODEL_HPP
#define VRIO_BLOCK_SSD_MODEL_HPP

#include "block/block_device.hpp"
#include "sim/resource.hpp"

namespace vrio::block {

struct SsdConfig
{
    uint64_t capacity_bytes = 64ull << 20;
    sim::Tick read_latency = sim::Tick(90) * sim::kMicrosecond;
    sim::Tick write_latency = sim::Tick(40) * sim::kMicrosecond;
    /** Sustained transfer bandwidth. */
    double gbps = 4.2; ///< ~SATA-3 class
    /** Internal parallelism (concurrently served requests). */
    unsigned queue_depth = 8;
    /** FLUSH service time; 0 = same as write_latency. */
    sim::Tick flush_latency = 0;
    /**
     * TRIM (Discard) service time per request.  On flash this is an
     * FTL metadata update — slower than a cached write acknowledge,
     * much cheaper than moving the data.
     */
    sim::Tick trim_latency = sim::Tick(60) * sim::kMicrosecond;

    /** FusionIO SX300-class PCIe SSD (21.6 Gbps per the datasheet). */
    static SsdConfig pcieSx300();
    /** Commodity SATA SSD. */
    static SsdConfig sata();
};

class SsdModel : public BlockDevice
{
  public:
    SsdModel(sim::Simulation &sim, std::string name, SsdConfig cfg);

    uint64_t capacitySectors() const override;
    void submit(BlockRequest req, BlockCallback done) override;

  private:
    SsdConfig cfg;
    Bytes store;
    sim::Resource channels;
};

} // namespace vrio::block

#endif // VRIO_BLOCK_SSD_MODEL_HPP
