#include "core/testbed.hpp"

#include <cstdlib>

#include "telemetry/export.hpp"
#include "util/strutil.hpp"

namespace vrio::core {

namespace {

unsigned
threadsFromEnv()
{
    const char *env = std::getenv("VRIO_SIM_THREADS");
    if (!env || !*env)
        return 1;
    long n = std::atol(env);
    return n > 1 ? unsigned(n) : 1;
}

} // namespace

Testbed::Testbed(models::ModelKind kind, unsigned num_vms,
                 TestbedOptions options)
{
    // Finalize the model configuration first: the shard layout (and
    // therefore the Simulation) depends on the topology it describes.
    models::ModelConfig mc;
    mc.kind = kind;
    mc.num_vms = num_vms;
    mc.num_vmhosts = options.vmhosts;
    mc.sidecores = options.sidecores;
    mc.costs = options.costs;
    if (options.configure)
        options.configure(mc);

    // Environment overrides for the rack layer (DESIGN.md §15): unset
    // variables leave the configured topology untouched, so historical
    // runs — and every golden — are unaffected.  Setting the IOhost
    // count implies the switch wiring the rack layer requires.
    if (const char *env = std::getenv("VRIO_RACK_IOHOSTS");
        env && *env) {
        long n = std::atol(env);
        if (n >= 1) {
            mc.rack.iohosts = unsigned(n);
            mc.vrio_via_switch = true;
        }
    }
    if (const char *env = std::getenv("VRIO_RACK_COALESCE"); env && *env)
        mc.rack.coalesce = std::atol(env) != 0;
    // Warm-state replication (DESIGN.md §16) needs a peer to mirror
    // to, so enabling it forces the rack to at least two IOhosts.
    if (const char *env = std::getenv("VRIO_RACK_REPLICATION");
        env && *env && std::atol(env) != 0) {
        mc.rack.replication = true;
        mc.vrio_via_switch = true;
        if (mc.rack.iohosts < 2)
            mc.rack.iohosts = 2;
    }
    // Multi-tenant QoS (DESIGN.md §17) lives at the rack fan-out
    // point, so enabling it forces rack mode (at least one IOhost
    // behind the switch).
    if (const char *env = std::getenv("VRIO_RACK_QOS");
        env && *env && std::atol(env) != 0) {
        mc.rack.qos.enabled = true;
        mc.vrio_via_switch = true;
        if (mc.rack.iohosts < 1)
            mc.rack.iohosts = 1;
    }

    unsigned threads =
        options.threads ? options.threads : threadsFromEnv();
    sim::Simulation::Config sc;
    sc.seed = options.seed;
    bool vrio_kind = mc.kind == models::ModelKind::Vrio ||
                     mc.kind == models::ModelKind::VrioNoPoll;
    if (vrio_kind && (threads > 1 || options.shards > 1)) {
        sc.shards = options.shards
                        ? options.shards
                        : models::vrioShardCount(mc.num_vmhosts,
                                                 mc.rack.iohosts);
        sc.threads = threads;
    }
    sim_ = std::make_unique<sim::Simulation>(sc);

    models::RackConfig rc;
    rc.num_generators = options.generators;
    rc.costs = options.costs;
    rack_ = std::make_unique<models::Rack>(*sim_, rc);

    model_ = models::makeModel(*rack_, mc);
    label_ = strFormat("%s-vm%u-s%llu", models::modelKindName(mc.kind),
                       num_vms, (unsigned long long)options.seed);
}

Testbed::~Testbed()
{
    // Hand this run's metrics and trace to the process-wide sink
    // while the model (whose objects back the registry probes) is
    // still alive.  No exporter armed: a single cached getenv test.
    if (telemetry::Sink::armed())
        telemetry::Sink::instance().submit(label_, sim_->telemetry());
}

models::GuestEndpoint &
Testbed::guest(unsigned vm_index)
{
    return model_->guest(vm_index);
}

models::Generator &
Testbed::generator(unsigned index)
{
    return rack_->generator(index);
}

void
Testbed::settle()
{
    runFor(sim::Tick(5) * sim::kMillisecond);
}

void
Testbed::runFor(sim::Tick duration)
{
    sim_->runUntil(sim_->now() + duration);
}

} // namespace vrio::core
