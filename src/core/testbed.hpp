/**
 * @file
 * Top-level public API: assemble a simulated rack running one of the
 * paper's I/O models with a few lines of code.
 *
 * @code
 *   core::Testbed tb(models::ModelKind::Vrio, 2);
 *   auto &guest = tb.guest(0);
 *   guest.setNetHandler(...);
 *   tb.runFor(sim::kSecond);
 * @endcode
 */
#ifndef VRIO_CORE_TESTBED_HPP
#define VRIO_CORE_TESTBED_HPP

#include <memory>

#include "models/io_model.hpp"

namespace vrio::core {

struct TestbedOptions
{
    unsigned vmhosts = 1;
    /** Elvis: sidecores per VMhost; vRIO: total IOhost workers. */
    unsigned sidecores = 1;
    unsigned generators = 1;
    models::CostParams costs{};
    uint64_t seed = 1;
    /**
     * Event-loop worker threads.  0 (the default) reads the
     * VRIO_SIM_THREADS environment variable, itself defaulting to 1.
     * With more than one thread a vRIO topology is sharded per
     * DESIGN.md §13 (rack fabric / per-VMhost / IOhost) and run under
     * the conservative-lookahead epoch loop; results depend only on
     * (seed, shard count), never on the thread count.  Non-vRIO
     * models always run single-shard.
     */
    unsigned threads = 0;
    /**
     * Explicit shard count (vRIO kinds only).  0 = automatic: shard
     * when threads > 1, single queue otherwise.  Setting it lets a
     * test pin the shard layout while varying the thread count — the
     * determinism property under test.
     */
    unsigned shards = 0;
    /** Final say over the model configuration. */
    std::function<void(models::ModelConfig &)> configure;
};

class Testbed
{
  public:
    Testbed(models::ModelKind kind, unsigned num_vms,
            TestbedOptions options = {});
    ~Testbed();

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    sim::Simulation &simulation() { return *sim_; }
    models::Rack &rack() { return *rack_; }
    models::IoModel &model() { return *model_; }
    models::GuestEndpoint &guest(unsigned vm_index);
    models::Generator &generator(unsigned index = 0);

    /** Run the control-channel handshake / settle-in period. */
    void settle();

    /** Advance simulated time by @p duration. */
    void runFor(sim::Tick duration);

  private:
    std::unique_ptr<sim::Simulation> sim_;
    std::unique_ptr<models::Rack> rack_;
    std::unique_ptr<models::IoModel> model_;
    /** Sink label for this run (kind + size + seed). */
    std::string label_;
};

} // namespace vrio::core

#endif // VRIO_CORE_TESTBED_HPP
