/**
 * @file
 * Umbrella header: everything a downstream user of the vRIO library
 * typically needs.
 *
 * Layering (bottom to top):
 *  - sim/stats/util: discrete-event engine, statistics, byte codecs
 *  - virtio/net/hv/block/crypto: substrates (rings, NICs, links,
 *    switch, machines, VMs, block devices, AES)
 *  - transport: the vRIO wire protocol (encapsulation, TSO-aware
 *    reassembly, block retransmission, control channel)
 *  - interpose: programmable interposition services
 *  - iohost: the I/O hypervisor (workers, steering, back-ends)
 *  - models: the five I/O model wirings + load generators
 *  - workloads: netperf / Apache / memcached / filebench
 *  - cost: the Section-3 price analysis
 *  - core: the Testbed convenience API
 */
#ifndef VRIO_CORE_VRIO_HPP
#define VRIO_CORE_VRIO_HPP

#include "core/testbed.hpp"
#include "cost/pricing.hpp"
#include "cost/rack_cost.hpp"
#include "interpose/services.hpp"
#include "models/io_model.hpp"
#include "models/vrio.hpp"
#include "stats/table.hpp"
#include "workloads/filebench.hpp"
#include "workloads/netperf.hpp"
#include "workloads/request_response.hpp"

#endif // VRIO_CORE_VRIO_HPP
