#include "cost/pricing.hpp"

namespace vrio::cost {

const std::vector<CpuModel> &
cpuCatalog()
{
    // name, series, price, cores, ghz, cache, tdp, qpi, nm
    static const std::vector<CpuModel> catalog = {
        // The paper's worked example (prices exact).
        {"E7-8850 v2", "E7 v2 2.3", 3059, 12, 2.3, 24, 105, 7.2, 22},
        {"E7-8870 v2", "E7 v2 2.3", 4616, 15, 2.3, 30, 130, 8.0, 22},
        // Representative same-speed pairs from the 2015 price list.
        {"E5-2620 v3", "E5 v3 2.4", 417, 6, 2.4, 15, 85, 8.0, 22},
        {"E5-2630 v3", "E5 v3 2.4", 667, 8, 2.4, 20, 85, 8.0, 22},
        {"E5-2650 v3", "E5 v3 2.3", 1166, 10, 2.3, 25, 105, 9.6, 22},
        {"E5-2695 v3", "E5 v3 2.3", 2424, 14, 2.3, 35, 120, 9.6, 22},
        {"E5-2660 v3", "E5 v3 2.6", 1445, 10, 2.6, 25, 105, 9.6, 22},
        {"E5-2690 v3", "E5 v3 2.6", 2090, 12, 2.6, 30, 135, 9.6, 22},
        {"E7-4850 v2", "E7 v2 2.3b", 3059, 12, 2.3, 24, 105, 7.2, 22},
        {"E7-4880 v2", "E7 v2 2.3b", 5506, 15, 2.3, 37.5, 130, 8.0, 22},
        {"E5-2640 v2", "E5 v2 2.0", 885, 8, 2.0, 20, 95, 7.2, 22},
        {"E5-2648L v2", "E5 v2 2.0", 1479, 10, 2.0, 25, 70, 8.0, 22},
        {"E5-4620 v2", "E5 v2 2.6", 1611, 8, 2.6, 20, 95, 7.2, 22},
        {"E5-4650 v2", "E5 v2 2.6", 3616, 10, 2.6, 25, 95, 8.0, 22},
    };
    return catalog;
}

const std::vector<NicModel> &
nicCatalog()
{
    static const std::vector<NicModel> catalog = {
        // The paper's worked example (prices exact).
        {"MCX312B-XCCT", "Mellanox", "ConnectX-3", 560, 2, 10, "SFP+"},
        {"MCX314A-BCCT", "Mellanox", "ConnectX-3", 1121, 2, 40, "QSFP"},
        // Representative mid-2015 adapters.
        {"X520-DA2", "Intel", "700/500", 399, 2, 10, "SFP+"},
        {"XL710-QDA2", "Intel", "700/500", 719, 2, 40, "QSFP+"},
        {"I350-T2", "Intel", "I350/X540", 132, 2, 1, "RJ45"},
        {"X540-T2", "Intel", "I350/X540", 478, 2, 10, "RJ45"},
        {"T520-CR", "Chelsio", "T5", 520, 2, 10, "SFP+"},
        {"T580-CR", "Chelsio", "T5", 1010, 2, 40, "QSFP"},
        {"SFN7122F", "SolarFlare", "Flareon", 615, 2, 10, "SFP+"},
        {"SFN7142Q", "SolarFlare", "Flareon", 1190, 2, 40, "QSFP"},
        {"OCe14102", "Emulex", "OneConnect", 471, 2, 10, "SFP+"},
        {"OCe14402", "Emulex", "OneConnect", 1056, 2, 40, "QSFP"},
        {"57810S", "Dell", "Broadcom", 345, 2, 10, "SFP+"},
        {"57840S", "Dell", "Broadcom", 624, 2, 20, "SFP+"},
    };
    return catalog;
}

bool
cpuAdjacent(const CpuModel &c1, const CpuModel &c2)
{
    // (1) fewer cores; (2) same series/version/speed/feature size
    //     (encoded in our `series` key plus ghz/nm); (3) cache, power
    //     and QPI speed smaller than or equal.
    return c1.cores < c2.cores && c1.series == c2.series &&
           c1.ghz == c2.ghz && c1.feature_nm == c2.feature_nm &&
           c1.cache_mb <= c2.cache_mb && c1.tdp_watts <= c2.tdp_watts &&
           c1.qpi_gts <= c2.qpi_gts;
}

bool
nicAdjacent(const NicModel &n1, const NicModel &n2)
{
    // (1) lower throughput; (2) same vendor, product series and port
    //     count (form factor/connector follows the port speed).
    return n1.totalGbps() < n2.totalGbps() && n1.vendor == n2.vendor &&
           n1.series == n2.series && n1.ports == n2.ports;
}

std::vector<UpgradePoint>
cpuUpgradePoints()
{
    std::vector<UpgradePoint> out;
    const auto &cat = cpuCatalog();
    for (const auto &c1 : cat) {
        for (const auto &c2 : cat) {
            if (cpuAdjacent(c1, c2)) {
                out.push_back({c1.name, c2.name,
                               c2.price_usd / c1.price_usd,
                               double(c2.cores) / double(c1.cores)});
            }
        }
    }
    return out;
}

std::vector<UpgradePoint>
nicUpgradePoints()
{
    std::vector<UpgradePoint> out;
    const auto &cat = nicCatalog();
    for (const auto &n1 : cat) {
        for (const auto &n2 : cat) {
            if (nicAdjacent(n1, n2)) {
                out.push_back({n1.name, n2.name,
                               n2.price_usd / n1.price_usd,
                               n2.totalGbps() / n1.totalGbps()});
            }
        }
    }
    return out;
}

} // namespace vrio::cost
