/**
 * @file
 * Hardware price-trend analysis (Section 3, Fig. 1).
 *
 * The paper compares "adjacent" CPU pairs (same series/speed/process,
 * more cores) against adjacent NIC pairs (same vendor/series/ports,
 * more bandwidth) and observes that compute upgrades carry a premium
 * (cost grows faster than capability) while network upgrades do not
 * (bandwidth grows faster than cost).  We implement the adjacency
 * definitions over embedded datasets.
 *
 * Dataset provenance: the two worked examples in the paper (Intel
 * E7-8850v2/E7-8870v2 and Mellanox MCX312B/MCX314A) are reproduced
 * with the paper's exact prices; the remaining entries reconstruct
 * representative mid-2015 list prices from the same product families.
 */
#ifndef VRIO_COST_PRICING_HPP
#define VRIO_COST_PRICING_HPP

#include <string>
#include <vector>

namespace vrio::cost {

struct CpuModel
{
    std::string name;
    std::string series; ///< e.g. "E7 v2"
    double price_usd;
    unsigned cores;
    double ghz;
    double cache_mb;
    double tdp_watts;
    double qpi_gts;
    unsigned feature_nm;
};

struct NicModel
{
    std::string name;
    std::string vendor;
    std::string series;
    double price_usd; ///< incl. cable, as in Table 1
    unsigned ports;
    double gbps_per_port;
    std::string form_factor;

    double totalGbps() const { return ports * gbps_per_port; }
};

/** One point of Fig. 1: relative upgrade cost vs relative gain. */
struct UpgradePoint
{
    std::string from;
    std::string to;
    double cost_ratio; ///< x axis: price(to) / price(from)
    double gain_ratio; ///< y axis: capability(to) / capability(from)
};

/** The embedded CPU dataset. */
const std::vector<CpuModel> &cpuCatalog();
/** The embedded NIC dataset. */
const std::vector<NicModel> &nicCatalog();

/** True if (c1, c2) satisfy the paper's CPU adjacency definition. */
bool cpuAdjacent(const CpuModel &c1, const CpuModel &c2);
/** True if (n1, n2) satisfy the paper's NIC adjacency definition. */
bool nicAdjacent(const NicModel &n1, const NicModel &n2);

/** All adjacent CPU pairs in the catalog as Fig. 1 points. */
std::vector<UpgradePoint> cpuUpgradePoints();
/** All adjacent NIC pairs in the catalog as Fig. 1 points. */
std::vector<UpgradePoint> nicUpgradePoints();

} // namespace vrio::cost

#endif // VRIO_COST_PRICING_HPP
