#include "cost/rack_cost.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace vrio::cost {

double
ServerConfig::price(const ComponentPrices &p) const
{
    return p.base + cpus * p.cpu_18core + dram_8gb * p.dram_8gb +
           dram_16gb * p.dram_16gb + nic_10g * p.nic_10g_dp +
           nic_40g * p.nic_40g_dp;
}

double
ServerConfig::totalGbps() const
{
    return nic_10g * 2 * 10.0 + nic_40g * 2 * 40.0;
}

double
requiredGbps(unsigned cores)
{
    return cores * 380.0 / 1024.0;
}

ServerConfig
elvisServer()
{
    // 4 CPUs, 288 GB (4 GB/core), two 2x10G NICs.
    return {"elvis", 4, 0, 18, 2, 0};
}

ServerConfig
vrioVmHost()
{
    // Hosts 1.5x the VMs: 432 GB (2x8GB + 26x16GB for even DIMM
    // count), one 2x40G NIC toward the IOhost.
    return {"vmhost", 4, 2, 26, 0, 1};
}

ServerConfig
lightIoHost()
{
    // Half the CPUs, minimal memory (64 GB), two 2x40G NICs.
    return {"light iohost", 2, 8, 0, 0, 2};
}

ServerConfig
heavyIoHost()
{
    // Two light IOhosts merged: 4 CPUs, four 2x40G NICs.
    return {"heavy iohost", 4, 8, 0, 0, 4};
}

double
RackSetup::price(const ComponentPrices &p) const
{
    double total = 0;
    for (const auto &server : servers)
        total += server.price(p);
    return total;
}

unsigned
RackSetup::vmCores(const ComponentPrices &) const
{
    // Elvis servers dedicate 1/3 of their cores to sidecores; vRIO
    // VMhosts run VMs on all cores; IOhosts run none.
    unsigned cores = 0;
    for (const auto &server : servers) {
        if (server.name == "elvis")
            cores += server.cores() * 2 / 3;
        else if (server.name == "vmhost")
            cores += server.cores();
    }
    return cores;
}

RackSetup
elvisRack(unsigned n)
{
    RackSetup setup;
    setup.name = "elvis x" + std::to_string(n);
    for (unsigned i = 0; i < n; ++i)
        setup.servers.push_back(elvisServer());
    return setup;
}

RackSetup
vrioRack(unsigned n)
{
    vrio_assert(n == 3 || n == 6,
                "the paper's vRIO setups replace 3 or 6 Elvis servers");
    RackSetup setup;
    unsigned vmhosts = n == 3 ? 2 : 4;
    setup.name = "vrio " + std::to_string(vmhosts) + "+1";
    for (unsigned i = 0; i < vmhosts; ++i)
        setup.servers.push_back(vrioVmHost());
    setup.servers.push_back(n == 3 ? lightIoHost() : heavyIoHost());
    return setup;
}

SsdComparison
ssdConsolidation(unsigned n, unsigned vrio_drives, bool big_drives,
                 const ComponentPrices &p)
{
    vrio_assert(vrio_drives >= 1 && vrio_drives <= n,
                "consolidation ratio must be n => 1..n");
    double drive = big_drives ? p.ssd_6_4tb : p.ssd_3_2tb;

    SsdComparison cmp;
    cmp.elvis_drives = n;
    cmp.vrio_drives = vrio_drives;
    // Elvis needs at least one drive per server.
    cmp.elvis_price = elvisRack(n).price(p) + n * drive;
    // vRIO consolidates the drives at the IOhost and adds one 2x40G
    // NIC per 80 Gbps of aggregate drive bandwidth (21.6 Gbps each).
    unsigned extra_nics =
        unsigned(std::ceil(vrio_drives * 21.6 / 80.0));
    cmp.vrio_price = vrioRack(n).price(p) + vrio_drives * drive +
                     extra_nics * p.nic_40g_dp;
    return cmp;
}

} // namespace vrio::cost
