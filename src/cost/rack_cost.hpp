/**
 * @file
 * Rack cost configurator (Section 3, Tables 1-2 and Fig. 3).
 *
 * Builds the paper's Dell PowerEdge R930 configurations from its
 * published component prices, and compares equivalent Elvis and vRIO
 * rack setups, including the SSD consolidation variants.
 */
#ifndef VRIO_COST_RACK_COST_HPP
#define VRIO_COST_RACK_COST_HPP

#include <string>
#include <vector>

namespace vrio::cost {

/** Component prices from Table 1 (Dell, July 2015). */
struct ComponentPrices
{
    double base = 6407;        ///< R930 chassis
    double cpu_18core = 8006;  ///< 18-core 2.5GHz Xeon E7-8890 v3
    double dram_8gb = 172;
    double dram_16gb = 273;
    double nic_10g_dp = 560;   ///< dual-port, incl. cable
    double nic_40g_dp = 1121;
    double ssd_3_2tb = 12706;  ///< FusionIO SX300
    double ssd_6_4tb = 24063;
};

/** A server bill of materials (one column of Table 1). */
struct ServerConfig
{
    std::string name;
    unsigned cpus = 0;
    unsigned dram_8gb = 0;
    unsigned dram_16gb = 0;
    unsigned nic_10g = 0;
    unsigned nic_40g = 0;

    double price(const ComponentPrices &p = {}) const;
    /** Installed NIC bandwidth in Gbps. */
    double totalGbps() const;
    unsigned cores() const { return cpus * 18; }
    /** Installed memory in GB. */
    unsigned memoryGb() const
    {
        return dram_8gb * 8 + dram_16gb * 16;
    }
};

/**
 * Per-core network demand (Section 3): 380 Mbps per core from the
 * cloud-provider measurement study, reported by the paper in binary
 * Gbps (divide by 1024) — 72 cores => 26.72 Gbps.
 */
double requiredGbps(unsigned cores);

/** The four server types of Table 1. */
ServerConfig elvisServer();
ServerConfig vrioVmHost();
ServerConfig lightIoHost();
ServerConfig heavyIoHost();

/** One rack setup of Table 2. */
struct RackSetup
{
    std::string name;
    std::vector<ServerConfig> servers;

    double price(const ComponentPrices &p = {}) const;
    unsigned vmCores(const ComponentPrices &p = {}) const;
};

/** Elvis rack: @p n identical Elvis servers. */
RackSetup elvisRack(unsigned n);
/**
 * vRIO rack replacing @p n Elvis servers: per Section 3, 3 servers
 * become 2 VMhosts + 1 light IOhost, and 6 become 4 VMhosts + 1
 * heavy IOhost.  Only n in {3, 6} correspond to the paper's setups.
 */
RackSetup vrioRack(unsigned n);

/** Fig. 3: SSD consolidation pricing. */
struct SsdComparison
{
    unsigned elvis_drives;
    unsigned vrio_drives;
    double elvis_price;
    double vrio_price;
    /** vRIO price relative to Elvis (the Fig. 3 y-axis). */
    double relative() const { return vrio_price / elvis_price; }
};

/**
 * Price an e => v drive consolidation on an n-server rack (n in
 * {3, 6}) using 3.2TB or 6.4TB drives.  vRIO's drives move to the
 * IOhost, which gains one 2x40G NIC per 80 Gbps of drive bandwidth
 * (SX300: 21.6 Gbps per drive).
 */
SsdComparison ssdConsolidation(unsigned n, unsigned vrio_drives,
                               bool big_drives,
                               const ComponentPrices &p = {});

} // namespace vrio::cost

#endif // VRIO_COST_RACK_COST_HPP
