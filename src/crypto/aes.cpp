#include "crypto/aes.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace vrio::crypto {

namespace {

const uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16};

struct InvSbox
{
    uint8_t table[256];
    InvSbox()
    {
        for (int i = 0; i < 256; ++i)
            table[kSbox[i]] = uint8_t(i);
    }
};

/** Thread-safe lazy init (magic static) for parallel sweep workers. */
const uint8_t *
invSbox()
{
    static const InvSbox inv;
    return inv.table;
}

inline uint8_t
xtime(uint8_t x)
{
    return uint8_t((x << 1) ^ ((x >> 7) * 0x1b));
}

inline uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    while (b) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

inline uint32_t
subWord(uint32_t w)
{
    return uint32_t(kSbox[w >> 24]) << 24 |
           uint32_t(kSbox[(w >> 16) & 0xff]) << 16 |
           uint32_t(kSbox[(w >> 8) & 0xff]) << 8 |
           uint32_t(kSbox[w & 0xff]);
}

inline uint32_t
rotWord(uint32_t w)
{
    return w << 8 | w >> 24;
}

} // namespace

Aes::Aes(std::span<const uint8_t> key)
{
    int nk;
    switch (key.size()) {
      case 16:
        nk = 4;
        nr = 10;
        break;
      case 24:
        nk = 6;
        nr = 12;
        break;
      case 32:
        nk = 8;
        nr = 14;
        break;
      default:
        vrio_panic("AES key must be 16/24/32 bytes, got ", key.size());
    }

    for (int i = 0; i < nk; ++i) {
        rk[i] = uint32_t(key[4 * i]) << 24 |
                uint32_t(key[4 * i + 1]) << 16 |
                uint32_t(key[4 * i + 2]) << 8 | uint32_t(key[4 * i + 3]);
    }
    uint8_t rcon = 0x01;
    int total = 4 * (nr + 1);
    for (int i = nk; i < total; ++i) {
        uint32_t temp = rk[i - 1];
        if (i % nk == 0) {
            temp = subWord(rotWord(temp)) ^ (uint32_t(rcon) << 24);
            rcon = xtime(rcon);
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp);
        }
        rk[i] = rk[i - nk] ^ temp;
    }
}

void
Aes::encryptBlock(uint8_t b[kBlockSize]) const
{
    auto addRoundKey = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            uint32_t w = rk[4 * round + c];
            b[4 * c] ^= uint8_t(w >> 24);
            b[4 * c + 1] ^= uint8_t(w >> 16);
            b[4 * c + 2] ^= uint8_t(w >> 8);
            b[4 * c + 3] ^= uint8_t(w);
        }
    };
    auto subBytes = [&]() {
        for (int i = 0; i < 16; ++i)
            b[i] = kSbox[b[i]];
    };
    auto shiftRows = [&]() {
        uint8_t t;
        // row 1: shift left by 1
        t = b[1]; b[1] = b[5]; b[5] = b[9]; b[9] = b[13]; b[13] = t;
        // row 2: shift left by 2
        std::swap(b[2], b[10]);
        std::swap(b[6], b[14]);
        // row 3: shift left by 3
        t = b[15]; b[15] = b[11]; b[11] = b[7]; b[7] = b[3]; b[3] = t;
    };
    auto mixColumns = [&]() {
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = b + 4 * c;
            uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = uint8_t(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
            col[1] = uint8_t(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
            col[2] = uint8_t(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
            col[3] = uint8_t((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
        }
    };

    addRoundKey(0);
    for (int round = 1; round < nr; ++round) {
        subBytes();
        shiftRows();
        mixColumns();
        addRoundKey(round);
    }
    subBytes();
    shiftRows();
    addRoundKey(nr);
}

void
Aes::decryptBlock(uint8_t b[kBlockSize]) const
{
    auto addRoundKey = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            uint32_t w = rk[4 * round + c];
            b[4 * c] ^= uint8_t(w >> 24);
            b[4 * c + 1] ^= uint8_t(w >> 16);
            b[4 * c + 2] ^= uint8_t(w >> 8);
            b[4 * c + 3] ^= uint8_t(w);
        }
    };
    auto invSubBytes = [&, inv = invSbox()]() {
        for (int i = 0; i < 16; ++i)
            b[i] = inv[b[i]];
    };
    auto invShiftRows = [&]() {
        uint8_t t;
        // row 1: shift right by 1
        t = b[13]; b[13] = b[9]; b[9] = b[5]; b[5] = b[1]; b[1] = t;
        // row 2: shift right by 2
        std::swap(b[2], b[10]);
        std::swap(b[6], b[14]);
        // row 3: shift right by 3
        t = b[3]; b[3] = b[7]; b[7] = b[11]; b[11] = b[15]; b[15] = t;
    };
    auto invMixColumns = [&]() {
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = b + 4 * c;
            uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = uint8_t(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                             gmul(a3, 9));
            col[1] = uint8_t(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                             gmul(a3, 13));
            col[2] = uint8_t(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                             gmul(a3, 11));
            col[3] = uint8_t(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                             gmul(a3, 14));
        }
    };

    addRoundKey(nr);
    for (int round = nr - 1; round >= 1; --round) {
        invShiftRows();
        invSubBytes();
        addRoundKey(round);
        invMixColumns();
    }
    invShiftRows();
    invSubBytes();
    addRoundKey(0);
}

} // namespace vrio::crypto
