#include "crypto/modes.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace vrio::crypto {

Bytes
pkcs7Pad(std::span<const uint8_t> data)
{
    size_t pad = Aes::kBlockSize - data.size() % Aes::kBlockSize;
    Bytes out(data.begin(), data.end());
    out.insert(out.end(), pad, uint8_t(pad));
    return out;
}

bool
pkcs7Unpad(std::span<const uint8_t> data, Bytes &out)
{
    out.clear();
    if (data.empty() || data.size() % Aes::kBlockSize != 0)
        return false;
    uint8_t pad = data.back();
    if (pad == 0 || pad > Aes::kBlockSize || pad > data.size())
        return false;
    for (size_t i = data.size() - pad; i < data.size(); ++i) {
        if (data[i] != pad)
            return false;
    }
    out.assign(data.begin(), data.end() - pad);
    return true;
}

Bytes
cbcEncrypt(const Aes &aes, const Iv &iv, std::span<const uint8_t> plaintext)
{
    Bytes buf = pkcs7Pad(plaintext);
    const uint8_t *prev = iv.data();
    for (size_t off = 0; off < buf.size(); off += Aes::kBlockSize) {
        for (size_t i = 0; i < Aes::kBlockSize; ++i)
            buf[off + i] ^= prev[i];
        aes.encryptBlock(buf.data() + off);
        prev = buf.data() + off;
    }
    return buf;
}

bool
cbcDecrypt(const Aes &aes, const Iv &iv, std::span<const uint8_t> ciphertext,
           Bytes &out)
{
    out.clear();
    if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0)
        return false;
    Bytes buf(ciphertext.begin(), ciphertext.end());
    Bytes prev(iv.begin(), iv.end());
    for (size_t off = 0; off < buf.size(); off += Aes::kBlockSize) {
        Bytes cipher_block(buf.begin() + off,
                           buf.begin() + off + Aes::kBlockSize);
        aes.decryptBlock(buf.data() + off);
        for (size_t i = 0; i < Aes::kBlockSize; ++i)
            buf[off + i] ^= prev[i];
        prev = std::move(cipher_block);
    }
    return pkcs7Unpad(buf, out);
}

Bytes
ctrCrypt(const Aes &aes, uint64_t nonce, std::span<const uint8_t> data)
{
    Bytes out(data.begin(), data.end());
    uint8_t counter_block[Aes::kBlockSize];
    uint8_t keystream[Aes::kBlockSize];
    uint64_t counter = 0;
    for (size_t off = 0; off < out.size(); off += Aes::kBlockSize) {
        // Counter block: 8-byte nonce || 8-byte big-endian counter.
        for (int i = 0; i < 8; ++i)
            counter_block[i] = uint8_t(nonce >> (8 * (7 - i)));
        for (int i = 0; i < 8; ++i)
            counter_block[8 + i] = uint8_t(counter >> (8 * (7 - i)));
        std::memcpy(keystream, counter_block, Aes::kBlockSize);
        aes.encryptBlock(keystream);
        size_t n = std::min(size_t(Aes::kBlockSize), out.size() - off);
        for (size_t i = 0; i < n; ++i)
            out[off + i] ^= keystream[i];
        ++counter;
    }
    return out;
}

} // namespace vrio::crypto
