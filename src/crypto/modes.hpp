/**
 * @file
 * AES block cipher modes: CBC (with PKCS#7 padding) and CTR.
 *
 * The interposition encryption service uses CBC for block-device
 * payloads (matching "AES-256 ... through standard Linux APIs" in the
 * imbalance experiment) and CTR for packet payloads, which must not
 * grow.
 */
#ifndef VRIO_CRYPTO_MODES_HPP
#define VRIO_CRYPTO_MODES_HPP

#include "crypto/aes.hpp"
#include "util/byte_buffer.hpp"

namespace vrio::crypto {

/** 16-byte initialization vector. */
using Iv = std::array<uint8_t, Aes::kBlockSize>;

/** PKCS#7: pad to a whole number of blocks (always adds 1..16 bytes). */
Bytes pkcs7Pad(std::span<const uint8_t> data);

/**
 * Remove PKCS#7 padding.  Returns false (and leaves @p out empty) if
 * the padding is malformed.
 */
bool pkcs7Unpad(std::span<const uint8_t> data, Bytes &out);

/** CBC-encrypt @p plaintext (PKCS#7 padded internally). */
Bytes cbcEncrypt(const Aes &aes, const Iv &iv,
                 std::span<const uint8_t> plaintext);

/**
 * CBC-decrypt and strip padding; returns false on malformed input
 * (not a whole number of blocks, or bad padding).
 */
bool cbcDecrypt(const Aes &aes, const Iv &iv,
                std::span<const uint8_t> ciphertext, Bytes &out);

/**
 * CTR keystream XOR (encrypt == decrypt); output length equals input
 * length.  @p nonce seeds the counter block.
 */
Bytes ctrCrypt(const Aes &aes, uint64_t nonce,
               std::span<const uint8_t> data);

} // namespace vrio::crypto

#endif // VRIO_CRYPTO_MODES_HPP
