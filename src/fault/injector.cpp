#include "fault/injector.hpp"

#include <algorithm>

#include "models/vrio.hpp"
#include "util/logging.hpp"

namespace vrio::fault {

FaultInjector::FaultInjector(sim::Simulation &sim, std::string name,
                             FaultPlan plan)
    : SimObject(sim, std::move(name)), plan_(std::move(plan)),
      rng(sim::Random(plan_.seed).split("fault")),
      burst_rng(sim::Random(plan_.seed).split("fault.burst"))
{
    static const char *const kKindNames[kNumFaultKinds] = {
        "drop",      "corrupt", "delay", "reorder",
        "burst_drop", "corrupt_payload", "outage", "stall",
        "wedge",     "port_down", "squeeze"};
    auto &m = sim.telemetry().metrics;
    auto &tr = sim.telemetry().tracer;
    tr_fault_track = tr.intern("fault");
    for (unsigned k = 0; k < kNumFaultKinds; ++k) {
        tm_injected[k] =
            &m.counter("fault.injected", {{"injector", this->name()},
                                          {"kind", kKindNames[k]}});
        tr_fault_names[k] =
            tr.intern(std::string("fault.") + kKindNames[k]);
    }
}

void
FaultInjector::noteFault(unsigned kind, uint64_t arg)
{
    tm_injected[kind]->inc();
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_fault_track, tr_fault_names[kind],
                   sim().events().now(), telemetry::cat::kFault, arg);
    }
}

FaultInjector::~FaultInjector()
{
    // Leave links usable if the injector dies first.
    for (net::Link *link : links)
        link->setFaultHook(nullptr);
}

void
FaultInjector::attachLink(net::Link &link)
{
    link.setFaultHook(this);
    link_index.emplace(&link, links.size());
    links.push_back(&link);
    burst_states.emplace_back();
}

void
FaultInjector::attachIoHost(iohost::IoHypervisor &hv)
{
    for (iohost::IoHypervisor *existing : iohvs)
        vrio_assert(existing != &hv, "IOhost attached twice");
    iohvs.push_back(&hv);
}

iohost::IoHypervisor &
FaultInjector::targetIoHost(unsigned iohost)
{
    vrio_assert(!iohvs.empty(), "no attached IOhost");
    return *iohvs[std::min<size_t>(iohost, iohvs.size() - 1)];
}

void
FaultInjector::attachRxRing(net::Nic &nic)
{
    rings.push_back(&nic);
}

void
FaultInjector::attachSwitch(net::Switch &sw)
{
    vrio_assert(!switch_ || switch_ == &sw,
                "injector already owns a switch");
    switch_ = &sw;
}

void
FaultInjector::attach(models::VrioModel &model)
{
    for (net::Link *link : model.channelLinks())
        attachLink(*link);
    for (unsigned k = 0; k < model.rackIoHostCount(); ++k)
        attachIoHost(model.rackHypervisor(k));
    for (net::Nic *nic : model.iohostClientNics())
        attachRxRing(*nic);
}

void
FaultInjector::arm()
{
    vrio_assert(!armed, "injector armed twice");
    armed = true;
    vrio_assert(plan_.outages.empty() || !iohvs.empty(),
                "outage windows need an attached IOhost");
    vrio_assert(plan_.stalls.empty() || !iohvs.empty(),
                "stall windows need an attached IOhost");
    vrio_assert(plan_.squeezes.empty() || !rings.empty(),
                "squeeze windows need attached RX rings");
    vrio_assert(plan_.wedges.empty() || !iohvs.empty(),
                "wedge windows need an attached IOhost");
    vrio_assert(plan_.port_downs.empty() || switch_,
                "port-down windows need an attached switch");

    auto &eq = sim().events();
    // A window behind now() is a plan bug (the caller armed too late
    // or mis-set an absolute tick); silently skipping it yields a run
    // that quietly measures nothing, so reject the plan outright.
    auto checkFuture = [&](sim::Tick at, const char *what) {
        if (at < eq.now())
            vrio_fatal("fault plan ", what, " scheduled at tick ", at,
                       ", which is already in the past (now ", eq.now(),
                       "); arm() before the window opens");
    };
    // Coalesce same-IOhost outage windows that overlap or touch.
    // Scheduling them naively pairs each begin with its own end, so
    // the FIRST window's end would bring the host back online while a
    // later overlapping window still holds it down — the host flickers
    // alive mid-crash and double-counts the outage.  One begin/end
    // pair per maximal downtime interval instead.
    std::vector<OutageWindow> outages = plan_.outages;
    std::stable_sort(outages.begin(), outages.end(),
                     [](const OutageWindow &a, const OutageWindow &b) {
                         return a.iohost != b.iohost
                                    ? a.iohost < b.iohost
                                    : a.at < b.at;
                     });
    std::vector<OutageWindow> merged;
    for (const OutageWindow &w : outages) {
        if (!merged.empty() && merged.back().iohost == w.iohost &&
            w.at <= merged.back().at + merged.back().duration) {
            OutageWindow &m = merged.back();
            sim::Tick end = std::max(m.at + m.duration,
                                     w.at + w.duration);
            m.duration = end - m.at;
            ++outages_coalesced;
            continue;
        }
        merged.push_back(w);
    }
    for (const OutageWindow &w : merged) {
        checkFuture(w.at, "outage");
        eq.scheduleAt(w.at, [this, w]() { beginOutage(w); });
        eq.scheduleAt(w.at + w.duration, [this, w]() { endOutage(w); });
    }
    for (const StallWindow &w : plan_.stalls) {
        checkFuture(w.at, "stall");
        eq.scheduleAt(w.at, [this, w]() { beginStall(w); });
    }
    for (const RxSqueezeWindow &w : plan_.squeezes) {
        checkFuture(w.at, "squeeze");
        eq.scheduleAt(w.at, [this, w]() { beginSqueeze(w); });
        eq.scheduleAt(w.at + w.duration, [this]() { endSqueeze(); });
    }
    for (const WedgeWindow &w : plan_.wedges) {
        checkFuture(w.at, "wedge");
        eq.scheduleAt(w.at, [this, w]() { beginWedge(w); });
    }
    for (const PortDownWindow &w : plan_.port_downs) {
        checkFuture(w.at, "port-down");
        eq.scheduleAt(w.at, [this, w]() { beginPortDown(w); });
    }
}

void
FaultInjector::beginOutage(const OutageWindow &w)
{
    ++outage_count;
    statCounter("outages").inc();
    noteFault(kOutage, w.iohost);
    targetIoHost(w.iohost).setOffline(true);
}

void
FaultInjector::endOutage(const OutageWindow &w)
{
    targetIoHost(w.iohost).setOffline(false);
}

void
FaultInjector::beginStall(const StallWindow &w)
{
    statCounter("stalls").inc();
    noteFault(kStall, 0);
    // Occupy the sidecore with dead time; queued work resumes after.
    targetIoHost(w.iohost).workerCore(w.worker).runFor(w.duration,
                                                       []() {});
}

void
FaultInjector::beginWedge(const WedgeWindow &w)
{
    ++wedge_count;
    statCounter("wedges").inc();
    noteFault(kWedge, 0);
    // Unlike beginStall's bounded dead time, a wedge pauses the worker
    // core's resource outright: jobs queue behind it forever.  Nothing
    // un-pauses it except clearWedge().
    targetIoHost(w.iohost).workerCore(w.worker).resource().setPaused(
        true);
}

void
FaultInjector::clearWedge(unsigned worker, unsigned iohost)
{
    targetIoHost(iohost).workerCore(worker).resource().setPaused(false);
}

void
FaultInjector::beginPortDown(const PortDownWindow &w)
{
    // Resolve the victim MAC to a port now, not at plan time: ports
    // are learned from traffic, so the lookup needs warmup behind it.
    std::optional<size_t> port = switch_->portOf(w.victim);
    if (!port) {
        vrio_warn("port-down victim MAC not in the switch table; "
                  "no traffic has been seen from it — skipping");
        return;
    }
    ++port_down_count;
    statCounter("port_downs").inc();
    noteFault(kPortDown, 0);
    switch_->setPortDown(*port, true);
    sim().events().schedule(w.duration, [this, p = *port]() {
        switch_->setPortDown(p, false);
    });
}

void
FaultInjector::beginSqueeze(const RxSqueezeWindow &w)
{
    statCounter("squeezes").inc();
    noteFault(kSqueeze, 0);
    for (net::Nic *nic : rings)
        nic->setRxRingLimit(w.limit);
}

void
FaultInjector::endSqueeze()
{
    for (net::Nic *nic : rings)
        nic->setRxRingLimit(0);
}

bool
FaultInjector::burstStep(net::Link &link, int direction)
{
    auto it = link_index.find(&link);
    vrio_assert(it != link_index.end(), "hook from unattached link");
    bool &bad = burst_states[it->second].bad[direction & 1];

    const GilbertElliott &ge = plan_.burst;
    // The current state decides this frame's fate; the chain then
    // advances, so a bad-state residency of k frames loses k frames
    // in a row (bad_loss = 1) — mean burst length 1/q.
    double loss = bad ? ge.bad_loss : ge.good_loss;
    bool lost = burst_rng.uniform() < loss;
    double flip = bad ? ge.q : ge.p;
    if (burst_rng.uniform() < flip)
        bad = !bad;
    return lost;
}

net::FaultVerdict
FaultInjector::onTransmit(net::Link &link, int direction,
                          const net::Frame &)
{
    net::FaultVerdict v;
    // Correlated burst loss runs first: a frame the channel's bad
    // state eats never reaches the i.i.d. fault lottery.
    if (plan_.burst.active() && burstStep(link, direction)) {
        ++burst_drops;
        statCounter("injected.burst_drop").inc();
        tm_injected[kBurstDrop]->inc();
        v.kind = net::FaultVerdict::Kind::Drop;
        return v;
    }
    const LinkFaultSpec &spec = plan_.channel;
    // Inactive spec: no draw at all, so attaching a disarmed injector
    // cannot perturb anything downstream.
    if (!spec.active())
        return v;

    // One uniform draw decides the frame's fate; the fault classes
    // partition [0, 1).
    double u = rng.uniform();
    double acc = spec.drop_rate;
    if (u < acc) {
        ++drops;
        statCounter("injected.drop").inc();
        tm_injected[kDrop]->inc();
        v.kind = net::FaultVerdict::Kind::Drop;
        return v;
    }
    acc += spec.corrupt_rate;
    if (u < acc) {
        ++corrupts;
        statCounter("injected.corrupt").inc();
        tm_injected[kCorrupt]->inc();
        v.kind = net::FaultVerdict::Kind::Corrupt;
        return v;
    }
    acc += spec.delay_rate;
    if (u < acc) {
        ++delays;
        statCounter("injected.delay").inc();
        tm_injected[kDelay]->inc();
        v.kind = net::FaultVerdict::Kind::Delay;
        v.extra_delay =
            sim::Tick(rng.exponential(double(spec.delay_mean)));
        return v;
    }
    acc += spec.reorder_rate;
    if (u < acc) {
        ++reorders;
        statCounter("injected.reorder").inc();
        tm_injected[kReorder]->inc();
        // Holding this frame for a fixed window lets frames serialized
        // behind it arrive first.
        v.kind = net::FaultVerdict::Kind::Delay;
        v.extra_delay = spec.reorder_window;
        return v;
    }
    // New classes partition after the old ones, so a plan that sets
    // none of them reproduces the historical draw boundaries exactly.
    acc += spec.corrupt_payload_rate;
    if (u < acc) {
        ++payload_corrupts;
        statCounter("injected.corrupt_payload").inc();
        tm_injected[kPayloadCorrupt]->inc();
        v.kind = net::FaultVerdict::Kind::CorruptPayload;
        return v;
    }
    return v;
}

} // namespace vrio::fault
