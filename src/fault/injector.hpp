/**
 * @file
 * Deterministic fault injector.
 *
 * Realizes a fault::FaultPlan against live simulation objects:
 * interposes on net::Link transmissions (drop / corrupt / delay /
 * reorder), clamps NIC RX rings, stalls sidecores, and crashes the
 * I/O hypervisor for scripted windows.
 *
 * Determinism contract: all randomness comes from a private RNG
 * stream derived as sim::Random(plan.seed).split("fault"), so the
 * workload RNG sees exactly the draws it would see in a fault-free
 * run.  An injector built from an empty plan — or one whose link spec
 * is all-zero — makes no draws and schedules nothing, leaving the
 * event schedule bit-identical to a run with no injector attached.
 *
 * Every injected fault and triggered window is counted under
 * "<name>.*" in the simulation's stats::Registry.
 */
#ifndef VRIO_FAULT_INJECTOR_HPP
#define VRIO_FAULT_INJECTOR_HPP

#include <unordered_map>
#include <vector>

#include "fault/plan.hpp"
#include "iohost/io_hypervisor.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace vrio::models {
class VrioModel;
}

namespace vrio::fault {

class FaultInjector : public sim::SimObject, public net::LinkFaultHook
{
  public:
    FaultInjector(sim::Simulation &sim, std::string name, FaultPlan plan);
    ~FaultInjector() override;

    /** Apply the plan's channel spec to frames crossing @p link. */
    void attachLink(net::Link &link);

    /**
     * Target for outage, stall and wedge windows.  May be called once
     * per rack IOhost; a window's `iohost` field indexes the attach
     * order (out-of-range indexes clamp to the last attached).
     */
    void attachIoHost(iohost::IoHypervisor &iohv);

    /** Target for RX-ring squeeze windows. */
    void attachRxRing(net::Nic &nic);

    /** Target for port-down windows. */
    void attachSwitch(net::Switch &sw);

    /**
     * Convenience wiring for the vRIO model: every T-channel link,
     * the I/O hypervisor, and every IOhost-side client NIC.
     */
    void attach(models::VrioModel &model);

    /**
     * Schedule the plan's timeline (outages, stalls, squeezes) at
     * absolute simulation ticks.  Call once, after attaching targets
     * and before any window opens (a window already in the past is a
     * plan bug and fails fast).  Same-IOhost outage windows that
     * overlap or touch are coalesced into one downtime interval — see
     * outagesCoalesced().
     */
    void arm();

    const FaultPlan &plan() const { return plan_; }

    /**
     * Un-wedge a worker wedged by a WedgeWindow.  Nothing in the plan
     * ever does this — a wedge is permanent by definition; recovery
     * must come from the watchdog re-steering around the dead worker.
     * Tests call it to exercise the revival path.
     */
    void clearWedge(unsigned worker, unsigned iohost = 0);

    // -- injection counts (also in the stats registry) ---------------
    uint64_t framesDropped() const { return drops; }
    uint64_t framesCorrupted() const { return corrupts; }
    uint64_t framesDelayed() const { return delays; }
    uint64_t framesReordered() const { return reorders; }
    /** Frames lost to the Gilbert-Elliott burst process. */
    uint64_t framesBurstDropped() const { return burst_drops; }
    /** Frames delivered with an FCS-passing payload flip. */
    uint64_t framesPayloadCorrupted() const { return payload_corrupts; }
    uint64_t outagesTriggered() const { return outage_count; }
    uint64_t wedgesTriggered() const { return wedge_count; }
    uint64_t portDownsTriggered() const { return port_down_count; }
    /** Same-IOhost outage windows merged into an earlier one by arm(). */
    uint64_t outagesCoalesced() const { return outages_coalesced; }

    // net::LinkFaultHook
    net::FaultVerdict onTransmit(net::Link &link, int direction,
                                 const net::Frame &frame) override;

  private:
    FaultPlan plan_;
    /** Private stream; see the determinism contract above. */
    sim::Random rng;
    /**
     * Separate substream for the burst chains so enabling
     * Gilbert-Elliott never shifts the i.i.d. spec's draw sequence
     * (and vice versa).
     */
    sim::Random burst_rng;

    /** Per-direction Markov channel state for one attached link. */
    struct BurstState
    {
        bool bad[2] = {false, false};
    };

    std::vector<net::Link *> links;
    /** Parallel to `links`; located via linkIndex() in the hot hook. */
    std::vector<BurstState> burst_states;
    std::unordered_map<const net::Link *, size_t> link_index;
    std::vector<net::Nic *> rings;
    /** Attached IOhosts in attach order (one in the legacy wiring). */
    std::vector<iohost::IoHypervisor *> iohvs;
    net::Switch *switch_ = nullptr;
    bool armed = false;

    uint64_t drops = 0;
    uint64_t corrupts = 0;
    uint64_t delays = 0;
    uint64_t reorders = 0;
    uint64_t burst_drops = 0;
    uint64_t payload_corrupts = 0;
    uint64_t outage_count = 0;
    uint64_t wedge_count = 0;
    uint64_t port_down_count = 0;
    uint64_t outages_coalesced = 0;

    /** Fault kinds as telemetry labels (`fault.injected{kind=...}`). */
    enum FaultKindIdx : unsigned {
        kDrop,
        kCorrupt,
        kDelay,
        kReorder,
        kBurstDrop,
        kPayloadCorrupt,
        kOutage,
        kStall,
        kWedge,
        kPortDown,
        kSqueeze,
        kNumFaultKinds
    };
    telemetry::Counter *tm_injected[kNumFaultKinds];
    uint16_t tr_fault_track;
    uint16_t tr_fault_names[kNumFaultKinds];

    /** Counter bump + (when tracing) a fault instant. */
    void noteFault(unsigned kind, uint64_t arg);

    /** True when the burst chain (state advanced) eats this frame. */
    bool burstStep(net::Link &link, int direction);

    /** Resolve a window's `iohost` index (clamped) to its target. */
    iohost::IoHypervisor &targetIoHost(unsigned iohost);

    void beginOutage(const OutageWindow &w);
    void endOutage(const OutageWindow &w);
    void beginStall(const StallWindow &w);
    void beginSqueeze(const RxSqueezeWindow &w);
    void endSqueeze();
    void beginWedge(const WedgeWindow &w);
    /** Resolves the victim port and schedules its own revival. */
    void beginPortDown(const PortDownWindow &w);
};

} // namespace vrio::fault

#endif // VRIO_FAULT_INJECTOR_HPP
