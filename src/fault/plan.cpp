#include "fault/plan.hpp"

#include "util/logging.hpp"

namespace vrio::fault {

namespace {

void
checkRate(double p)
{
    vrio_assert(p >= 0.0 && p <= 1.0, "fault rate out of range: ", p);
}

} // namespace

FaultPlan &
FaultPlan::dropRate(double p)
{
    checkRate(p);
    channel.drop_rate = p;
    return *this;
}

FaultPlan &
FaultPlan::corruptRate(double p)
{
    checkRate(p);
    channel.corrupt_rate = p;
    return *this;
}

FaultPlan &
FaultPlan::delayRate(double p, sim::Tick mean)
{
    checkRate(p);
    channel.delay_rate = p;
    channel.delay_mean = mean;
    return *this;
}

FaultPlan &
FaultPlan::reorderRate(double p, sim::Tick window)
{
    checkRate(p);
    channel.reorder_rate = p;
    channel.reorder_window = window;
    return *this;
}

FaultPlan &
FaultPlan::killIoHost(sim::Tick at, sim::Tick duration)
{
    vrio_assert(duration > 0, "outage needs a positive duration");
    outages.push_back(OutageWindow{at, duration});
    return *this;
}

FaultPlan &
FaultPlan::stallSidecore(unsigned worker, sim::Tick at, sim::Tick duration)
{
    vrio_assert(duration > 0, "stall needs a positive duration");
    stalls.push_back(StallWindow{worker, at, duration});
    return *this;
}

FaultPlan &
FaultPlan::squeezeRxRing(sim::Tick at, sim::Tick duration, size_t limit)
{
    vrio_assert(duration > 0, "squeeze needs a positive duration");
    vrio_assert(limit > 0, "squeeze limit must leave some ring");
    squeezes.push_back(RxSqueezeWindow{at, duration, limit});
    return *this;
}

bool
FaultPlan::empty() const
{
    return !channel.active() && outages.empty() && stalls.empty() &&
           squeezes.empty();
}

} // namespace vrio::fault
