#include "fault/plan.hpp"

#include "util/logging.hpp"

namespace vrio::fault {

namespace {

void
checkRate(double p)
{
    vrio_assert(p >= 0.0 && p <= 1.0, "fault rate out of range: ", p);
}

} // namespace

double
GilbertElliott::steadyStateLoss() const
{
    if (p <= 0.0)
        return good_loss;
    double pi_bad = p / (p + q);
    return pi_bad * bad_loss + (1.0 - pi_bad) * good_loss;
}

GilbertElliott
GilbertElliott::forAverageLoss(double avg_loss, double mean_burst)
{
    vrio_assert(avg_loss >= 0.0 && avg_loss < 1.0,
                "average loss out of range: ", avg_loss);
    vrio_assert(mean_burst >= 1.0,
                "mean burst below one frame: ", mean_burst);
    GilbertElliott ge;
    ge.good_loss = 0.0;
    ge.bad_loss = 1.0;
    ge.q = 1.0 / mean_burst;
    // pi_bad = p / (p + q) must equal avg_loss.
    ge.p = avg_loss > 0.0 ? ge.q * avg_loss / (1.0 - avg_loss) : 0.0;
    return ge;
}

FaultPlan &
FaultPlan::dropRate(double p)
{
    checkRate(p);
    channel.drop_rate = p;
    return *this;
}

FaultPlan &
FaultPlan::corruptRate(double p)
{
    checkRate(p);
    channel.corrupt_rate = p;
    return *this;
}

FaultPlan &
FaultPlan::delayRate(double p, sim::Tick mean)
{
    checkRate(p);
    channel.delay_rate = p;
    channel.delay_mean = mean;
    return *this;
}

FaultPlan &
FaultPlan::reorderRate(double p, sim::Tick window)
{
    checkRate(p);
    channel.reorder_rate = p;
    channel.reorder_window = window;
    return *this;
}

FaultPlan &
FaultPlan::burstLoss(GilbertElliott model)
{
    checkRate(model.p);
    checkRate(model.q);
    checkRate(model.good_loss);
    checkRate(model.bad_loss);
    vrio_assert(model.p <= 0.0 || model.q > 0.0,
                "burst model can never leave the bad state");
    burst = model;
    return *this;
}

FaultPlan &
FaultPlan::burstLoss(double avg_loss, double mean_burst)
{
    return burstLoss(GilbertElliott::forAverageLoss(avg_loss,
                                                    mean_burst));
}

FaultPlan &
FaultPlan::corruptPayloadRate(double p)
{
    checkRate(p);
    channel.corrupt_payload_rate = p;
    return *this;
}

FaultPlan &
FaultPlan::killIoHost(sim::Tick at, sim::Tick duration, unsigned iohost)
{
    vrio_assert(duration > 0, "outage needs a positive duration");
    outages.push_back(OutageWindow{at, duration, iohost});
    return *this;
}

FaultPlan &
FaultPlan::stallSidecore(unsigned worker, sim::Tick at, sim::Tick duration,
                         unsigned iohost)
{
    vrio_assert(duration > 0, "stall needs a positive duration");
    stalls.push_back(StallWindow{worker, at, duration, iohost});
    return *this;
}

FaultPlan &
FaultPlan::squeezeRxRing(sim::Tick at, sim::Tick duration, size_t limit)
{
    vrio_assert(duration > 0, "squeeze needs a positive duration");
    vrio_assert(limit > 0, "squeeze limit must leave some ring");
    squeezes.push_back(RxSqueezeWindow{at, duration, limit});
    return *this;
}

FaultPlan &
FaultPlan::wedgeWorker(unsigned worker, sim::Tick at, unsigned iohost)
{
    wedges.push_back(WedgeWindow{worker, at, iohost});
    return *this;
}

FaultPlan &
FaultPlan::killSwitchPort(net::MacAddress victim, sim::Tick at,
                          sim::Tick duration)
{
    vrio_assert(duration > 0, "port-down needs a positive duration");
    port_downs.push_back(PortDownWindow{victim, at, duration});
    return *this;
}

bool
FaultPlan::empty() const
{
    return !channel.active() && !burst.active() && outages.empty() &&
           stalls.empty() && squeezes.empty() && wedges.empty() &&
           port_downs.empty();
}

} // namespace vrio::fault
