/**
 * @file
 * Declarative description of a fault-injection scenario.
 *
 * A FaultPlan is pure data: per-link frame fault rates plus a scripted
 * timeline of structural faults (IOhost outages, sidecore stalls, RX
 * ring squeezes).  It is consumed by fault::FaultInjector, which
 * attaches to the simulated hardware and realizes the plan
 * deterministically from `seed` — the plan itself never draws random
 * numbers.
 *
 * The paper's fault model (Section 4.5) covers Ethernet frame loss on
 * the unreliable T-channel and IOhost RX ring overflow; corruption,
 * delay/reorder, sidecore stalls, and whole-IOhost crash/restart are
 * extrapolations the simulator adds so resilience can be explored
 * beyond what the paper measured (see DESIGN.md, "Fault model").
 */
#ifndef VRIO_FAULT_PLAN_HPP
#define VRIO_FAULT_PLAN_HPP

#include <cstddef>
#include <vector>

#include "net/mac.hpp"
#include "sim/ticks.hpp"

namespace vrio::fault {

/** Per-frame fault probabilities for an interposed link. */
struct LinkFaultSpec
{
    /** Frame vanishes in flight. */
    double drop_rate = 0.0;
    /** Frame arrives with a failing FCS (receiver drops it). */
    double corrupt_rate = 0.0;
    /** Frame is delayed by an exponential extra latency. */
    double delay_rate = 0.0;
    /** Extra-latency mean for delay faults. */
    sim::Tick delay_mean = sim::Tick(100) * sim::kMicrosecond;
    /**
     * Frame is held back by a fixed window so frames serialized after
     * it overtake it (the DES analogue of path reordering).
     */
    double reorder_rate = 0.0;
    sim::Tick reorder_window = sim::Tick(50) * sim::kMicrosecond;
    /**
     * Byzantine corruption: a payload byte flips but the FCS still
     * passes, so the frame sails through every link-level check and
     * is caught only by the transport-layer end-to-end checksum.
     */
    double corrupt_payload_rate = 0.0;

    /** Whether this spec can affect any frame at all. */
    bool active() const
    {
        return drop_rate > 0.0 || corrupt_rate > 0.0 ||
               delay_rate > 0.0 || reorder_rate > 0.0 ||
               corrupt_payload_rate > 0.0;
    }
};

/**
 * Two-state Markov (Gilbert-Elliott) correlated burst-loss model.
 *
 * Each interposed link direction carries a hidden good/bad channel
 * state; every frame is lost with the current state's loss
 * probability, then the chain transitions.  Unlike the i.i.d.
 * LinkFaultSpec::drop_rate, losses cluster into bursts of mean length
 * 1/q frames, which is what trips TCP's fast-retransmit/timeout
 * machinery in ways uniform loss at the same average rate does not.
 */
struct GilbertElliott
{
    /** P(good -> bad) per frame. */
    double p = 0.0;
    /** P(bad -> good) per frame; mean bad-burst length is 1/q. */
    double q = 1.0;
    /** Frame-loss probability in the good state. */
    double good_loss = 0.0;
    /** Frame-loss probability in the bad state (classic Gilbert: 1). */
    double bad_loss = 1.0;

    /** Whether this model can ever lose a frame. */
    bool active() const
    {
        return (p > 0.0 && bad_loss > 0.0) || good_loss > 0.0;
    }

    /** Long-run fraction of frames lost. */
    double steadyStateLoss() const;

    /**
     * Parameterize for a long-run loss rate of @p avg_loss with mean
     * loss-burst length @p mean_burst frames (classic Gilbert:
     * bad_loss = 1, good_loss = 0).  Comparing this against an i.i.d.
     * drop_rate of @p avg_loss isolates the effect of correlation.
     */
    static GilbertElliott forAverageLoss(double avg_loss,
                                         double mean_burst);
};

/**
 * "Kill the IOhost at `at` for `duration`."  `iohost` selects the
 * victim among the injector's attached IOhosts (rack mode); 0 — the
 * default — is the historical single-IOhost target.
 */
struct OutageWindow
{
    sim::Tick at = 0;
    sim::Tick duration = 0;
    unsigned iohost = 0;
};

/** Steal a sidecore: worker `worker` executes nothing during the window. */
struct StallWindow
{
    unsigned worker = 0;
    sim::Tick at = 0;
    sim::Tick duration = 0;
    unsigned iohost = 0;
};

/** Clamp IOhost client RX rings to `limit` slots during the window. */
struct RxSqueezeWindow
{
    sim::Tick at = 0;
    sim::Tick duration = 0;
    size_t limit = 64;
};

/**
 * Wedge worker `worker` at `at`: unlike a StallWindow, the stall never
 * ends on its own — the worker stays dead until someone (a test, or
 * nobody) calls FaultInjector::clearWedge().  This is the fault the
 * IOhost watchdog exists to detect.
 */
struct WedgeWindow
{
    unsigned worker = 0;
    sim::Tick at = 0;
    unsigned iohost = 0;
};

/**
 * Kill the switch port that `victim` (a learned MAC) sits behind at
 * `at` for `duration`.  Traffic re-routes by flooding if another path
 * exists, and blackholes otherwise.
 */
struct PortDownWindow
{
    net::MacAddress victim;
    sim::Tick at = 0;
    sim::Tick duration = 0;
};

/**
 * A complete scenario.  Builder methods chain:
 *
 *   fault::FaultPlan plan;
 *   plan.seed = 7;
 *   plan.dropRate(1e-3)
 *       .killIoHost(2 * sim::kSecond, 500 * sim::kMillisecond);
 */
struct FaultPlan
{
    /**
     * Seed for the injector's private RNG stream.  The injector draws
     * from sim::Random(seed).split("fault"), never from the
     * simulation's workload RNG, so two runs that differ only in their
     * fault plan share an identical workload arrival schedule.
     */
    uint64_t seed = 1;

    /** Frame faults applied to every attached link (both directions). */
    LinkFaultSpec channel;

    /**
     * Correlated burst loss layered on every attached link; one
     * independent chain per link direction, all drawn from the
     * injector's dedicated "fault.burst" RNG substream.
     */
    GilbertElliott burst;

    std::vector<OutageWindow> outages;
    std::vector<StallWindow> stalls;
    std::vector<RxSqueezeWindow> squeezes;
    std::vector<WedgeWindow> wedges;
    std::vector<PortDownWindow> port_downs;

    FaultPlan &dropRate(double p);
    FaultPlan &corruptRate(double p);
    FaultPlan &delayRate(double p,
                         sim::Tick mean = sim::Tick(100) *
                                          sim::kMicrosecond);
    FaultPlan &reorderRate(double p,
                           sim::Tick window = sim::Tick(50) *
                                              sim::kMicrosecond);
    /** Install @p model as the correlated burst-loss process. */
    FaultPlan &burstLoss(GilbertElliott model);
    /** Classic Gilbert burst loss at a target average rate. */
    FaultPlan &burstLoss(double avg_loss, double mean_burst);
    /** FCS-passing payload corruption (see LinkFaultSpec). */
    FaultPlan &corruptPayloadRate(double p);
    FaultPlan &killIoHost(sim::Tick at, sim::Tick duration,
                          unsigned iohost = 0);
    FaultPlan &stallSidecore(unsigned worker, sim::Tick at,
                             sim::Tick duration, unsigned iohost = 0);
    FaultPlan &squeezeRxRing(sim::Tick at, sim::Tick duration,
                             size_t limit);
    /** Wedge a worker until FaultInjector::clearWedge (maybe never). */
    FaultPlan &wedgeWorker(unsigned worker, sim::Tick at,
                           unsigned iohost = 0);
    /** Down the switch port behind @p victim for @p duration. */
    FaultPlan &killSwitchPort(net::MacAddress victim, sim::Tick at,
                              sim::Tick duration);

    /** An all-zero plan injects nothing and perturbs nothing. */
    bool empty() const;
};

} // namespace vrio::fault

#endif // VRIO_FAULT_PLAN_HPP
