#include "hv/core.hpp"

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::hv {

Core::Core(sim::Simulation &sim, std::string name, double ghz)
    : SimObject(sim, std::move(name)), ghz_(ghz),
      res(sim.events(), this->name())
{
    vrio_assert(ghz > 0, "core clock must be positive");
}

void
Core::run(double cycles, sim::Resource::JobFn done)
{
    res.submit(sim::cyclesToTicks(cycles, ghz_), std::move(done));
}

void
Core::runPreempt(double cycles, sim::Resource::JobFn done)
{
    res.submitPreempt(sim::cyclesToTicks(cycles, ghz_), std::move(done));
}

void
Core::runFor(sim::Tick duration, sim::Resource::JobFn done)
{
    res.submit(duration, std::move(done));
}

Machine::Machine(sim::Simulation &sim, std::string name, MachineConfig cfg)
    : SimObject(sim, std::move(name)), cfg(cfg)
{
    vrio_assert(cfg.cores > 0, "machine needs at least one core");
    for (unsigned i = 0; i < cfg.cores; ++i) {
        cores.push_back(std::make_unique<Core>(
            sim, strFormat("%s.core%u", this->name().c_str(), i),
            cfg.ghz));
    }
}

Core &
Machine::core(unsigned i)
{
    vrio_assert(i < cores.size(), "core index ", i, " out of range on ",
                name());
    return *cores[i];
}

} // namespace vrio::hv
