/**
 * @file
 * CPU cores and machines.
 *
 * A Core is a single-server FIFO resource denominated in cycles at a
 * fixed clock.  Machines group cores; the paper's testbed machines
 * (IBM x3550/x3650, Section 5) are instantiated from these.
 */
#ifndef VRIO_HV_CORE_HPP
#define VRIO_HV_CORE_HPP

#include <memory>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace vrio::hv {

class Core : public sim::SimObject
{
  public:
    Core(sim::Simulation &sim, std::string name, double ghz);

    double ghz() const { return ghz_; }

    /** Execute @p cycles of work; @p done runs at completion. */
    void run(double cycles, sim::Resource::JobFn done);

    /**
     * Execute @p cycles ahead of the core's run queue when the core
     * is free (sim::Resource::submitPreempt): interrupt injection and
     * exit handling, which do not wait behind queued guest work.
     */
    void runPreempt(double cycles, sim::Resource::JobFn done);

    /** Execute @p duration of work (already in ticks). */
    void runFor(sim::Tick duration, sim::Resource::JobFn done);

    /** Underlying queueing resource (for utilization sampling). */
    sim::Resource &resource() { return res; }
    const sim::Resource &resource() const { return res; }

  private:
    double ghz_;
    sim::Resource res;
};

struct MachineConfig
{
    unsigned cores = 8;
    double ghz = 2.2;
    /** Memory visible to software on this machine (bytes). */
    size_t memory_bytes = size_t(56) * 1024 * 1024 * 1024;
};

class Machine : public sim::SimObject
{
  public:
    Machine(sim::Simulation &sim, std::string name, MachineConfig cfg);

    unsigned coreCount() const { return unsigned(cores.size()); }
    Core &core(unsigned i);
    const MachineConfig &config() const { return cfg; }

  private:
    MachineConfig cfg;
    std::vector<std::unique_ptr<Core>> cores;
};

} // namespace vrio::hv

#endif // VRIO_HV_CORE_HPP
