/**
 * @file
 * Virtualization-event accounting (the currency of the paper's
 * Table 3).
 *
 * Every I/O model wiring increments these counters as its
 * request-response path executes; `bench/tab03_interrupt_accounting`
 * replays one transaction per model and prints the table.
 */
#ifndef VRIO_HV_EVENTS_HPP
#define VRIO_HV_EVENTS_HPP

#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"

namespace vrio::hv {

/** Events charged against a single request-response transaction. */
enum class IoEvent {
    SyncExit,       ///< synchronous guest exit (trap to hypervisor)
    GuestInterrupt, ///< virtual interrupt handled by the guest
    Injection,      ///< hypervisor-mediated interrupt injection
    HostInterrupt,  ///< physical interrupt handled by the (VM)host
    IohostInterrupt,///< physical interrupt handled at the IOhost
    RequestTimeout, ///< request abandoned after retransmit exhaustion
    Failover,       ///< client re-homed its channel to a standby IOhost
    AdminCommand    ///< hypervisor-mediated NVMe admin command
};

struct IoEventCounts
{
    uint64_t sync_exits = 0;
    uint64_t guest_interrupts = 0;
    uint64_t injections = 0;
    uint64_t host_interrupts = 0;
    uint64_t iohost_interrupts = 0;
    // Recovery and setup events (not part of sum(): Table 3 counts
    // only the per-transaction virtualization events of the happy
    // path).
    uint64_t request_timeouts = 0;
    uint64_t failovers = 0;
    uint64_t admin_commands = 0;

    /**
     * Mirror every recorded event into per-VM registry series
     * (`hv.vm.<event>{vm=...}`).  Bound once at Vm construction;
     * unbound counts (bare IoEventCounts in tests) stay local.
     */
    void
    bindTelemetry(telemetry::MetricsRegistry &m,
                  const telemetry::Labels &labels)
    {
        tm_[0] = &m.counter("hv.vm.sync_exits", labels);
        tm_[1] = &m.counter("hv.vm.guest_interrupts", labels);
        tm_[2] = &m.counter("hv.vm.injections", labels);
        tm_[3] = &m.counter("hv.vm.host_interrupts", labels);
        tm_[4] = &m.counter("hv.vm.iohost_interrupts", labels);
        tm_[5] = &m.counter("hv.vm.request_timeouts", labels);
        tm_[6] = &m.counter("hv.vm.failovers", labels);
        tm_[7] = &m.counter("hv.vm.admin_commands", labels);
    }

    void
    record(IoEvent e, uint64_t n = 1)
    {
        if (tm_[0])
            tm_[unsigned(e)]->add(n);
        switch (e) {
          case IoEvent::SyncExit:
            sync_exits += n;
            break;
          case IoEvent::GuestInterrupt:
            guest_interrupts += n;
            break;
          case IoEvent::Injection:
            injections += n;
            break;
          case IoEvent::HostInterrupt:
            host_interrupts += n;
            break;
          case IoEvent::IohostInterrupt:
            iohost_interrupts += n;
            break;
          case IoEvent::RequestTimeout:
            request_timeouts += n;
            break;
          case IoEvent::Failover:
            failovers += n;
            break;
          case IoEvent::AdminCommand:
            admin_commands += n;
            break;
        }
    }

    uint64_t
    sum() const
    {
        return sync_exits + guest_interrupts + injections +
               host_interrupts + iohost_interrupts;
    }

  private:
    telemetry::Counter *tm_[8] = {};
};

} // namespace vrio::hv

#endif // VRIO_HV_EVENTS_HPP
