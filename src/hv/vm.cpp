#include "hv/vm.hpp"

namespace vrio::hv {

const char *
clientKindName(ClientKind kind)
{
    switch (kind) {
      case ClientKind::KvmGuest:
        return "kvm-guest";
      case ClientKind::EsxiGuest:
        return "esxi-guest";
      case ClientKind::BareMetalX86:
        return "bare-metal-x86";
      case ClientKind::BareMetalPower:
        return "bare-metal-power";
    }
    return "unknown";
}

Vm::Vm(sim::Simulation &sim, std::string name, Core &vcpu,
       size_t io_arena_bytes, ClientKind kind)
    : SimObject(sim, std::move(name)), vcpu_(&vcpu), mem(io_arena_bytes),
      kind_(kind)
{
    events_.bindTelemetry(sim.telemetry().metrics,
                          {{"vm", this->name()}});
}

bool
Vm::isBareMetal() const
{
    return kind_ == ClientKind::BareMetalX86 ||
           kind_ == ClientKind::BareMetalPower;
}

} // namespace vrio::hv
