/**
 * @file
 * Virtual machines and bare-metal IOclients.
 *
 * A Vm binds a vCPU core to a guest-physical memory arena holding its
 * virtqueues and I/O buffers.  The paper's VMs have 1 VCPU and 1 GB
 * of memory; we size the modeled arena to the I/O working set only
 * (rings + in-flight buffers), since nothing else is touched by the
 * I/O paths being studied.
 *
 * ClientKind captures the heterogeneity experiment of Section 5: the
 * IOhost serves KVM guests, ESXi guests, and bare-metal OSes (x86 or
 * POWER) identically, because the vRIO channel is just Ethernet.
 */
#ifndef VRIO_HV_VM_HPP
#define VRIO_HV_VM_HPP

#include "hv/core.hpp"
#include "hv/events.hpp"
#include "virtio/guest_memory.hpp"

namespace vrio::hv {

enum class ClientKind {
    KvmGuest,
    EsxiGuest,
    BareMetalX86,
    BareMetalPower,
};

/** Human-readable name of a client kind. */
const char *clientKindName(ClientKind kind);

class Vm : public sim::SimObject
{
  public:
    /**
     * @param vcpu the core this (single-VCPU) client is pinned to.
     * @param io_arena_bytes size of the modeled guest memory arena.
     */
    Vm(sim::Simulation &sim, std::string name, Core &vcpu,
       size_t io_arena_bytes = 8u << 20,
       ClientKind kind = ClientKind::KvmGuest);

    Core &vcpu() { return *vcpu_; }
    virtio::GuestMemory &memory() { return mem; }

    /**
     * Rebind this client to a new core — the compute half of a live
     * migration.  In-flight work on the old core completes there; new
     * work runs on the new core.
     */
    void migrateTo(Core &new_vcpu) { vcpu_ = &new_vcpu; }
    ClientKind kind() const { return kind_; }
    bool isBareMetal() const;

    /** Per-client Table-3 event accounting. */
    IoEventCounts &events() { return events_; }
    const IoEventCounts &events() const { return events_; }

    /**
     * Record an involuntary guest context switch.  Elvis guests with
     * local low-latency block devices suffer two orders of magnitude
     * more of these than vRIO guests (the paper's explanation of
     * Fig. 14's "2 pairs" reversal).
     */
    void noteContextSwitch() { ++ctx_switches; }
    uint64_t contextSwitches() const { return ctx_switches; }

  private:
    Core *vcpu_;
    virtio::GuestMemory mem;
    ClientKind kind_;
    IoEventCounts events_;
    uint64_t ctx_switches = 0;
};

} // namespace vrio::hv

#endif // VRIO_HV_VM_HPP
