#include "interpose/rle.hpp"

namespace vrio::interpose {

namespace {
constexpr uint8_t kLiteral = 0x00;
constexpr uint8_t kRun = 0x01;
constexpr size_t kMinRun = 4;
constexpr size_t kMaxChunk = 0xffff;
} // namespace

Bytes
rleCompress(std::span<const uint8_t> data)
{
    Bytes out;
    ByteWriter w(out);
    size_t i = 0;
    size_t literal_start = 0;

    auto flush_literals = [&](size_t end) {
        size_t pos = literal_start;
        while (pos < end) {
            size_t len = std::min(kMaxChunk, end - pos);
            w.putU8(kLiteral);
            w.putU16le(uint16_t(len));
            w.putBytes(data.subspan(pos, len));
            pos += len;
        }
    };

    while (i < data.size()) {
        size_t run = 1;
        while (i + run < data.size() && data[i + run] == data[i] &&
               run < kMaxChunk) {
            ++run;
        }
        if (run >= kMinRun) {
            flush_literals(i);
            w.putU8(kRun);
            w.putU16le(uint16_t(run));
            w.putU8(data[i]);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(data.size());
    return out;
}

bool
rleDecompress(std::span<const uint8_t> data, Bytes &out)
{
    out.clear();
    size_t i = 0;
    while (i < data.size()) {
        uint8_t tag = data[i++];
        if (i + 2 > data.size())
            return false;
        uint16_t n = uint16_t(data[i]) | uint16_t(data[i + 1]) << 8;
        i += 2;
        if (tag == kLiteral) {
            if (i + n > data.size())
                return false;
            out.insert(out.end(), data.begin() + i, data.begin() + i + n);
            i += n;
        } else if (tag == kRun) {
            if (i + 1 > data.size())
                return false;
            out.insert(out.end(), n, data[i]);
            i += 1;
        } else {
            return false;
        }
    }
    return true;
}

} // namespace vrio::interpose
