/**
 * @file
 * Byte-oriented run-length codec used by the compression
 * interposition service.
 *
 * Format: a stream of (count, byte) records for runs of >= 4 equal
 * bytes, and literal blocks otherwise:
 *   0x00 <u16 len> <len literal bytes>
 *   0x01 <u16 count> <byte>
 * Chosen for simplicity and determinism, not ratio — the point of the
 * service is real, measurable per-byte CPU work on the interposition
 * path plus correct round trips.
 */
#ifndef VRIO_INTERPOSE_RLE_HPP
#define VRIO_INTERPOSE_RLE_HPP

#include "util/byte_buffer.hpp"

namespace vrio::interpose {

/** Compress @p data (always succeeds; may expand ~0.1%). */
Bytes rleCompress(std::span<const uint8_t> data);

/**
 * Decompress; returns false on malformed input (truncated record or
 * trailing garbage).
 */
bool rleDecompress(std::span<const uint8_t> data, Bytes &out);

} // namespace vrio::interpose

#endif // VRIO_INTERPOSE_RLE_HPP
