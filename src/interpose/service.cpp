#include "interpose/service.hpp"

namespace vrio::interpose {

void
Chain::append(std::unique_ptr<Service> service)
{
    services.push_back(std::move(service));
}

bool
Chain::run(IoContext &ctx, Bytes &payload, double &cycles_out)
{
    for (auto &service : services) {
        cycles_out += service->cycleCost(payload.size());
        if (!service->process(ctx, payload))
            return false;
    }
    return true;
}

double
Chain::cycleCost(size_t payload_bytes) const
{
    double cycles = 0;
    for (const auto &service : services)
        cycles += service->cycleCost(payload_bytes);
    return cycles;
}

} // namespace vrio::interpose
