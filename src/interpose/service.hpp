/**
 * @file
 * Programmable I/O interposition framework.
 *
 * Interposition is the paper's raison d'etre: the whole point of
 * keeping a paravirtual indirection layer (rather than raw SRIOV) is
 * that the host can run services on every I/O — "block or packet
 * level encryption, SDN, deep packet inspection, intrusion detection,
 * anti-virus, deduplication, and compression" (Section 4.1).  In vRIO
 * these services run on the I/O hypervisor's workers; in virtio and
 * Elvis they run on the local host.  A Chain is attached to a
 * back-end device and processes each request/response payload.
 */
#ifndef VRIO_INTERPOSE_SERVICE_HPP
#define VRIO_INTERPOSE_SERVICE_HPP

#include <memory>
#include <string>
#include <vector>

#include "net/mac.hpp"
#include "util/byte_buffer.hpp"

namespace vrio::interpose {

/** Direction of the interposed I/O relative to the client. */
enum class Direction {
    FromClient, ///< client transmit / block write
    ToClient,   ///< client receive / block read
};

/** What a service gets to see about the I/O it interposes on. */
struct IoContext
{
    Direction dir = Direction::FromClient;
    uint32_t device_id = 0;
    bool is_block = false;
    /** Block: starting sector of the request (for sector-keyed modes). */
    uint64_t sector = 0;
    /** L2 addresses (services may rewrite them, e.g. SDN). */
    net::MacAddress src;
    net::MacAddress dst;
    uint16_t ether_type = 0;
};

/**
 * One interposition service.  process() may transform the payload and
 * the L2 addresses in the context; returning false drops the I/O
 * (firewall/IDS verdict).  cycleCost() is the CPU this service burns
 * for a payload of the given size, charged to whichever core runs the
 * chain (a sidecore/worker, or the VM host core in the baseline).
 */
class Service
{
  public:
    virtual ~Service() = default;

    virtual std::string name() const = 0;
    virtual bool process(IoContext &ctx, Bytes &payload) = 0;
    virtual double cycleCost(size_t payload_bytes) const = 0;
};

/** Ordered pipeline of services. */
class Chain
{
  public:
    void append(std::unique_ptr<Service> service);

    /**
     * Run all services in order.
     *
     * @param cycles_out accumulates the total cycle cost.
     * @return false as soon as any service drops the I/O.
     */
    bool run(IoContext &ctx, Bytes &payload, double &cycles_out);

    /** Cycle cost of the full chain without running it. */
    double cycleCost(size_t payload_bytes) const;

    size_t size() const { return services.size(); }
    bool empty() const { return services.empty(); }
    Service &at(size_t i) { return *services.at(i); }

  private:
    std::vector<std::unique_ptr<Service>> services;
};

} // namespace vrio::interpose

#endif // VRIO_INTERPOSE_SERVICE_HPP
