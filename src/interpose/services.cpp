#include "interpose/services.hpp"

#include "interpose/rle.hpp"
#include "util/crc32.hpp"

namespace vrio::interpose {

// -- MeteringService ------------------------------------------------

bool
MeteringService::process(IoContext &ctx, Bytes &payload)
{
    auto &m = meters[ctx.device_id];
    m.bytes += payload.size();
    ++m.ops;
    return true;
}

uint64_t
MeteringService::bytesSeen(uint32_t device_id) const
{
    auto it = meters.find(device_id);
    return it == meters.end() ? 0 : it->second.bytes;
}

uint64_t
MeteringService::opsSeen(uint32_t device_id) const
{
    auto it = meters.find(device_id);
    return it == meters.end() ? 0 : it->second.ops;
}

// -- FirewallService ------------------------------------------------

bool
FirewallService::Rule::matches(const IoContext &ctx) const
{
    if (src && *src != ctx.src)
        return false;
    if (dst && *dst != ctx.dst)
        return false;
    if (ether_type && *ether_type != ctx.ether_type)
        return false;
    return true;
}

bool
FirewallService::process(IoContext &ctx, Bytes &)
{
    for (const auto &rule : rules) {
        if (rule.matches(ctx)) {
            ++dropped;
            return false;
        }
    }
    return true;
}

// -- EncryptionService ----------------------------------------------

EncryptionService::EncryptionService(std::span<const uint8_t> key,
                                     double cycles_per_byte)
    : aes(key), cycles_per_byte(cycles_per_byte)
{}

bool
EncryptionService::process(IoContext &ctx, Bytes &payload)
{
    if (payload.empty())
        return true;
    // CTR is an involution (same op both directions) and preserves
    // length; the nonce separates devices, and sectors within a
    // block device, so shifted writes never reuse keystream bytes.
    uint64_t nonce = uint64_t(ctx.device_id) << 48;
    if (ctx.is_block)
        nonce |= ctx.sector;
    payload = crypto::ctrCrypt(aes, nonce, payload);
    return true;
}

// -- SdnRewriteService ----------------------------------------------

void
SdnRewriteService::mapAddress(net::MacAddress from, net::MacAddress to)
{
    mapping[from] = to;
}

bool
SdnRewriteService::process(IoContext &ctx, Bytes &)
{
    auto it = mapping.find(ctx.dst);
    if (it != mapping.end()) {
        ctx.dst = it->second;
        ++rewrites_;
    }
    return true;
}

// -- CompressionService ----------------------------------------------

namespace {
constexpr uint32_t kCompressMagic = 0x31435256; // "VRC1"
constexpr size_t kCompressHeader = 12; // magic, orig_len, comp_len
} // namespace

bool
CompressionService::process(IoContext &ctx, Bytes &payload)
{
    if (!ctx.is_block || payload.empty())
        return true;

    if (ctx.dir == Direction::FromClient) {
        logical_bytes += payload.size();
        Bytes comp = rleCompress(payload);
        if (comp.size() + kCompressHeader > payload.size()) {
            // Incompressible: store raw (reads pass through).
            ++raw;
            compressed_bytes += payload.size();
            return true;
        }
        ++compressed;
        compressed_bytes += comp.size() + kCompressHeader;
        Bytes container;
        ByteWriter w(container);
        w.putU32le(kCompressMagic);
        w.putU32le(uint32_t(payload.size()));
        w.putU32le(uint32_t(comp.size()));
        w.putBytes(comp);
        // Pad to the original length: sector alignment is preserved.
        w.putZeros(payload.size() - container.size());
        payload = std::move(container);
        return true;
    }

    // Read path: decompress self-describing containers.
    if (payload.size() < kCompressHeader)
        return true;
    ByteReader r(payload);
    if (r.getU32le() != kCompressMagic)
        return true; // stored raw
    uint32_t orig_len = r.getU32le();
    uint32_t comp_len = r.getU32le();
    if (orig_len != payload.size() || comp_len > r.remaining())
        return false; // corrupt container
    Bytes out;
    if (!rleDecompress(r.viewBytes(comp_len), out) ||
        out.size() != orig_len) {
        return false;
    }
    payload = std::move(out);
    return true;
}

// -- DedupService ---------------------------------------------------

bool
DedupService::process(IoContext &, Bytes &payload)
{
    constexpr size_t kChunk = 4096;
    for (size_t off = 0; off < payload.size(); off += kChunk) {
        size_t n = std::min(kChunk, payload.size() - off);
        uint32_t fp =
            crc32(std::span<const uint8_t>(payload).subspan(off, n));
        ++chunks;
        if (++fingerprints[fp] > 1)
            ++duplicates;
    }
    return true;
}

} // namespace vrio::interpose
