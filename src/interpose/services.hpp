/**
 * @file
 * Concrete interposition services.
 */
#ifndef VRIO_INTERPOSE_SERVICES_HPP
#define VRIO_INTERPOSE_SERVICES_HPP

#include <map>
#include <optional>

#include "crypto/modes.hpp"
#include "interpose/service.hpp"

namespace vrio::interpose {

/** Per-device byte/operation metering (billing / accounting). */
class MeteringService : public Service
{
  public:
    std::string name() const override { return "metering"; }
    bool process(IoContext &ctx, Bytes &payload) override;
    double cycleCost(size_t) const override { return 120; }

    uint64_t bytesSeen(uint32_t device_id) const;
    uint64_t opsSeen(uint32_t device_id) const;

  private:
    struct Meter
    {
        uint64_t bytes = 0;
        uint64_t ops = 0;
    };
    std::map<uint32_t, Meter> meters;
};

/** L2 firewall: default-allow with explicit deny rules. */
class FirewallService : public Service
{
  public:
    struct Rule
    {
        /** Match any source when unset. */
        std::optional<net::MacAddress> src;
        std::optional<net::MacAddress> dst;
        std::optional<uint16_t> ether_type;

        bool matches(const IoContext &ctx) const;
    };

    std::string name() const override { return "firewall"; }
    bool process(IoContext &ctx, Bytes &payload) override;
    double cycleCost(size_t) const override
    {
        return 90 + 40 * double(rules.size());
    }

    void deny(Rule rule) { rules.push_back(std::move(rule)); }
    uint64_t droppedCount() const { return dropped; }

  private:
    std::vector<Rule> rules;
    uint64_t dropped = 0;
};

/**
 * Seamless encryption (the Fig. 16b imbalance workload): AES-256 over
 * every payload.  Both directions use length-preserving AES-CTR —
 * packets must not grow, and block payloads must keep their sector
 * count (modelling XTS-class disk encryption).  Block keystreams are
 * keyed by (device, sector); packet keystreams by device.
 *
 * The cycle cost (default 22 cycles/byte) reflects unaccelerated
 * software AES, which is what makes encryption an interesting
 * consolidation workload: one webserver's encrypted I/O can saturate
 * more than one sidecore.
 */
class EncryptionService : public Service
{
  public:
    explicit EncryptionService(std::span<const uint8_t> key,
                               double cycles_per_byte = 22.0);

    std::string name() const override { return "aes256"; }
    bool process(IoContext &ctx, Bytes &payload) override;
    double cycleCost(size_t payload_bytes) const override
    {
        return 900 + cycles_per_byte * double(payload_bytes);
    }

  private:
    crypto::Aes aes;
    double cycles_per_byte;
};

/** SDN-style L2 rewrite: maps virtual MACs to rack-local MACs. */
class SdnRewriteService : public Service
{
  public:
    std::string name() const override { return "sdn-rewrite"; }
    bool process(IoContext &ctx, Bytes &payload) override;
    double cycleCost(size_t) const override { return 150; }

    void mapAddress(net::MacAddress from, net::MacAddress to);
    uint64_t rewrites() const { return rewrites_; }

  private:
    std::map<net::MacAddress, net::MacAddress> mapping;
    uint64_t rewrites_ = 0;
};

/**
 * Transparent block-storage compression (length-preserving): write
 * payloads are RLE-compressed into a self-describing container padded
 * to the original size (keeping sector alignment intact); reads
 * decompress transparently.  Incompressible blocks are stored raw.
 * Like real in-place storage compression, the win is bandwidth/cycles
 * on the wire side and measurable data reduction statistics; the
 * at-rest footprint is unchanged.
 */
class CompressionService : public Service
{
  public:
    std::string name() const override { return "rle-compress"; }
    bool process(IoContext &ctx, Bytes &payload) override;
    double cycleCost(size_t payload_bytes) const override
    {
        return 600 + 2.4 * double(payload_bytes);
    }

    uint64_t blocksCompressed() const { return compressed; }
    uint64_t blocksStoredRaw() const { return raw; }
    uint64_t logicalBytes() const { return logical_bytes; }
    uint64_t compressedBytes() const { return compressed_bytes; }
    /** Achieved data reduction (1.0 = incompressible). */
    double ratio() const
    {
        return compressed_bytes
                   ? double(logical_bytes) / double(compressed_bytes)
                   : 1.0;
    }

  private:
    uint64_t compressed = 0;
    uint64_t raw = 0;
    uint64_t logical_bytes = 0;
    uint64_t compressed_bytes = 0;
};

/**
 * Content-defined duplicate detection over 4KB chunks (CRC32
 * fingerprints).  Detection only — it reports the dedup ratio rather
 * than rewriting the stream.
 */
class DedupService : public Service
{
  public:
    std::string name() const override { return "dedup"; }
    bool process(IoContext &ctx, Bytes &payload) override;
    double cycleCost(size_t payload_bytes) const override
    {
        return 300 + 1.2 * double(payload_bytes);
    }

    uint64_t chunksSeen() const { return chunks; }
    uint64_t duplicateChunks() const { return duplicates; }

  private:
    std::map<uint32_t, uint64_t> fingerprints;
    uint64_t chunks = 0;
    uint64_t duplicates = 0;
};

} // namespace vrio::interpose

#endif // VRIO_INTERPOSE_SERVICES_HPP
