#include "iohost/io_hypervisor.hpp"

#include <algorithm>
#include <set>

#include "block/alignment.hpp"
#include "sim/ticks.hpp"
#include "util/logging.hpp"

namespace vrio::iohost {

using transport::MessageAssembler;
using transport::MsgType;
using transport::TransportHeader;

IoHypervisor::IoHypervisor(sim::Simulation &sim, std::string name,
                           hv::Machine &machine, IoHypervisorConfig cfg)
    : SimObject(sim, std::move(name)), cfg(cfg), machine(machine),
      steer(cfg.num_workers),
      reasm(std::make_unique<transport::Reassembler>(sim.events(),
                                                     cfg.mtu)),
      worker_inflight(cfg.num_workers, 0),
      worker_epoch(cfg.num_workers, 0),
      watchdog_last_completed(cfg.num_workers, 0),
      watchdog_stuck(cfg.num_workers, 0),
      probe_outstanding(cfg.num_workers, false)
{
    vrio_assert(cfg.first_worker_core + cfg.num_workers <=
                    machine.coreCount(),
                "IOhost machine has too few cores for ",
                cfg.num_workers, " workers");
    vrio_assert(!(cfg.qos && cfg.coalesce),
                "QoS and coalescing both re-order the fan-out queue; "
                "enable at most one");
    // Telemetry handles: resolved once here, bumped raw on the
    // datapath.  One series per instance, labeled {iohv=<name>}.
    auto &m = sim.telemetry().metrics;
    telemetry::Labels l{{"iohv", this->name()}};
    messages = &m.counter("iohost.messages", l);
    net_forwarded = &m.counter("iohost.net_forwarded", l);
    blk_ops = &m.counter("iohost.blk_ops", l);
    copied_bytes = &m.counter("iohost.copied_bytes", l);
    irqs_taken = &m.counter("iohost.irqs_taken", l);
    acks = &m.counter("iohost.acks", l);
    offline_rx_drops = &m.counter("iohost.offline_rx_drops", l);
    offline_tx_drops = &m.counter("iohost.offline_tx_drops", l);
    polls = &m.counter("iohost.polls", l);
    heartbeats_sent = &m.counter("iohost.heartbeats_sent", l);
    coalesce_staged = &m.counter("rack.coalesce.staged", l);
    coalesce_runs = &m.counter("rack.coalesce.runs", l);
    coalesce_merged = &m.counter("rack.coalesce.merged_parts", l);
    if (cfg.qos) {
        qsched_ = std::make_unique<qos::FairScheduler>(cfg.qos_cfg);
        qos_shed_ctr = &m.counter("qos.admission.shed", l);
        qos_defer_ctr = &m.counter("qos.sched.deferrals", l);
        qos_promote_ctr = &m.counter("qos.sched.promotions", l);
    }
    inflight_at_dispatch = &m.histogram("iohost.inflight_at_dispatch", l);
    worker_stats.reserve(cfg.num_workers);
    auto &tr = sim.telemetry().tracer;
    for (unsigned w = 0; w < cfg.num_workers; ++w) {
        telemetry::Labels wl{{"iohv", this->name()},
                             {"worker", std::to_string(w)}};
        worker_stats.push_back(
            {&m.counter("iohost.worker.dispatches", wl),
             &m.histogram("iohost.worker.service_ns", wl),
             &m.histogram("iohost.worker.residency_ns", wl),
             tr.intern(this->name() + ".worker" + std::to_string(w))});
    }
    tr_track = tr.intern(this->name());
    tr_recovery_track = tr.intern("recovery");
    tr_dispatch = tr.intern("iohost.dispatch");
    tr_service = tr.intern("iohost.service");
    tr_tx = tr.intern("iohost.tx");
    tr_heartbeat = tr.intern("recovery.heartbeat");
    tr_wedge = tr.intern("recovery.wedge");
    tr_revive = tr.intern("recovery.revive");
    tr_starved = tr.intern("recovery.starved");
    tr_rehome = tr.intern("recovery.rehome");
    tr_replay = tr.intern("recovery.replay");
    // Pull-style probes: deep transport state sampled only at export.
    m.probe("iohost.reasm.partials_expired", l,
            [this]() { return double(reasm->partialsExpired()); });
    m.probe("iohost.reasm.checksum_drops", l,
            [this]() { return double(reasm->checksumDrops()); });
    m.probe("iohost.dedup.suppressed", l,
            [this]() { return double(dedup.suppressed()); });
    // Recovery machinery is strictly opt-in: with both periods zero
    // (the default) no events are ever scheduled here and a zero-fault
    // run's schedule is byte-identical to one predating this code.
    if (cfg.heartbeat_period > 0) {
        sim.events().schedule(cfg.heartbeat_period,
                              [this]() { heartbeatTick(); });
    }
    if (cfg.watchdog_period > 0) {
        sim.events().schedule(cfg.watchdog_period,
                              [this]() { watchdogTick(); });
    }
}

hv::Core &
IoHypervisor::workerCore(unsigned w)
{
    vrio_assert(w < cfg.num_workers, "bad worker ", w);
    return machine.core(cfg.first_worker_core + w);
}

void
IoHypervisor::attachClientNic(net::Nic &nic)
{
    client_nics.push_back(&nic);
    nic.setPromiscuous(true);
    if (cfg.polling) {
        nic.setRxMode(0, net::Nic::RxMode::Poll);
        nic.setRxNotify(0, [this](unsigned) { clientRxNotify(); });
    } else {
        nic.setRxMode(0, net::Nic::RxMode::Interrupt);
        nic.setRxHandler(0, [this](unsigned) {
            // vRIO w/o poll: the IOhost takes a physical interrupt
            // per (coalesced) arrival; charge the IRQ path, then
            // drain the ring from the handler.
            irqs_taken->inc();
            workerCore(0).run(cfg.interrupt_cycles,
                              [this]() { pumpClientRings(); });
        });
    }
}

void
IoHypervisor::mapClientPort(net::MacAddress t_mac, size_t port_index)
{
    vrio_assert(port_index < client_nics.size(), "bad client port ",
                port_index);
    client_port_of[t_mac] = port_index;
}

void
IoHypervisor::attachExternalNic(net::Nic &nic)
{
    vrio_assert(!external_nic, "external NIC already attached");
    external_nic = &nic;
    nic.setPromiscuous(true);
    if (cfg.polling) {
        nic.setRxMode(0, net::Nic::RxMode::Poll);
        nic.setRxNotify(0, [this](unsigned) { externalRxNotify(); });
    } else {
        nic.setRxMode(0, net::Nic::RxMode::Interrupt);
        nic.setRxHandler(0, [this](unsigned) {
            irqs_taken->inc();
            workerCore(0).run(cfg.interrupt_cycles,
                              [this]() { pumpExternalRings(); });
        });
    }
}

void
IoHypervisor::addNetDevice(NetDeviceEntry entry)
{
    vrio_assert(net_devices.emplace(entry.device_id, entry).second,
                "duplicate net device ", entry.device_id);
    f_mac_index[entry.f_mac] = entry.device_id;
}

void
IoHypervisor::addBlockDevice(BlockDeviceEntry entry)
{
    vrio_assert(entry.device != nullptr, "block device must be backed");
    vrio_assert(blk_devices.emplace(entry.device_id, entry).second,
                "duplicate block device ", entry.device_id);
}

void
IoHypervisor::sendDeviceCreate(const transport::DeviceCreateCmd &cmd,
                               net::MacAddress t_mac)
{
    Bytes payload;
    ByteWriter w(payload);
    cmd.encode(w);
    TransportHeader hdr;
    hdr.type = MsgType::DevCreate;
    hdr.device_id = cmd.device_id;
    hdr.total_len = uint32_t(payload.size());
    sendToClient(t_mac, hdr, payload);
}

// -- crash / restart ------------------------------------------------------

void
IoHypervisor::discardRings()
{
    for (net::Nic *nic : client_nics) {
        while (nic->rxPending(0) > 0)
            offline_rx_drops->add(nic->rxTake(0, cfg.batch_max).size());
    }
    while (external_nic && external_nic->rxPending(0) > 0)
        offline_rx_drops->add(
            external_nic->rxTake(0, cfg.batch_max).size());
}

void
IoHypervisor::setOffline(bool off)
{
    if (offline_ == off)
        return;
    offline_ = off;
    if (off) {
        // Frames sitting in the rings at crash time are lost, as is
        // any partially reassembled message state (partials also age
        // out of the reassembler on their own timeout).
        discardRings();
        // Requests staged in the coalescer die with the crash too.
        staged.clear();
        staged_total = 0;
        if (coalesce_timer_armed) {
            coalesce_timer.cancel();
            coalesce_timer_armed = false;
        }
        // In-service duplicate-suppression state dies with the crash;
        // the clients replay, and replaying is safe (Section 4.5).
        dedup.clear();
        device_progress.clear();
        // Requests queued in the QoS scheduler die with the crash the
        // same way — clients replay them at whatever home they land
        // on, and virtual time restarts from zero.
        if (qsched_) {
            qsched_->clear();
            qos_pending.clear();
            qos_live.clear();
            qos_inflight = 0;
        }
        // Held responses die unsent: their clients retry, and the
        // retry either hits the peer's committed table (the Commit
        // record made it) or re-executes at the new home (it did
        // not).  Exactly once at the surviving store, either way.
        held_responses.clear();
        pending_rehomes.clear();
        if (repl_)
            repl_->reset(incarnation_);
        return;
    }
    // Restart: new incarnation (stamped into heartbeats so clients can
    // tell a restarted IOhost from a slow one), then resume servicing
    // whatever arrived since the last drain.
    ++incarnation_;
    if (repl_)
        repl_->reset(incarnation_);
    pumpClientRings();
    if (external_nic)
        pumpExternalRings();
    if (repl_nic)
        pumpReplicationRing();
}

// -- failure detection / recovery -----------------------------------------

void
IoHypervisor::mapHeartbeatPath(net::MacAddress t_mac, net::MacAddress dst)
{
    hb_path[t_mac] = dst;
}

void
IoHypervisor::heartbeatTick()
{
    // Self-rescheduling beacon.  A crashed IOhost stays silent — that
    // silence is exactly what clients detect — but the timer keeps
    // running so beats resume the instant it restarts.
    sim().events().schedule(cfg.heartbeat_period,
                            [this]() { heartbeatTick(); });
    if (offline_)
        return;
    ++hb_seq;
    transport::HeartbeatMsg beat;
    beat.seq = hb_seq;
    beat.incarnation = incarnation_;
    if (cfg.advertise_load) {
        beat.has_load = true;
        beat.load_ns = takeLoadDigest();
    }
    Bytes payload;
    ByteWriter w(payload);
    beat.encode(w);
    TransportHeader hdr;
    hdr.type = MsgType::Heartbeat;
    hdr.total_len = uint32_t(payload.size());
    // One beat per distinct client T-MAC across every consolidated
    // device — a client with net and block devices gets one beat.
    std::set<net::MacAddress> targets;
    for (const auto &[id, dev] : net_devices)
        targets.insert(dev.t_mac);
    for (const auto &[id, dev] : blk_devices)
        targets.insert(dev.t_mac);
    for (const net::MacAddress &mac : targets) {
        auto alt = hb_path.find(mac);
        if (hb_nic && alt != hb_path.end()) {
            // Switch-path beacon: egress the dedicated heartbeat NIC
            // so the beat shares fate with the switch fabric instead
            // of the (possibly direct-wired) client channel.  The
            // per-host receiver demuxes on the target T-MAC, stamped
            // into the (otherwise unused) request serial.
            TransportHeader hb = hdr;
            hb.request_serial = mac.toU64();
            net::MacAddress src = hb_nic->queueMac(0);
            for (const auto &part :
                 transport::segmentRequest(hb, payload)) {
                hb_nic->send(0, transport::encapsulate(
                                    src, alt->second, next_wire_id++,
                                    part.hdr, part.payload));
            }
        } else {
            sendToClient(mac, hdr, payload);
        }
        heartbeats_sent->inc();
    }
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_recovery_track, tr_heartbeat,
                   sim().events().now(), telemetry::cat::kRecovery,
                   hb_seq);
    }
}

void
IoHypervisor::watchdogTick()
{
    sim().events().schedule(cfg.watchdog_period,
                            [this]() { watchdogTick(); });
    if (offline_)
        return;
    for (unsigned w = 0; w < cfg.num_workers; ++w) {
        // Progress signal: the core's completion counter.  Compare
        // with != (resetStats may rewind it), and only count a pass
        // against a worker that actually has steered work.
        uint64_t done = workerCore(w).resource().completed();
        bool busy = steer.workerLoad(w) > 0;
        if (steer.isDown(w) || !busy ||
            done != watchdog_last_completed[w]) {
            watchdog_stuck[w] = 0;
        } else if (++watchdog_stuck[w] >= cfg.watchdog_threshold) {
            declareWorkerWedged(w);
        }
        watchdog_last_completed[w] = done;
    }
    // Per-queue starvation pass (the worker check's blind spot): a
    // device with in-service duplicate-filter entries but no
    // completions is starved even when its worker keeps completing
    // other devices' work — or when the backend swallowed the request
    // outright, after the first stage already balanced the steering
    // accounting, which no worker-level signal can ever see.
    for (const auto &[id, dev] : blk_devices) {
        DeviceProgress &p = device_progress[id];
        if (dedup.inServiceOf(id) == 0 ||
            p.completions != p.last_completions) {
            p.stuck = 0;
        } else if (++p.stuck >= cfg.watchdog_threshold) {
            declareDeviceStarved(id);
        }
        p.last_completions = p.completions;
    }
}

void
IoHypervisor::declareDeviceStarved(uint32_t device_id)
{
    ++devices_starved;
    statCounter("devices_starved").inc();
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_recovery_track, tr_starved, sim().events().now(),
                   telemetry::cat::kRecovery, device_id);
    }
    // Quarantine the queue: drop its in-service entries so the
    // clients' retries re-admit and re-execute, instead of being
    // suppressed forever by state whose execution is lost.
    dedup.dropDevice(device_id);
    device_progress[device_id].stuck = 0;
}

void
IoHypervisor::noteDeviceProgress(uint32_t device_id)
{
    ++device_progress[device_id].completions;
}

void
IoHypervisor::declareWorkerWedged(unsigned worker)
{
    ++wedges_detected;
    statCounter("wedges_detected").inc();
    last_wedge_tick = sim().events().now();
    // Declared after exactly `threshold` consecutive no-progress
    // passes, so this is the time since the worker was last seen
    // making progress.
    last_wedge_latency =
        sim::Tick(cfg.watchdog_threshold) * cfg.watchdog_period;
    watchdog_stuck[worker] = 0;
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_recovery_track, tr_wedge, last_wedge_tick,
                   telemetry::cat::kRecovery, worker);
    }

    // Re-steer: devices pinned to the wedged worker forget their
    // in-flight requests (the clients replay them) and pick a healthy
    // worker on their next request.
    requests_abandoned += steer.quarantine(worker);
    // Without this, the abandoned requests' in-service entries would
    // suppress the very retries that are supposed to recover them.
    dedup.dropWorker(worker);
    // Jobs stranded behind the wedge self-suppress via the epoch.
    ++worker_epoch[worker];
    vrio_assert(inflight >= worker_inflight[worker],
                "inflight accounting out of sync");
    inflight -= worker_inflight[worker];
    worker_inflight[worker] = 0;

    // Queue a probe behind the wedge: the moment the core serves it
    // again (the wedge cleared), the worker is readmitted.
    if (!probe_outstanding[worker]) {
        probe_outstanding[worker] = true;
        workerCore(worker).run(1.0,
                               [this, worker]() { reviveWorker(worker); });
    }

    // The reclaimed intake budget lets the healthy workers take over.
    pumpClientRings();
    if (external_nic)
        pumpExternalRings();
}

void
IoHypervisor::reviveWorker(unsigned worker)
{
    probe_outstanding[worker] = false;
    ++workers_revived;
    statCounter("workers_revived").inc();
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_recovery_track, tr_revive, sim().events().now(),
                   telemetry::cat::kRecovery, worker);
    }
    steer.markUp(worker);
}

// -- client-channel ingress ---------------------------------------------

void
IoHypervisor::clientRxNotify()
{
    if (offline_) {
        discardRings();
        return;
    }
    if (pump_scheduled)
        return;
    pump_scheduled = true;
    sim().events().schedule(cfg.poll_pickup, [this]() {
        pump_scheduled = false;
        pumpClientRings();
    });
}

bool
IoHypervisor::intakeAllowed() const
{
    // Replication backpressure: when the peer lags a whole window of
    // unacked mirror records, stop admitting.  Frames queue in the RX
    // rings (and overflow to client retransmission) instead of piling
    // up responses this host is not allowed to release yet.
    if (repl_ && repl_->windowFull())
        return false;
    // With QoS on, the rings drain into the scheduler where policy
    // (fair ordering, admission shed) applies — queueing in a dumb RX
    // ring is exactly the head-of-line blocking the subsystem exists
    // to remove.  Occupancy is bounded by admission control, not by
    // worker backlog.
    if (qsched_)
        return true;
    return inflight < size_t(cfg.num_workers) * cfg.batch_max;
}

void
IoHypervisor::stageDone(unsigned worker)
{
    vrio_assert(inflight > 0, "stageDone underflow");
    --inflight;
    vrio_assert(worker_inflight[worker] > 0,
                "worker inflight underflow");
    --worker_inflight[worker];
    // A freed first-stage slot serves the scheduler before the rings:
    // queued-and-ordered work outranks fresh intake.
    if (qsched_)
        qosPump();
    // A worker went idle: it takes the next batch off the rings.
    pumpClientRings();
    if (external_nic)
        pumpExternalRings();
}

void
IoHypervisor::pumpClientRings()
{
    vrio_assert(!client_nics.empty(), "no client NIC");
    if (offline_) {
        discardRings();
        return;
    }
    for (size_t i = 0; i < client_nics.size(); ++i) {
        net::Nic *nic = client_nics[i];
        while (nic->rxPending(0) > 0 && intakeAllowed()) {
            auto batch = nic->rxTake(0, cfg.batch_max);
            polls->inc();
            pending_batch_cycles += cfg.batch_fixed_cycles;
            for (const auto &frame : batch) {
                // Learn which port this client is behind.
                client_port_of[frame->ether().src] = i;
                handleWireFrame(frame);
            }
        }
    }
}

void
IoHypervisor::handleWireFrame(const net::FramePtr &frame)
{
    auto msg = reasm->feed(*frame);
    if (!msg)
        return;
    auto req = assembler.feed(std::move(*msg));
    if (!req)
        return;
    dispatch(std::move(*req));
}

void
IoHypervisor::dispatch(MessageAssembler::Assembled req)
{
    messages->inc();
    inflight_at_dispatch->record(inflight);
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_track, tr_dispatch, sim().events().now(),
                   telemetry::cat::kIo, req.hdr.request_serial);
    }
    switch (req.hdr.type) {
      case MsgType::NetOut: {
        ++inflight;
        unsigned w = steer.steer(req.hdr.device_id);
        ++worker_inflight[w];
        worker_stats[w].dispatches->inc();
        execNet(w, std::move(req));
        break;
      }
      case MsgType::BlkReq: {
        // Retry of a write the dead primary committed before its
        // crash: the mirrored committed table answers it — executing
        // again would double-apply a write the client already saw
        // acknowledged.
        if (repl_) {
            uint16_t cgen = 0;
            if (repl_->committedLookup(req.hdr.device_id,
                                       req.hdr.request_serial, cgen)) {
                ++commit_hits;
                statCounter("repl_commit_hits").inc();
                auto it = blk_devices.find(req.hdr.device_id);
                if (it != blk_devices.end()) {
                    TransportHeader resp = req.hdr;
                    resp.type = MsgType::BlkResp;
                    resp.status = uint8_t(virtio::BlkStatus::Ok);
                    resp.total_len = 0;
                    resp.generation =
                        std::max(req.hdr.generation, cgen);
                    sendToClient(it->second.t_mac, resp, {});
                }
                break;
            }
        }
        // Server side of the Section 4.5 unique-id rule: a
        // retransmission of a request still in service must not
        // execute twice.
        if (!dedup.admit(req.hdr.device_id, req.hdr.request_serial,
                         req.hdr.generation)) {
            statCounter("duplicates_suppressed").inc();
            break;
        }
        // QoS fan-out: the request queues under the fair/deadline
        // discipline instead of dispatching FIFO.  Mirroring happens
        // at pop time so shed requests never enter the replication
        // stream.  Unknown devices fall through to execBlock for its
        // warn-and-complete semantics.
        if (qsched_ &&
            blk_devices.find(req.hdr.device_id) != blk_devices.end()) {
            qosEnqueue(std::move(req));
            break;
        }
        mirrorAdmitted(req.hdr, req.payload);
        if (cfg.coalesce) {
            auto it = blk_devices.find(req.hdr.device_id);
            // Interposed devices keep the one-request path: a chain
            // transforms exactly one request's payload, which a merged
            // run cannot express.  Unknown devices fall through to
            // execBlock for its warn-and-complete semantics.
            if (it != blk_devices.end() && !it->second.chain) {
                stageBlock(std::move(req), it->second);
                break;
            }
        }
        ++inflight;
        unsigned w = steer.steer(req.hdr.device_id);
        dedup.bind(req.hdr.device_id, req.hdr.request_serial, w);
        ++worker_inflight[w];
        worker_stats[w].dispatches->inc();
        execBlock(w, std::move(req));
        break;
      }
      case MsgType::DevAck:
        execAck(std::move(req));
        break;
      case MsgType::ReplicaSync: {
        transport::ReplicaSyncMsg msg;
        ByteReader r(req.payload);
        if (repl_ && transport::ReplicaSyncMsg::decode(r, msg))
            repl_->onSyncMessage(msg, req.src);
        else
            statCounter("foreign_rx_messages").inc();
        break;
      }
      case MsgType::ReplicaAck: {
        transport::ReplicaAckMsg ack;
        ByteReader r(req.payload);
        if (repl_ && transport::ReplicaAckMsg::decode(r, ack))
            repl_->onAckMessage(ack, req.src);
        else
            statCounter("foreign_rx_messages").inc();
        break;
      }
      case MsgType::Rehome: {
        // The activation half of a placement flip: a client newly
        // homed here asks for its warm state to be promoted.  The
        // Command half is IOhost -> client; one flooded our way is
        // foreign, same as any other client-bound type below.
        transport::RehomeCmd cmd;
        ByteReader r(req.payload);
        if (repl_ && transport::RehomeCmd::decode(r, cmd) &&
            cmd.phase == transport::RehomeCmd::Phase::Activate) {
            activateWarmState(cmd.device_id, cmd.floor_serial);
        } else {
            statCounter("foreign_rx_messages").inc();
        }
        break;
      }
      case MsgType::NetIn:
      case MsgType::BlkResp:
      case MsgType::DevCreate:
      case MsgType::DevDestroy:
      case MsgType::Heartbeat:
        // Client-bound traffic that the switch flooded our way before
        // learning the client's port (e.g. another IOhost's device
        // announcements reaching the standby): not ours to process.
        statCounter("foreign_rx_messages").inc();
        break;
      default:
        vrio_warn("IOhost ignoring unexpected message type ",
                  transport::msgTypeName(req.hdr.type));
    }
}

double
IoHypervisor::interposeCycles(interpose::Chain *chain, size_t bytes) const
{
    return chain ? chain->cycleCost(bytes) : 0.0;
}

double
IoHypervisor::takeBatchCycles()
{
    double cycles = pending_batch_cycles;
    pending_batch_cycles = 0;
    return cycles;
}

double
IoHypervisor::disturbanceCycles()
{
    auto &rng = sim().random();
    double cycles = 0;
    auto draw = [&rng](double mean, double cap) {
        double us = rng.exponential(mean);
        return cap > 0 && us > cap ? cap : us;
    };
    if (cfg.jitter_p > 0 && rng.bernoulli(cfg.jitter_p)) {
        cycles += draw(cfg.jitter_mean_us, cfg.jitter_cap_us) *
                  cfg.worker_ghz * 1e3;
    }
    if (cfg.stall_p > 0 && rng.bernoulli(cfg.stall_p)) {
        cycles += draw(cfg.stall_mean_us, cfg.stall_cap_us) *
                  cfg.worker_ghz * 1e3;
    }
    return cycles;
}

void
IoHypervisor::recordService(unsigned worker, double cycles)
{
    // cycles / GHz = nanoseconds.
    worker_stats[worker].service_ns->record(
        uint64_t(cycles / cfg.worker_ghz));
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.span(worker_stats[worker].trace_track, tr_service,
                sim().events().now(),
                sim::cyclesToTicks(cycles, cfg.worker_ghz),
                telemetry::cat::kIo, worker);
    }
}

void
IoHypervisor::execNet(unsigned worker, MessageAssembler::Assembled req)
{
    auto it = net_devices.find(req.hdr.device_id);
    if (it == net_devices.end()) {
        vrio_warn("net request for unknown device ", req.hdr.device_id);
        steer.complete(req.hdr.device_id, worker);
        return;
    }
    NetDeviceEntry &dev = it->second;

    double cycles = cfg.net_fixed_cycles +
                    cfg.net_per_byte_cycles * double(req.payload.size()) +
                    interposeCycles(dev.chain, req.payload.size()) +
                    takeBatchCycles() + disturbanceCycles();
    if (!req.zero_copy) {
        cycles += cfg.copy_per_byte_cycles * double(req.payload.size());
        copied_bytes->add(req.payload.size());
    }

    recordService(worker, cycles);
    uint32_t device_id = req.hdr.device_id;
    uint64_t epoch = worker_epoch[worker];
    sim::Tick t0 = sim().events().now();
    workerCore(worker).runPreempt(cycles, [this, worker, epoch, device_id, t0,
                                    req = std::move(req)]() mutable {
        // Quarantined while queued: steering and intake accounting
        // were reconciled by the watchdog, and the client replays.
        if (epoch != worker_epoch[worker])
            return;
        worker_stats[worker].residency_ns->record(
            (sim().events().now() - t0) / 1000);
        steer.complete(device_id, worker);
        stageDone(worker);

        // The payload is the guest's L2 frame; run interposition and
        // forward it out the external port.
        auto it = net_devices.find(device_id);
        if (it == net_devices.end())
            return;
        NetDeviceEntry &dev = it->second;

        if (dev.chain) {
            interpose::IoContext ctx;
            ctx.dir = interpose::Direction::FromClient;
            ctx.device_id = device_id;
            ctx.is_block = false;
            net::EtherHeader eh;
            if (req.payload.size() >= net::kEtherHeaderSize) {
                ByteReader r(req.payload);
                eh = net::EtherHeader::decode(r);
                ctx.src = eh.src;
                ctx.dst = eh.dst;
                ctx.ether_type = eh.ether_type;
            }
            double chain_cycles = 0; // pre-charged above
            if (!dev.chain->run(ctx, req.payload, chain_cycles))
                return; // dropped by a service (e.g. firewall)
            // Services may rewrite L2 addresses (SDN); apply them.
            if ((ctx.dst != eh.dst || ctx.src != eh.src) &&
                req.payload.size() >= net::kEtherHeaderSize) {
                eh.dst = ctx.dst;
                eh.src = ctx.src;
                Bytes hdr;
                ByteWriter w(hdr);
                eh.encode(w);
                std::copy(hdr.begin(), hdr.end(), req.payload.begin());
            }
        }

        vrio_assert(external_nic, "no external NIC");
        auto out = std::make_shared<net::Frame>();
        out->bytes = std::move(req.payload);
        net_forwarded->inc();
        external_nic->send(0, std::move(out));
        if (!cfg.polling) {
            // TX-done interrupt on the external port (no-poll mode).
            irqs_taken->inc();
            workerCore(0).runPreempt(cfg.interrupt_cycles, []() {});
        }
    });
}

void
IoHypervisor::execBlock(unsigned worker, MessageAssembler::Assembled req)
{
    auto it = blk_devices.find(req.hdr.device_id);
    if (it == blk_devices.end()) {
        vrio_warn("block request for unknown device ", req.hdr.device_id);
        steer.complete(req.hdr.device_id, worker);
        // No response will release this request's QoS slot (the
        // device moved away between admission and execution).
        if (qsched_) {
            qosFinish(req.hdr.device_id, req.hdr.request_serial);
            qosPump();
        }
        return;
    }
    BlockDeviceEntry &dev = it->second;
    auto kind = virtio::BlkType(req.hdr.blk_type);
    bool is_write = kind == virtio::BlkType::Out;

    // Zero-copy accounting (Section 4.4): writes reuse the DMA buffer
    // for its sector-aligned interior, copying only the edges; the
    // edges come from where the payload landed inside the SKB pages.
    uint64_t copy_bytes = 0;
    if (is_write) {
        auto split = block::splitForZeroCopy(
            TransportHeader::kSize % virtio::kSectorSize,
            req.payload.size(), virtio::kSectorSize);
        copy_bytes += split.copied();
    }
    if (!req.zero_copy)
        copy_bytes += req.payload.size();
    copied_bytes->add(copy_bytes);

    size_t touched = is_write ? req.payload.size() : 0;
    double cycles = cfg.blk_fixed_cycles +
                    cfg.blk_per_byte_cycles * double(touched) +
                    cfg.copy_per_byte_cycles * double(copy_bytes) +
                    interposeCycles(dev.chain, req.payload.size()) +
                    takeBatchCycles() + disturbanceCycles();

    recordService(worker, cycles);
    uint32_t device_id = req.hdr.device_id;
    uint64_t epoch = worker_epoch[worker];
    sim::Tick t0 = sim().events().now();
    workerCore(worker).runPreempt(cycles, [this, worker, epoch, device_id, t0,
                                    req = std::move(req),
                                    kind]() mutable {
        if (epoch != worker_epoch[worker])
            return;
        worker_stats[worker].residency_ns->record(
            (sim().events().now() - t0) / 1000);
        steer.complete(device_id, worker);
        stageDone(worker);
        auto it = blk_devices.find(device_id);
        if (it == blk_devices.end())
            return;
        BlockDeviceEntry &dev = it->second;
        bool is_write = kind == virtio::BlkType::Out;

        // Interpose on write payloads before they hit the device.
        if (dev.chain && is_write) {
            interpose::IoContext ctx;
            ctx.dir = interpose::Direction::FromClient;
            ctx.device_id = device_id;
            ctx.is_block = true;
            ctx.sector = req.hdr.sector;
            double chain_cycles = 0;
            if (!dev.chain->run(ctx, req.payload, chain_cycles)) {
                TransportHeader resp = req.hdr;
                resp.type = MsgType::BlkResp;
                resp.status = uint8_t(virtio::BlkStatus::IoErr);
                resp.total_len = 0;
                resp.generation = dedup.take(
                    device_id, resp.request_serial, resp.generation);
                finishBlockResponse(dev.t_mac, resp, {});
                return;
            }
        }

        block::BlockRequest breq;
        breq.kind = kind;
        breq.sector = req.hdr.sector;
        if (is_write) {
            vrio_assert(req.payload.size() % virtio::kSectorSize == 0,
                        "unaligned write payload");
            breq.nsectors =
                uint32_t(req.payload.size() / virtio::kSectorSize);
            breq.data = std::move(req.payload);
        } else if (kind == virtio::BlkType::In ||
                   kind == virtio::BlkType::Discard) {
            // Reads and discards carry no payload; the sector count
            // rides in the header's io_len.
            breq.nsectors = req.hdr.io_len / virtio::kSectorSize;
        }

        TransportHeader resp_proto = req.hdr;
        resp_proto.type = MsgType::BlkResp;

        dev.device->submit(
            std::move(breq),
            [this, device_id, resp_proto](virtio::BlkStatus status,
                                          Bytes data) mutable {
                auto it = blk_devices.find(device_id);
                if (it == blk_devices.end())
                    return;
                BlockDeviceEntry &dev = it->second;
                blk_ops->inc();

                // Interpose on read data flowing back to the client
                // (e.g. decryption); reads of encrypted-at-rest data
                // are transformed by the same chain in the ToClient
                // direction.
                if (dev.chain && status == virtio::BlkStatus::Ok &&
                    !data.empty()) {
                    interpose::IoContext ctx;
                    ctx.dir = interpose::Direction::ToClient;
                    ctx.device_id = device_id;
                    ctx.is_block = true;
                    ctx.sector = resp_proto.sector;
                    double chain_cycles = 0;
                    if (!dev.chain->run(ctx, data, chain_cycles)) {
                        status = virtio::BlkStatus::IoErr;
                        data.clear();
                    }
                }

                // Completion-side worker cost (response path).
                unsigned w = steer.steer(device_id);
                // Re-bind the in-service entry to the response-stage
                // worker: if *this* worker wedges, the quarantine must
                // release the entry or the client's retries would be
                // suppressed forever.
                dedup.bind(device_id, resp_proto.request_serial, w);
                uint64_t epoch = worker_epoch[w];
                double cycles =
                    cfg.blk_fixed_cycles / 2 +
                    cfg.blk_per_byte_cycles * double(data.size()) +
                    interposeCycles(dev.chain, data.size());
                workerCore(w).run(
                    cycles, [this, w, epoch, device_id, resp_proto,
                             status, data = std::move(data)]() mutable {
                        if (epoch != worker_epoch[w])
                            return;
                        steer.complete(device_id, w);
                        auto it = blk_devices.find(device_id);
                        if (it == blk_devices.end())
                            return;
                        TransportHeader resp = resp_proto;
                        resp.status = uint8_t(status);
                        // Stamp the newest generation seen, so a
                        // response computed for generation g still
                        // matches a client that has retried to g+1.
                        resp.generation = dedup.take(
                            device_id, resp.request_serial,
                            resp.generation);
                        finishBlockResponse(it->second.t_mac, resp,
                                            std::move(data));
                    });
            });
    });
}

// -- multi-tenant QoS scheduling (DESIGN.md §17) --------------------------

void
IoHypervisor::setTenant(uint32_t device_id, qos::TenantConfig tc)
{
    vrio_assert(qsched_ != nullptr,
                "setTenant requires cfg.qos");
    qsched_->setTenant(device_id, tc);
    auto &m = sim().telemetry().metrics;
    telemetry::Labels l{{"iohv", name()},
                        {"tenant", std::to_string(device_id)}};
    TenantTelemetry tt;
    tt.latency_us = &m.histogram("qos.tenant.latency_us", l);
    tt.slo_violations = &m.counter("qos.slo.violations", l);
    tt.slo = tc.slo;
    qos_tenants[device_id] = tt;
}

void
IoHypervisor::qosEnqueue(MessageAssembler::Assembled req)
{
    const uint32_t device_id = req.hdr.device_id;
    // Abstract cost: one fixed unit plus the data the workers and the
    // backend actually touch — io_len covers reads (no payload on the
    // request), the payload covers writes.
    double bytes = double(std::max<uint64_t>(req.payload.size(),
                                             req.hdr.io_len));
    double cost = 1.0 + bytes / 4096.0;
    sim::Tick now = sim().events().now();
    uint64_t token = qos_next_token++;
    switch (qsched_->push(device_id, token, cost, now)) {
      case qos::Verdict::Shed:
        // Unwind the admission: release the in-service entry so the
        // client's retransmit timer retries this serial once pressure
        // clears — the same loss-recovery loop a dropped frame uses.
        dedup.take(device_id, req.hdr.request_serial,
                   req.hdr.generation);
        qos_shed_ctr->inc();
        return;
      case qos::Verdict::Deferred:
        qos_defer_ctr->inc();
        break;
      case qos::Verdict::Admitted:
        break;
    }
    qos_live.emplace(std::make_pair(device_id, req.hdr.request_serial),
                     now);
    qos_pending.emplace(token, std::move(req));
    qosPump();
}

void
IoHypervisor::qosPump()
{
    if (offline_)
        return;
    // A slot spans admission to response (see qos_inflight): the
    // default window keeps the worker stage and the store's channel
    // pipelined without letting a FIFO backlog re-form downstream.
    const size_t window =
        cfg.qos_window ? cfg.qos_window : cfg.num_workers * 4;
    while (qos_inflight < window && !(repl_ && repl_->windowFull())) {
        auto p = qsched_->pop(sim().events().now());
        if (!p)
            return;
        if (p->promoted)
            qos_promote_ctr->inc();
        auto it = qos_pending.find(p->token);
        vrio_assert(it != qos_pending.end(), "QoS token ", p->token,
                    " has no pending request");
        MessageAssembler::Assembled req = std::move(it->second);
        qos_pending.erase(it);
        mirrorAdmitted(req.hdr, req.payload);
        ++qos_inflight;
        ++inflight;
        unsigned w = steer.steer(req.hdr.device_id);
        dedup.bind(req.hdr.device_id, req.hdr.request_serial, w);
        ++worker_inflight[w];
        worker_stats[w].dispatches->inc();
        execBlock(w, std::move(req));
    }
}

std::optional<sim::Tick>
IoHypervisor::qosFinish(uint32_t device_id, uint64_t serial)
{
    // Misses are expected: warm replays and coalesced runs never pass
    // through the scheduler.
    auto it = qos_live.find({device_id, serial});
    if (it == qos_live.end())
        return std::nullopt;
    sim::Tick admitted = it->second;
    qos_live.erase(it);
    if (qos_inflight > 0)
        --qos_inflight;
    return admitted;
}

void
IoHypervisor::qosRecordLatency(uint32_t device_id, uint64_t serial)
{
    auto admitted = qosFinish(device_id, serial);
    if (!admitted)
        return;
    sim::Tick waited = sim().events().now() - *admitted;
    auto tt = qos_tenants.find(device_id);
    if (tt != qos_tenants.end()) {
        tt->second.latency_us->record(
            uint64_t(sim::ticksToMicros(waited)));
        if (tt->second.slo && waited > tt->second.slo) {
            tt->second.slo_violations->inc();
            ++qos_slo_violations;
        }
    }
    // The freed slot is the pump's wake-up signal.
    qosPump();
}

// -- cross-VM request coalescing (rack layer, DESIGN.md §15) --------------

void
IoHypervisor::stageBlock(MessageAssembler::Assembled req,
                         const BlockDeviceEntry &dev)
{
    coalesce_staged->inc();
    transport::CoalesceEntry e;
    e.device_id = req.hdr.device_id;
    e.serial = req.hdr.request_serial;
    e.generation = req.hdr.generation;
    e.blk_type = req.hdr.blk_type;
    e.ns_id = dev.ns_id;
    e.lba = dev.sector_offset + req.hdr.sector;
    e.arrival = stage_arrival++;
    e.zero_copy = req.zero_copy;
    auto kind = virtio::BlkType(req.hdr.blk_type);
    if (kind == virtio::BlkType::Out) {
        vrio_assert(req.payload.size() % virtio::kSectorSize == 0,
                    "unaligned write payload");
        e.nsectors = uint32_t(req.payload.size() / virtio::kSectorSize);
        e.payload = std::move(req.payload);
    } else if (kind == virtio::BlkType::In ||
               kind == virtio::BlkType::Discard) {
        e.nsectors = req.hdr.io_len / virtio::kSectorSize;
    }

    // One staging bucket per backing device, in first-seen order (the
    // rack wiring points many device_ids at one shared store — that
    // cross-VM adjacency is what the planner merges).
    StagedBucket *bucket = nullptr;
    for (auto &b : staged)
        if (b.device == dev.device)
            bucket = &b;
    if (!bucket) {
        staged.push_back(StagedBucket{dev.device, {}});
        bucket = &staged.back();
    }
    bucket->entries.push_back(std::move(e));
    if (++staged_total >= cfg.coalesce_max) {
        // Eager flush: a full window's worth arrived before the timer;
        // waiting longer could only add latency, never merge mates.
        flushCoalescer();
        return;
    }
    if (!coalesce_timer_armed) {
        coalesce_timer_armed = true;
        coalesce_timer = sim().events().schedule(
            cfg.coalesce_window, [this]() { flushCoalescer(); });
    }
}

void
IoHypervisor::flushCoalescer()
{
    if (coalesce_timer_armed) {
        coalesce_timer.cancel();
        coalesce_timer_armed = false;
    }
    auto buckets = std::move(staged);
    staged.clear();
    staged_total = 0;
    for (auto &b : buckets) {
        for (auto &run :
             transport::planMergedRuns(std::move(b.entries),
                                       cfg.coalesce_max))
            execRun(std::move(run));
    }
}

void
IoHypervisor::execRun(transport::MergedRun run)
{
    coalesce_runs->inc();
    if (run.merged())
        coalesce_merged->add(run.parts.size());

    // The run steers as one unit keyed by its lead (lowest-LBA)
    // member's device; every member's in-service dedup entry binds to
    // that worker so a quarantine releases the whole run for replay.
    uint32_t lead_id = run.parts.front().device_id;
    ++inflight;
    unsigned w = steer.steer(lead_id);
    for (const auto &p : run.parts)
        dedup.bind(p.device_id, p.serial, w);
    ++worker_inflight[w];
    worker_stats[w].dispatches->inc();

    // Worker cost: one fixed charge for the whole submission (the
    // relocation payoff), per-byte over the bytes actually touched,
    // the usual zero-copy edge accounting per member write, plus a
    // small per-extra-member charge for scatter-gather bookkeeping.
    bool is_write = virtio::BlkType(run.blk_type) == virtio::BlkType::Out;
    uint64_t copy_bytes = 0;
    size_t touched = 0;
    for (const auto &p : run.parts) {
        if (is_write) {
            auto split = block::splitForZeroCopy(
                TransportHeader::kSize % virtio::kSectorSize,
                p.payload.size(), virtio::kSectorSize);
            copy_bytes += split.copied();
            touched += p.payload.size();
        }
        if (!p.zero_copy)
            copy_bytes += p.payload.size();
    }
    copied_bytes->add(copy_bytes);
    double cycles = cfg.blk_fixed_cycles +
                    cfg.blk_per_byte_cycles * double(touched) +
                    cfg.copy_per_byte_cycles * double(copy_bytes) +
                    cfg.coalesce_part_cycles *
                        double(run.parts.size() - 1) +
                    takeBatchCycles() + disturbanceCycles();

    recordService(w, cycles);
    uint64_t epoch = worker_epoch[w];
    sim::Tick t0 = sim().events().now();
    workerCore(w).runPreempt(cycles, [this, w, epoch, lead_id, t0,
                                      run = std::move(run)]() mutable {
        // Quarantined while queued: the watchdog reconciled the
        // accounting and dropped every member's dedup entry, so the
        // clients' replays re-execute the whole run.
        if (epoch != worker_epoch[w])
            return;
        worker_stats[w].residency_ns->record(
            (sim().events().now() - t0) / 1000);
        steer.complete(lead_id, w);
        stageDone(w);
        auto it = blk_devices.find(lead_id);
        if (it == blk_devices.end())
            return;

        block::BlockRequest breq;
        breq.kind = virtio::BlkType(run.blk_type);
        breq.sector = run.lba;
        breq.nsectors = run.nsectors;
        if (breq.kind == virtio::BlkType::Out)
            breq.data = transport::buildRunPayload(run);

        it->second.device->submit(
            std::move(breq),
            [this, run = std::move(run)](virtio::BlkStatus status,
                                         Bytes data) mutable {
                // One backend op per run — the merged-visibility
                // counter shape (blk_ops < staged when merging works).
                blk_ops->inc();
                fanBackRun(std::move(run), status, std::move(data));
            });
    });
}

void
IoHypervisor::fanBackRun(transport::MergedRun run, virtio::BlkStatus status,
                         Bytes data)
{
    // One response-stage worker charge for the whole run, then the
    // split completions fan back per-VM.
    uint32_t lead_id = run.parts.front().device_id;
    unsigned w = steer.steer(lead_id);
    for (const auto &p : run.parts)
        dedup.bind(p.device_id, p.serial, w);
    uint64_t epoch = worker_epoch[w];
    double cycles = cfg.blk_fixed_cycles / 2 +
                    cfg.blk_per_byte_cycles * double(data.size()) +
                    cfg.coalesce_part_cycles *
                        double(run.parts.size() - 1);
    workerCore(w).run(cycles, [this, w, epoch, lead_id,
                               run = std::move(run), status,
                               data = std::move(data)]() mutable {
        if (epoch != worker_epoch[w])
            return;
        steer.complete(lead_id, w);
        // Completions fan back in arrival order, independent of the
        // LBA order the run was assembled in — a client that staged
        // first completes first.
        std::vector<const transport::CoalesceEntry *> order;
        order.reserve(run.parts.size());
        for (const auto &p : run.parts)
            order.push_back(&p);
        std::sort(order.begin(), order.end(),
                  [](const transport::CoalesceEntry *a,
                     const transport::CoalesceEntry *b) {
                      return a->arrival < b->arrival;
                  });
        bool is_read = virtio::BlkType(run.blk_type) == virtio::BlkType::In;
        for (const transport::CoalesceEntry *p : order) {
            auto it = blk_devices.find(p->device_id);
            if (it == blk_devices.end())
                continue;
            const BlockDeviceEntry &dev = it->second;
            TransportHeader resp;
            resp.type = MsgType::BlkResp;
            resp.device_id = p->device_id;
            resp.request_serial = p->serial;
            resp.blk_type = run.blk_type;
            resp.sector = p->lba - dev.sector_offset;
            resp.io_len = p->nsectors * virtio::kSectorSize;
            resp.status = uint8_t(status);
            Bytes slice;
            if (is_read && status == virtio::BlkStatus::Ok)
                slice = transport::sliceRunData(run, *p, data);
            resp.total_len = uint32_t(slice.size());
            resp.generation =
                dedup.take(p->device_id, p->serial, p->generation);
            finishBlockResponse(dev.t_mac, resp, std::move(slice));
        }
    });
}

// -- warm-state replication (DESIGN.md §16) -------------------------------

void
IoHypervisor::attachReplicationNic(net::Nic &nic)
{
    vrio_assert(!repl_nic, "replication NIC already attached");
    repl_nic = &nic;
    nic.setPromiscuous(true);
    nic.setRxMode(0, net::Nic::RxMode::Poll);
    nic.setRxNotify(0, [this](unsigned) { replRxNotify(); });
}

void
IoHypervisor::enableReplication(const ReplicationConfig &rcfg,
                                net::MacAddress peer_mac,
                                net::MacAddress upstream_mac)
{
    vrio_assert(!repl_, "replication already enabled");
    vrio_assert(repl_nic, "attach the replication NIC first");
    Replicator::Hooks hooks;
    hooks.send = [this](MsgType type, const Bytes &payload,
                        net::MacAddress dst) {
        sendReplication(type, payload, dst);
    };
    hooks.apply = [this](const transport::ReplicaRecord &rec) {
        applyMirroredCommit(rec);
    };
    hooks.acked = [this](uint64_t cum) { replicationAcked(cum); };
    repl_ = std::make_unique<Replicator>(sim().events(), rcfg, peer_mac,
                                         upstream_mac, std::move(hooks));
    auto &m = sim().telemetry().metrics;
    telemetry::Labels l{{"iohv", name()}};
    m.probe("repl.lag", l, [this]() { return double(repl_->lag()); });
    m.probe("repl.records_sent", l,
            [this]() { return double(repl_->recordsSent()); });
    m.probe("repl.commits_applied", l,
            [this]() { return double(repl_->commitsApplied()); });
    m.probe("repl.held_responses", l,
            [this]() { return double(held_responses.size()); });
}

void
IoHypervisor::replRxNotify()
{
    if (offline_) {
        while (repl_nic->rxPending(0) > 0)
            offline_rx_drops->add(
                repl_nic->rxTake(0, cfg.batch_max).size());
        return;
    }
    if (repl_pump_scheduled)
        return;
    repl_pump_scheduled = true;
    sim().events().schedule(cfg.poll_pickup, [this]() {
        repl_pump_scheduled = false;
        pumpReplicationRing();
    });
}

void
IoHypervisor::pumpReplicationRing()
{
    vrio_assert(repl_nic, "no replication NIC");
    if (offline_) {
        while (repl_nic->rxPending(0) > 0)
            offline_rx_drops->add(
                repl_nic->rxTake(0, cfg.batch_max).size());
        return;
    }
    // Pumped without the intake gate: mirror traffic and acks must
    // keep flowing even when request admission is backpressured, or
    // two IOhosts mirroring to each other would deadlock the moment
    // both windows filled.
    while (repl_nic->rxPending(0) > 0) {
        auto batch = repl_nic->rxTake(0, cfg.batch_max);
        for (const auto &frame : batch)
            handleWireFrame(frame);
    }
}

void
IoHypervisor::sendReplication(MsgType type, const Bytes &payload,
                              net::MacAddress dst)
{
    if (offline_ || !repl_nic)
        return;
    TransportHeader hdr;
    hdr.type = type;
    hdr.total_len = uint32_t(payload.size());
    // Distinct serials keep concurrent multi-part control messages
    // from colliding in the peer's message assembler.
    hdr.request_serial = ++repl_msg_serial;
    net::MacAddress src = repl_nic->queueMac(0);
    for (const auto &part : transport::segmentRequest(hdr, payload)) {
        repl_nic->send(0, transport::encapsulate(src, dst,
                                                 next_wire_id++,
                                                 part.hdr, part.payload));
    }
}

void
IoHypervisor::applyMirroredCommit(const transport::ReplicaRecord &rec)
{
    auto it = blk_devices.find(rec.device_id);
    if (it == blk_devices.end() || rec.payload.empty())
        return;
    if (virtio::BlkType(rec.blk_type) != virtio::BlkType::Out)
        return;
    it->second.device->mirrorWrite(
        it->second.sector_offset + rec.sector,
        std::span<const uint8_t>(rec.payload));
}

void
IoHypervisor::replicationAcked(uint64_t cum_seq)
{
    // Output commit: responses whose Commit record the peer now holds
    // are safe to release — from here on, a crash of this host leaves
    // the acknowledged write readable at the peer.
    while (!held_responses.empty() &&
           held_responses.begin()->first <= cum_seq) {
        HeldResponse r = std::move(held_responses.begin()->second);
        held_responses.erase(held_responses.begin());
        sendToClient(r.t_mac, r.hdr, r.data);
    }
    // A drain barrier was reached: the peer is warm up to everything
    // mirrored before the re-home began, so command the flip.
    for (auto it = pending_rehomes.begin();
         it != pending_rehomes.end();) {
        if (it->barrier <= cum_seq) {
            issueRehomeCommand(*it);
            it = pending_rehomes.erase(it);
        } else {
            ++it;
        }
    }
    // The window may have reopened; resume admitting queued frames.
    pumpClientRings();
    if (external_nic)
        pumpExternalRings();
}

void
IoHypervisor::mirrorAdmitted(const TransportHeader &hdr,
                             const Bytes &payload)
{
    if (!repl_)
        return;
    // Only writes need their payload at the peer (it applies at
    // commit time); reads and fences mirror descriptor-only.
    Bytes data;
    if (virtio::BlkType(hdr.blk_type) == virtio::BlkType::Out)
        data = payload;
    repl_->mirrorInService(hdr.device_id, hdr.request_serial,
                           hdr.generation, hdr.blk_type, hdr.sector,
                           hdr.io_len, std::move(data));
}

void
IoHypervisor::finishBlockResponse(net::MacAddress t_mac,
                                  const TransportHeader &resp, Bytes data)
{
    // A backend completion whose submission predates a crash fires
    // into the offline window: its result dies with the host.
    // Mirroring a Commit here would append to the already-reset
    // replication stream and hold a response that no surviving Commit
    // record can ever release — the client replays at the new home
    // instead.
    if (offline_) {
        offline_tx_drops->inc();
        return;
    }
    noteDeviceProgress(resp.device_id);
    if (qsched_)
        qosRecordLatency(resp.device_id, resp.request_serial);
    if (!repl_) {
        sendToClient(t_mac, resp, data);
        return;
    }
    auto kind = virtio::BlkType(resp.blk_type);
    bool state_changing = kind == virtio::BlkType::Out ||
                          kind == virtio::BlkType::Flush ||
                          kind == virtio::BlkType::Discard;
    if (state_changing &&
        virtio::BlkStatus(resp.status) == virtio::BlkStatus::Ok) {
        uint64_t seq = repl_->mirrorCommit(resp.device_id,
                                           resp.request_serial,
                                           resp.generation);
        held_responses.emplace(seq,
                               HeldResponse{t_mac, resp,
                                            std::move(data)});
    } else {
        repl_->mirrorForget(resp.device_id, resp.request_serial);
        sendToClient(t_mac, resp, data);
    }
}

void
IoHypervisor::activateWarmState(uint32_t device_id,
                                uint64_t floor_serial)
{
    if (!repl_)
        return;
    auto it = blk_devices.find(device_id);
    if (it == blk_devices.end())
        return;
    auto entries = repl_->takeWarmInService(device_id);
    uint64_t replayed = 0;
    for (auto &e : entries) {
        // Below the client's lowest outstanding serial means the
        // request already completed at the old home and only its
        // cleanup record was lost — replaying would re-apply a stale
        // write over newer data.
        if (e.serial < floor_serial)
            continue;
        // A client retry that beat the activation already owns the
        // in-service entry; its execution covers this one.
        if (!dedup.seed(device_id, e.serial, e.generation))
            continue;
        ++warm_replays;
        ++replayed;
        statCounter("repl_replays").inc();
        TransportHeader hdr;
        hdr.type = MsgType::BlkReq;
        hdr.device_id = device_id;
        hdr.request_serial = e.serial;
        hdr.generation = e.generation;
        hdr.blk_type = e.blk_type;
        hdr.sector = e.sector;
        hdr.io_len = e.io_len;
        hdr.total_len = uint32_t(e.payload.size());
        MessageAssembler::Assembled req;
        req.hdr = hdr;
        req.payload = std::move(e.payload);
        req.zero_copy = false; // replayed from mirror memory: copies
        // The chain continues downstream: a replayed request mirrors
        // to this host's own peer like any freshly admitted one.
        mirrorAdmitted(req.hdr, req.payload);
        ++inflight;
        unsigned w = steer.steer(device_id);
        dedup.bind(device_id, hdr.request_serial, w);
        ++worker_inflight[w];
        worker_stats[w].dispatches->inc();
        execBlock(w, std::move(req));
    }
    if (replayed) {
        auto &tr = sim().telemetry().tracer;
        if (tr.enabled()) {
            tr.instant(tr_recovery_track, tr_replay,
                       sim().events().now(), telemetry::cat::kRecovery,
                       replayed);
        }
    }
}

bool
IoHypervisor::beginRehome(uint32_t device_id, uint16_t target)
{
    if (!repl_ || offline_)
        return false;
    auto it = blk_devices.find(device_id);
    if (it == blk_devices.end())
        return false;
    repl_->flush();
    PendingRehome r;
    r.device_id = device_id;
    r.target = target;
    r.t_mac = it->second.t_mac;
    // Everything mirrored so far must be acked by the peer before the
    // client flips — the drain barrier of the drain-mirror-flip.
    r.barrier = repl_->nextSeq() - 1;
    if (repl_->lastAcked() >= r.barrier)
        issueRehomeCommand(r);
    else
        pending_rehomes.push_back(r);
    return true;
}

void
IoHypervisor::issueRehomeCommand(const PendingRehome &r)
{
    ++rehomes_issued;
    statCounter("rehomes_issued").inc();
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_recovery_track, tr_rehome, sim().events().now(),
                   telemetry::cat::kRecovery, r.device_id);
    }
    transport::RehomeCmd cmd;
    cmd.phase = transport::RehomeCmd::Phase::Command;
    cmd.device_id = r.device_id;
    cmd.target = r.target;
    Bytes payload;
    ByteWriter w(payload);
    cmd.encode(w);
    TransportHeader hdr;
    hdr.type = MsgType::Rehome;
    hdr.device_id = r.device_id;
    hdr.total_len = uint32_t(payload.size());
    sendToClient(r.t_mac, hdr, payload);
}

// -- load digest (rack placement input) -----------------------------------

uint32_t
IoHypervisor::loadDigestPreview() const
{
    uint64_t sum = 0, count = 0;
    for (const auto &ws : worker_stats) {
        sum += ws.residency_ns->sum();
        count += ws.residency_ns->count();
    }
    uint64_t dsum = sum - hb_resid_sum;
    uint64_t dcount = count - hb_resid_count;
    if (dcount)
        return uint32_t(std::min<uint64_t>(dsum / dcount, UINT32_MAX));
    // No completions this beat period.  An idle IOhost advertises 0,
    // but one with steered work and no progress (a wedge, a stall) is
    // the worst possible target — advertise saturation so placement
    // repels instead of attracting.
    for (unsigned w = 0; w < cfg.num_workers; ++w)
        if (steer.workerLoad(w) > 0)
            return UINT32_MAX;
    return inflight > 0 ? UINT32_MAX : 0;
}

uint32_t
IoHypervisor::takeLoadDigest()
{
    uint32_t digest = loadDigestPreview();
    uint64_t sum = 0, count = 0;
    for (const auto &ws : worker_stats) {
        sum += ws.residency_ns->sum();
        count += ws.residency_ns->count();
    }
    hb_resid_sum = sum;
    hb_resid_count = count;
    return digest;
}

void
IoHypervisor::execAck(MessageAssembler::Assembled req)
{
    transport::DeviceAck ack;
    ByteReader r(req.payload);
    if (transport::DeviceAck::decode(r, ack))
        acks->inc();
}

void
IoHypervisor::sendToClient(net::MacAddress t_mac,
                           const TransportHeader &hdr, const Bytes &payload)
{
    vrio_assert(!client_nics.empty(), "no client NIC");
    if (offline_) {
        // Work that was in flight when the IOhost died produces no
        // response; the client's retransmission timer covers it.
        offline_tx_drops->inc();
        return;
    }
    auto &tr = sim().telemetry().tracer;
    if (tr.enabled()) {
        tr.instant(tr_track, tr_tx, sim().events().now(),
                   telemetry::cat::kIo, hdr.request_serial);
    }
    auto learned = client_port_of.find(t_mac);
    net::Nic *nic = learned != client_port_of.end()
                        ? client_nics[learned->second]
                        : client_nics.front();
    net::MacAddress src = nic->queueMac(0);
    // Software-segment oversized responses, then one TSO send per part.
    auto parts = transport::segmentRequest(hdr, payload);
    for (const auto &part : parts) {
        auto frame = transport::encapsulate(src, t_mac, next_wire_id++,
                                            part.hdr, part.payload);
        nic->send(0, std::move(frame));
        if (!cfg.polling) {
            // Interrupt-driven IOhost: each transmit completion also
            // interrupts (half of the "4 IOhost interrupts" of
            // Table 3's no-poll row).
            irqs_taken->inc();
            workerCore(0).runPreempt(cfg.interrupt_cycles, []() {});
        }
    }
}

// -- external ingress -----------------------------------------------------

void
IoHypervisor::externalRxNotify()
{
    if (offline_) {
        discardRings();
        return;
    }
    // Reuse the client pump gate: a single poll loop services both
    // rings in practice; modelling one shared pickup delay suffices.
    if (pump_scheduled)
        return;
    pump_scheduled = true;
    sim().events().schedule(cfg.poll_pickup, [this]() {
        pump_scheduled = false;
        pumpExternalRings();
        pumpClientRings();
    });
}

void
IoHypervisor::pumpExternalRings()
{
    vrio_assert(external_nic, "no external NIC");
    if (offline_) {
        discardRings();
        return;
    }
    while (external_nic->rxPending(0) > 0 && intakeAllowed()) {
        auto batch = external_nic->rxTake(0, cfg.batch_max);
        polls->inc();
        pending_batch_cycles += cfg.batch_fixed_cycles;
        for (auto &frame : batch)
            handleExternalFrame(std::move(frame));
    }
}

void
IoHypervisor::handleExternalFrame(net::FramePtr frame)
{
    net::EtherHeader eh = frame->ether();
    auto idx = f_mac_index.find(eh.dst);
    if (idx == f_mac_index.end())
        return; // not for any consolidated device
    uint32_t device_id = idx->second;
    auto it = net_devices.find(device_id);
    vrio_assert(it != net_devices.end(), "index out of sync");
    NetDeviceEntry &dev = it->second;

    ++inflight;
    unsigned worker = steer.steer(device_id);
    ++worker_inflight[worker];
    size_t frame_bytes = frame->bytes.size() + frame->pad;
    double cycles = cfg.net_fixed_cycles +
                    cfg.net_per_byte_cycles * double(frame_bytes) +
                    interposeCycles(dev.chain, frame_bytes) +
                    takeBatchCycles() + disturbanceCycles();

    recordService(worker, cycles);
    uint64_t epoch = worker_epoch[worker];
    sim::Tick t0 = sim().events().now();
    workerCore(worker).runPreempt(cycles, [this, worker, epoch, device_id, t0,
                                    frame = std::move(frame)]() mutable {
        if (epoch != worker_epoch[worker])
            return;
        worker_stats[worker].residency_ns->record(
            (sim().events().now() - t0) / 1000);
        steer.complete(device_id, worker);
        stageDone(worker);
        auto it = net_devices.find(device_id);
        if (it == net_devices.end())
            return;
        NetDeviceEntry &dev = it->second;

        Bytes payload = std::move(frame->bytes);
        if (dev.chain) {
            interpose::IoContext ctx;
            ctx.dir = interpose::Direction::ToClient;
            ctx.device_id = device_id;
            ctx.is_block = false;
            ByteReader r(payload);
            auto eh = net::EtherHeader::decode(r);
            ctx.src = eh.src;
            ctx.dst = eh.dst;
            ctx.ether_type = eh.ether_type;
            double chain_cycles = 0;
            if (!dev.chain->run(ctx, payload, chain_cycles))
                return;
        }

        TransportHeader hdr;
        hdr.type = MsgType::NetIn;
        hdr.device_id = device_id;
        hdr.total_len = uint32_t(payload.size());
        net_forwarded->inc();
        sendToClient(dev.t_mac, hdr, payload);
    });
}

} // namespace vrio::iohost
