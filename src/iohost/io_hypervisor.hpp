/**
 * @file
 * The vRIO I/O hypervisor — the software that controls the IOhost
 * (Section 4.1).
 *
 * It owns a set of workers (sidecores), polls the client-facing NIC
 * (or takes interrupts, in the no-poll ablation), reassembles
 * transport messages, steers each request to a worker under the
 * order-preserving policy, runs the per-device interposition chain,
 * and executes the back-end action: forwarding guest packets out the
 * external NIC, delivering external packets to guests, or performing
 * block I/O against consolidated devices.
 */
#ifndef VRIO_IOHOST_IO_HYPERVISOR_HPP
#define VRIO_IOHOST_IO_HYPERVISOR_HPP

#include <map>
#include <memory>

#include "block/block_device.hpp"
#include "hv/core.hpp"
#include "interpose/service.hpp"
#include "iohost/replication.hpp"
#include "iohost/steering.hpp"
#include "net/nic.hpp"
#include "qos/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/coalesce.hpp"
#include "transport/control.hpp"
#include "transport/reassembly.hpp"
#include "transport/segmenter.hpp"

namespace vrio::iohost {

struct IoHypervisorConfig
{
    unsigned num_workers = 1;
    /** First machine core used as a worker (cores [first, first+n)). */
    unsigned first_worker_core = 0;

    /** Poll the NICs (vRIO) or take interrupts (vRIO w/o poll). */
    bool polling = true;

    uint32_t mtu = net::kMtuVrioJumbo;

    // -- cycle costs, charged to worker cores ------------------------
    /**
     * Per poll batch (ring scan, wakeup, prefetch).  Charged once per
     * batch taken off a ring, so it amortizes across messages under
     * load but is paid in full by every lone ping-pong packet.
     */
    double batch_fixed_cycles = 1800;
    /** Per net message: decapsulate + backend + re-encapsulate. */
    double net_fixed_cycles = 1600;
    double net_per_byte_cycles = 1.4;
    /** Per block request: decapsulate + backend + response. */
    double blk_fixed_cycles = 3600;
    double blk_per_byte_cycles = 0.5;
    /** Extra per copied byte (unaligned edges, non-zero-copy SKBs). */
    double copy_per_byte_cycles = 0.35;
    /** Per physical interrupt in no-poll mode. */
    double interrupt_cycles = 4400;

    /**
     * Worker service-time disturbances (jitter and rare stalls);
     * probability + exponential mean in microseconds.
     */
    double jitter_p = 0;
    double jitter_mean_us = 0;
    double stall_p = 0;
    double stall_mean_us = 0;
    double jitter_cap_us = 0;
    double stall_cap_us = 0;
    /** Worker clock for converting stall time to cycles. */
    double worker_ghz = 2.7;

    /** Frame-arrival to worker pickup when polling and idle. */
    sim::Tick poll_pickup = sim::Tick(300) * sim::kNanosecond;
    /** Max frames taken from a ring per poll batch. */
    size_t batch_max = 16;

    // -- failure detection (all disabled by default: a zero-config
    // -- IOhost schedules no extra events and perturbs nothing) ------
    /**
     * Liveness beacon period: every period, send one Heartbeat
     * message to each known client T-MAC (0 = no heartbeats).
     */
    sim::Tick heartbeat_period = 0;
    /**
     * Worker watchdog period (0 = no watchdog).  Each pass compares
     * every worker's completion counter against the last pass; a
     * worker with steered work but no progress for
     * `watchdog_threshold` consecutive passes is declared wedged and
     * quarantined: its devices re-steer to healthy workers and its
     * in-flight requests are abandoned for the clients to replay.
     */
    sim::Tick watchdog_period = 0;
    unsigned watchdog_threshold = 2;

    // -- rack layer (DESIGN.md §15; all off by default) ---------------
    /**
     * Cross-VM request coalescing at this fan-out point: block
     * requests stage briefly and flush as merged backend runs
     * (transport/coalesce.hpp).  Off = the historical one-request,
     * one-submission dispatch path, untouched.
     */
    bool coalesce = false;
    /** Merge window; staged requests flush after this long. */
    sim::Tick coalesce_window = sim::Tick(2) * sim::kMicrosecond;
    /** Eager-flush threshold and per-run member cap. */
    size_t coalesce_max = 8;
    /** Worker cycles per extra member merged into a run. */
    double coalesce_part_cycles = 400;
    /**
     * Piggyback a load digest (beat-period mean worker residency, ns)
     * in heartbeats so clients can make rack placement decisions.
     * Adds 4 bytes per beat; off keeps the wire format historical.
     */
    bool advertise_load = false;

    // -- multi-tenant QoS (DESIGN.md §17; off by default) --------------
    /**
     * Weighted-fair / deadline scheduling at the fan-out point: block
     * requests queue in a per-tenant `qos::FairScheduler` instead of
     * dispatching FIFO, and admission control sheds over-budget
     * tenants under pressure.  Off = the historical dispatch path,
     * untouched.  Mutually exclusive with `coalesce` (both disciplines
     * re-order the same queue).
     */
    bool qos = false;
    qos::SchedulerConfig qos_cfg;
    /**
     * End-to-end admitted requests while QoS paces the fan-out
     * (0 = four per worker).  A slot spans admission to response —
     * it covers the worker stage *and* the shared store channel
     * behind it — so queueing lives in the scheduler, where policy
     * applies, not in downstream backlogs the policy can't reach.
     * Four per worker keeps the worker/store pipeline full.
     */
    unsigned qos_window = 0;
};

/** A guest-facing net device consolidated on the IOhost. */
struct NetDeviceEntry
{
    uint32_t device_id = 0;
    /** The front-end (F) MAC the outside world addresses. */
    net::MacAddress f_mac;
    /** The client's transport-channel (T) MAC. */
    net::MacAddress t_mac;
    /** Interposition chain (may be null). */
    interpose::Chain *chain = nullptr;
};

/** A guest-facing block device backed by an IOhost-local device. */
struct BlockDeviceEntry
{
    uint32_t device_id = 0;
    net::MacAddress t_mac;
    block::BlockDevice *device = nullptr;
    interpose::Chain *chain = nullptr;
    /**
     * This device's region on a shared backing store: client sector s
     * maps to backend LBA sector_offset + s.  0 = whole device (the
     * historical per-VM backing).
     */
    uint64_t sector_offset = 0;
    /** Namespace id for the coalescer's FLUSH/TRIM fences. */
    uint32_t ns_id = 0;
};

class IoHypervisor : public sim::SimObject
{
  public:
    IoHypervisor(sim::Simulation &sim, std::string name,
                 hv::Machine &machine, IoHypervisorConfig cfg);

    /**
     * NIC wired (directly or via switch) toward IOclients.  May be
     * called several times — Fig. 2b wires one IOhost port per
     * VMhost; egress learns which port leads to which client T-MAC
     * from ingress traffic.
     */
    void attachClientNic(net::Nic &nic);

    /**
     * Statically map a client T-MAC to a client NIC index (rack
     * wiring is known at configuration time); ingress learning still
     * updates the map if a client moves.
     */
    void mapClientPort(net::MacAddress t_mac, size_t port_index);

    /** NIC wired to the rack switch / outside world. */
    void attachExternalNic(net::Nic &nic);

    void addNetDevice(NetDeviceEntry entry);
    void addBlockDevice(BlockDeviceEntry entry);

    /**
     * Push a DevCreate command to the IOclient behind @p t_mac
     * (Section 4.1: device creation is done via the I/O hypervisor).
     */
    void sendDeviceCreate(const transport::DeviceCreateCmd &cmd,
                          net::MacAddress t_mac);

    hv::Core &workerCore(unsigned w);
    const SteeringPolicy &steering() const { return steer; }

    /**
     * Crash / restart the IOhost (fault injection).  While offline
     * every RX frame is discarded, ring pumps stop, and responses are
     * suppressed — clients see pure loss and must retransmit
     * (Section 4.5).  Coming back online resumes ring service;
     * in-flight state lost to the crash is recovered by client
     * retransmission, which is safe because the consolidated disk
     * scheduler admits one outstanding request per block.
     */
    void setOffline(bool off);
    bool offline() const { return offline_; }

    /**
     * Route liveness beacons out @p nic (wired to the rack switch)
     * instead of the client channel; beats to a client T-MAC are
     * re-addressed to its `mapHeartbeatPath` destination.  This is the
     * `recovery.heartbeat_via_switch` wiring: heartbeats share the
     * switch datapath, so a dead switch port starves them and the
     * affected clients lapse — per-path failure detection.
     */
    void setHeartbeatNic(net::Nic &nic) { hb_nic = &nic; }

    /** Heartbeats for @p t_mac egress the heartbeat NIC to @p dst. */
    void mapHeartbeatPath(net::MacAddress t_mac, net::MacAddress dst);

    // -- warm-state replication (DESIGN.md §16) -----------------------
    /**
     * NIC carrying the replication control channel (wired to the rack
     * switch).  Its ring is pumped unconditionally — mirror traffic
     * and acks must keep flowing even when request admission is
     * backpressured, or two IOhosts mirroring to each other would
     * deadlock under overload.
     */
    void attachReplicationNic(net::Nic &nic);

    /**
     * Start mirroring warm state to @p peer_mac (the replication NIC
     * of the next rack IOhost) while accepting the inbound mirror
     * stream only from @p upstream_mac (the previous one).  Off by
     * default: an IOhost without a replicator schedules no extra
     * events and holds no responses.
     */
    void enableReplication(const ReplicationConfig &rcfg,
                           net::MacAddress peer_mac,
                           net::MacAddress upstream_mac);

    /** The replication engine, or null when replication is off. */
    Replicator *replicator() { return repl_.get(); }

    /**
     * Live re-homing (drain-mirror-flip): flush the mirror stream,
     * wait until the peer's cumulative ack covers everything mirrored
     * so far, then command the client behind @p device_id to re-home
     * onto rack IOhost @p target.  In-service requests keep completing
     * here during the drain (late responses still reach the client);
     * new requests arrive at the target, which activates the warm
     * state this host mirrored.  @return false when replication is
     * off, the device is unknown, or this host is offline.
     */
    bool beginRehome(uint32_t device_id, uint16_t target);

    // -- statistics ---------------------------------------------------
    uint64_t messagesProcessed() const { return messages->value(); }
    uint64_t requestsForwarded() const { return net_forwarded->value(); }
    uint64_t blockOps() const { return blk_ops->value(); }
    uint64_t copiedBytes() const { return copied_bytes->value(); }
    uint64_t interruptsTaken() const { return irqs_taken->value(); }
    uint64_t acksReceived() const { return acks->value(); }
    /** Frames discarded while the IOhost was crashed. */
    uint64_t offlineRxDrops() const { return offline_rx_drops->value(); }
    /** Responses suppressed because the IOhost was crashed. */
    uint64_t offlineTxDrops() const { return offline_tx_drops->value(); }
    const transport::Reassembler &reassembler() const { return *reasm; }

    // -- failure detection / recovery --------------------------------
    uint64_t heartbeatsSent() const { return heartbeats_sent->value(); }
    /** Restart count; stamped into heartbeats. */
    uint32_t incarnation() const { return incarnation_; }
    // -- cross-VM coalescing (cfg.coalesce) ---------------------------
    /** Backend submissions issued by the coalescer. */
    uint64_t coalesceRuns() const { return coalesce_runs->value(); }
    /** Members of multi-request runs (cross-VM merges that paid off). */
    uint64_t coalesceMergedParts() const
    {
        return coalesce_merged->value();
    }
    /** Requests that went through the staging buffer. */
    uint64_t coalesceStaged() const { return coalesce_staged->value(); }
    /** The load digest the next heartbeat would advertise (tests). */
    uint32_t loadDigestPreview() const;
    /** Wedged workers the watchdog detected and quarantined. */
    uint64_t wedgesDetected() const { return wedges_detected; }
    /** Quarantined workers readmitted after the probe completed. */
    uint64_t workersRevived() const { return workers_revived; }
    /** In-flight requests abandoned to client replay by quarantines. */
    uint64_t requestsAbandoned() const { return requests_abandoned; }
    /** Duplicate block requests suppressed (Section 4.5 server side). */
    uint64_t duplicatesSuppressed() const { return dedup.suppressed(); }
    sim::Tick lastWedgeDetectTick() const { return last_wedge_tick; }
    /** Stall-onset-to-quarantine time of the last detection. */
    sim::Tick lastWedgeDetectLatency() const { return last_wedge_latency; }
    /**
     * Devices the per-queue watchdog declared starved (in-service
     * entries but no completions while the workers stayed healthy).
     */
    uint64_t devicesStarved() const { return devices_starved; }
    /** Warm in-service entries replayed after a failover activation. */
    uint64_t warmReplays() const { return warm_replays; }
    /** Retries acknowledged straight from the warm committed table. */
    uint64_t commitHits() const { return commit_hits; }
    /** Live re-home handoffs this host has commanded. */
    uint64_t rehomesIssued() const { return rehomes_issued; }
    /** Responses currently held awaiting a peer commit ack. */
    size_t heldResponses() const { return held_responses.size(); }

    // -- multi-tenant QoS (cfg.qos) -----------------------------------
    /**
     * Declare the QoS contract (weight, optional latency SLO) for the
     * tenant behind block device @p device_id and register its
     * per-tenant telemetry series.  Requires cfg.qos.
     */
    void setTenant(uint32_t device_id, qos::TenantConfig tc);
    /** The scheduler, or null when QoS is off. */
    const qos::FairScheduler *qosScheduler() const
    {
        return qsched_.get();
    }
    /** Requests shed by admission control. */
    uint64_t qosSheds() const { return qsched_ ? qsched_->sheds() : 0; }
    /** Requests queued past their share with a finish-tag penalty. */
    uint64_t qosDeferrals() const
    {
        return qsched_ ? qsched_->deferrals() : 0;
    }
    /** Requests served early by the deadline lane. */
    uint64_t qosPromotions() const
    {
        return qsched_ ? qsched_->promotions() : 0;
    }
    /** Requests currently queued in the scheduler. */
    size_t qosQueued() const { return qsched_ ? qsched_->queued() : 0; }
    /** SLO violations observed at response time. */
    uint64_t qosSloViolations() const { return qos_slo_violations; }

  private:
    IoHypervisorConfig cfg;
    hv::Machine &machine;
    std::vector<net::Nic *> client_nics;
    /** Learned client T-MAC -> client NIC index. */
    std::map<net::MacAddress, size_t> client_port_of;
    net::Nic *external_nic = nullptr;

    SteeringPolicy steer;
    std::unique_ptr<transport::Reassembler> reasm;
    transport::MessageAssembler assembler;

    std::map<uint32_t, NetDeviceEntry> net_devices;
    /** F-MAC -> device id, for routing external ingress. */
    std::map<net::MacAddress, uint32_t> f_mac_index;
    std::map<uint32_t, BlockDeviceEntry> blk_devices;

    uint32_t next_wire_id = 1;
    bool pump_scheduled = false;
    bool offline_ = false;
    /**
     * Requests dispatched to workers and not yet through their first
     * processing stage.  Ring intake stops when the workers are this
     * far behind — "a worker that becomes *idle* takes a batch of
     * packets off a relevant NIC receive ring" (Section 4.1) — which
     * is what lets a small RX ring overflow under bursts (the
     * Section 4.5 512-vs-4096 observation).
     */
    size_t inflight = 0;

    /** Batch overhead awaiting attribution to the next message. */
    double pending_batch_cycles = 0;

    // Registry-backed counters (labeled {iohv=<name>}), resolved once
    // in the constructor.
    telemetry::Counter *messages;
    telemetry::Counter *net_forwarded;
    telemetry::Counter *blk_ops;
    telemetry::Counter *copied_bytes;
    telemetry::Counter *irqs_taken;
    telemetry::Counter *acks;
    telemetry::Counter *offline_rx_drops;
    telemetry::Counter *offline_tx_drops;
    telemetry::Counter *polls;
    /** Worker backlog depth observed at each dispatch. */
    telemetry::LogHistogram *inflight_at_dispatch;
    /** Per-worker dispatch counts and first-stage service time (ns). */
    struct WorkerStats
    {
        telemetry::Counter *dispatches;
        telemetry::LogHistogram *service_ns;
        telemetry::LogHistogram *residency_ns;
        uint16_t trace_track; ///< "iohost.workerN"
    };
    std::vector<WorkerStats> worker_stats;
    uint16_t tr_track;          ///< "<name>" tracer track
    uint16_t tr_recovery_track; ///< "recovery" tracer track
    uint16_t tr_dispatch;
    uint16_t tr_service;
    uint16_t tr_tx;
    uint16_t tr_heartbeat;
    uint16_t tr_wedge;
    uint16_t tr_revive;
    uint16_t tr_starved;
    uint16_t tr_rehome;
    uint16_t tr_replay;

    // -- failure detection / recovery state --------------------------
    transport::DuplicateFilter dedup;
    /** First-stage dispatches outstanding per worker. */
    std::vector<uint64_t> worker_inflight;
    /**
     * Bumped when a worker is quarantined; jobs capture the epoch at
     * dispatch and self-suppress if it moved, so abandoned work never
     * double-completes steering state or double-executes backends.
     */
    std::vector<uint64_t> worker_epoch;
    std::vector<uint64_t> watchdog_last_completed;
    std::vector<unsigned> watchdog_stuck;
    std::vector<bool> probe_outstanding;
    uint64_t hb_seq = 0;
    uint32_t incarnation_ = 0;
    telemetry::Counter *heartbeats_sent;
    /** Dedicated switch-path beacon NIC (null = client channel). */
    net::Nic *hb_nic = nullptr;
    /** Beacon destination per client T-MAC on the switch path. */
    std::map<net::MacAddress, net::MacAddress> hb_path;
    uint64_t wedges_detected = 0;
    uint64_t workers_revived = 0;
    uint64_t requests_abandoned = 0;
    sim::Tick last_wedge_tick = 0;
    sim::Tick last_wedge_latency = 0;

    /**
     * Per-device starvation watchdog (the PR 4 blind spot): a device
     * with in-service duplicate-filter entries but no completions is
     * starved even when its worker keeps completing other work — or
     * when a backend swallowed the request outright, which the
     * worker-level check can never see.  Progress is counted at the
     * same points the duplicate filter releases entries.
     */
    struct DeviceProgress
    {
        uint64_t completions = 0;
        uint64_t last_completions = 0;
        unsigned stuck = 0;
    };
    std::map<uint32_t, DeviceProgress> device_progress;
    uint64_t devices_starved = 0;

    // -- warm-state replication (DESIGN.md §16) -----------------------
    net::Nic *repl_nic = nullptr;
    std::unique_ptr<Replicator> repl_;
    bool repl_pump_scheduled = false;
    /** Distinguishes concurrent multi-part replication messages. */
    uint64_t repl_msg_serial = 0;
    /** A committed response awaiting the peer's cumulative ack. */
    struct HeldResponse
    {
        net::MacAddress t_mac;
        transport::TransportHeader hdr;
        Bytes data;
    };
    /** Commit-record sequence -> response, released in seq order. */
    std::map<uint64_t, HeldResponse> held_responses;
    /** An in-progress drain-mirror-flip, waiting on its ack barrier. */
    struct PendingRehome
    {
        uint32_t device_id = 0;
        uint16_t target = 0;
        net::MacAddress t_mac;
        uint64_t barrier = 0;
    };
    std::vector<PendingRehome> pending_rehomes;
    uint64_t warm_replays = 0;
    uint64_t commit_hits = 0;
    uint64_t rehomes_issued = 0;

    // -- multi-tenant QoS scheduling (cfg.qos) ------------------------
    /** The policy object; null when QoS is off. */
    std::unique_ptr<qos::FairScheduler> qsched_;
    /** Token -> queued request body (the scheduler holds tokens only). */
    std::map<uint64_t, transport::MessageAssembler::Assembled>
        qos_pending;
    uint64_t qos_next_token = 0;
    /** (device, serial) -> admission tick, for end-to-end latency. */
    std::map<std::pair<uint32_t, uint64_t>, sim::Tick> qos_live;
    /**
     * Scheduler picks whose *response* has not left yet.  Unlike
     * `inflight` (first worker stage only), a QoS slot is held until
     * finishBlockResponse: the backend behind the workers (the shared
     * store's channel) is part of the contended pipeline, and
     * releasing slots at stage end would just let the noisy tenant's
     * backlog re-form there, past the scheduler's reach.
     */
    size_t qos_inflight = 0;
    /** Per-tenant telemetry handles, resolved once in setTenant. */
    struct TenantTelemetry
    {
        telemetry::LogHistogram *latency_us = nullptr;
        telemetry::Counter *slo_violations = nullptr;
        sim::Tick slo = 0;
    };
    std::map<uint32_t, TenantTelemetry> qos_tenants;
    telemetry::Counter *qos_shed_ctr = nullptr;
    telemetry::Counter *qos_defer_ctr = nullptr;
    telemetry::Counter *qos_promote_ctr = nullptr;
    uint64_t qos_slo_violations = 0;
    /** Admission verdict + queue for one block request. */
    void qosEnqueue(transport::MessageAssembler::Assembled req);
    /** Dispatch scheduler picks while end-to-end slots are free. */
    void qosPump();
    /** Release the (device, serial) slot; admission tick on a hit. */
    std::optional<sim::Tick> qosFinish(uint32_t device_id,
                                       uint64_t serial);
    /** End-of-request accounting (latency histogram, SLO check). */
    void qosRecordLatency(uint32_t device_id, uint64_t serial);

    // -- cross-VM request coalescing (cfg.coalesce) -------------------
    /** Staged entries, bucketed per backing device in first-seen
     *  order (grouping by equality only — never ordered by address —
     *  keeps flush order run-to-run deterministic). */
    struct StagedBucket
    {
        block::BlockDevice *device = nullptr;
        std::vector<transport::CoalesceEntry> entries;
    };
    std::vector<StagedBucket> staged;
    size_t staged_total = 0;
    /** Arrival stamp deciding per-VM fan-back order. */
    uint64_t stage_arrival = 0;
    bool coalesce_timer_armed = false;
    sim::EventHandle coalesce_timer;
    telemetry::Counter *coalesce_staged;
    telemetry::Counter *coalesce_runs;
    telemetry::Counter *coalesce_merged;
    /** residency_ns sum/count at the last heartbeat (digest deltas). */
    uint64_t hb_resid_sum = 0;
    uint64_t hb_resid_count = 0;

    /** Drain and discard every RX ring (crash semantics). */
    void discardRings();

    // Ingress from the client channel.
    void clientRxNotify();
    void pumpClientRings();
    void handleWireFrame(const net::FramePtr &frame);
    void dispatch(transport::MessageAssembler::Assembled req);
    bool intakeAllowed() const;
    void stageDone(unsigned worker);

    // Failure detection / recovery.
    void heartbeatTick();
    void watchdogTick();
    void declareWorkerWedged(unsigned worker);
    void reviveWorker(unsigned worker);
    void declareDeviceStarved(uint32_t device_id);
    /** A response left for (or was held on behalf of) @p device_id. */
    void noteDeviceProgress(uint32_t device_id);
    /** Beat-period mean worker residency (ns), saturating on wedges. */
    uint32_t takeLoadDigest();

    // Warm-state replication.
    void replRxNotify();
    void pumpReplicationRing();
    void sendReplication(transport::MsgType type, const Bytes &payload,
                         net::MacAddress dst);
    void applyMirroredCommit(const transport::ReplicaRecord &rec);
    void replicationAcked(uint64_t cum_seq);
    /** Mirror an admitted block request to the peer. */
    void mirrorAdmitted(const transport::TransportHeader &hdr,
                        const Bytes &payload);
    /**
     * Route a finished block response: state-changing completions
     * mirror a Commit and hold until the peer acks; reads mirror a
     * Forget and leave immediately.  The no-replication path is a
     * plain sendToClient.
     */
    void finishBlockResponse(net::MacAddress t_mac,
                             const transport::TransportHeader &resp,
                             Bytes data);
    /**
     * Failover activation: seed the filter and replay warm entries of
     * @p device_id whose serial is >= @p floor_serial (entries below
     * it already completed at the dead primary — their cleanup record
     * was simply lost — and must not be re-applied).
     */
    void activateWarmState(uint32_t device_id, uint64_t floor_serial);
    void issueRehomeCommand(const PendingRehome &r);

    // Cross-VM request coalescing.
    void stageBlock(transport::MessageAssembler::Assembled req,
                    const BlockDeviceEntry &dev);
    void flushCoalescer();
    void execRun(transport::MergedRun run);
    void fanBackRun(transport::MergedRun run, virtio::BlkStatus status,
                    Bytes data);

    // Request execution on worker cores.
    /** Service-time histogram + tracer span for one worker stage. */
    void recordService(unsigned worker, double cycles);
    void execNet(unsigned worker,
                 transport::MessageAssembler::Assembled req);
    void execBlock(unsigned worker,
                   transport::MessageAssembler::Assembled req);
    void execAck(transport::MessageAssembler::Assembled req);

    // Egress toward clients.
    void sendToClient(net::MacAddress t_mac,
                      const transport::TransportHeader &hdr,
                      const Bytes &payload);

    // Ingress from the external network (frames for guest F MACs).
    void externalRxNotify();
    void pumpExternalRings();
    void handleExternalFrame(net::FramePtr frame);

    double interposeCycles(interpose::Chain *chain, size_t bytes) const;
    double disturbanceCycles();
    double takeBatchCycles();
};

} // namespace vrio::iohost

#endif // VRIO_IOHOST_IO_HYPERVISOR_HPP
