#include "iohost/placement.hpp"

namespace vrio::iohost {

namespace {

bool
fresh(const IoHostLoad &e, sim::Tick now, sim::Tick freshness)
{
    return e.seen && now - e.last_beat <= freshness;
}

} // namespace

std::optional<unsigned>
PlacementPolicy::pickTarget(unsigned home,
                            const std::vector<IoHostLoad> &table,
                            const PlacementConfig &cfg, sim::Tick now,
                            sim::Tick freshness)
{
    if (home >= table.size() || cfg.imbalance_ratio <= 0)
        return std::nullopt;
    const IoHostLoad &h = table[home];
    if (h.load_ns < cfg.min_home_load_ns)
        return std::nullopt;
    std::optional<unsigned> best;
    for (unsigned i = 0; i < table.size(); ++i) {
        if (i == home || !fresh(table[i], now, freshness))
            continue;
        if (!best || table[i].load_ns < table[*best].load_ns)
            best = i;
    }
    if (!best)
        return std::nullopt;
    // Ratio gate: the home must be strictly worse by the configured
    // multiple.  A saturated candidate can never attract work.
    if (double(h.load_ns) <
        cfg.imbalance_ratio * double(table[*best].load_ns))
        return std::nullopt;
    if (table[*best].load_ns >= h.load_ns)
        return std::nullopt;
    return best;
}

unsigned
PlacementPolicy::pickFailover(unsigned home,
                              const std::vector<IoHostLoad> &table,
                              sim::Tick now, sim::Tick freshness,
                              int warm_peer)
{
    unsigned n = unsigned(table.size());
    if (n <= 1)
        return home;
    // The replication peer holds the home's warm state; prefer it
    // whenever it is demonstrably alive, regardless of load.
    if (warm_peer >= 0 && unsigned(warm_peer) < n &&
        unsigned(warm_peer) != home &&
        fresh(table[unsigned(warm_peer)], now, freshness))
        return unsigned(warm_peer);
    std::optional<unsigned> best;
    for (unsigned i = 0; i < n; ++i) {
        if (i == home || !table[i].seen)
            continue;
        if (!best) {
            best = i;
            continue;
        }
        const IoHostLoad &b = table[*best], &c = table[i];
        if (c.last_beat != b.last_beat) {
            if (c.last_beat > b.last_beat)
                best = i;
        } else if (c.load_ns < b.load_ns) {
            best = i;
        }
    }
    // Never heard from anyone else: rotate to the next index so the
    // client still moves and the retransmit queue gets kicked toward
    // a (possibly recovering) peer.
    return best ? *best : (home + 1) % n;
}

PlacementPolicy::LapseVerdict
PlacementPolicy::classifyLapse(unsigned home,
                               const std::vector<IoHostLoad> &table,
                               sim::Tick now, sim::Tick freshness)
{
    for (unsigned i = 0; i < table.size(); ++i) {
        if (i != home && fresh(table[i], now, freshness))
            return LapseVerdict::HomeDead;
    }
    return LapseVerdict::PathSuspect;
}

} // namespace vrio::iohost
