/**
 * @file
 * Rack placement policy: which IOhost serves which VM.
 *
 * Boot placement stripes VMs across IOhosts round-robin.  At runtime
 * every IOhost advertises a load digest in its heartbeats — the
 * beat-to-beat delta of its workers' residency_ns telemetry
 * histograms, i.e. mean request residency over the last beat period —
 * and each client keeps a per-IOhost load table from the beats it
 * sees.  PlacementPolicy turns that table into placement decisions:
 *
 *  - pickTarget(): voluntary re-steer away from an overloaded home
 *    (ratio-gated, so balanced racks never churn);
 *  - pickFailover(): the home lapsed, choose a replacement — the cold
 *    standby of PR 4 generalized to "just another IOhost", making
 *    failover a placement decision rather than a special wiring.
 *
 * Pure functions over plain data: no simulation state, unit-testable,
 * and trivially deterministic — decisions depend only on table
 * contents, never on iteration over addresses.
 */
#ifndef VRIO_IOHOST_PLACEMENT_HPP
#define VRIO_IOHOST_PLACEMENT_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/ticks.hpp"

namespace vrio::iohost {

/** One rack IOhost as a client's load table sees it. */
struct IoHostLoad
{
    /** Advertised mean worker residency (ns) over the last beat. */
    uint32_t load_ns = 0;
    /** Tick of the most recent beat seen from this IOhost. */
    sim::Tick last_beat = 0;
    /** Whether any beat has ever been seen. */
    bool seen = false;
};

struct PlacementConfig
{
    /**
     * Voluntary re-steer gate: move only when the home's advertised
     * load is at least this multiple of the best candidate's.
     */
    double imbalance_ratio = 2.0;
    /** Noise floor: an idle-ish home (below this) never re-steers. */
    uint32_t min_home_load_ns = 2000;
};

class PlacementPolicy
{
  public:
    /** Boot placement: VM v is homed on IOhost v mod N. */
    static unsigned
    bootAssign(unsigned vm_index, unsigned iohosts)
    {
        return iohosts ? vm_index % iohosts : 0;
    }

    /**
     * Voluntary re-steer decision.  Candidates are IOhosts other than
     * @p home with a beat no older than @p freshness before @p now;
     * the least-loaded (lowest index on ties) wins if the ratio gate
     * passes.  nullopt = stay.
     */
    static std::optional<unsigned>
    pickTarget(unsigned home, const std::vector<IoHostLoad> &table,
               const PlacementConfig &cfg, sim::Tick now,
               sim::Tick freshness);

    /**
     * Failover target after the home's heartbeat window lapsed: the
     * candidate with the freshest beat, ties broken by lower load
     * then lower index.  With no beats seen at all, falls back to
     * (home + 1) mod N so a client always moves somewhere.
     *
     * When @p warm_peer names the home's replication peer (>= 0) and
     * that peer has been heard from within @p freshness, it wins
     * outright: it holds the home's mirrored duplicate-filter and
     * in-service state, so landing anywhere else would forfeit the
     * warm handoff.  -1 keeps the historical freshest-beat scan.
     */
    static unsigned pickFailover(unsigned home,
                                 const std::vector<IoHostLoad> &table,
                                 sim::Tick now, sim::Tick freshness,
                                 int warm_peer = -1);

    /** What a heartbeat lapse means, judged from the client's seat. */
    enum class LapseVerdict {
        /** Others still beat: the home itself is gone — fail over. */
        HomeDead,
        /**
         * Nobody beats: the silence is on the client's own path (its
         * NIC, its switch port), and every IOhost it could fail over
         * to is equally unreachable — moving would only strand the
         * in-service state at a home that is in fact alive.  Suppress
         * the failover and keep retrying in place.
         */
        PathSuspect,
    };

    /**
     * Classify a lapse of @p home: in a rack every IOhost beats every
     * client, so beats still arriving from *any* other IOhost prove
     * the client's path is fine and the home alone is dead.  A lapse
     * of every source at once indicts the shared segment — the
     * client's own path — instead.
     */
    static LapseVerdict classifyLapse(unsigned home,
                                      const std::vector<IoHostLoad> &table,
                                      sim::Tick now, sim::Tick freshness);
};

} // namespace vrio::iohost

#endif // VRIO_IOHOST_PLACEMENT_HPP
