#include "iohost/replication.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vrio::iohost {

using transport::ReplicaAckMsg;
using transport::ReplicaRecord;
using transport::ReplicaSyncMsg;

Replicator::Replicator(sim::EventQueue &eq, ReplicationConfig cfg,
                       net::MacAddress peer, net::MacAddress upstream,
                       Hooks hooks)
    : eq(eq), cfg(cfg), peer(peer), upstream(upstream),
      hooks(std::move(hooks))
{
    vrio_assert(cfg.window > 0, "replication window must be positive");
    vrio_assert(cfg.batch_max > 0, "replication batch must be positive");
}

uint64_t
Replicator::append(ReplicaRecord rec)
{
    uint64_t seq = next_seq++;
    log_.push_back(LogEntry{seq, std::move(rec)});
    scheduleFlush();
    return seq;
}

uint64_t
Replicator::mirrorInService(uint32_t device_id, uint64_t serial,
                            uint16_t generation, uint8_t blk_type,
                            uint64_t sector, uint32_t io_len,
                            Bytes payload)
{
    ReplicaRecord rec;
    rec.kind = ReplicaRecord::Kind::InService;
    rec.device_id = device_id;
    rec.serial = serial;
    rec.generation = generation;
    rec.blk_type = blk_type;
    rec.sector = sector;
    rec.io_len = io_len;
    rec.payload = std::move(payload);
    return append(std::move(rec));
}

uint64_t
Replicator::mirrorCommit(uint32_t device_id, uint64_t serial,
                         uint16_t generation)
{
    ReplicaRecord rec;
    rec.kind = ReplicaRecord::Kind::Commit;
    rec.device_id = device_id;
    rec.serial = serial;
    rec.generation = generation;
    return append(std::move(rec));
}

void
Replicator::mirrorForget(uint32_t device_id, uint64_t serial)
{
    ReplicaRecord rec;
    rec.kind = ReplicaRecord::Kind::Forget;
    rec.device_id = device_id;
    rec.serial = serial;
    append(std::move(rec));
}

void
Replicator::scheduleFlush()
{
    if (flush_scheduled)
        return;
    flush_scheduled = true;
    eq.schedule(cfg.flush_delay, [this, epoch = timer_epoch]() {
        if (epoch != timer_epoch)
            return;
        flush_scheduled = false;
        flush();
    });
}

void
Replicator::flush()
{
    if (next_to_send < log_.size())
        shipFrom(next_to_send);
}

void
Replicator::shipFrom(size_t index)
{
    // Ship [index, end) in batch_max chunks.  Resends walk the same
    // path from 0 (go-back-N), so a retransmitted prefix re-batches
    // identically to its first transmission.
    while (index < log_.size()) {
        size_t n = std::min<size_t>(cfg.batch_max, log_.size() - index);
        ReplicaSyncMsg msg;
        msg.first_seq = log_[index].seq;
        msg.incarnation = incarnation;
        msg.records.reserve(n);
        for (size_t i = 0; i < n; ++i)
            msg.records.push_back(log_[index + i].rec);
        Bytes payload;
        ByteWriter w(payload);
        msg.encode(w);
        hooks.send(transport::MsgType::ReplicaSync, payload, peer);
        records_sent += n;
        index += n;
    }
    next_to_send = log_.size();
    scheduleRetx();
}

void
Replicator::scheduleRetx()
{
    if (retx_scheduled || log_.empty())
        return;
    retx_scheduled = true;
    eq.schedule(cfg.retx_timeout, [this, epoch = timer_epoch,
                                   acked_then = last_acked]() {
        if (epoch != timer_epoch)
            return;
        retx_scheduled = false;
        if (log_.empty())
            return;
        if (last_acked == acked_then) {
            // No progress for a whole timeout: the batch (or its ack)
            // was lost, or the path is down.  Go back to the oldest
            // unacked record and reship everything.
            ++retx_batches;
            shipFrom(0);
        }
        scheduleRetx();
    });
}

void
Replicator::onAckMessage(const ReplicaAckMsg &ack, net::MacAddress src)
{
    if (src != peer) {
        ++foreign_frames;
        return; // flooded frame meant for another host's stream
    }
    if (ack.incarnation != incarnation)
        return; // ack for a pre-restart stream
    if (ack.cum_seq <= last_acked)
        return;
    uint64_t cum = std::min(ack.cum_seq, next_seq - 1);
    size_t dropped = 0;
    while (!log_.empty() && log_.front().seq <= cum) {
        log_.pop_front();
        ++dropped;
    }
    next_to_send -= std::min(next_to_send, dropped);
    last_acked = cum;
    if (hooks.acked)
        hooks.acked(cum);
}

void
Replicator::reset(uint32_t new_incarnation)
{
    log_.clear();
    next_to_send = 0;
    next_seq = 1;
    last_acked = 0;
    incarnation = new_incarnation;
    flush_scheduled = false;
    retx_scheduled = false;
    ++timer_epoch;
}

void
Replicator::onSyncMessage(const ReplicaSyncMsg &msg, net::MacAddress src)
{
    if (src != upstream) {
        ++foreign_frames;
        return; // flooded frame meant for another host's stream
    }
    if (rx_seen && msg.incarnation < rx_incarnation)
        return; // a pre-restart batch that outlived its stream
    if (!rx_seen || msg.incarnation != rx_incarnation) {
        // A fresh upstream incarnation restarts the stream at
        // sequence 1 (reset() rewinds the sender), so pin the cursor
        // there rather than syncing it to this batch's first_seq: if
        // the stream's first batch was lost, syncing would silently
        // skip the lost prefix AND acknowledge it — the primary would
        // release held responses for writes this host never saw.
        // Starting at 1 turns a lost prefix into an ordinary gap that
        // go-back-N redelivers.  The old incarnation's in-service
        // mirror is exactly what failover consumes, so it is NOT
        // cleared here: takeWarmInService() and the committed table
        // keep serving until activation or eviction.
        rx_seen = true;
        rx_incarnation = msg.incarnation;
        rx_next_seq = 1;
    }
    uint64_t seq = msg.first_seq;
    if (seq > rx_next_seq) {
        // Gap: a whole batch was lost.  Drop and dup-ack; the sender's
        // retransmit timer goes back to the oldest unacked record.
        ++stale_batches;
    } else {
        for (const ReplicaRecord &rec : msg.records) {
            if (seq == rx_next_seq) {
                applyRecord(rec);
                ++rx_next_seq;
            }
            ++seq;
        }
    }
    if (rx_next_seq == 0)
        return; // nothing contiguously applied yet, nothing to ack
    ReplicaAckMsg ack;
    ack.cum_seq = rx_next_seq - 1;
    ack.incarnation = rx_incarnation;
    Bytes payload;
    ByteWriter w(payload);
    ack.encode(w);
    hooks.send(transport::MsgType::ReplicaAck, payload, src);
}

void
Replicator::applyRecord(const ReplicaRecord &rec)
{
    ++records_applied;
    auto key = std::make_pair(rec.device_id, rec.serial);
    switch (rec.kind) {
      case ReplicaRecord::Kind::InService: {
        WarmEntry &e = warm[key];
        e.serial = rec.serial;
        e.generation = rec.generation;
        e.blk_type = rec.blk_type;
        e.sector = rec.sector;
        e.io_len = rec.io_len;
        e.payload = rec.payload;
        break;
      }
      case ReplicaRecord::Kind::Commit: {
        auto it = warm.find(key);
        if (it != warm.end()) {
            if (!it->second.payload.empty() && hooks.apply) {
                // The commit record is slim; the write payload was
                // shipped once, at admit time, and applies now.
                ReplicaRecord apply_rec = rec;
                apply_rec.blk_type = it->second.blk_type;
                apply_rec.sector = it->second.sector;
                apply_rec.io_len = it->second.io_len;
                apply_rec.payload = it->second.payload;
                hooks.apply(apply_rec);
                ++commits_applied;
            }
            warm.erase(it);
        }
        if (committed.emplace(key, rec.generation).second) {
            committed_fifo.push_back(key);
            while (committed_fifo.size() > cfg.committed_keep) {
                committed.erase(committed_fifo.front());
                committed_fifo.pop_front();
            }
        }
        break;
      }
      case ReplicaRecord::Kind::Forget:
        warm.erase(key);
        break;
    }
}

std::vector<Replicator::WarmEntry>
Replicator::takeWarmInService(uint32_t device_id)
{
    std::vector<WarmEntry> out;
    auto first = warm.lower_bound({device_id, 0});
    auto last = warm.lower_bound({device_id + 1, 0});
    for (auto it = first; it != last; ++it)
        out.push_back(std::move(it->second));
    warm.erase(first, last);
    return out;
}

bool
Replicator::committedLookup(uint32_t device_id, uint64_t serial,
                            uint16_t &generation) const
{
    auto it = committed.find({device_id, serial});
    if (it == committed.end())
        return false;
    generation = it->second;
    return true;
}

} // namespace vrio::iohost
