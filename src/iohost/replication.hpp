/**
 * @file
 * Warm-state replication between rack IOhosts.
 *
 * PR 8's rack failover is a placement decision: the client lands on a
 * surviving IOhost, but that host has an empty duplicate filter, no
 * in-service request state, and a store replica that never saw the
 * primary's writes.  This module closes the gap with primary/backup
 * log shipping: each IOhost continuously mirrors to a deterministic
 * peer — IOhost k ships to (k+1) % R over a dedicated replication NIC
 * through the rack switch —
 *
 *   (a) duplicate-filter entries and in-service request descriptors
 *       (ReplicaRecord::InService, writes carrying their payload),
 *   (b) committed writes (ReplicaRecord::Commit: the peer applies the
 *       payload it saved at admit time to its own store replica), and
 *   (c) completed reads (ReplicaRecord::Forget, pure cleanup).
 *
 * The stream is sequenced with cumulative acknowledgements and
 * go-back-N retransmission; a bounded window of unacked records
 * applies backpressure to request admission when the peer lags, and —
 * crucially — a state-changing response is *held* until the peer has
 * acknowledged its Commit record.  That output-commit rule is what
 * makes "every acknowledged write is readable from the new home" an
 * invariant rather than a race.
 *
 * On failover (or a planned re-home) the client sends a Rehome
 * activation to the warm peer, which seeds its duplicate filter from
 * the mirrored in-service table and replays the entries its dead
 * primary never completed; whichever of {replay, client retry}
 * arrives second is suppressed by the filter, so every request
 * executes exactly once at the surviving store.  Retries of writes
 * that committed before the crash are answered from the committed
 * table without re-execution.
 *
 * Like SteeringPolicy and PlacementPolicy, the protocol state machine
 * is kept free of wire and store concerns: the owning IoHypervisor
 * provides send/apply/ack hooks, so the sequencing and window rules
 * can be unit-tested against a loopback pair.
 */
#ifndef VRIO_IOHOST_REPLICATION_HPP
#define VRIO_IOHOST_REPLICATION_HPP

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/mac.hpp"
#include "sim/event_queue.hpp"
#include "transport/control.hpp"
#include "transport/header.hpp"

namespace vrio::iohost {

struct ReplicationConfig
{
    /** Max unacked mirror records before admission backpressure. */
    unsigned window = 256;
    /** Records per ReplicaSync message. */
    unsigned batch_max = 16;
    /** How long appended records may linger before a batch ships. */
    sim::Tick flush_delay = sim::Tick(5) * sim::kMicrosecond;
    /** Resend-from-oldest timeout when the cumulative ack stalls. */
    sim::Tick retx_timeout = sim::Tick(1) * sim::kMillisecond;
    /** Bound on the remembered committed-request table. */
    size_t committed_keep = 4096;
};

class Replicator
{
  public:
    struct Hooks
    {
        /**
         * Ship an encoded control payload to @p dst (the peer for
         * ReplicaSync, the upstream primary for ReplicaAck).
         */
        std::function<void(transport::MsgType, const Bytes &,
                           net::MacAddress)> send;
        /** Apply a committed write to the local store replica. */
        std::function<void(const transport::ReplicaRecord &)> apply;
        /**
         * The peer's cumulative ack advanced to @p cum_seq: release
         * held responses and, if the window reopened, resume intake.
         */
        std::function<void(uint64_t)> acked;
    };

    /**
     * @p peer is where this host's mirror stream ships (and the only
     * source acks are accepted from); @p upstream is the primary whose
     * stream this host receives (the only source syncs are accepted
     * from).  In a ring of R hosts, host k has peer (k+1) % R and
     * upstream (k-1+R) % R.  The source filters matter because the
     * rack switch floods frames for unlearned MACs to every
     * promiscuous port: without them a third host would ingest a
     * foreign stream and corrupt its cursor.
     */
    Replicator(sim::EventQueue &eq, ReplicationConfig cfg,
               net::MacAddress peer, net::MacAddress upstream,
               Hooks hooks);

    // ---- primary (sender) side --------------------------------------

    /** Mirror an admitted request.  @return the record's sequence. */
    uint64_t mirrorInService(uint32_t device_id, uint64_t serial,
                             uint16_t generation, uint8_t blk_type,
                             uint64_t sector, uint32_t io_len,
                             Bytes payload);
    /**
     * Mirror a state-changing completion.  The caller must hold the
     * client response until lastAcked() covers the returned sequence.
     */
    uint64_t mirrorCommit(uint32_t device_id, uint64_t serial,
                          uint16_t generation);
    /** Mirror a read completion (peer-side cleanup only). */
    void mirrorForget(uint32_t device_id, uint64_t serial);

    /** Ship everything pending now (re-home drain barrier). */
    void flush();

    /** True when the unacked log has reached the window bound. */
    bool windowFull() const { return log_.size() >= cfg.window; }
    uint64_t lastAcked() const { return last_acked; }
    /** Sequence the next mirrored record will take. */
    uint64_t nextSeq() const { return next_seq; }
    /** Current replication lag in records (unacked log depth). */
    uint64_t lag() const { return log_.size(); }

    /** Handle a peer ack; frames not from the peer are ignored. */
    void onAckMessage(const transport::ReplicaAckMsg &ack,
                      net::MacAddress src);

    /**
     * Crash/restart: the outbound stream restarts at sequence 1 under
     * a fresh incarnation and all timer state is forgotten.  Receiver
     * state is untouched — the warm mirror of the OLD incarnation is
     * exactly what a failover away from this host consumes.
     */
    void reset(uint32_t incarnation);

    // ---- peer (receiver) side ---------------------------------------

    void onSyncMessage(const transport::ReplicaSyncMsg &msg,
                       net::MacAddress src);

    struct WarmEntry
    {
        uint64_t serial = 0;
        uint16_t generation = 0;
        uint8_t blk_type = 0;
        uint64_t sector = 0;
        uint32_t io_len = 0;
        Bytes payload;
    };

    /**
     * Failover activation: surrender every warm in-service entry of
     * @p device_id (ordered by serial) for duplicate-filter seeding
     * and replay.
     */
    std::vector<WarmEntry> takeWarmInService(uint32_t device_id);

    /**
     * Did (device, serial) commit at the upstream primary before it
     * died?  If so the retry must be acknowledged, not re-executed;
     * @p generation returns the newest generation to stamp.
     */
    bool committedLookup(uint32_t device_id, uint64_t serial,
                         uint16_t &generation) const;

    // ---- introspection ----------------------------------------------

    size_t warmInService() const { return warm.size(); }
    size_t warmCommitted() const { return committed.size(); }
    uint64_t recordsSent() const { return records_sent; }
    uint64_t recordsApplied() const { return records_applied; }
    uint64_t commitsApplied() const { return commits_applied; }
    uint64_t retransmitBatches() const { return retx_batches; }
    uint64_t staleBatches() const { return stale_batches; }
    /** Flood-delivered frames dropped by the source filters. */
    uint64_t foreignFrames() const { return foreign_frames; }

  private:
    struct LogEntry
    {
        uint64_t seq = 0;
        transport::ReplicaRecord rec;
    };

    sim::EventQueue &eq;
    ReplicationConfig cfg;
    net::MacAddress peer;
    net::MacAddress upstream;
    Hooks hooks;

    // Sender: records [last_acked+1, next_seq) in order; the first
    // `next_to_send` of them have been shipped at least once.
    std::deque<LogEntry> log_;
    size_t next_to_send = 0;
    uint64_t next_seq = 1;
    uint64_t last_acked = 0;
    uint32_t incarnation = 0;
    bool flush_scheduled = false;
    bool retx_scheduled = false;
    /** Invalidates scheduled timers across reset(). */
    uint64_t timer_epoch = 0;

    // Receiver: contiguous-apply cursor plus the warm tables.
    uint64_t rx_next_seq = 0;
    uint32_t rx_incarnation = 0;
    bool rx_seen = false;
    std::map<std::pair<uint32_t, uint64_t>, WarmEntry> warm;
    std::map<std::pair<uint32_t, uint64_t>, uint16_t> committed;
    std::deque<std::pair<uint32_t, uint64_t>> committed_fifo;

    uint64_t records_sent = 0;
    uint64_t records_applied = 0;
    uint64_t commits_applied = 0;
    uint64_t retx_batches = 0;
    uint64_t stale_batches = 0;
    uint64_t foreign_frames = 0;

    uint64_t append(transport::ReplicaRecord rec);
    void scheduleFlush();
    void scheduleRetx();
    void shipFrom(size_t index);
    void applyRecord(const transport::ReplicaRecord &rec);
};

} // namespace vrio::iohost

#endif // VRIO_IOHOST_REPLICATION_HPP
