#include "iohost/steering.hpp"

#include "util/logging.hpp"

namespace vrio::iohost {

SteeringPolicy::SteeringPolicy(unsigned num_workers)
    : load(num_workers, 0), down(num_workers, false)
{
    vrio_assert(num_workers >= 1, "need at least one worker");
}

unsigned
SteeringPolicy::steer(uint32_t device_id)
{
    DeviceState &dev = devices[device_id];
    if (dev.in_flight > 0) {
        // Order-preservation rule: follow the in-flight requests.
        ++pinned;
    } else {
        // Least-loaded scan over healthy workers; if every worker is
        // down (nothing left to prefer) fall back to the global scan
        // rather than refusing to steer.
        unsigned best = unsigned(load.size());
        for (unsigned w = 0; w < load.size(); ++w) {
            if (down[w])
                continue;
            if (best == load.size() || load[w] < load[best])
                best = w;
        }
        if (best == load.size()) {
            best = 0;
            for (unsigned w = 1; w < load.size(); ++w) {
                if (load[w] < load[best])
                    best = w;
            }
        }
        dev.worker = best;
    }
    ++dev.in_flight;
    ++load[dev.worker];
    return dev.worker;
}

void
SteeringPolicy::complete(uint32_t device_id, unsigned worker)
{
    auto it = devices.find(device_id);
    vrio_assert(it != devices.end(), "complete for unknown device ",
                device_id);
    DeviceState &dev = it->second;
    vrio_assert(dev.in_flight > 0, "complete with no in-flight work");
    vrio_assert(dev.worker == worker, "completion on wrong worker");
    --dev.in_flight;
    vrio_assert(load[worker] > 0, "worker load underflow");
    --load[worker];
}

uint64_t
SteeringPolicy::quarantine(unsigned worker)
{
    vrio_assert(worker < load.size(), "bad worker ", worker);
    if (!down[worker]) {
        down[worker] = true;
        ++down_count;
    }
    uint64_t abandoned = 0;
    for (auto &[id, dev] : devices) {
        if (dev.worker == worker && dev.in_flight > 0) {
            abandoned += dev.in_flight;
            dev.in_flight = 0;
        }
    }
    vrio_assert(load[worker] >= abandoned, "quarantine load underflow");
    load[worker] -= abandoned;
    return abandoned;
}

void
SteeringPolicy::markUp(unsigned worker)
{
    vrio_assert(worker < load.size(), "bad worker ", worker);
    if (down[worker]) {
        down[worker] = false;
        --down_count;
    }
}

bool
SteeringPolicy::isDown(unsigned worker) const
{
    vrio_assert(worker < load.size(), "bad worker ", worker);
    return down[worker];
}

uint64_t
SteeringPolicy::workerLoad(unsigned worker) const
{
    vrio_assert(worker < load.size(), "bad worker ", worker);
    return load[worker];
}

uint64_t
SteeringPolicy::deviceInFlight(uint32_t device_id) const
{
    auto it = devices.find(device_id);
    return it == devices.end() ? 0 : it->second.in_flight;
}

} // namespace vrio::iohost
