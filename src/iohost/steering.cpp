#include "iohost/steering.hpp"

#include "util/logging.hpp"

namespace vrio::iohost {

SteeringPolicy::SteeringPolicy(unsigned num_workers) : load(num_workers, 0)
{
    vrio_assert(num_workers >= 1, "need at least one worker");
}

unsigned
SteeringPolicy::steer(uint32_t device_id)
{
    DeviceState &dev = devices[device_id];
    if (dev.in_flight > 0) {
        // Order-preservation rule: follow the in-flight requests.
        ++pinned;
    } else {
        unsigned best = 0;
        for (unsigned w = 1; w < load.size(); ++w) {
            if (load[w] < load[best])
                best = w;
        }
        dev.worker = best;
    }
    ++dev.in_flight;
    ++load[dev.worker];
    return dev.worker;
}

void
SteeringPolicy::complete(uint32_t device_id, unsigned worker)
{
    auto it = devices.find(device_id);
    vrio_assert(it != devices.end(), "complete for unknown device ",
                device_id);
    DeviceState &dev = it->second;
    vrio_assert(dev.in_flight > 0, "complete with no in-flight work");
    vrio_assert(dev.worker == worker, "completion on wrong worker");
    --dev.in_flight;
    vrio_assert(load[worker] > 0, "worker load underflow");
    --load[worker];
}

uint64_t
SteeringPolicy::workerLoad(unsigned worker) const
{
    vrio_assert(worker < load.size(), "bad worker ", worker);
    return load[worker];
}

uint64_t
SteeringPolicy::deviceInFlight(uint32_t device_id) const
{
    auto it = devices.find(device_id);
    return it == devices.end() ? 0 : it->second.in_flight;
}

} // namespace vrio::iohost
