/**
 * @file
 * The I/O hypervisor's request steering policy (Section 4.1).
 *
 * "For each virtual device D, so long as there exists a still-
 * unprocessed packet of D designated for processing on the sidecore
 * of worker W, then any subsequent requests of D will be steered to W
 * as well.  This policy preserves the order of the original requests
 * and rids network stacks from the need to handle out-of-order
 * packets."
 *
 * Implemented as a pure data structure so the ordering invariant can
 * be property-tested independent of the simulator.
 */
#ifndef VRIO_IOHOST_STEERING_HPP
#define VRIO_IOHOST_STEERING_HPP

#include <cstdint>
#include <map>
#include <vector>

namespace vrio::iohost {

class SteeringPolicy
{
  public:
    explicit SteeringPolicy(unsigned num_workers);

    /**
     * Choose the worker for the next request of @p device_id and
     * record it as in-flight there.  A device with in-flight work is
     * pinned to its worker; otherwise the least-loaded worker wins.
     */
    unsigned steer(uint32_t device_id);

    /** A request of @p device_id finished on @p worker. */
    void complete(uint32_t device_id, unsigned worker);

    unsigned workerCount() const { return unsigned(load.size()); }
    /** Requests currently steered to @p worker and unfinished. */
    uint64_t workerLoad(unsigned worker) const;
    /** Unfinished requests of @p device_id. */
    uint64_t deviceInFlight(uint32_t device_id) const;
    /** Steering decisions that were forced by the affinity rule. */
    uint64_t pinnedDecisions() const { return pinned; }

    /**
     * Quarantine @p worker: mark it down and forget every in-flight
     * request pinned to it, so its devices re-steer to a healthy
     * worker on their next request (the clients replay the abandoned
     * ones).  @return the number of requests abandoned.
     */
    uint64_t quarantine(unsigned worker);

    /** Readmit a quarantined worker to the least-loaded scan. */
    void markUp(unsigned worker);

    bool isDown(unsigned worker) const;
    unsigned downWorkers() const { return down_count; }

  private:
    struct DeviceState
    {
        unsigned worker = 0;
        uint64_t in_flight = 0;
    };

    std::vector<uint64_t> load;
    std::vector<bool> down;
    std::map<uint32_t, DeviceState> devices;
    uint64_t pinned = 0;
    unsigned down_count = 0;
};

} // namespace vrio::iohost

#endif // VRIO_IOHOST_STEERING_HPP
