#include "models/baseline.hpp"

#include "models/jitter.hpp"

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::models {

/**
 * Per-VM baseline endpoint: real virtio rings, exit-based kicks,
 * vhost processing on the host's shared I/O core, injected
 * completions with EOI traps.
 */
class BaselineModel::Endpoint : public GuestEndpoint
{
  public:
    Endpoint(BaselineModel &model, unsigned host_index, unsigned vm_index,
             sim::Simulation &sim, hv::Core &vcpu, net::MacAddress f_mac,
             std::string name)
        : model(model), host_index(host_index), vm_index(vm_index),
          f_mac(f_mac), vm_(sim, std::move(name), vcpu), netdev(vm_)
    {
        const ModelConfig &cfg = model.config();
        if (cfg.chain_factory) {
            net_chain = cfg.chain_factory(device_id(), false);
            blk_chain = cfg.chain_factory(device_id(), true);
        }
    }

    void
    attachDisk(std::unique_ptr<block::BlockDevice> d)
    {
        disk = std::move(d);
        sched = std::make_unique<block::DiskScheduler>(
            [this](block::BlockRequest req, block::BlockCallback done) {
                dispatchBlock(std::move(req), std::move(done));
            });
    }

    uint32_t device_id() const { return 0x0b00 + vm_index; }

    hv::Vm &vm() override { return vm_; }
    net::MacAddress mac() const override { return f_mac; }

    void
    sendNet(net::MacAddress dst, Bytes payload, uint64_t pad,
            uint64_t messages) override
    {
        const CostParams &c = model.config().costs;
        net::EtherHeader eh;
        eh.dst = dst;
        eh.src = f_mac;
        eh.ether_type = uint16_t(net::EtherType::Raw);

        // Notification suppression: the guest only kicks (exits) when
        // the host is not already processing its TX ring.
        bool kick = !host_tx_active;
        // One descriptor/notification per coalesced message.
        double cycles = c.guest_net_tx + (kick ? c.exit : 0) +
                        c.baseline_msg_ring * double(messages);
        if (kick)
            vm_.events().record(hv::IoEvent::SyncExit);

        vm_.vcpu().runPreempt(cycles, [this, eh, payload = std::move(payload),
                                pad, kick, messages]() mutable {
            if (!netdev.guestTransmit(eh, payload, pad)) {
                ++tx_ring_full;
                return;
            }
            pending_msgs += messages;
            if (kick && !host_tx_active) {
                host_tx_active = true;
                vhostPumpTx();
            }
        });
    }

    void setNetHandler(NetHandler h) override { handler = std::move(h); }

    bool hasBlockDevice() const override { return disk != nullptr; }

    uint64_t
    blockCapacitySectors() const override
    {
        return disk ? disk->capacitySectors() : 0;
    }

    void
    submitBlock(block::BlockRequest req, block::BlockCallback done) override
    {
        vrio_assert(sched, "no block device attached");
        sched->submit(std::move(req), std::move(done));
    }

    // -- host-side entry points (called by the model) ------------------

    /** Deliver one frame from the host NIC into the guest. */
    void
    hostDeliver(const net::FramePtr &frame)
    {
        const CostParams &c = model.config().costs;
        hv::Core &io = model.ioCore(host_index);
        size_t bytes = frame->bytes.size() + frame->pad;
        double cycles = c.vhost_net + c.vhost_per_byte * double(bytes) +
                        stallCycles(vm_.sim().random(), c.vhost_stall,
                                    c.guest_ghz);
        if (net_chain)
            cycles += net_chain->cycleCost(bytes);

        io.run(cycles, [this, frame]() {
            Bytes payload = frame->bytes; // L2 frame
            if (net_chain) {
                auto ctx = netContext(interpose::Direction::ToClient,
                                      payload);
                double chain_cycles = 0;
                if (!net_chain->run(ctx, payload, chain_cycles))
                    return; // dropped by interposition
            }
            if (!netdev.hostDeliverRx(payload, frame->pad))
                return; // RX ring empty: drop
            injectAndReceive();
        });
    }

    VirtioNetDev &dev() { return netdev; }
    uint64_t txRingFull() const { return tx_ring_full; }

  private:
    BaselineModel &model;
    unsigned host_index;
    unsigned vm_index;
    net::MacAddress f_mac;
    hv::Vm vm_;
    VirtioNetDev netdev;
    VirtioBlkDev blkdev{vm_};
    std::map<uint16_t, block::BlockCallback> blk_pending;
    NetHandler handler;
    bool host_tx_active = false;
    uint64_t tx_ring_full = 0;
    uint64_t pending_msgs = 0;

    std::unique_ptr<block::BlockDevice> disk;
    std::unique_ptr<block::DiskScheduler> sched;
    interpose::Chain *net_chain = nullptr;
    interpose::Chain *blk_chain = nullptr;

    interpose::IoContext
    netContext(interpose::Direction dir, const Bytes &l2_frame)
    {
        interpose::IoContext ctx;
        ctx.dir = dir;
        ctx.device_id = device_id();
        ctx.is_block = false;
        if (l2_frame.size() >= net::kEtherHeaderSize) {
            ByteReader r(l2_frame);
            auto eh = net::EtherHeader::decode(r);
            ctx.src = eh.src;
            ctx.dst = eh.dst;
            ctx.ether_type = eh.ether_type;
        }
        return ctx;
    }

    /** vhost thread: drain the TX ring on the shared I/O core. */
    void
    vhostPumpTx()
    {
        const CostParams &c = model.config().costs;
        hv::Core &io = model.ioCore(host_index);
        auto pkt = netdev.hostPopTx();
        if (!pkt) {
            host_tx_active = false;
            return;
        }
        size_t bytes = pkt->frame.size() + pkt->pad;
        // vhost touches one descriptor per coalesced message.
        uint64_t msgs = pending_msgs > 0 ? pending_msgs : 1;
        pending_msgs = 0;
        double cycles = c.vhost_net + c.vhost_per_byte * double(bytes) +
                        c.baseline_msg_vhost * double(msgs) +
                        stallCycles(vm_.sim().random(), c.vhost_stall,
                                    c.guest_ghz);
        if (net_chain)
            cycles += net_chain->cycleCost(bytes);

        io.run(cycles, [this, pkt = std::move(*pkt)]() mutable {
            bool forward = true;
            if (net_chain) {
                auto ctx = netContext(interpose::Direction::FromClient,
                                      pkt.frame);
                double chain_cycles = 0;
                forward = net_chain->run(ctx, pkt.frame, chain_cycles);
            }
            if (forward) {
                auto out = std::make_shared<net::Frame>();
                out->bytes = std::move(pkt.frame);
                out->pad = pkt.pad;
                model.hostNic(host_index).send(0, std::move(out));
                // TX-done physical interrupt on the host.
                vm_.events().record(hv::IoEvent::HostInterrupt);
                model.ioCore(host_index)
                    .runPreempt(model.config().costs.host_irq, []() {});
            }
            netdev.hostCompleteTx(pkt.head);
            txDoneToGuest();
            vhostPumpTx(); // continue draining
        });
    }

    /** Inject the TX-completion interrupt into the guest. */
    void
    txDoneToGuest()
    {
        const CostParams &c = model.config().costs;
        vm_.events().record(hv::IoEvent::Injection);
        model.ioCore(host_index).runPreempt(c.injection, [this, &c]() {
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.events().record(hv::IoEvent::SyncExit); // EOI trap
            vm_.vcpu().run(c.guest_irq + c.eoi_exit,
                           [this]() { netdev.guestReapTx(); });
        });
    }

    /** Inject the RX interrupt and run the guest receive path. */
    void
    injectAndReceive()
    {
        const CostParams &c = model.config().costs;
        vm_.events().record(hv::IoEvent::Injection);
        model.ioCore(host_index).runPreempt(c.injection, [this, &c]() {
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.events().record(hv::IoEvent::SyncExit); // EOI trap
            vm_.vcpu().run(c.guest_irq + c.eoi_exit, [this, &c]() {
                while (auto pkt = netdev.guestReapRx()) {
                    if (pkt->frame.size() < net::kEtherHeaderSize)
                        continue; // overflow-drop placeholder
                    net::EtherHeader eh;
                    {
                        ByteReader r(pkt->frame);
                        eh = net::EtherHeader::decode(r);
                    }
                    Bytes payload(pkt->frame.begin() +
                                      net::kEtherHeaderSize,
                                  pkt->frame.end());
                    uint64_t pad = pkt->pad;
                    double rx_cycles =
                        c.guest_net_rx +
                        stallCycles(vm_.sim().random(), c.guest_jitter,
                                    c.guest_ghz);
                    vm_.vcpu().runPreempt(
                        rx_cycles,
                        [this, payload = std::move(payload), src = eh.src,
                         pad]() mutable {
                            if (handler)
                                handler(std::move(payload), src, pad);
                        });
                }
            });
        });
    }

    /**
     * Block path over a real virtio-blk ring: exit (kick), vhost pops
     * the chain on the shared I/O core, device I/O, status+data
     * scattered back, injected completion with an EOI trap.
     */
    void
    dispatchBlock(block::BlockRequest req, block::BlockCallback done)
    {
        const CostParams &c = model.config().costs;
        vm_.events().record(hv::IoEvent::SyncExit);
        vm_.vcpu().runPreempt(c.guest_blk_submit + c.exit,
                       [this, req = std::move(req),
                        done = std::move(done)]() mutable {
                           auto head = blkdev.guestSubmit(req);
                           if (!head) {
                               done(virtio::BlkStatus::IoErr, {});
                               return;
                           }
                           blk_pending[*head] = std::move(done);
                           vhostPumpBlk();
                       });
    }

    /** vhost block thread: drain the ring on the I/O core. */
    void
    vhostPumpBlk()
    {
        const CostParams &c = model.config().costs;
        auto hreq = blkdev.hostPop();
        if (!hreq)
            return;
        // vhost copies the payload in whichever direction it moves
        // (request data for writes, device data for reads).
        size_t bytes =
            std::max<size_t>(hreq->data.size(), hreq->read_len);
        double cycles = c.vhost_blk + c.vhost_blk_per_byte * double(bytes);
        if (blk_chain)
            cycles += blk_chain->cycleCost(bytes);

        model.ioCore(host_index)
            .run(cycles, [this, hreq = std::move(*hreq)]() mutable {
                hostExecBlock(std::move(hreq));
                vhostPumpBlk();
            });
    }

    /** Run interposition + the backing device for one ring request. */
    void
    hostExecBlock(VirtioBlkDev::HostRequest hreq)
    {
        if (blk_chain && hreq.hdr.type == virtio::BlkType::Out) {
            interpose::IoContext ctx;
            ctx.dir = interpose::Direction::FromClient;
            ctx.device_id = device_id();
            ctx.is_block = true;
            ctx.sector = hreq.hdr.sector;
            double cc = 0;
            if (!blk_chain->run(ctx, hreq.data, cc)) {
                completeBlock(hreq.head, virtio::BlkStatus::IoErr, {});
                return;
            }
        }
        block::BlockRequest breq;
        breq.kind = hreq.hdr.type;
        breq.sector = hreq.hdr.sector;
        if (hreq.hdr.type == virtio::BlkType::Out) {
            breq.nsectors =
                uint32_t(hreq.data.size() / virtio::kSectorSize);
            breq.data = std::move(hreq.data);
        } else if (hreq.hdr.type == virtio::BlkType::In) {
            breq.nsectors = hreq.read_len / virtio::kSectorSize;
        }
        uint64_t sector = hreq.hdr.sector;
        uint16_t head = hreq.head;
        disk->submit(std::move(breq),
                     [this, sector, head](virtio::BlkStatus status,
                                          Bytes data) mutable {
                         if (blk_chain &&
                             status == virtio::BlkStatus::Ok &&
                             !data.empty()) {
                             interpose::IoContext ctx;
                             ctx.dir = interpose::Direction::ToClient;
                             ctx.device_id = device_id();
                             ctx.is_block = true;
                             ctx.sector = sector;
                             double cc = 0;
                             if (!blk_chain->run(ctx, data, cc)) {
                                 status = virtio::BlkStatus::IoErr;
                                 data.clear();
                             }
                         }
                         completeBlock(head, status, std::move(data));
                     });
    }

    void
    completeBlock(uint16_t head, virtio::BlkStatus status, Bytes data)
    {
        const CostParams &c = model.config().costs;
        blkdev.hostComplete(head, status, data);
        vm_.events().record(hv::IoEvent::Injection);
        model.ioCore(host_index).run(c.injection, [this, &c]() {
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.events().record(hv::IoEvent::SyncExit); // EOI trap
            double cycles = c.guest_irq + c.eoi_exit + c.guest_blk_complete;
            // Completions that preempt a busy vCPU force an
            // involuntary context switch (the Fig. 14 effect).
            if (vm_.vcpu().resource().busyServers() > 0) {
                vm_.noteContextSwitch();
                cycles += c.guest_ctx_switch;
            }
            vm_.vcpu().run(cycles, [this]() {
                while (auto comp = blkdev.guestReap()) {
                    auto it = blk_pending.find(comp->head);
                    vrio_assert(it != blk_pending.end(),
                                "completion without a pending request");
                    auto cb = std::move(it->second);
                    blk_pending.erase(it);
                    cb(comp->status, std::move(comp->data));
                }
            });
        });
    }
};

BaselineModel::BaselineModel(Rack &rack, ModelConfig cfg)
    : IoModel(rack, cfg)
{
    auto &sim = rack.sim();
    for (unsigned h = 0; h < cfg.num_vmhosts; ++h) {
        unsigned vms_here =
            (cfg.num_vms + cfg.num_vmhosts - 1 - h) / cfg.num_vmhosts;
        if (vms_here == 0)
            vms_here = 1;

        Host host;
        hv::MachineConfig mc;
        mc.cores = vms_here + 1; // N VMs + the shared I/O core
        mc.ghz = cfg.costs.guest_ghz;
        host.machine = std::make_unique<hv::Machine>(
            sim, strFormat("base.host%u", h), mc);
        host.io_core = vms_here;

        net::NicConfig nc;
        nc.gbps = rack.config().link_gbps;
        nc.num_queues = 1;
        nc.mtu = 64 * 1024;
        nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
        nc.intr_coalesce_frames = 8;
        host.nic = std::make_unique<net::Nic>(
            sim, strFormat("base.host%u.nic", h), nc);
        host.nic->setRxHandler(0, [this, h](unsigned) {
            nicRxInterrupt(h);
        });
        rack.connectToSwitch(strFormat("base.host%u.link", h),
                             host.nic->port());
        hosts.push_back(std::move(host));
    }

    for (unsigned v = 0; v < cfg.num_vms; ++v) {
        unsigned h = v % cfg.num_vmhosts;
        unsigned slot = v / cfg.num_vmhosts;
        auto mac = net::MacAddress::local(0x200000 + v);
        auto ep = std::make_unique<Endpoint>(
            *this, h, v, sim, hosts[h].machine->core(slot), mac,
            strFormat("base.vm%u", v));
        hosts[h].nic->addQueueMac(0, mac);
        if (cfg.with_block) {
            if (cfg.block_use_ssd) {
                ep->attachDisk(std::make_unique<block::SsdModel>(
                    sim, strFormat("base.vm%u.ssd", v), cfg.ssd_cfg));
            } else {
                ep->attachDisk(std::make_unique<block::RamDisk>(
                    sim, strFormat("base.vm%u.rd", v), cfg.ramdisk_cfg));
            }
        }
        hosts[h].vms.push_back(ep.get());
        endpoints.push_back(std::move(ep));
    }
}

BaselineModel::~BaselineModel() = default;

hv::Core &
BaselineModel::ioCore(unsigned host)
{
    return hosts[host].machine->core(hosts[host].io_core);
}

net::Nic &
BaselineModel::hostNic(unsigned host)
{
    return *hosts[host].nic;
}

BaselineModel::Endpoint *
BaselineModel::endpointByMac(unsigned host, net::MacAddress mac)
{
    for (Endpoint *ep : hosts[host].vms) {
        if (ep->mac() == mac)
            return ep;
    }
    return nullptr;
}

void
BaselineModel::nicRxInterrupt(unsigned host)
{
    // Physical interrupt handled by the host kernel on the I/O core.
    auto frames = hosts[host].nic->rxTake(0, 64);
    if (frames.empty())
        return;
    // Charge the IRQ once (moderated); attribute it to the first
    // destination VM for Table-3 accounting.
    net::EtherHeader eh0 = frames.front()->ether();
    if (Endpoint *first = endpointByMac(host, eh0.dst))
        first->vm().events().record(hv::IoEvent::HostInterrupt);
    ioCore(host).run(cfg_.costs.host_irq, []() {});

    for (auto &frame : frames) {
        net::EtherHeader eh = frame->ether();
        if (Endpoint *ep = endpointByMac(host, eh.dst))
            ep->hostDeliver(frame);
    }
}

GuestEndpoint &
BaselineModel::guest(unsigned vm_index)
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return *endpoints[vm_index];
}

const hv::Vm &
BaselineModel::vmAt(unsigned vm_index) const
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return const_cast<Endpoint &>(*endpoints[vm_index]).vm();
}

std::vector<const sim::Resource *>
BaselineModel::ioResources() const
{
    std::vector<const sim::Resource *> out;
    for (const auto &host : hosts) {
        out.push_back(
            &host.machine->core(host.io_core).resource());
    }
    return out;
}

} // namespace vrio::models
