/**
 * @file
 * The baseline I/O model: KVM virtio, trap and emulate.
 *
 * Guests notify the host by exiting; vhost I/O threads run on a
 * shared extra core per VMhost; completions are injected, and every
 * EOI write traps.  Table 3 row: 3 exits, 2 guest interrupts,
 * 2 injections, 2 host interrupts per request-response.
 */
#ifndef VRIO_MODELS_BASELINE_HPP
#define VRIO_MODELS_BASELINE_HPP

#include "block/disk_scheduler.hpp"
#include "models/io_model.hpp"
#include "models/virtio_blk_dev.hpp"
#include "models/virtio_net_dev.hpp"

namespace vrio::models {

class BaselineModel : public IoModel
{
  public:
    BaselineModel(Rack &rack, ModelConfig cfg);
    ~BaselineModel() override;

    GuestEndpoint &guest(unsigned vm_index) override;
    std::vector<const sim::Resource *> ioResources() const override;

  protected:
    const hv::Vm &vmAt(unsigned vm_index) const override;

  private:
    class Endpoint;

    struct Host
    {
        std::unique_ptr<hv::Machine> machine;
        std::unique_ptr<net::Nic> nic;
        unsigned io_core = 0; ///< index of the shared vhost core
        std::vector<Endpoint *> vms; ///< endpoints on this host
    };

    std::vector<Host> hosts;
    std::vector<std::unique_ptr<Endpoint>> endpoints;

    hv::Core &ioCore(unsigned host);
    net::Nic &hostNic(unsigned host);
    void nicRxInterrupt(unsigned host);
    Endpoint *endpointByMac(unsigned host, net::MacAddress mac);
};

} // namespace vrio::models

#endif // VRIO_MODELS_BASELINE_HPP
