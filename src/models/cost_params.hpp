/**
 * @file
 * Calibration constants for the I/O model simulations.
 *
 * Cycle costs are charged to specific cores as transactions traverse
 * each model's path.  Absolute values are tuned so the *shapes* of the
 * paper's results hold (see DESIGN.md section 4 for the anchors):
 *
 *  - optimum netperf RR ~30-32 us per transaction, flat in N;
 *  - vRIO ~12 us above optimum (the extra hop), creeping up ~1 us by
 *    N=7 from remote-sidecore contention (Fig. 7/8);
 *  - Elvis 8 us below vRIO at N=1, crossing over around N=6 as its
 *    per-transaction physical interrupts tax the sidecore (Fig. 7);
 *  - per-message stream cycles +0/+1/+9/+40% for
 *    optimum/elvis/vrio/baseline (Fig. 10);
 *  - one vRIO worker saturates near 13 Gbps of stream traffic
 *    (Fig. 13b).
 *
 * The testbed clock rates come straight from Section 5: VMhosts
 * 2.2 GHz, IOhost 2.7 GHz, load generators 2.93 GHz.
 */
#ifndef VRIO_MODELS_COST_PARAMS_HPP
#define VRIO_MODELS_COST_PARAMS_HPP

#include "sim/ticks.hpp"

namespace vrio::models {

struct CostParams
{
    /**
     * A rare service-time disturbance: with probability @p p an
     * operation is extended by an Exponential(@p mean_us) stall.
     * These produce the deep-tail structure of Table 4 — elvis's
     * critical path crosses host-kernel interrupt context (rare but
     * very long stalls), vRIO's crosses the IOhost worker (more
     * frequent, shorter ones: reassembly, batch boundaries).
     */
    struct Stall
    {
        double p = 0;
        double mean_us = 0;
        /** Stall durations are clamped here (0 = uncapped). */
        double cap_us = 0;
    };

    // -- clock rates (GHz), per Section 5 ---------------------------
    double guest_ghz = 2.2;
    double iohost_ghz = 2.7;
    double generator_ghz = 2.93;

    // -- guest path costs (cycles on the vCPU) ----------------------
    /** Virtual interrupt handling incl. direct EOI write (ELI). */
    double guest_irq = 2800;
    /** Net stack receive path per packet. */
    double guest_net_rx = 7600;
    /** Net stack transmit path per packet. */
    double guest_net_tx = 8400;
    /** Block layer submit / completion halves. */
    double guest_blk_submit = 5800;
    double guest_blk_complete = 4200;
    /** Involuntary context switch (thread preemption on the vCPU). */
    double guest_ctx_switch = 9000;

    // -- trap-and-emulate costs (baseline only) ----------------------
    /** Synchronous exit: direct cost plus cache/TLB pollution. */
    double exit = 4200;
    /** Hypervisor interrupt injection (host side). */
    double injection = 2800;
    /** EOI write trap when ELI is absent. */
    double eoi_exit = 3000;
    /** Physical-interrupt handling on a host core, per interrupt. */
    double host_irq = 2200;
    /** Baseline vhost thread work per net packet per direction. */
    double vhost_net = 5500;
    /** Baseline vhost work per block request. */
    double vhost_blk = 22000;
    double vhost_per_byte = 1.2;
    /**
     * Baseline block data crosses several buffers (guest ring ->
     * vhost -> host block layer -> device), unlike the sidecore
     * models' zero-copy paths.
     */
    double vhost_blk_per_byte = 4.0;
    /** Guest ring work per coalesced message (descriptor post). */
    double baseline_msg_ring = 200;
    /** vhost work per coalesced message (descriptor processing). */
    double baseline_msg_vhost = 200;

    // -- Elvis sidecore costs ----------------------------------------
    /** Ring poll + request pickup per request. */
    double elvis_ring = 800;
    /** Sidecore back-end per net packet (bridge + NIC driver). */
    double elvis_backend_net = 2600;
    /** Sidecore back-end per block request. */
    double elvis_backend_blk = 5800;
    /** Physical-interrupt handling on the sidecore, per interrupt
     *  fired (amortizes when arrivals coalesce into one interrupt). */
    double elvis_host_irq = 3000;
    /** Per-frame IRQ-context work (softirq), never amortized. */
    double elvis_irq_frame = 1400;
    /** Per payload byte on the sidecore. */
    double elvis_per_byte = 0.15;
    /** Exitless IPI (sidecore -> guest) send cost. */
    double ipi = 700;
    /** Shared-memory poll pickup latency when the sidecore is idle. */
    sim::Tick elvis_poll_pickup = sim::Tick(400) * sim::kNanosecond;

    // -- vRIO client (transport driver) costs ------------------------
    /** Encapsulation: header build + SKB juggling (Section 4.4). */
    double vrio_encap = 1700;
    /** Decapsulation on receive. */
    double vrio_decap = 1500;
    double vrio_client_per_byte = 0.2;

    // -- netperf stream workload -------------------------------------
    /** Guest cycles per 64-byte stream message (syscall + copy). */
    double stream_msg_cycles = 1300;

    // -- service-time disturbances (Table 4 tails) ---------------------
    /** Guest timer ticks and other small interference (all models). */
    Stall guest_jitter{1e-3, 2.5, 10};
    /** Rare long guest/host disturbance (all models). */
    Stall guest_stall{3e-5, 120.0, 200};
    /** Elvis sidecore: moderate host-kernel interference. */
    Stall elvis_stall{5e-4, 18.0, 60};
    /** Elvis sidecore: rare long interrupt-context stall. */
    Stall elvis_big_stall{6e-5, 300.0, 450};
    /** vRIO worker: reassembly/batch-boundary jitter. */
    Stall worker_jitter{2e-3, 15.0, 60};
    /** vRIO worker: rare long stall (shorter than elvis's). */
    Stall worker_stall{1e-4, 60.0, 220};
    /** Baseline vhost-thread scheduling noise ("less stable"). */
    Stall vhost_stall{1.5e-3, 25.0, 80};

    // -- load generators ----------------------------------------------
    /** Generator cycles per send or receive operation. */
    double gen_op_cycles = 16000;
    /** Cores on the generator's CPU 0 (direct PCIe attach). */
    unsigned gen_numa_fast_cores = 4;
    /**
     * Per-op cost multiplier for sessions on CPU 1, whose DRAM/PCIe
     * accesses cross the socket interconnect — the Fig. 13a bump.
     */
    double gen_numa_penalty = 1.35;
};

} // namespace vrio::models

#endif // VRIO_MODELS_COST_PARAMS_HPP
