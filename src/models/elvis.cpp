#include "models/elvis.hpp"

#include "models/jitter.hpp"

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::models {

/** Per-VM Elvis endpoint. */
class ElvisModel::Endpoint : public GuestEndpoint
{
  public:
    Endpoint(ElvisModel &model, unsigned host_index, unsigned vm_index,
             unsigned sidecore_slot, sim::Simulation &sim, hv::Core &vcpu,
             net::MacAddress f_mac, std::string name)
        : model(model), host_index(host_index), vm_index(vm_index),
          sidecore_slot(sidecore_slot), f_mac(f_mac),
          vm_(sim, std::move(name), vcpu), netdev(vm_)
    {
        const ModelConfig &cfg = model.config();
        if (cfg.chain_factory) {
            net_chain = cfg.chain_factory(device_id(), false);
            blk_chain = cfg.chain_factory(device_id(), true);
        }
    }

    void
    attachDisk(std::unique_ptr<block::BlockDevice> d)
    {
        disk = std::move(d);
        sched = std::make_unique<block::DiskScheduler>(
            [this](block::BlockRequest req, block::BlockCallback done) {
                dispatchBlock(std::move(req), std::move(done));
            });
    }

    uint32_t device_id() const { return 0x0e00 + vm_index; }
    unsigned sidecoreSlot() const { return sidecore_slot; }
    unsigned vmIndex() const { return vm_index; }

    hv::Vm &vm() override { return vm_; }
    net::MacAddress mac() const override { return f_mac; }

    void
    sendNet(net::MacAddress dst, Bytes payload, uint64_t pad,
            uint64_t messages) override
    {
        (void)messages;
        const CostParams &c = model.config().costs;
        net::EtherHeader eh;
        eh.dst = dst;
        eh.src = f_mac;
        eh.ether_type = uint16_t(net::EtherType::Raw);
        // No exit: the guest just posts to the shared-memory ring;
        // the sidecore notices by polling.
        vm_.vcpu().runPreempt(c.guest_net_tx, [this, eh,
                                        payload = std::move(payload),
                                        pad]() mutable {
            if (!netdev.guestTransmit(eh, payload, pad)) {
                ++tx_ring_full;
                return;
            }
            model.notifyTx(host_index, this);
        });
    }

    void setNetHandler(NetHandler h) override { handler = std::move(h); }

    bool hasBlockDevice() const override { return disk != nullptr; }

    uint64_t
    blockCapacitySectors() const override
    {
        return disk ? disk->capacitySectors() : 0;
    }

    void
    submitBlock(block::BlockRequest req, block::BlockCallback done) override
    {
        vrio_assert(sched, "no block device attached");
        sched->submit(std::move(req), std::move(done));
    }

    // -- sidecore-side paths (invoked by the model) --------------------

    /**
     * Drain this VM's TX ring on its sidecore.
     * @return frames handed to the NIC.
     */
    unsigned
    sidecoreDrainTx()
    {
        const CostParams &c = model.config().costs;
        hv::Core &sc =
            model.sidecore(host_index, sidecore_slot);
        unsigned sent = 0;
        while (auto pkt = netdev.hostPopTx()) {
            ++sent;
            size_t bytes = pkt->frame.size() + pkt->pad;
            auto &rng = vm_.sim().random();
            double cycles = c.elvis_ring + c.elvis_backend_net +
                            c.elvis_per_byte * double(bytes) +
                            stallCycles(rng, c.elvis_stall, c.guest_ghz) +
                            stallCycles(rng, c.elvis_big_stall,
                                        c.guest_ghz);
            if (net_chain)
                cycles += net_chain->cycleCost(bytes);
            sc.run(cycles, [this, pkt = std::move(*pkt)]() mutable {
                bool forward = true;
                if (net_chain) {
                    auto ctx = netContext(
                        interpose::Direction::FromClient, pkt.frame);
                    double cc = 0;
                    forward = net_chain->run(ctx, pkt.frame, cc);
                }
                if (forward) {
                    auto out = std::make_shared<net::Frame>();
                    out->bytes = std::move(pkt.frame);
                    out->pad = pkt.pad;
                    model.hostNic(host_index).send(0, std::move(out));
                    // TX-done physical interrupt, handled on the
                    // sidecore (the cost vRIO's IOhost polling avoids).
                    vm_.events().record(hv::IoEvent::HostInterrupt);
                    model.sidecore(host_index, sidecore_slot)
                        .runPreempt(model.config().costs.elvis_host_irq +
                                 model.config().costs.elvis_irq_frame,
                             []() {});
                }
                netdev.hostCompleteTx(pkt.head);
                // Exitless IPI: TX-completion interrupt to the guest.
                ipiToGuest([this]() { netdev.guestReapTx(); });
            });
        }
        return sent;
    }

    /** Deliver a received frame through the sidecore. */
    void
    sidecoreDeliver(const net::FramePtr &frame)
    {
        const CostParams &c = model.config().costs;
        hv::Core &sc = model.sidecore(host_index, sidecore_slot);
        size_t bytes = frame->bytes.size() + frame->pad;
        auto &rng = vm_.sim().random();
        double cycles = c.elvis_ring + c.elvis_backend_net +
                        c.elvis_per_byte * double(bytes) +
                        stallCycles(rng, c.elvis_stall, c.guest_ghz) +
                        stallCycles(rng, c.elvis_big_stall, c.guest_ghz);
        if (net_chain)
            cycles += net_chain->cycleCost(bytes);
        sc.run(cycles, [this, frame]() {
            Bytes payload = frame->bytes;
            if (net_chain) {
                auto ctx =
                    netContext(interpose::Direction::ToClient, payload);
                double cc = 0;
                if (!net_chain->run(ctx, payload, cc))
                    return;
            }
            if (!netdev.hostDeliverRx(payload, frame->pad))
                return;
            ipiToGuest([this]() { guestReceive(); });
        });
    }

    VirtioNetDev &dev() { return netdev; }
    uint64_t txRingFull() const { return tx_ring_full; }

  private:
    ElvisModel &model;
    unsigned host_index;
    unsigned vm_index;
    unsigned sidecore_slot;
    net::MacAddress f_mac;
    hv::Vm vm_;
    VirtioNetDev netdev;
    VirtioBlkDev blkdev{vm_};
    std::map<uint16_t, block::BlockCallback> blk_pending;
    NetHandler handler;
    uint64_t tx_ring_full = 0;

    std::unique_ptr<block::BlockDevice> disk;
    std::unique_ptr<block::DiskScheduler> sched;
    interpose::Chain *net_chain = nullptr;
    interpose::Chain *blk_chain = nullptr;

    interpose::IoContext
    netContext(interpose::Direction dir, const Bytes &l2_frame)
    {
        interpose::IoContext ctx;
        ctx.dir = dir;
        ctx.device_id = device_id();
        ctx.is_block = false;
        if (l2_frame.size() >= net::kEtherHeaderSize) {
            ByteReader r(l2_frame);
            auto eh = net::EtherHeader::decode(r);
            ctx.src = eh.src;
            ctx.dst = eh.dst;
            ctx.ether_type = eh.ether_type;
        }
        return ctx;
    }

    /** Exitless IPI into the guest: IRQ cost, then @p body. */
    void
    ipiToGuest(std::function<void()> body)
    {
        const CostParams &c = model.config().costs;
        model.sidecore(host_index, sidecore_slot).runPreempt(c.ipi, []() {});
        vm_.events().record(hv::IoEvent::GuestInterrupt);
        vm_.vcpu().run(c.guest_irq, std::move(body));
    }

    void
    guestReceive()
    {
        const CostParams &c = model.config().costs;
        while (auto pkt = netdev.guestReapRx()) {
            if (pkt->frame.size() < net::kEtherHeaderSize)
                continue;
            net::EtherHeader eh;
            {
                ByteReader r(pkt->frame);
                eh = net::EtherHeader::decode(r);
            }
            Bytes payload(pkt->frame.begin() + net::kEtherHeaderSize,
                          pkt->frame.end());
            uint64_t pad = pkt->pad;
            double cycles = c.guest_net_rx +
                            stallCycles(vm_.sim().random(),
                                        c.guest_jitter, c.guest_ghz);
            vm_.vcpu().runPreempt(cycles,
                           [this, payload = std::move(payload),
                            src = eh.src, pad]() mutable {
                               if (handler)
                                   handler(std::move(payload), src, pad);
                           });
        }
    }

    /**
     * Block path over a real virtio-blk ring: the guest posts without
     * exiting; the sidecore notices by polling, runs interposition and
     * the local device, scatters status+data back and IPIs the guest.
     */
    void
    dispatchBlock(block::BlockRequest req, block::BlockCallback done)
    {
        const CostParams &c = model.config().costs;
        vm_.vcpu().runPreempt(c.guest_blk_submit,
                       [this, &c, req = std::move(req),
                        done = std::move(done)]() mutable {
                           auto head = blkdev.guestSubmit(req);
                           if (!head) {
                               done(virtio::BlkStatus::IoErr, {});
                               return;
                           }
                           blk_pending[*head] = std::move(done);
                           model.rack().sim().events().schedule(
                               c.elvis_poll_pickup,
                               [this]() { sidecorePumpBlk(); });
                       });
    }

    /** Sidecore: drain this VM's block ring. */
    void
    sidecorePumpBlk()
    {
        const CostParams &c = model.config().costs;
        auto hreq = blkdev.hostPop();
        if (!hreq)
            return;
        size_t bytes =
            std::max<size_t>(hreq->data.size(), hreq->read_len);
        double cycles = c.elvis_ring + c.elvis_backend_blk +
                        c.elvis_per_byte * double(bytes);
        if (blk_chain)
            cycles += blk_chain->cycleCost(bytes);

        model.sidecore(host_index, sidecore_slot)
            .runPreempt(cycles, [this, hreq = std::move(*hreq)]() mutable {
                sidecoreExecBlock(std::move(hreq));
                sidecorePumpBlk();
            });
    }

    void
    sidecoreExecBlock(VirtioBlkDev::HostRequest hreq)
    {
        if (blk_chain && hreq.hdr.type == virtio::BlkType::Out) {
            interpose::IoContext ctx;
            ctx.dir = interpose::Direction::FromClient;
            ctx.device_id = device_id();
            ctx.is_block = true;
            ctx.sector = hreq.hdr.sector;
            double cc = 0;
            if (!blk_chain->run(ctx, hreq.data, cc)) {
                completeBlock(hreq.head, virtio::BlkStatus::IoErr, {});
                return;
            }
        }
        block::BlockRequest breq;
        breq.kind = hreq.hdr.type;
        breq.sector = hreq.hdr.sector;
        if (hreq.hdr.type == virtio::BlkType::Out) {
            breq.nsectors =
                uint32_t(hreq.data.size() / virtio::kSectorSize);
            breq.data = std::move(hreq.data);
        } else if (hreq.hdr.type == virtio::BlkType::In) {
            breq.nsectors = hreq.read_len / virtio::kSectorSize;
        }
        uint64_t sector = hreq.hdr.sector;
        uint16_t head = hreq.head;
        disk->submit(std::move(breq),
                     [this, sector, head](virtio::BlkStatus status,
                                          Bytes data) mutable {
                         if (blk_chain &&
                             status == virtio::BlkStatus::Ok &&
                             !data.empty()) {
                             interpose::IoContext ctx;
                             ctx.dir = interpose::Direction::ToClient;
                             ctx.device_id = device_id();
                             ctx.is_block = true;
                             ctx.sector = sector;
                             double cc = 0;
                             if (!blk_chain->run(ctx, data, cc)) {
                                 status = virtio::BlkStatus::IoErr;
                                 data.clear();
                             }
                         }
                         completeBlock(head, status, std::move(data));
                     });
    }

    void
    completeBlock(uint16_t head, virtio::BlkStatus status, Bytes data)
    {
        const CostParams &c = model.config().costs;
        // Completion-side sidecore work, then the exitless IPI.
        hv::Core &sc = model.sidecore(host_index, sidecore_slot);
        sc.run(c.elvis_ring + c.ipi, [this, &c, head, status,
                                      data = std::move(data)]() mutable {
            blkdev.hostComplete(head, status, data);
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            double cycles = c.guest_irq + c.guest_blk_complete;
            if (vm_.vcpu().resource().busyServers() > 0) {
                vm_.noteContextSwitch();
                cycles += c.guest_ctx_switch;
            }
            vm_.vcpu().run(cycles, [this]() {
                while (auto comp = blkdev.guestReap()) {
                    auto it = blk_pending.find(comp->head);
                    vrio_assert(it != blk_pending.end(),
                                "completion without a pending request");
                    auto cb = std::move(it->second);
                    blk_pending.erase(it);
                    cb(comp->status, std::move(comp->data));
                }
            });
        });
    }
};

ElvisModel::ElvisModel(Rack &rack, ModelConfig cfg) : IoModel(rack, cfg)
{
    auto &sim = rack.sim();
    for (unsigned h = 0; h < cfg.num_vmhosts; ++h) {
        unsigned vms_here =
            (cfg.num_vms + cfg.num_vmhosts - 1 - h) / cfg.num_vmhosts;
        if (vms_here == 0)
            vms_here = 1;

        Host host;
        hv::MachineConfig mc;
        mc.cores = vms_here + cfg.sidecores;
        mc.ghz = cfg.costs.guest_ghz;
        host.machine = std::make_unique<hv::Machine>(
            sim, strFormat("elvis.host%u", h), mc);
        host.first_sidecore = vms_here;
        host.num_sidecores = cfg.sidecores;
        host.tx_pending.resize(cfg.sidecores);
        host.pump_scheduled.resize(cfg.sidecores, false);

        net::NicConfig nc;
        nc.gbps = rack.config().link_gbps;
        nc.num_queues = cfg.sidecores;
        nc.mtu = 64 * 1024;
        nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
        nc.intr_coalesce_frames = 8;
        host.nic = std::make_unique<net::Nic>(
            sim, strFormat("elvis.host%u.nic", h), nc);
        for (unsigned q = 0; q < cfg.sidecores; ++q) {
            host.nic->setRxHandler(q, [this, h](unsigned queue) {
                nicRxInterrupt(h, queue);
            });
        }
        rack.connectToSwitch(strFormat("elvis.host%u.link", h),
                             host.nic->port());
        hosts.push_back(std::move(host));
    }

    for (unsigned v = 0; v < cfg.num_vms; ++v) {
        unsigned h = v % cfg.num_vmhosts;
        unsigned slot = v / cfg.num_vmhosts;
        unsigned s = slot % cfg.sidecores;
        auto mac = net::MacAddress::local(0x300000 + v);
        auto ep = std::make_unique<Endpoint>(
            *this, h, v, s, sim, hosts[h].machine->core(slot), mac,
            strFormat("elvis.vm%u", v));
        hosts[h].nic->addQueueMac(s, mac);
        if (cfg.with_block) {
            if (cfg.block_use_ssd) {
                ep->attachDisk(std::make_unique<block::SsdModel>(
                    sim, strFormat("elvis.vm%u.ssd", v), cfg.ssd_cfg));
            } else {
                ep->attachDisk(std::make_unique<block::RamDisk>(
                    sim, strFormat("elvis.vm%u.rd", v), cfg.ramdisk_cfg));
            }
        }
        hosts[h].vms.push_back(ep.get());
        endpoints.push_back(std::move(ep));
    }
}

ElvisModel::~ElvisModel() = default;

hv::Core &
ElvisModel::sidecore(unsigned host, unsigned s)
{
    Host &hst = hosts[host];
    vrio_assert(s < hst.num_sidecores, "bad sidecore slot ", s);
    return hst.machine->core(hst.first_sidecore + s);
}

net::Nic &
ElvisModel::hostNic(unsigned host)
{
    return *hosts[host].nic;
}

void
ElvisModel::notifyTx(unsigned host, Endpoint *ep)
{
    Host &hst = hosts[host];
    unsigned s = ep->sidecoreSlot();
    hst.tx_pending[s].emplace(ep->vmIndex(), ep);
    if (!hst.pump_scheduled[s]) {
        hst.pump_scheduled[s] = true;
        rack_.sim().events().schedule(cfg_.costs.elvis_poll_pickup,
                                      [this, host, s]() {
                                          pumpSidecore(host, s);
                                      });
    }
}

void
ElvisModel::pumpSidecore(unsigned host, unsigned s)
{
    Host &hst = hosts[host];
    hst.pump_scheduled[s] = false;
    auto pending = std::move(hst.tx_pending[s]);
    hst.tx_pending[s].clear();
    for (auto &[vm_index, ep] : pending)
        ep->sidecoreDrainTx();
}

void
ElvisModel::nicRxInterrupt(unsigned host, unsigned queue)
{
    auto frames = hosts[host].nic->rxTake(queue, 64);
    if (frames.empty())
        return;
    // The physical RX interrupt lands on the sidecore owning the
    // queue.  The per-interrupt entry cost amortizes when moderation
    // coalesces arrivals, but the per-frame IRQ-context work (softirq,
    // cache/TLB pollution) does not — the paper's observation that
    // "the cost of interrupts is substantial despite [...] interrupt
    // coalescing".
    sidecore(host, queue).run(cfg_.costs.elvis_host_irq, []() {});
    for (auto &frame : frames) {
        net::EtherHeader eh = frame->ether();
        if (Endpoint *ep = endpointByMac(host, eh.dst)) {
            ep->vm().events().record(hv::IoEvent::HostInterrupt);
            sidecore(host, queue).run(cfg_.costs.elvis_irq_frame, []() {});
            ep->sidecoreDeliver(frame);
        }
    }
}

ElvisModel::Endpoint *
ElvisModel::endpointByMac(unsigned host, net::MacAddress mac)
{
    for (Endpoint *ep : hosts[host].vms) {
        if (ep->mac() == mac)
            return ep;
    }
    return nullptr;
}

GuestEndpoint &
ElvisModel::guest(unsigned vm_index)
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return *endpoints[vm_index];
}

const hv::Vm &
ElvisModel::vmAt(unsigned vm_index) const
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return const_cast<Endpoint &>(*endpoints[vm_index]).vm();
}

std::vector<const sim::Resource *>
ElvisModel::ioResources() const
{
    std::vector<const sim::Resource *> out;
    for (const auto &host : hosts) {
        for (unsigned s = 0; s < host.num_sidecores; ++s) {
            out.push_back(&host.machine
                               ->core(host.first_sidecore + s)
                               .resource());
        }
    }
    return out;
}

} // namespace vrio::models
