/**
 * @file
 * The Elvis I/O model: per-VMhost polling sidecores + ELI (the
 * state of the art the paper compares against, Har'El et al. 2013).
 *
 * Guests post virtio requests without exiting; a dedicated sidecore
 * polls the rings and runs the back-end, delivering completions via
 * exitless IPIs.  The physical NIC, however, is driven the standard
 * interrupt way — the host interrupts that vRIO eliminates by polling
 * at the IOhost (Table 3: 0 exits, 2 guest interrupts, 0 injections,
 * 2 host interrupts).
 */
#ifndef VRIO_MODELS_ELVIS_HPP
#define VRIO_MODELS_ELVIS_HPP

#include <map>

#include "block/disk_scheduler.hpp"
#include "models/io_model.hpp"
#include "models/virtio_blk_dev.hpp"
#include "models/virtio_net_dev.hpp"

namespace vrio::models {

class ElvisModel : public IoModel
{
  public:
    ElvisModel(Rack &rack, ModelConfig cfg);
    ~ElvisModel() override;

    GuestEndpoint &guest(unsigned vm_index) override;
    std::vector<const sim::Resource *> ioResources() const override;

    /** The sidecore core of (host, sidecore-slot). */
    hv::Core &sidecore(unsigned host, unsigned s);

  protected:
    const hv::Vm &vmAt(unsigned vm_index) const override;

  private:
    class Endpoint;

    struct Host
    {
        std::unique_ptr<hv::Machine> machine;
        std::unique_ptr<net::Nic> nic;
        unsigned first_sidecore = 0;
        unsigned num_sidecores = 1;
        std::vector<Endpoint *> vms;
        /**
         * VMs with unpolled TX work, per sidecore slot, keyed by VM
         * index.  Keyed (rather than a set of pointers) so that drain
         * order never depends on heap addresses — pointer ordering
         * varies with the thread's allocation history and broke
         * run-to-run determinism under the parallel sweep runner.
         */
        std::vector<std::map<unsigned, Endpoint *>> tx_pending;
        std::vector<bool> pump_scheduled;
    };

    std::vector<Host> hosts;
    std::vector<std::unique_ptr<Endpoint>> endpoints;

    net::Nic &hostNic(unsigned host);
    void notifyTx(unsigned host, Endpoint *ep);
    void pumpSidecore(unsigned host, unsigned s);
    void nicRxInterrupt(unsigned host, unsigned queue);
    Endpoint *endpointByMac(unsigned host, net::MacAddress mac);
};

} // namespace vrio::models

#endif // VRIO_MODELS_ELVIS_HPP
