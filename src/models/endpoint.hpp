/**
 * @file
 * The guest-visible I/O interface every model implements.
 *
 * Workloads (netperf, Apache, memcached, filebench) are written
 * against GuestEndpoint and never know which of the five I/O models
 * is wired beneath them — exactly as the paper's benchmarks run
 * unmodified across virtio/Elvis/SRIOV/vRIO.
 */
#ifndef VRIO_MODELS_ENDPOINT_HPP
#define VRIO_MODELS_ENDPOINT_HPP

#include <functional>

#include "block/block_device.hpp"
#include "hv/vm.hpp"
#include "net/mac.hpp"

namespace vrio::models {

/** Delivered guest-side packet: payload plus L2 source. */
using NetHandler =
    std::function<void(Bytes payload, net::MacAddress src, uint64_t pad)>;

class GuestEndpoint
{
  public:
    virtual ~GuestEndpoint() = default;

    /** The client (VM or bare-metal OS) behind this endpoint. */
    virtual hv::Vm &vm() = 0;

    /** The L2 address the outside world uses to reach this guest. */
    virtual net::MacAddress mac() const = 0;

    /**
     * Transmit @p payload to @p dst.  All guest- and host-side path
     * costs are charged internally; @p pad simulates additional
     * payload bytes without materializing them (models that must
     * materialize — vRIO encapsulation — convert pad to zeros).
     *
     * @param messages number of application messages coalesced into
     *        this send (netperf stream: 64B messages per TSO chunk).
     *        Models whose rings see one descriptor/notification per
     *        message (the baseline) charge per-message costs.
     */
    virtual void sendNet(net::MacAddress dst, Bytes payload,
                         uint64_t pad = 0, uint64_t messages = 1) = 0;

    /** Install the receive upcall (runs after guest-side costs). */
    virtual void setNetHandler(NetHandler handler) = 0;

    /** True when a paravirtual block device is attached. */
    virtual bool hasBlockDevice() const = 0;

    /** Capacity of the attached block device (0 when absent). */
    virtual uint64_t blockCapacitySectors() const = 0;

    /**
     * Submit a block request through the guest disk scheduler and the
     * model's block path.  Completion runs after all path costs.
     */
    virtual void submitBlock(block::BlockRequest req,
                             block::BlockCallback done) = 0;
};

} // namespace vrio::models

#endif // VRIO_MODELS_ENDPOINT_HPP
