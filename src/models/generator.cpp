#include "models/generator.hpp"

#include "util/logging.hpp"

namespace vrio::models {

Generator::Generator(sim::Simulation &sim, std::string name,
                     const CostParams &costs, uint64_t mac_seed)
    : SimObject(sim, std::move(name)), costs(costs), mac_seed(mac_seed)
{
    hv::MachineConfig mc;
    mc.cores = 8; // two 4-core 2.93 GHz Xeon 5500s
    mc.ghz = costs.generator_ghz;
    machine = std::make_unique<hv::Machine>(sim, this->name() + ".m", mc);

    net::NicConfig nc;
    nc.gbps = 10.0;
    nc.num_queues = 8; // one RX queue per potential session
    nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
    nc.intr_coalesce_frames = 8;
    nic_ = std::make_unique<net::Nic>(sim, this->name() + ".nic", nc);
    for (unsigned q = 0; q < 8; ++q) {
        nic_->setRxHandler(q, [this](unsigned queue) {
            rxInterrupt(queue);
        });
    }
}

unsigned
Generator::newSession()
{
    vrio_assert(sessions.size() < 7,
                "generator supports at most 7 sessions (core 0 is the "
                "interrupt core)");
    Session s;
    s.mac = net::MacAddress::local(mac_seed + sessions.size());
    // Core 0 handles interrupts; sessions fill cores 1..7.
    s.core = unsigned(1 + sessions.size());
    sessions.push_back(std::move(s));
    unsigned id = unsigned(sessions.size() - 1);
    nic_->setQueueMac(id, sessions[id].mac);
    return id;
}

net::MacAddress
Generator::sessionMac(unsigned session) const
{
    vrio_assert(session < sessions.size(), "bad session ", session);
    return sessions[session].mac;
}

double
Generator::opCycles(const Session &s) const
{
    // Sessions on the second socket (CPU 1) pay the NUMA penalty:
    // their DRAM and PCIe traffic crosses the socket interconnect.
    double cycles = costs.gen_op_cycles;
    if (s.core >= costs.gen_numa_fast_cores)
        cycles *= costs.gen_numa_penalty;
    return cycles;
}

void
Generator::send(unsigned session, net::MacAddress dst, Bytes payload,
                uint64_t pad)
{
    vrio_assert(session < sessions.size(), "bad session ", session);
    Session &s = sessions[session];
    net::EtherHeader eh;
    eh.dst = dst;
    eh.src = s.mac;
    eh.ether_type = uint16_t(net::EtherType::Raw);
    auto frame = net::makeFrame(eh, payload, pad);
    machine->core(s.core).runPreempt(opCycles(s),
                              [this, session, frame = std::move(frame)]()
                                  mutable {
                                  nic_->send(session, std::move(frame));
                              });
}

void
Generator::setHandler(unsigned session, GenHandler handler)
{
    vrio_assert(session < sessions.size(), "bad session ", session);
    sessions[session].handler = std::move(handler);
}

void
Generator::rxInterrupt(unsigned queue)
{
    // IRQ work happens on core 0 (the designated interrupt core);
    // the per-op receive processing then runs on the session core.
    auto frames = nic_->rxTake(queue, 64);
    if (frames.empty() || queue >= sessions.size())
        return;
    Session &s = sessions[queue];
    machine->core(0).run(1500, []() {});
    for (auto &frame : frames) {
        net::EtherHeader eh = frame->ether();
        Bytes payload(frame->bytes.begin() + net::kEtherHeaderSize,
                      frame->bytes.end());
        uint64_t pad = frame->pad;
        machine->core(s.core).run(
            opCycles(s),
            [&s, payload = std::move(payload), src = eh.src, pad]() mutable {
                if (s.handler)
                    s.handler(std::move(payload), src, pad);
            });
    }
}

} // namespace vrio::models
