/**
 * @file
 * Load-generator machines (the IBM x3550 M2 boxes of Section 5).
 *
 * A Generator hosts multiple benchmark sessions, each pinned to a
 * core and owning a MAC address.  Core 0 is reserved for interrupt
 * handling (as in the paper's setup); sessions occupy cores 1..7.
 * Sessions placed on the second socket (cores >= numa_fast_cores)
 * pay the cross-socket penalty responsible for the Fig. 13a bump.
 */
#ifndef VRIO_MODELS_GENERATOR_HPP
#define VRIO_MODELS_GENERATOR_HPP

#include <functional>
#include <vector>

#include "hv/core.hpp"
#include "models/cost_params.hpp"
#include "net/nic.hpp"

namespace vrio::models {

/** Delivered generator-side packet. */
using GenHandler =
    std::function<void(Bytes payload, net::MacAddress src, uint64_t pad)>;

class Generator : public sim::SimObject
{
  public:
    /**
     * @param mac_seed start of the MAC range for this generator's
     *        sessions (each generator needs a disjoint range).
     */
    Generator(sim::Simulation &sim, std::string name,
              const CostParams &costs, uint64_t mac_seed);

    /** The NIC port to wire to the rack switch. */
    net::NetPort &port() { return nic_->port(); }
    net::Nic &nic() { return *nic_; }

    /** Create a session; returns its id. */
    unsigned newSession();

    net::MacAddress sessionMac(unsigned session) const;

    /** Transmit from a session (charges the session core). */
    void send(unsigned session, net::MacAddress dst, Bytes payload,
              uint64_t pad = 0);

    /** Install a session's receive upcall. */
    void setHandler(unsigned session, GenHandler handler);

    unsigned sessionCount() const { return unsigned(sessions.size()); }

  private:
    struct Session
    {
        net::MacAddress mac;
        unsigned core;
        GenHandler handler;
    };

    CostParams costs;
    uint64_t mac_seed;
    std::unique_ptr<hv::Machine> machine;
    std::unique_ptr<net::Nic> nic_;
    std::vector<Session> sessions;

    double opCycles(const Session &s) const;
    void rxInterrupt(unsigned queue);
};

} // namespace vrio::models

#endif // VRIO_MODELS_GENERATOR_HPP
