#include "models/io_model.hpp"

#include "models/baseline.hpp"
#include "models/elvis.hpp"
#include "models/nvme_passthrough.hpp"
#include "models/optimum.hpp"
#include "models/vrio.hpp"
#include "util/logging.hpp"

namespace vrio::models {

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Baseline:
        return "baseline";
      case ModelKind::Elvis:
        return "elvis";
      case ModelKind::Optimum:
        return "optimum";
      case ModelKind::Vrio:
        return "vrio";
      case ModelKind::VrioNoPoll:
        return "vrio-no-poll";
      case ModelKind::NvmePassthrough:
        return "nvme-pt";
    }
    return "unknown";
}

hv::IoEventCounts
IoModel::eventTotals() const
{
    hv::IoEventCounts total;
    for (unsigned v = 0; v < cfg_.num_vms; ++v) {
        const hv::IoEventCounts &e = vmAt(v).events();
        total.sync_exits += e.sync_exits;
        total.guest_interrupts += e.guest_interrupts;
        total.injections += e.injections;
        total.host_interrupts += e.host_interrupts;
        total.iohost_interrupts += e.iohost_interrupts;
    }
    total.iohost_interrupts += iohostInterrupts();
    return total;
}

std::unique_ptr<IoModel>
makeModel(Rack &rack, ModelConfig cfg)
{
    switch (cfg.kind) {
      case ModelKind::Baseline:
        return std::make_unique<BaselineModel>(rack, cfg);
      case ModelKind::Elvis:
        return std::make_unique<ElvisModel>(rack, cfg);
      case ModelKind::Optimum:
        return std::make_unique<OptimumModel>(rack, cfg);
      case ModelKind::Vrio:
      case ModelKind::VrioNoPoll:
        return std::make_unique<VrioModel>(rack, cfg);
      case ModelKind::NvmePassthrough:
        return std::make_unique<NvmePassthroughModel>(rack, cfg);
    }
    vrio_panic("unreachable model kind");
}

} // namespace vrio::models
