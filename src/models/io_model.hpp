/**
 * @file
 * Common interface of the five I/O model wirings (Section 2):
 * baseline virtio, Elvis, SRIOV+ELI (the optimum), vRIO, and the
 * no-poll vRIO ablation.
 */
#ifndef VRIO_MODELS_IO_MODEL_HPP
#define VRIO_MODELS_IO_MODEL_HPP

#include <functional>
#include <memory>

#include "block/ram_disk.hpp"
#include "block/ssd_model.hpp"
#include "hv/events.hpp"
#include "nvme/controller.hpp"
#include "interpose/service.hpp"
#include "models/endpoint.hpp"
#include "models/rack.hpp"

namespace vrio::models {

enum class ModelKind {
    Baseline,  ///< KVM virtio (trap and emulate), state of practice
    Elvis,     ///< local sidecores, state of the art
    Optimum,   ///< SRIOV + ELI, non-interposable upper bound
    Vrio,      ///< remote sidecores, polling IOhost
    VrioNoPoll,///< ablation: interrupt-driven IOhost
    /**
     * NVMe I/O-queues passthrough (Chen et al.): each VM owns
     * dedicated SQ/CQ pairs mapped into its memory — doorbells and
     * completion interrupts bypass the hypervisor; only admin
     * commands (queue/namespace setup) are mediated.  Like the
     * optimum, non-interposable.
     */
    NvmePassthrough
};

const char *modelKindName(ModelKind kind);

struct ModelConfig
{
    ModelKind kind = ModelKind::Vrio;
    unsigned num_vms = 1;
    /** Logical VMhosts; VMs are distributed round-robin. */
    unsigned num_vmhosts = 1;
    /**
     * Sidecores: per VMhost for Elvis/baseline I/O cores, total at the
     * IOhost for vRIO.
     */
    unsigned sidecores = 1;
    CostParams costs;

    /** Attach a paravirtual block device (ramdisk-backed) per VM. */
    bool with_block = false;
    /** Use the SSD model instead of a ramdisk as backing store. */
    bool block_use_ssd = false;
    block::RamDiskConfig ramdisk_cfg{.capacity_bytes = 16ull << 20};
    block::SsdConfig ssd_cfg{.capacity_bytes = 16ull << 20};

    /**
     * How block devices reach the backing store.  Direct keeps the
     * historical wiring (the model's own RamDisk/SsdModel per VM).
     * Nvme routes every disk through an NVMe controller: the
     * passthrough model always uses it (one controller per VMhost,
     * one queue pair per VM); for the vRIO kinds it consolidates all
     * VM disks as namespaces behind one shared queue pair at the
     * IOhost — the serialized arrangement fig17 compares against.
     */
    enum class BlockBackend { Direct, Nvme };
    BlockBackend block_backend = BlockBackend::Direct;
    nvme::ControllerConfig nvme_cfg;
    /** SQ/CQ ring depth for model-created NVMe queue pairs. */
    uint16_t nvme_queue_depth = 32;

    // -- vRIO specifics ----------------------------------------------
    /**
     * How the transport interface T reaches the IOhost (Section 4.6):
     * an SRIOV VF with ELI (the latency-minimizing default) or a
     * traditional paravirtual NIC through the local hypervisor
     * (T_virtio — used around live migration to non-vRIO hosts),
     * which reintroduces exits, vhost work and injections on the
     * channel.
     */
    enum class VrioChannel { Tsriov, Tvirtio };
    VrioChannel vrio_channel = VrioChannel::Tsriov;

    uint32_t vrio_mtu = net::kMtuVrioJumbo;
    /** IOhost NIC RX ring (Section 4.5: 512 showed loss, 4096 fixed). */
    size_t iohost_rx_ring = 4096;
    /**
     * Wire VMhosts to the IOhost through the rack switch instead of
     * direct cables (the Section 4.6 fault-tolerance arrangement: a
     * typical rack layout, reachability survives rewiring, but the
     * channel shares the switch and adds its forwarding latency).
     */
    bool vrio_via_switch = false;
    /** VMhost-IOhost direct links (10GbE SRIOV channel in Section 5). */
    double direct_link_gbps = 10.0;
    /** One-way latency of the direct links (NIC pipeline + wire). */
    sim::Tick direct_link_latency = sim::Tick(3200) * sim::kNanosecond;
    /** IOhost external bandwidth (two dual-port NICs in Section 5). */
    double iohost_external_gbps = 40.0;
    /** Frame loss on the vRIO channel (retransmission experiments). */
    double vrio_channel_loss = 0.0;
    /** IOhost worker poll batch size (ablation knob). */
    size_t iohost_batch_max = 16;
    /**
     * IOhost frame-arrival to worker pickup latency.  Raising it
     * models monitor/mwait-style power-aware polling (Section 4.6's
     * energy discussion): the core sleeps until the ring is touched,
     * trading wakeup latency for polling energy.
     */
    sim::Tick iohost_poll_pickup = sim::Tick(300) * sim::kNanosecond;
    /**
     * Spare vCPU cores / SRIOV VFs per VMhost, kept free as live
     * migration targets (the Section 4.6 extension).
     */
    unsigned spare_client_slots = 0;

    /**
     * End-to-end failure detection and recovery (vRIO kinds only).
     * Off by default: enabling it schedules heartbeat, watchdog and
     * lapse-timer events, so zero-config runs stay byte-identical
     * with historical schedules.
     */
    struct Recovery
    {
        bool enabled = false;
        /** IOhost liveness-beacon period (per client T-MAC). */
        sim::Tick heartbeat_period = sim::Tick(2) * sim::kMillisecond;
        /** Missed-beat budget before a client declares the IOhost dead. */
        unsigned heartbeat_miss = 4;
        /** IOhost worker-watchdog sweep period (0 = no watchdog). */
        sim::Tick watchdog_period = sim::Tick(5) * sim::kMillisecond;
        /** Consecutive no-progress sweeps before quarantine. */
        unsigned watchdog_threshold = 2;
        /**
         * Provision a standby IOhost (own machine, client port and
         * external port on the rack switch, same consolidated devices
         * over shared storage); clients whose heartbeat window lapses
         * re-home their channel to it and replay outstanding requests.
         * Requires vrio_via_switch — failover is a re-addressing, not
         * a re-cabling.
         */
        bool standby = false;
        /**
         * Route the IOhost's liveness beacons through the rack switch
         * on a dedicated beacon NIC pair (one IOhost-side NIC plus one
         * per VMhost) instead of the client channel.  Heartbeats then
         * share fate with the switch fabric: a dead switch port on the
         * beacon path starves the beats and the affected clients
         * lapse — per-path failure detection even when the data
         * channel is a direct link the switch never sees.
         */
        bool heartbeat_via_switch = false;
    };
    Recovery recovery;

    /**
     * Multi-IOhost rack layer (vRIO kinds only).  `iohosts == 0` (the
     * default) keeps the historical single-IOhost wiring untouched;
     * any value >= 1 builds the rack layer instead: that many IOhosts
     * behind the rack switch (requires vrio_via_switch), every client
     * device consolidated on all of them, VMs homed round-robin
     * (PlacementPolicy::bootAssign) and re-homed dynamically off the
     * load digests the IOhosts advertise in their heartbeats.  The
     * PR 4 cold standby is subsumed: a lapsed home is just a
     * placement decision toward another IOhost (recovery.standby is
     * rejected in rack mode).
     */
    struct RackOpts
    {
        /** Rack IOhost count; 0 = historical single-IOhost wiring. */
        unsigned iohosts = 0;
        /**
         * Cross-VM request coalescing at each IOhost fan-out point:
         * same-destination adjacent-LBA block requests from different
         * VMs merge into one backend submission (split completions
         * fan back per-VM).  See transport/coalesce.hpp for rules.
         */
        bool coalesce = false;
        /** Merge window: staged requests flush after this long. */
        sim::Tick coalesce_window = sim::Tick(2) * sim::kMicrosecond;
        /** Eager flush threshold and per-run member cap. */
        size_t coalesce_max = 8;
        /**
         * All VMs share one backend volume per IOhost (namespace
         * offsets collapse to 0) — the cross-VM adjacency scenario.
         * Default: each VM gets its own namespace region.
         */
        bool shared_volume = false;
        /**
         * Voluntary re-steer gate: move a client when its home
         * IOhost's advertised load is at least this multiple of the
         * least-loaded peer's (0 = dynamic re-steering off; failover
         * on heartbeat lapse still happens).
         */
        double resteer_ratio = 0.0;
        /** Minimum dwell time between voluntary moves per client. */
        sim::Tick resteer_dwell = sim::Tick(20) * sim::kMillisecond;
        /**
         * Warm-state replication (DESIGN.md §16): each IOhost k
         * mirrors duplicate-filter entries, in-service descriptors
         * and committed writes to IOhost (k+1) mod R over a dedicated
         * replication NIC through the rack switch.  Failover then
         * prefers the warm peer, which replays unacked requests and
         * answers retries of committed writes without re-execution;
         * planned live re-homes (`scheduleRehome`) become possible.
         * Requires iohosts >= 2.  Off (the default) schedules no
         * replication events and keeps every schedule byte-identical.
         */
        bool replication = false;
        /** Unacked-record window before admission backpressure. */
        unsigned repl_window = 256;
        /** Mirror records per ReplicaSync batch. */
        unsigned repl_batch = 16;
        /** Append-to-ship delay (batching latency bound). */
        sim::Tick repl_flush_delay = sim::Tick(5) * sim::kMicrosecond;
        /** Go-back-N resend timeout when the cumulative ack stalls. */
        sim::Tick repl_retx_timeout = sim::Tick(1) * sim::kMillisecond;
        /**
         * Fail-back (DESIGN.md §17): once a client's boot-time home
         * revives and resumes heartbeating, dwell-gated placement
         * re-steers the client back to it, rebalancing the rack after
         * an outage instead of leaving every refugee VM on the
         * survivor.  The move reuses the voluntary re-steer machinery
         * (blackout-bounded re-addressing, replay of outstanding
         * requests) and respects `resteer_dwell` between moves.
         */
        bool failback = false;
        /**
         * Multi-tenant QoS at each IOhost fan-out point (DESIGN.md
         * §17): block requests queue in a weighted-fair scheduler
         * with an EDF deadline lane and admission control instead of
         * dispatching FIFO.  Requires rack mode (iohosts >= 1) and is
         * mutually exclusive with `coalesce`.  Off (the default)
         * keeps every schedule byte-identical.
         */
        struct QosOpts
        {
            bool enabled = false;
            /** Aggregate queue depth arming admission control. */
            size_t high_water = 64;
            /** Per-tenant minimum share under pressure (requests). */
            size_t tenant_floor = 4;
            /** Shed past this multiple of the tenant's share. */
            double shed_factor = 2.0;
            /** Deadline-lane promotion slack. */
            sim::Tick promote_slack = sim::Tick(50) * sim::kMicrosecond;
            /** End-to-end admitted requests (admission to response)
             *  while QoS paces (0 = four per worker). */
            unsigned window = 0;
            /** Contract for VMs beyond the explicit vectors below. */
            double default_weight = 1.0;
            sim::Tick default_slo = 0;
            /** Per-VM weights / SLO targets, indexed by VM; shorter
             *  vectors fall back to the defaults above. */
            std::vector<double> weights;
            std::vector<sim::Tick> slos;
        };
        QosOpts qos;
    };
    RackOpts rack;

    /**
     * Client kind per VM index (heterogeneity experiments: KVM/ESXi
     * guests and bare-metal OSes share the IOhost).  Empty = all KVM.
     */
    std::vector<hv::ClientKind> client_kinds;

    /**
     * Per-device interposition chain factory (may return nullptr).
     * Chains are owned by the caller and must outlive the model.
     */
    std::function<interpose::Chain *(uint32_t device_id, bool is_block)>
        chain_factory;
};

class IoModel
{
  public:
    IoModel(Rack &rack, ModelConfig cfg) : rack_(rack), cfg_(cfg) {}
    virtual ~IoModel() = default;

    IoModel(const IoModel &) = delete;
    IoModel &operator=(const IoModel &) = delete;

    ModelKind kind() const { return cfg_.kind; }
    const ModelConfig &config() const { return cfg_; }
    unsigned numVms() const { return cfg_.num_vms; }
    Rack &rack() { return rack_; }

    virtual GuestEndpoint &guest(unsigned vm_index) = 0;

    /**
     * I/O-processing resources (sidecores, vhost cores, or IOhost
     * workers) for utilization reporting; empty for the optimum.
     */
    virtual std::vector<const sim::Resource *> ioResources() const = 0;

    /** Summed Table-3 event counts across all guests. */
    hv::IoEventCounts eventTotals() const;

    /** Interrupts taken at the IOhost (vRIO only; 0 elsewhere). */
    virtual uint64_t iohostInterrupts() const { return 0; }

  protected:
    Rack &rack_;
    ModelConfig cfg_;

    virtual const hv::Vm &vmAt(unsigned vm_index) const = 0;
};

/** Instantiate the wiring for @p cfg.kind. */
std::unique_ptr<IoModel> makeModel(Rack &rack, ModelConfig cfg);

/**
 * Shards a sharded vRIO topology partitions into (DESIGN.md §13/§15):
 * shard 0 is the rack fabric (switch + generators), shard 1+h is
 * VMhost h, and shard 1+H+k is rack IOhost k.  The historical layout
 * (num_iohosts == 0, i.e. one IOhost plus its standby sharing the
 * last shard) is the one-IOhost special case, so the legacy count
 * num_vmhosts + 2 — and with it shard 0's RNG stream — is preserved
 * exactly.  Only the vRIO kinds have a shard cut; the other models
 * keep everything on one queue.
 */
inline unsigned
vrioShardCount(unsigned num_vmhosts, unsigned num_iohosts = 0)
{
    return num_vmhosts + 1 + (num_iohosts ? num_iohosts : 1);
}

} // namespace vrio::models

#endif // VRIO_MODELS_IO_MODEL_HPP
