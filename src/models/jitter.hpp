/**
 * @file
 * Service-time disturbance sampling (see CostParams::Stall).
 */
#ifndef VRIO_MODELS_JITTER_HPP
#define VRIO_MODELS_JITTER_HPP

#include "models/cost_params.hpp"
#include "sim/random.hpp"

namespace vrio::models {

/**
 * Extra cycles an operation suffers from a stall source: usually 0;
 * with probability s.p, Exponential(s.mean_us) microseconds of delay
 * converted to cycles at @p ghz.
 */
inline double
stallCycles(sim::Random &rng, const CostParams::Stall &s, double ghz)
{
    if (s.p <= 0 || !rng.bernoulli(s.p))
        return 0.0;
    double us = rng.exponential(s.mean_us);
    if (s.cap_us > 0 && us > s.cap_us)
        us = s.cap_us;
    return us * ghz * 1e3;
}

} // namespace vrio::models

#endif // VRIO_MODELS_JITTER_HPP
