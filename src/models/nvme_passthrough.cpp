#include "models/nvme_passthrough.hpp"

#include "models/jitter.hpp"

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::models {

/**
 * Per-VM endpoint: SRIOV+ELI networking (identical to the optimum)
 * plus a privately owned NVMe queue pair in guest memory.
 */
class NvmePassthroughModel::Endpoint : public GuestEndpoint
{
  public:
    Endpoint(NvmePassthroughModel &model, sim::Simulation &sim,
             hv::Core &vcpu, net::Nic &nic, unsigned vf,
             net::MacAddress f_mac, nvme::Controller *ctrl,
             uint64_t ns_sectors, std::string name)
        : model(model), nic(nic), vf(vf), f_mac(f_mac),
          vm_(sim, std::move(name), vcpu)
    {
        nic.setQueueMac(vf, f_mac);
        nic.setRxHandler(vf, [this](unsigned q) { rxInterrupt(q); });

        if (!ctrl)
            return;
        // Boot-time admin mediation (the only hypervisor involvement
        // in this model): namespace attach, then CQ + SQ creation.
        // Each mediated call costs the guest one synchronous exit.
        nsid = ctrl->addNamespace(ns_sectors);
        vm_.events().record(hv::IoEvent::SyncExit);
        vm_.events().record(hv::IoEvent::AdminCommand);
        qp = std::make_unique<nvme::QueuePairDriver>(
            *ctrl, vm_.memory(), model.config().nvme_queue_depth,
            [this]() { completionInterrupt(); });
        vm_.events().record(hv::IoEvent::SyncExit);
        vm_.events().record(hv::IoEvent::AdminCommand, 2);
    }

    hv::Vm &vm() override { return vm_; }
    net::MacAddress mac() const override { return f_mac; }

    void
    sendNet(net::MacAddress dst, Bytes payload, uint64_t pad,
            uint64_t messages) override
    {
        (void)messages;
        const CostParams &c = model.config().costs;
        net::EtherHeader eh;
        eh.dst = dst;
        eh.src = f_mac;
        eh.ether_type = uint16_t(net::EtherType::Raw);
        auto frame = net::makeFrame(eh, payload, pad);
        vm_.vcpu().runPreempt(
            c.guest_net_tx, [this, frame = std::move(frame), &c]() mutable {
                nic.send(vf, std::move(frame));
                // ELI TX-completion interrupt, straight to the guest.
                vm_.events().record(hv::IoEvent::GuestInterrupt);
                vm_.vcpu().runPreempt(c.guest_irq, []() {});
            });
    }

    void setNetHandler(NetHandler h) override { handler = std::move(h); }

    bool hasBlockDevice() const override { return qp != nullptr; }

    uint64_t
    blockCapacitySectors() const override
    {
        return qp ? qp->controller().namespaceSectors(nsid) : 0;
    }

    void
    submitBlock(block::BlockRequest req, block::BlockCallback done) override
    {
        vrio_assert(qp, "no NVMe queue pair attached (with_block off)");
        const CostParams &c = model.config().costs;
        // Guest driver work, then the doorbell — a posted write to a
        // guest-mapped page, so no exit is charged anywhere.
        vm_.vcpu().runPreempt(
            c.guest_blk_submit,
            [this, req = std::move(req), done = std::move(done),
             &c]() mutable {
                qp->submit(
                    nsid, std::move(req),
                    [this, done = std::move(done),
                     &c](virtio::BlkStatus status, Bytes data) mutable {
                        // Completion half of the guest driver.
                        vm_.vcpu().run(
                            c.guest_blk_complete,
                            [done = std::move(done), status,
                             data = std::move(data)]() mutable {
                                done(status, std::move(data));
                            });
                    });
            });
    }

  private:
    NvmePassthroughModel &model;
    net::Nic &nic;
    unsigned vf;
    net::MacAddress f_mac;
    hv::Vm vm_;
    NetHandler handler;
    std::unique_ptr<nvme::QueuePairDriver> qp;
    uint32_t nsid = 0;

    void
    completionInterrupt()
    {
        // MSI-X vector delivered directly to the guest (ELI-style):
        // no exit, no injection, just the guest's interrupt handler
        // reaping the CQ.
        const CostParams &c = model.config().costs;
        vm_.events().record(hv::IoEvent::GuestInterrupt);
        vm_.vcpu().runPreempt(c.guest_irq, [this]() { qp->reap(); });
    }

    void
    rxInterrupt(unsigned q)
    {
        const CostParams &c = model.config().costs;
        // One (possibly coalesced) ELI interrupt.
        vm_.events().record(hv::IoEvent::GuestInterrupt);
        auto frames = nic.rxTake(q, 64);
        vm_.vcpu().run(c.guest_irq, []() {});
        for (auto &frame : frames) {
            net::EtherHeader eh = frame->ether();
            Bytes payload(frame->bytes.begin() + net::kEtherHeaderSize,
                          frame->bytes.end());
            uint64_t pad = frame->pad;
            auto &rng = vm_.sim().random();
            double cycles = c.guest_net_rx +
                            stallCycles(rng, c.guest_jitter, c.guest_ghz) +
                            stallCycles(rng, c.guest_stall, c.guest_ghz);
            vm_.vcpu().run(cycles,
                           [this, payload = std::move(payload),
                            src = eh.src, pad]() mutable {
                               if (handler)
                                   handler(std::move(payload), src, pad);
                           });
        }
    }
};

NvmePassthroughModel::NvmePassthroughModel(Rack &rack, ModelConfig cfg)
    : IoModel(rack, cfg)
{
    vrio_assert(cfg.num_vmhosts >= 1, "need at least one VMhost");
    auto &sim = rack.sim();

    uint64_t per_vm_bytes = cfg.block_use_ssd
                                ? cfg.ssd_cfg.capacity_bytes
                                : cfg.ramdisk_cfg.capacity_bytes;
    uint64_t per_vm_sectors = per_vm_bytes / virtio::kSectorSize;

    for (unsigned h = 0; h < cfg.num_vmhosts; ++h) {
        unsigned vms_here =
            (cfg.num_vms + cfg.num_vmhosts - 1 - h) / cfg.num_vmhosts;
        if (vms_here == 0)
            vms_here = 1; // keep machines well-formed

        Host host;
        hv::MachineConfig mc;
        mc.cores = vms_here; // like the optimum: N cores for N VMs
        mc.ghz = cfg.costs.guest_ghz;
        host.machine = std::make_unique<hv::Machine>(
            sim, strFormat("nvmept.host%u", h), mc);

        net::NicConfig nc;
        nc.gbps = rack.config().link_gbps;
        nc.num_queues = vms_here;
        nc.mtu = 64 * 1024;
        nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
        nc.intr_coalesce_frames = 8;
        host.nic = std::make_unique<net::Nic>(
            sim, strFormat("nvmept.host%u.nic", h), nc);
        rack.connectToSwitch(strFormat("nvmept.host%u.link", h),
                             host.nic->port());

        if (cfg.with_block) {
            // One local device per VMhost; every VM on the host gets
            // its own namespace slice and queue pair.
            if (cfg.block_use_ssd) {
                block::SsdConfig sc = cfg.ssd_cfg;
                sc.capacity_bytes = per_vm_bytes * vms_here;
                host.backing = std::make_unique<block::SsdModel>(
                    sim, strFormat("nvmept.host%u.ssd", h), sc);
            } else {
                block::RamDiskConfig rc = cfg.ramdisk_cfg;
                rc.capacity_bytes = per_vm_bytes * vms_here;
                host.backing = std::make_unique<block::RamDisk>(
                    sim, strFormat("nvmept.host%u.rd", h), rc);
            }
            host.ctrl = std::make_unique<nvme::Controller>(
                sim, strFormat("nvmept.host%u.nvme", h), *host.backing,
                cfg.nvme_cfg);
        }
        hosts.push_back(std::move(host));
    }

    for (unsigned v = 0; v < cfg.num_vms; ++v) {
        unsigned h = v % cfg.num_vmhosts;
        unsigned slot = v / cfg.num_vmhosts;
        endpoints.push_back(std::make_unique<Endpoint>(
            *this, sim, hosts[h].machine->core(slot), *hosts[h].nic, slot,
            net::MacAddress::local(0x600000 + v), hosts[h].ctrl.get(),
            per_vm_sectors, strFormat("nvmept.vm%u", v)));
    }
}

NvmePassthroughModel::~NvmePassthroughModel() = default;

GuestEndpoint &
NvmePassthroughModel::guest(unsigned vm_index)
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return *endpoints[vm_index];
}

nvme::Controller &
NvmePassthroughModel::controller(unsigned host)
{
    vrio_assert(host < hosts.size() && hosts[host].ctrl, "no controller");
    return *hosts[host].ctrl;
}

const hv::Vm &
NvmePassthroughModel::vmAt(unsigned vm_index) const
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return const_cast<Endpoint &>(*endpoints[vm_index]).vm();
}

} // namespace vrio::models
