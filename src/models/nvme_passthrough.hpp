/**
 * @file
 * NVMe I/O-queues-passthrough model (Chen et al.).
 *
 * Networking is SRIOV+ELI exactly like the optimum.  Storage is the
 * interesting part: each VMhost carries one NVMe controller, and every
 * VM on it owns a dedicated SQ/CQ pair whose rings live in the VM's
 * own memory.  Doorbell writes are plain stores to a mapped page (no
 * exit) and completion interrupts are delivered straight to the guest
 * (no injection); only admin commands — namespace attach and queue
 * creation at boot — trap to the hypervisor.  Like the optimum, the
 * arrangement is non-interposable: no host software ever sees an I/O
 * request, so the paper's interposition services cannot apply.
 *
 * Steady-state Table 3 row: 0 exits, 2 guest interrupts (TX completion
 * + block completion), 0 injections, 0 host interrupts.
 */
#ifndef VRIO_MODELS_NVME_PASSTHROUGH_HPP
#define VRIO_MODELS_NVME_PASSTHROUGH_HPP

#include "models/io_model.hpp"
#include "nvme/driver.hpp"

namespace vrio::models {

class NvmePassthroughModel : public IoModel
{
  public:
    NvmePassthroughModel(Rack &rack, ModelConfig cfg);
    ~NvmePassthroughModel() override;

    GuestEndpoint &guest(unsigned vm_index) override;
    std::vector<const sim::Resource *> ioResources() const override
    {
        return {}; // no host I/O cores by construction
    }

    /** The controller on VMhost @p host (tests and benches). */
    nvme::Controller &controller(unsigned host);

  protected:
    const hv::Vm &vmAt(unsigned vm_index) const override;

  private:
    class Endpoint;

    struct Host
    {
        std::unique_ptr<hv::Machine> machine;
        std::unique_ptr<net::Nic> nic;
        /** Local backing store all this host's namespaces carve. */
        std::unique_ptr<block::BlockDevice> backing;
        std::unique_ptr<nvme::Controller> ctrl;
    };

    std::vector<Host> hosts;
    std::vector<std::unique_ptr<Endpoint>> endpoints;
};

} // namespace vrio::models

#endif // VRIO_MODELS_NVME_PASSTHROUGH_HPP
