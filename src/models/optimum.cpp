#include "models/optimum.hpp"

#include "models/jitter.hpp"

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::models {

/** Per-VM SRIOV+ELI endpoint. */
class OptimumModel::Endpoint : public GuestEndpoint
{
  public:
    Endpoint(OptimumModel &model, sim::Simulation &sim, hv::Core &vcpu,
             net::Nic &nic, unsigned vf, net::MacAddress f_mac,
             std::string name)
        : model(model), nic(nic), vf(vf), f_mac(f_mac),
          vm_(sim, std::move(name), vcpu)
    {
        nic.setQueueMac(vf, f_mac);
        nic.setRxHandler(vf, [this](unsigned q) { rxInterrupt(q); });
    }

    hv::Vm &vm() override { return vm_; }
    net::MacAddress mac() const override { return f_mac; }

    void
    sendNet(net::MacAddress dst, Bytes payload, uint64_t pad,
            uint64_t messages) override
    {
        (void)messages;
        const CostParams &c = model.config().costs;
        net::EtherHeader eh;
        eh.dst = dst;
        eh.src = f_mac;
        eh.ether_type = uint16_t(net::EtherType::Raw);
        auto frame = net::makeFrame(eh, payload, pad);
        vm_.vcpu().runPreempt(c.guest_net_tx, [this, frame = std::move(frame),
                                        &c]() mutable {
            nic.send(vf, std::move(frame));
            // ELI TX-completion interrupt, straight to the guest.
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.vcpu().runPreempt(c.guest_irq, []() {});
        });
    }

    void setNetHandler(NetHandler h) override { handler = std::move(h); }

    bool hasBlockDevice() const override { return false; }
    uint64_t blockCapacitySectors() const override { return 0; }

    void
    submitBlock(block::BlockRequest, block::BlockCallback) override
    {
        // "We do not benchmark the optimum setup, because there is no
        // such thing as an SRIOV ramdisk" (Section 5).
        vrio_panic("the optimum (SRIOV) model has no paravirtual block "
                   "device");
    }

  private:
    OptimumModel &model;
    net::Nic &nic;
    unsigned vf;
    net::MacAddress f_mac;
    hv::Vm vm_;
    NetHandler handler;

    void
    rxInterrupt(unsigned q)
    {
        const CostParams &c = model.config().costs;
        // One (possibly coalesced) ELI interrupt.
        vm_.events().record(hv::IoEvent::GuestInterrupt);
        auto frames = nic.rxTake(q, 64);
        vm_.vcpu().run(c.guest_irq, []() {});
        for (auto &frame : frames) {
            net::EtherHeader eh = frame->ether();
            Bytes payload(frame->bytes.begin() + net::kEtherHeaderSize,
                          frame->bytes.end());
            uint64_t pad = frame->pad;
            auto &rng = vm_.sim().random();
            double cycles = c.guest_net_rx +
                            stallCycles(rng, c.guest_jitter, c.guest_ghz) +
                            stallCycles(rng, c.guest_stall, c.guest_ghz);
            vm_.vcpu().run(cycles,
                           [this, payload = std::move(payload),
                            src = eh.src, pad]() mutable {
                               if (handler)
                                   handler(std::move(payload), src, pad);
                           });
        }
    }
};

OptimumModel::OptimumModel(Rack &rack, ModelConfig cfg)
    : IoModel(rack, cfg)
{
    vrio_assert(cfg.num_vmhosts >= 1, "need at least one VMhost");
    auto &sim = rack.sim();

    for (unsigned h = 0; h < cfg.num_vmhosts; ++h) {
        unsigned vms_here =
            (cfg.num_vms + cfg.num_vmhosts - 1 - h) / cfg.num_vmhosts;
        if (vms_here == 0)
            vms_here = 1; // keep machines well-formed

        Host host;
        hv::MachineConfig mc;
        mc.cores = vms_here; // the optimum uses N cores for N VMs
        mc.ghz = cfg.costs.guest_ghz;
        host.machine = std::make_unique<hv::Machine>(
            sim, strFormat("opt.host%u", h), mc);

        net::NicConfig nc;
        nc.gbps = rack.config().link_gbps;
        nc.num_queues = vms_here;
        // Logical frames up to 64KB ride the wire whole (TSO-class
        // behaviour folded into the link model).
        nc.mtu = 64 * 1024;
        nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
        nc.intr_coalesce_frames = 8;
        host.nic = std::make_unique<net::Nic>(
            sim, strFormat("opt.host%u.nic", h), nc);
        rack.connectToSwitch(strFormat("opt.host%u.link", h),
                             host.nic->port());
        hosts.push_back(std::move(host));
    }

    for (unsigned v = 0; v < cfg.num_vms; ++v) {
        unsigned h = v % cfg.num_vmhosts;
        unsigned slot = v / cfg.num_vmhosts;
        endpoints.push_back(std::make_unique<Endpoint>(
            *this, sim, hosts[h].machine->core(slot), *hosts[h].nic, slot,
            net::MacAddress::local(0x100000 + v),
            strFormat("opt.vm%u", v)));
    }
}

OptimumModel::~OptimumModel() = default;

GuestEndpoint &
OptimumModel::guest(unsigned vm_index)
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return *endpoints[vm_index];
}

const hv::Vm &
OptimumModel::vmAt(unsigned vm_index) const
{
    vrio_assert(vm_index < endpoints.size(), "bad VM ", vm_index);
    return const_cast<Endpoint &>(*endpoints[vm_index]).vm();
}

} // namespace vrio::models
