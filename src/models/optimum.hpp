/**
 * @file
 * The "optimum" I/O model: SRIOV with exitless interrupts (ELI).
 *
 * Each VM owns a NIC virtual function; transmits go straight to the
 * wire and device interrupts are delivered directly to the guest.
 * There is no host involvement at all — and therefore no
 * interposition.  Table 3 row: 0 exits, 2 guest interrupts,
 * 0 injections, 0 host interrupts.
 */
#ifndef VRIO_MODELS_OPTIMUM_HPP
#define VRIO_MODELS_OPTIMUM_HPP

#include "models/io_model.hpp"

namespace vrio::models {

class OptimumModel : public IoModel
{
  public:
    OptimumModel(Rack &rack, ModelConfig cfg);
    ~OptimumModel() override;

    GuestEndpoint &guest(unsigned vm_index) override;
    std::vector<const sim::Resource *> ioResources() const override
    {
        return {}; // no host I/O cores by construction
    }

  protected:
    const hv::Vm &vmAt(unsigned vm_index) const override;

  private:
    class Endpoint;

    struct Host
    {
        std::unique_ptr<hv::Machine> machine;
        std::unique_ptr<net::Nic> nic;
    };

    std::vector<Host> hosts;
    std::vector<std::unique_ptr<Endpoint>> endpoints;
};

} // namespace vrio::models

#endif // VRIO_MODELS_OPTIMUM_HPP
