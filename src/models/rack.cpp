#include "models/rack.hpp"

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::models {

Rack::Rack(sim::Simulation &sim, RackConfig cfg) : sim_(sim), cfg(cfg)
{
    net::SwitchConfig sc;
    sc.forwarding_latency = cfg.switch_latency;
    switch_ = std::make_unique<net::Switch>(sim, "rack.switch", sc);

    for (unsigned g = 0; g < cfg.num_generators; ++g) {
        // Generator MAC ranges: 0x10000*g + 0x1000.
        generators.push_back(std::make_unique<Generator>(
            sim, strFormat("gen%u", g), cfg.costs,
            0x1000 + 0x10000ull * g));
        connectToSwitch(strFormat("rack.genlink%u", g),
                        generators.back()->port());
    }
}

Generator &
Rack::generator(unsigned i)
{
    vrio_assert(i < generators.size(), "bad generator ", i);
    return *generators[i];
}

net::Link &
Rack::connectToSwitch(const std::string &name, net::NetPort &port,
                      double gbps)
{
    net::LinkConfig lc;
    lc.gbps = gbps > 0 ? gbps : cfg.link_gbps;
    lc.propagation = cfg.link_latency;
    links.push_back(std::make_unique<net::Link>(sim_, name, lc));
    links.back()->connect(port, switch_->newPort());
    return *links.back();
}

net::Link &
Rack::directLink(const std::string &name, net::NetPort &a, net::NetPort &b,
                 double gbps, double loss_probability, sim::Tick latency)
{
    net::LinkConfig lc;
    lc.gbps = gbps;
    lc.propagation = latency > 0 ? latency : cfg.link_latency;
    lc.loss_probability = loss_probability;
    links.push_back(std::make_unique<net::Link>(sim_, name, lc));
    links.back()->connect(a, b);
    return *links.back();
}

} // namespace vrio::models
