/**
 * @file
 * Shared rack scaffolding: the ToR switch and the load generators.
 *
 * Each I/O model wiring adds its own VMhosts (and, for vRIO, the
 * IOhost) to a Rack.
 */
#ifndef VRIO_MODELS_RACK_HPP
#define VRIO_MODELS_RACK_HPP

#include <memory>
#include <vector>

#include "models/generator.hpp"
#include "net/switch.hpp"

namespace vrio::models {

struct RackConfig
{
    unsigned num_generators = 1;
    CostParams costs;
    double link_gbps = 10.0;
    /** One-way link latency incl. NIC pipeline (both endpoints). */
    sim::Tick link_latency = sim::Tick(2000) * sim::kNanosecond;
    sim::Tick switch_latency = sim::Tick(800) * sim::kNanosecond;
};

class Rack
{
  public:
    Rack(sim::Simulation &sim, RackConfig cfg);

    sim::Simulation &sim() { return sim_; }
    const RackConfig &config() const { return cfg; }
    net::Switch &rackSwitch() { return *switch_; }
    Generator &generator(unsigned i);
    unsigned generatorCount() const { return unsigned(generators.size()); }

    /** Wire @p port to a fresh switch port with a standard rack link. */
    net::Link &connectToSwitch(const std::string &name, net::NetPort &port,
                               double gbps = 0);

    /** Point-to-point link (VMhost - IOhost direct wiring, Fig. 2b). */
    net::Link &directLink(const std::string &name, net::NetPort &a,
                          net::NetPort &b, double gbps,
                          double loss_probability = 0.0,
                          sim::Tick latency = 0);

  private:
    sim::Simulation &sim_;
    RackConfig cfg;
    std::unique_ptr<net::Switch> switch_;
    std::vector<std::unique_ptr<Generator>> generators;
    std::vector<std::unique_ptr<net::Link>> links;
};

} // namespace vrio::models

#endif // VRIO_MODELS_RACK_HPP
