#include "models/virtio_blk_dev.hpp"

#include "util/logging.hpp"

namespace vrio::models {

using virtio::BlkStatus;
using virtio::BlkType;

VirtioBlkDev::VirtioBlkDev(hv::Vm &vm, uint16_t qsize) : vm(vm)
{
    drv = std::make_unique<virtio::DriverQueue>(vm.memory(), qsize);
    dev = std::make_unique<virtio::DeviceQueue>(vm.memory(),
                                                drv->ringAddr(), qsize);
    slots.resize(qsize);
}

VirtioBlkDev::~VirtioBlkDev()
{
    for (auto &slot : slots) {
        if (slot.live)
            freeSlot(slot);
    }
}

void
VirtioBlkDev::freeSlot(Slot &slot)
{
    auto &mem = vm.memory();
    mem.free(slot.hdr_addr);
    if (slot.data_addr)
        mem.free(slot.data_addr);
    mem.free(slot.status_addr);
    slot = Slot{};
}

std::optional<uint16_t>
VirtioBlkDev::guestSubmit(const block::BlockRequest &req)
{
    // Indirect chains occupy a single ring slot (as Linux's
    // virtio-blk driver does for its 3-descriptor requests).
    if (drv->freeDescCount() < 1)
        return std::nullopt;
    auto &mem = vm.memory();

    virtio::VirtioBlkReq hdr;
    hdr.type = req.kind;
    hdr.sector = req.sector;
    Bytes hdr_bytes;
    ByteWriter w(hdr_bytes);
    hdr.encode(w);

    Slot slot;
    slot.live = true;
    slot.is_read = req.kind == BlkType::In;
    slot.hdr_addr = mem.alloc(virtio::VirtioBlkReq::kSize);
    mem.write(slot.hdr_addr, hdr_bytes);
    slot.status_addr = mem.alloc(1);

    std::vector<virtio::BufferSpec> out{{slot.hdr_addr,
                                         virtio::VirtioBlkReq::kSize}};
    std::vector<virtio::BufferSpec> in;
    if (req.kind == BlkType::Out && !req.data.empty()) {
        slot.data_addr = mem.alloc(req.data.size());
        slot.data_len = uint32_t(req.data.size());
        mem.write(slot.data_addr, req.data);
        out.push_back({slot.data_addr, slot.data_len});
    } else if (req.kind == BlkType::In) {
        slot.data_len = uint32_t(req.byteLength());
        slot.data_addr = mem.alloc(slot.data_len);
        in.push_back({slot.data_addr, slot.data_len});
    }
    in.push_back({slot.status_addr, 1});

    auto head = drv->addChainIndirect(out, in);
    if (!head) {
        mem.free(slot.hdr_addr);
        if (slot.data_addr)
            mem.free(slot.data_addr);
        mem.free(slot.status_addr);
        return std::nullopt;
    }
    vrio_assert(!slots[*head].live, "slot already live");
    slots[*head] = std::move(slot);
    return head;
}

std::optional<VirtioBlkDev::HostRequest>
VirtioBlkDev::hostPop()
{
    auto chain = dev->popAvail();
    if (!chain)
        return std::nullopt;

    Bytes out = dev->gatherOut(*chain);
    ByteReader r(out);
    HostRequest req;
    req.hdr = virtio::VirtioBlkReq::decode(r);
    req.data = r.getBytes(r.remaining());
    // The chain's writable capacity minus the status byte.
    req.read_len = chain->inLen() - 1;
    req.head = chain->head;
    slots[chain->head].chain = std::move(*chain);
    return req;
}

void
VirtioBlkDev::hostComplete(uint16_t head, BlkStatus status,
                           std::span<const uint8_t> data)
{
    Slot &slot = slots[head];
    vrio_assert(slot.live, "completion for dead slot ", head);

    // Scatter read data followed by the status byte, which occupies
    // the final writable descriptor.
    Bytes in_bytes;
    if (slot.is_read) {
        in_bytes.assign(data.begin(), data.end());
        in_bytes.resize(slot.data_len, 0);
    }
    in_bytes.push_back(uint8_t(status));
    uint32_t written = dev->scatterIn(slot.chain, in_bytes);
    dev->pushUsed(head, written);
}

std::optional<VirtioBlkDev::Completion>
VirtioBlkDev::guestReap()
{
    auto used = drv->popUsed();
    if (!used)
        return std::nullopt;
    Slot &slot = slots[used->head];
    vrio_assert(slot.live, "reap of dead slot ", used->head);

    Completion done;
    done.head = used->head;
    done.status = BlkStatus(vm.memory().read(slot.status_addr, 1)[0]);
    if (slot.is_read && done.status == BlkStatus::Ok)
        done.data = vm.memory().read(slot.data_addr, slot.data_len);
    freeSlot(slot);
    return done;
}

} // namespace vrio::models
