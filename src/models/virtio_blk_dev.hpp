/**
 * @file
 * A paravirtual block device over a real virtqueue, shared by the
 * baseline and Elvis models (vRIO replaces the ring with the
 * transport channel, per Fig. 4).
 *
 * Each request is a spec-shaped chain: a 16-byte virtio_blk header
 * (device-readable), the data buffers (readable for writes, writable
 * for reads), and a one-byte status (device-writable).
 */
#ifndef VRIO_MODELS_VIRTIO_BLK_DEV_HPP
#define VRIO_MODELS_VIRTIO_BLK_DEV_HPP

#include <optional>

#include "block/block_device.hpp"
#include "hv/vm.hpp"
#include "virtio/virtio_blk.hpp"
#include "virtio/virtqueue.hpp"

namespace vrio::models {

class VirtioBlkDev
{
  public:
    explicit VirtioBlkDev(hv::Vm &vm, uint16_t qsize = 128);
    ~VirtioBlkDev();

    // -- guest side ---------------------------------------------------

    /**
     * Post a block request into the ring.
     * @return chain head (the request id), or nullopt when the ring
     *         lacks descriptors/memory (caller backs off).
     */
    std::optional<uint16_t> guestSubmit(const block::BlockRequest &req);

    struct Completion
    {
        uint16_t head;
        virtio::BlkStatus status;
        Bytes data; ///< read data (empty for writes/flushes)
    };

    /** Reap one completion; recycles the chain's buffers. */
    std::optional<Completion> guestReap();

    // -- host side ------------------------------------------------------

    struct HostRequest
    {
        virtio::VirtioBlkReq hdr;
        Bytes data;        ///< write payload
        uint32_t read_len; ///< capacity of the read buffers
        uint16_t head;
    };

    bool hostHasWork() const { return dev->hasAvail(); }

    /** Pop one request from the ring. */
    std::optional<HostRequest> hostPop();

    /** Publish completion, scattering read data into the chain. */
    void hostComplete(uint16_t head, virtio::BlkStatus status,
                      std::span<const uint8_t> data);

  private:
    struct Slot
    {
        bool live = false;
        bool is_read = false;
        uint64_t hdr_addr = 0;
        uint64_t data_addr = 0; ///< 0 when the request carries no data
        uint32_t data_len = 0;
        uint64_t status_addr = 0;
        /** Host-side view of the chain, kept for hostComplete. */
        virtio::DeviceQueue::Chain chain;
    };

    hv::Vm &vm;
    std::unique_ptr<virtio::DriverQueue> drv;
    std::unique_ptr<virtio::DeviceQueue> dev;
    std::vector<Slot> slots;

    void freeSlot(Slot &slot);
};

} // namespace vrio::models

#endif // VRIO_MODELS_VIRTIO_BLK_DEV_HPP
