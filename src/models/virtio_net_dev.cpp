#include "models/virtio_net_dev.hpp"

#include "util/logging.hpp"

namespace vrio::models {

VirtioNetDev::VirtioNetDev(hv::Vm &vm, uint16_t qsize,
                           uint32_t rx_buf_size)
    : vm(vm), rx_buf_size(rx_buf_size)
{
    auto &mem = vm.memory();
    tx_drv = std::make_unique<virtio::DriverQueue>(mem, qsize);
    rx_drv = std::make_unique<virtio::DriverQueue>(mem, qsize);
    tx_dev = std::make_unique<virtio::DeviceQueue>(mem, tx_drv->ringAddr(),
                                                   qsize);
    rx_dev = std::make_unique<virtio::DeviceQueue>(mem, rx_drv->ringAddr(),
                                                   qsize);
    tx_buf_addr.resize(qsize, 0);
    tx_pad.resize(qsize, 0);
    rx_buf_addr.resize(qsize, 0);
    refillRx();
}

VirtioNetDev::~VirtioNetDev()
{
    // Free whatever buffers are still posted or in flight.
    auto &mem = vm.memory();
    for (uint64_t addr : tx_buf_addr) {
        if (addr)
            mem.free(addr);
    }
    for (uint64_t addr : rx_buf_addr) {
        if (addr)
            mem.free(addr);
    }
    // Rings are freed by the DriverQueue destructors.
}

void
VirtioNetDev::refillRx()
{
    // Keep the RX ring full of buffers (leave slack of one chain).
    while (rx_drv->freeDescCount() > 0) {
        uint64_t addr = vm.memory().alloc(rx_buf_size);
        auto head = rx_drv->addChain({}, {{addr, rx_buf_size}});
        if (!head) {
            vm.memory().free(addr);
            return;
        }
        vrio_assert(rx_buf_addr[*head] == 0, "RX slot already posted");
        rx_buf_addr[*head] = addr;
    }
}

bool
VirtioNetDev::guestTransmit(const net::EtherHeader &hdr,
                            std::span<const uint8_t> payload, uint64_t pad)
{
    Bytes buf;
    ByteWriter w(buf);
    virtio::VirtioNetHdr vh;
    vh.encode(w);
    hdr.encode(w);
    w.putBytes(payload);

    if (tx_drv->freeDescCount() < 1)
        return false;
    uint64_t addr = vm.memory().alloc(buf.size());
    vm.memory().write(addr, buf);
    auto head = tx_drv->addChain({{addr, uint32_t(buf.size())}}, {});
    vrio_assert(head.has_value(), "free count said there was room");
    vrio_assert(tx_buf_addr[*head] == 0, "TX slot already in flight");
    tx_buf_addr[*head] = addr;
    tx_pad[*head] = pad;
    return true;
}

unsigned
VirtioNetDev::guestReapTx()
{
    unsigned reaped = 0;
    while (auto used = tx_drv->popUsed()) {
        uint64_t addr = tx_buf_addr[used->head];
        vrio_assert(addr != 0, "TX completion for empty slot");
        vm.memory().free(addr);
        tx_buf_addr[used->head] = 0;
        ++reaped;
    }
    return reaped;
}

std::optional<VirtioNetDev::TxPacket>
VirtioNetDev::hostPopTx()
{
    auto chain = tx_dev->popAvail();
    if (!chain)
        return std::nullopt;
    Bytes raw = tx_dev->gatherOut(*chain);
    ByteReader r(raw);
    virtio::VirtioNetHdr::decode(r); // strip the virtio header
    TxPacket pkt;
    pkt.frame = r.getBytes(r.remaining());
    pkt.pad = tx_pad[chain->head];
    pkt.head = chain->head;
    return pkt;
}

void
VirtioNetDev::hostCompleteTx(uint16_t head)
{
    tx_dev->pushUsed(head, 0);
}

bool
VirtioNetDev::hostDeliverRx(std::span<const uint8_t> frame, uint64_t pad)
{
    auto chain = rx_dev->popAvail();
    if (!chain) {
        ++rx_drops;
        return false;
    }
    Bytes buf;
    ByteWriter w(buf);
    virtio::VirtioNetHdr vh;
    vh.num_buffers = 1;
    vh.encode(w);
    w.putBytes(frame);
    if (buf.size() > chain->inLen()) {
        // Frame does not fit the posted buffer; a mergeable-buffer
        // device would chain more buffers — our workloads keep real
        // bytes small, so treat overflow as a drop.  The buffer is
        // completed with length 0 so the guest recycles it (callers
        // of guestReapRx skip empty frames).
        ++rx_drops;
        rx_dev->pushUsed(chain->head, 0);
        rx_pads.push_back(0);
        return false;
    }
    uint32_t written = rx_dev->scatterIn(*chain, buf);
    rx_dev->pushUsed(chain->head, written);
    rx_pads.push_back(pad);
    return true;
}

std::optional<VirtioNetDev::RxPacket>
VirtioNetDev::guestReapRx()
{
    auto used = rx_drv->popUsed();
    if (!used)
        return std::nullopt;
    uint64_t addr = rx_buf_addr[used->head];
    vrio_assert(addr != 0, "RX completion for empty slot");
    Bytes buf = vm.memory().read(addr, used->len);
    vm.memory().free(addr);
    rx_buf_addr[used->head] = 0;

    RxPacket pkt;
    if (used->len >= virtio::VirtioNetHdr::kSize) {
        ByteReader r(buf);
        virtio::VirtioNetHdr::decode(r);
        pkt.frame = r.getBytes(r.remaining());
    }
    vrio_assert(!rx_pads.empty(), "pad side-channel out of sync");
    pkt.pad = rx_pads.front();
    rx_pads.pop_front();
    refillRx();
    return pkt;
}

} // namespace vrio::models
