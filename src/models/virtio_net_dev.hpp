/**
 * @file
 * A paravirtual net device over real virtqueues, shared by the
 * baseline and Elvis models.
 *
 * Guest transmits post virtio_net_hdr + L2 frame into the TX ring;
 * the host side (vhost thread or sidecore) pops, gathers and sends.
 * Receive buffers are pre-posted by the guest and filled by the host.
 * The only non-wire-format concession is that simulated `pad` bytes
 * travel alongside each buffer rather than being materialized.
 */
#ifndef VRIO_MODELS_VIRTIO_NET_DEV_HPP
#define VRIO_MODELS_VIRTIO_NET_DEV_HPP

#include <deque>
#include <optional>

#include "hv/vm.hpp"
#include "net/ether.hpp"
#include "virtio/virtio_net.hpp"
#include "virtio/virtqueue.hpp"

namespace vrio::models {

class VirtioNetDev
{
  public:
    /**
     * @param rx_buf_size size of each pre-posted receive buffer; the
     *        guest keeps the RX ring full of them.
     */
    VirtioNetDev(hv::Vm &vm, uint16_t qsize = 256,
                 uint32_t rx_buf_size = 2048);
    ~VirtioNetDev();

    // -- guest side ---------------------------------------------------

    /**
     * Post an L2 frame for transmission.
     * @return false when the TX ring is out of descriptors (caller
     *         backs off, as a real driver would stop the queue).
     */
    bool guestTransmit(const net::EtherHeader &hdr,
                       std::span<const uint8_t> payload, uint64_t pad);

    /** Reap TX completions, freeing their buffers; returns count. */
    unsigned guestReapTx();

    struct RxPacket
    {
        Bytes frame; ///< L2 frame bytes
        uint64_t pad;
    };

    /** Reap one received packet (refills the RX ring). */
    std::optional<RxPacket> guestReapRx();

    // -- host side ------------------------------------------------------

    struct TxPacket
    {
        Bytes frame; ///< L2 frame bytes (virtio_net_hdr stripped)
        uint64_t pad;
        uint16_t head; ///< for deviceCompleteTx
    };

    bool hostHasTx() const { return tx_dev->hasAvail(); }

    /** Pop one transmit request from the TX ring. */
    std::optional<TxPacket> hostPopTx();

    /** Publish TX completion (guest must reap to recycle). */
    void hostCompleteTx(uint16_t head);

    /**
     * Deliver a received L2 frame into pre-posted RX buffers.
     * @return false when the RX ring is empty (packet dropped —
     *         receive livelock territory).
     */
    bool hostDeliverRx(std::span<const uint8_t> frame, uint64_t pad);

    uint64_t rxDrops() const { return rx_drops; }
    uint16_t txFreeDescriptors() const { return tx_drv->freeDescCount(); }

  private:
    hv::Vm &vm;
    uint32_t rx_buf_size;
    std::unique_ptr<virtio::DriverQueue> tx_drv;
    std::unique_ptr<virtio::DriverQueue> rx_drv;
    std::unique_ptr<virtio::DeviceQueue> tx_dev;
    std::unique_ptr<virtio::DeviceQueue> rx_dev;

    /** Guest addresses of in-flight TX buffers, by chain head. */
    std::vector<uint64_t> tx_buf_addr;
    /** Pads travelling with in-flight TX chains, by chain head. */
    std::vector<uint64_t> tx_pad;
    /** Guest addresses of posted RX buffers, by chain head. */
    std::vector<uint64_t> rx_buf_addr;
    /** Pad side-channel for filled RX buffers, FIFO. */
    std::deque<uint64_t> rx_pads;

    uint64_t rx_drops = 0;

    void refillRx();
};

} // namespace vrio::models

#endif // VRIO_MODELS_VIRTIO_NET_DEV_HPP
