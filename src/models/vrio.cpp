#include "models/vrio.hpp"

#include "models/jitter.hpp"

#include "nvme/nvme_backed_device.hpp"
#include "transport/control.hpp"
#include "transport/encap.hpp"
#include "transport/reassembly.hpp"
#include "transport/segmenter.hpp"
#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::models {

using transport::MsgType;
using transport::TransportHeader;

/**
 * The IOclient: the vRIO driver stack inside one VM — paravirtual
 * front-ends on top, the transport driver (T) below, speaking the
 * real wire protocol through its SRIOV VF.
 */
class VrioModel::Client : public GuestEndpoint
{
  public:
    Client(VrioModel &model, unsigned host_index, unsigned vm_index,
           unsigned vf, net::Nic *host_nic, net::MacAddress f_mac,
           net::MacAddress t_mac, net::MacAddress iohost_mac,
           hv::ClientKind kind, hv::Core *io_core, std::string name)
        : model(model), host_index(host_index), vm_index(vm_index), vf(vf),
          host_nic(host_nic), f_mac(f_mac), t_mac(t_mac),
          iohost_mac(iohost_mac),
          vm_(model.rack().sim(), std::move(name),
              /*vcpu*/ model.hosts[host_index].machine->core(vf),
              8u << 20, kind),
          reasm(model.rack().sim().events(), model.config().vrio_mtu),
          rtq(model.rack().sim().events(), transport::RetransmitConfig{},
              [this](uint64_t serial, uint16_t gen) {
                  sendBlockParts(serial, gen);
              },
              [this](uint64_t serial) { failBlock(serial); }),
          io_core(io_core)
    {
        host_nic->setQueueMac(vf, t_mac);
        host_nic->setRxHandler(vf,
                               [this](unsigned q) { vfInterrupt(q); });

        // Telemetry: interned tracer ids (cheap even when tracing is
        // off) and pull-style probes over the transport-layer state.
        auto &tr = vm_.sim().telemetry().tracer;
        tg_track = tr.intern(strFormat("guest.vm%u", vm_index));
        tg_kick = tr.intern("guest.kick");
        tg_complete = tr.intern("guest.complete");
        tg_recovery_track = tr.intern("recovery");
        tg_lapse = tr.intern("recovery.hb_lapse");
        tg_failover = tr.intern("recovery.failover");
        tg_resteer = tr.intern("recovery.resteer");
        tg_rehome = tr.intern("recovery.rehome");
        tg_path_suspect = tr.intern("recovery.path_suspect");
        auto &m = vm_.sim().telemetry().metrics;
        telemetry::Labels vl{{"vm", vm_.name()}};
        m.probe("transport.rtq.retransmissions", vl,
                [this]() { return double(rtq.retransmissions()); });
        m.probe("transport.rtq.stale_responses", vl,
                [this]() { return double(rtq.staleResponses()); });
        m.probe("transport.reasm.checksum_drops", vl,
                [this]() { return double(reasm.checksumDrops()); });
    }

    /** Rebind this client's transport channel (migration). */
    void
    rebind(unsigned new_host, unsigned new_vf, net::Nic *new_nic,
           hv::Core &new_vcpu, net::MacAddress new_iohost_mac)
    {
        host_nic->clearQueueMac(vf);
        host_nic->setRxHandler(vf, nullptr);
        host_index = new_host;
        vf = new_vf;
        host_nic = new_nic;
        iohost_mac = new_iohost_mac;
        host_nic->setQueueMac(vf, t_mac);
        host_nic->setRxHandler(vf,
                               [this](unsigned q) { vfInterrupt(q); });
        vm_.migrateTo(new_vcpu);
    }

    uint32_t netDeviceId() const { return 0x5600 + vm_index; }
    uint32_t blkDeviceId() const { return 0x5700 + vm_index; }

    void
    attachRemoteDisk(uint64_t capacity_sectors)
    {
        blk_capacity = capacity_sectors;
        sched = std::make_unique<block::DiskScheduler>(
            [this](block::BlockRequest req, block::BlockCallback done) {
                dispatchBlock(std::move(req), std::move(done));
            });
    }

    hv::Vm &vm() override { return vm_; }
    net::MacAddress mac() const override { return f_mac; }
    net::MacAddress tMac() const { return t_mac; }

    void
    sendNet(net::MacAddress dst, Bytes payload, uint64_t pad,
            uint64_t messages) override
    {
        (void)messages;
        traceGuest(tg_kick);
        const CostParams &c = model.config().costs;
        // The transport driver materializes the whole guest frame
        // (pad bytes become real zeros: vRIO ships actual bytes).
        Bytes frame_bytes;
        ByteWriter w(frame_bytes);
        net::EtherHeader eh;
        eh.dst = dst;
        eh.src = f_mac;
        eh.ether_type = uint16_t(net::EtherType::Raw);
        eh.encode(w);
        w.putBytes(payload);
        w.putZeros(size_t(pad));

        double cycles =
            c.guest_net_tx + c.vrio_encap +
            c.vrio_client_per_byte * double(frame_bytes.size());
        vm_.vcpu().runPreempt(cycles, [this, &c,
                                frame_bytes =
                                    std::move(frame_bytes)]() mutable {
            TransportHeader hdr;
            hdr.type = MsgType::NetOut;
            hdr.device_id = netDeviceId();
            hdr.request_serial = next_serial++;
            hdr.total_len = uint32_t(frame_bytes.size());
            auto wire = transport::encapsulate(
                t_mac, iohost_mac, next_wire_id++, hdr, frame_bytes);
            transmitWire(std::move(wire));
            // ELI TX-completion interrupt.
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.vcpu().runPreempt(c.guest_irq, []() {});
        });
    }

    void setNetHandler(NetHandler h) override { handler = std::move(h); }

    bool hasBlockDevice() const override { return sched != nullptr; }

    uint64_t blockCapacitySectors() const override { return blk_capacity; }

    void
    submitBlock(block::BlockRequest req, block::BlockCallback done) override
    {
        vrio_assert(sched, "no remote block device attached");
        sched->submit(std::move(req), std::move(done));
    }

    // -- protocol statistics -------------------------------------------
    uint64_t retransmissions() const { return rtq.retransmissions(); }
    uint64_t staleResponses() const { return rtq.staleResponses(); }
    uint64_t devCreates() const { return dev_creates; }
    uint64_t blockFailures() const { return blk_failures; }
    uint64_t heartbeatsSeen() const { return beats_seen; }
    uint64_t heartbeatLapses() const { return hb_lapses; }
    uint64_t failoversDone() const { return failovers; }
    uint64_t resteersDone() const { return resteers_; }
    sim::Tick lapseTick() const { return lapse_tick; }
    /** Block requests submitted and not yet completed or failed. */
    uint64_t pendingBlocks() const { return pending.size(); }
    uint64_t rehomesDone() const { return rehomes_; }
    uint64_t pathSuspicions() const { return path_suspicions_; }
    sim::Tick lastBlackout() const { return last_blackout_; }
    uint64_t failbacksDone() const { return failbacks_; }

  private:
    friend class VrioModel;

    VrioModel &model;
    unsigned host_index;
    unsigned vm_index;
    unsigned vf;
    net::Nic *host_nic;
    net::MacAddress f_mac;
    net::MacAddress t_mac;
    net::MacAddress iohost_mac;
    hv::Vm vm_;
    NetHandler handler;

    transport::Reassembler reasm;
    transport::MessageAssembler assembler;
    transport::RetransmitQueue rtq;

    struct PendingBlock
    {
        block::BlockRequest req;
        block::BlockCallback done;
    };
    std::map<uint64_t, PendingBlock> pending;
    std::unique_ptr<block::DiskScheduler> sched;
    uint64_t blk_capacity = 0;

    uint64_t next_serial = 1;
    uint32_t next_wire_id = 1;
    uint64_t dev_creates = 0;
    uint64_t blk_failures = 0;
    /** Local-hypervisor I/O core for the T_virtio channel (null =
     *  T_sriov, the default). */
    hv::Core *io_core = nullptr;

    // -- failure detection (armed only when recovery is enabled) -------
    /** Beat-to-beat patience; 0 = monitoring off. */
    sim::Tick hb_lapse_window = 0;
    bool has_standby = false;
    net::MacAddress standby_mac;
    sim::EventHandle hb_timer;
    uint64_t beats_seen = 0;
    uint64_t hb_lapses = 0;
    uint64_t failovers = 0;
    uint32_t last_incarnation = 0;
    /** Tick of the most recent lapse declaration. */
    sim::Tick lapse_tick = 0;

    // Tracer ids (resolved once at construction).
    uint16_t tg_track = 0;
    uint16_t tg_kick = 0;
    uint16_t tg_complete = 0;
    uint16_t tg_recovery_track = 0;
    uint16_t tg_lapse = 0;
    uint16_t tg_failover = 0;
    // Switch-path beacon acceptance (recovery.heartbeat_via_switch):
    // beats from hb_alt_src count while still homed on hb_alt_home.
    net::MacAddress hb_alt_src;
    net::MacAddress hb_alt_home;
    bool hb_alt_set = false;

    // -- rack placement (cfg.rack.iohosts >= 1) ------------------------
    /** Client-channel MAC of each rack IOhost; empty = non-rack. */
    std::vector<net::MacAddress> rack_macs;
    /** Index of the IOhost this client is currently homed on. */
    unsigned rack_home = 0;
    /** Per-IOhost load table fed by the beats this client sees. */
    std::vector<iohost::IoHostLoad> rack_loads;
    iohost::PlacementConfig place_cfg;
    /** Minimum dwell between voluntary moves (0 = re-steering off). */
    sim::Tick resteer_dwell = 0;
    sim::Tick last_move = 0;
    uint64_t resteers_ = 0;
    /** Boot-time home, the fail-back target (rack.failback). */
    unsigned boot_home = 0;
    bool failback_ = false;
    uint64_t failbacks_ = 0;
    telemetry::Counter *resteer_counter = nullptr;
    uint16_t tg_resteer = 0;

    // -- warm-state replication (cfg.rack.replication) -----------------
    /** The rack runs the DESIGN.md §16 mirror ring. */
    bool rack_repl_ = false;
    /** Rehome commands accepted (planned live flips). */
    uint64_t rehomes_ = 0;
    /** Lapses classified PathSuspect (failover suppressed). */
    uint64_t path_suspicions_ = 0;
    /** Flip-to-first-accepted-response of the latest move. */
    sim::Tick last_blackout_ = 0;
    sim::Tick blackout_start = 0;
    bool blackout_pending = false;
    uint16_t tg_rehome = 0;
    uint16_t tg_path_suspect = 0;

    bool onRack() const { return !rack_macs.empty(); }

    bool tvirtio() const { return io_core != nullptr; }

    /** Packet-lifecycle instant on this guest's tracer track. */
    void
    traceGuest(uint16_t event_name)
    {
        auto &tr = vm_.sim().telemetry().tracer;
        if (tr.enabled()) {
            tr.instant(tg_track, event_name, vm_.sim().events().now(),
                       telemetry::cat::kPacket, vm_index);
        }
    }

    void
    armHeartbeatMonitor()
    {
        hb_timer.cancel();
        hb_timer = vm_.sim().events().schedule(
            hb_lapse_window, [this]() { heartbeatLapse(); });
    }

    /**
     * The heartbeat window closed with no beat from the IOhost: it is
     * presumed dead.  With a standby, re-home the channel and replay
     * every outstanding block request immediately; without one there
     * is nothing to do but note the detection — a beat from the
     * recovered IOhost re-arms the monitor.
     */
    /**
     * Home this client's channel on rack IOhost @p k: re-address,
     * replay everything outstanding there, and note the move.  Both
     * voluntary re-steers and lapse failovers land here — in the rack,
     * failover IS a placement decision.
     */
    void
    moveTo(unsigned k, bool failover)
    {
        sim::Tick now = vm_.sim().events().now();
        last_move = now;
        rack_home = k;
        iohost_mac = rack_macs[k];
        ++resteers_;
        if (resteer_counter)
            resteer_counter->inc();
        auto &tr = vm_.sim().telemetry().tracer;
        if (tr.enabled()) {
            tr.instant(tg_recovery_track, tg_resteer, now,
                       telemetry::cat::kRecovery, vm_index);
        }
        if (failover) {
            ++failovers;
            vm_.events().record(hv::IoEvent::Failover);
            if (tr.enabled()) {
                tr.instant(tg_recovery_track, tg_failover, now,
                           telemetry::cat::kRecovery, vm_index);
            }
        }
        if (rack_repl_) {
            // Ask the new home to promote its warm state before any
            // retry can arrive: both frames take the same client->home
            // path, and the switch's per-link FIFO keeps them ordered.
            sendRehomeActivate();
        }
        // Blackout clock: flip tick to the first accepted response at
        // the new home (fig19's recovery metric, warm or cold).
        blackout_pending = true;
        blackout_start = now;
        rtq.kickAll();
        if (hb_lapse_window > 0)
            armHeartbeatMonitor(); // now watching the new home
    }

    /**
     * Tell the new home to seed its duplicate filter and replay the
     * warm in-service entries its upstream mirrored for this device.
     * The floor serial fences off entries whose request already
     * completed (only their cleanup record died with the primary).
     */
    void
    sendRehomeActivate()
    {
        transport::RehomeCmd cmd;
        cmd.phase = transport::RehomeCmd::Phase::Activate;
        cmd.device_id = blkDeviceId();
        cmd.floor_serial =
            pending.empty() ? next_serial : pending.begin()->first;
        Bytes payload;
        ByteWriter w(payload);
        cmd.encode(w);
        TransportHeader hdr;
        hdr.type = MsgType::Rehome;
        hdr.device_id = blkDeviceId();
        hdr.total_len = uint32_t(payload.size());
        auto wire = transport::encapsulate(t_mac, iohost_mac,
                                           next_wire_id++, hdr, payload);
        transmitWire(std::move(wire));
    }

    /** A Rehome command from the home: a planned drain-mirror-flip. */
    void
    receiveRehome(const transport::MessageAssembler::Assembled &msg)
    {
        transport::RehomeCmd cmd;
        ByteReader r(msg.payload);
        if (!transport::RehomeCmd::decode(r, cmd))
            return;
        if (cmd.phase != transport::RehomeCmd::Phase::Command)
            return;
        if (!onRack() || cmd.target >= rack_macs.size())
            return;
        // A command from an IOhost this client already left (it lapsed
        // mid-drain and we failed over) is stale: the failover was the
        // placement decision, don't bounce back.
        if (msg.src != rack_macs[rack_home])
            return;
        ++rehomes_;
        auto &tr = vm_.sim().telemetry().tracer;
        if (tr.enabled()) {
            tr.instant(tg_recovery_track, tg_rehome,
                       vm_.sim().events().now(),
                       telemetry::cat::kRecovery, vm_index);
        }
        moveTo(cmd.target, /*failover=*/false);
    }

    /** A fresh beat from the home arrived: is somewhere else better? */
    void
    maybeResteer()
    {
        if (place_cfg.imbalance_ratio <= 0 || rack_macs.size() < 2)
            return;
        sim::Tick now = vm_.sim().events().now();
        if (now - last_move < resteer_dwell)
            return;
        auto target = iohost::PlacementPolicy::pickTarget(
            rack_home, rack_loads, place_cfg, now, hb_lapse_window);
        if (target)
            moveTo(*target, /*failover=*/false);
    }

    void
    heartbeatLapse()
    {
        ++hb_lapses;
        lapse_tick = vm_.sim().events().now();
        auto &tr = vm_.sim().telemetry().tracer;
        if (tr.enabled()) {
            tr.instant(tg_recovery_track, tg_lapse, lapse_tick,
                       telemetry::cat::kRecovery, vm_index);
        }
        if (onRack()) {
            // The home went silent; pick a replacement from the load
            // table (the PR 4 standby generalized to any peer).  A
            // lone-IOhost rack has nowhere to go — like the legacy
            // no-standby case, the next beat re-arms the monitor.
            if (rack_macs.size() > 1) {
                // Per-path suspicion: every rack IOhost beats every
                // client, so if no source still beats, the silence is
                // on this client's own path and every failover target
                // is equally unreachable — suppress the move, kick the
                // retries, and keep watching.
                if (iohost::PlacementPolicy::classifyLapse(
                        rack_home, rack_loads, lapse_tick,
                        hb_lapse_window) ==
                    iohost::PlacementPolicy::LapseVerdict::PathSuspect) {
                    ++path_suspicions_;
                    if (tr.enabled()) {
                        tr.instant(tg_recovery_track, tg_path_suspect,
                                   lapse_tick,
                                   telemetry::cat::kRecovery, vm_index);
                    }
                    rtq.kickAll();
                    armHeartbeatMonitor();
                    return;
                }
                int warm_peer =
                    rack_repl_
                        ? int((rack_home + 1) % rack_macs.size())
                        : -1;
                moveTo(iohost::PlacementPolicy::pickFailover(
                           rack_home, rack_loads, lapse_tick,
                           hb_lapse_window, warm_peer),
                       /*failover=*/true);
            }
            return;
        }
        if (has_standby && iohost_mac != standby_mac) {
            iohost_mac = standby_mac;
            ++failovers;
            vm_.events().record(hv::IoEvent::Failover);
            if (tr.enabled()) {
                tr.instant(tg_recovery_track, tg_failover, lapse_tick,
                           telemetry::cat::kRecovery, vm_index);
            }
            rtq.kickAll();
            armHeartbeatMonitor(); // now watching the standby
        }
    }

    void
    receiveHeartbeat(const transport::MessageAssembler::Assembled &msg)
    {
        transport::HeartbeatMsg beat;
        ByteReader r(msg.payload);
        if (!transport::HeartbeatMsg::decode(r, beat))
            return;
        if (onRack()) {
            // Every rack IOhost's beat updates the load table this
            // client places by; only the home's beat counts for
            // liveness (a live peer proves nothing about the home).
            for (unsigned k = 0; k < rack_macs.size(); ++k) {
                if (msg.src != rack_macs[k])
                    continue;
                rack_loads[k].seen = true;
                rack_loads[k].last_beat = vm_.sim().events().now();
                if (beat.has_load)
                    rack_loads[k].load_ns = beat.load_ns;
                if (k == rack_home) {
                    ++beats_seen;
                    last_incarnation = beat.incarnation;
                    if (hb_lapse_window > 0)
                        armHeartbeatMonitor();
                    maybeResteer();
                } else if (failback_ && k == boot_home &&
                           vm_.sim().events().now() - last_move >=
                               resteer_dwell) {
                    // The boot home is beating again after this client
                    // left it (lapse failover or voluntary move).
                    // Dwell-gated fail-back: once the revived host
                    // proves liveness, move back and rebalance the
                    // rack instead of stranding every refugee VM on
                    // the survivor.
                    ++failbacks_;
                    moveTo(boot_home, /*failover=*/false);
                }
                return;
            }
            return;
        }
        // A beacon from an IOhost this channel is not homed on (the
        // standby, pre-failover) proves nothing about our IOhost.
        // With switch-path beacons, beats from the beacon NIC count
        // for as long as the channel is still homed on the primary.
        bool from_home = msg.src == iohost_mac;
        bool from_alt = hb_alt_set && msg.src == hb_alt_src &&
                        iohost_mac == hb_alt_home;
        if (!from_home && !from_alt)
            return;
        ++beats_seen;
        last_incarnation = beat.incarnation;
        if (hb_lapse_window > 0)
            armHeartbeatMonitor();
    }

    /**
     * Hand one wire message to the channel.  T_sriov: straight to the
     * VF.  T_virtio: kick exit, vhost forwarding on the local I/O
     * core, then the physical send — the traditional-paravirtual
     * overheads the SRIOV channel exists to avoid.
     */
    void
    transmitWire(net::FramePtr frame)
    {
        if (!tvirtio()) {
            host_nic->send(vf, std::move(frame));
            return;
        }
        const CostParams &c = model.config().costs;
        vm_.events().record(hv::IoEvent::SyncExit);
        vm_.vcpu().runPreempt(c.exit, [this, &c, frame = std::move(frame)]() mutable {
            io_core->run(c.vhost_net,
                         [this, frame = std::move(frame)]() mutable {
                             host_nic->send(vf, std::move(frame));
                         });
        });
    }

    void
    dispatchBlock(block::BlockRequest req, block::BlockCallback done)
    {
        traceGuest(tg_kick);
        const CostParams &c = model.config().costs;
        uint64_t serial = next_serial++;
        double cycles = c.guest_blk_submit +
                        c.vrio_client_per_byte * double(req.data.size());
        pending.emplace(serial,
                        PendingBlock{std::move(req), std::move(done)});
        vm_.vcpu().runPreempt(cycles, [this, serial]() {
            // track() performs the generation-0 send and arms the
            // 10 ms doubling timer (Section 4.5).
            rtq.track(serial);
        });
    }

    /** (Re)send all software segments of a block request. */
    void
    sendBlockParts(uint64_t serial, uint16_t generation)
    {
        auto it = pending.find(serial);
        if (it == pending.end())
            return;
        const block::BlockRequest &req = it->second.req;
        const CostParams &c = model.config().costs;

        TransportHeader proto;
        proto.type = MsgType::BlkReq;
        proto.device_id = blkDeviceId();
        proto.request_serial = serial;
        proto.generation = generation;
        proto.flags = generation > 0 ? transport::kFlagRetransmit : 0;
        proto.sector = req.sector;
        proto.io_len = uint32_t(req.byteLength());
        proto.blk_type = uint8_t(req.kind);

        auto parts = transport::segmentRequest(proto, req.data);
        double cycles = c.vrio_encap * double(parts.size());
        vm_.vcpu().runPreempt(cycles, [this, parts = std::move(parts)]() {
            for (const auto &part : parts) {
                auto wire = transport::encapsulate(
                    t_mac, iohost_mac, next_wire_id++, part.hdr,
                    part.payload);
                transmitWire(std::move(wire));
            }
        });
    }

    /**
     * Retry cap exceeded: raise a device timeout (Section 4.5,
     * extended) — the guest sees the request fail instead of hanging.
     */
    void
    failBlock(uint64_t serial)
    {
        auto it = pending.find(serial);
        if (it == pending.end())
            return;
        auto done = std::move(it->second.done);
        pending.erase(it);
        ++blk_failures;
        vm_.events().record(hv::IoEvent::RequestTimeout);
        done(virtio::BlkStatus::Timeout, {});
    }

    /**
     * Interrupt on this client's VF: delivered directly via ELI on
     * T_sriov, or taken by the local host and injected on T_virtio.
     */
    void
    vfInterrupt(unsigned q)
    {
        const CostParams &c = model.config().costs;
        auto frames = host_nic->rxTake(q, 64);
        if (tvirtio()) {
            vm_.events().record(hv::IoEvent::HostInterrupt);
            vm_.events().record(hv::IoEvent::Injection);
            io_core->run(c.host_irq + c.vhost_net + c.injection, []() {});
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.events().record(hv::IoEvent::SyncExit); // EOI trap
            vm_.vcpu().run(c.guest_irq + c.eoi_exit, []() {});
        } else {
            vm_.events().record(hv::IoEvent::GuestInterrupt);
            vm_.vcpu().run(c.guest_irq, []() {});
        }
        for (const auto &frame : frames) {
            auto msg = reasm.feed(*frame);
            if (!msg)
                continue;
            auto assembled = assembler.feed(std::move(*msg));
            if (!assembled)
                continue;
            handleMessage(std::move(*assembled));
        }
    }

    void
    handleMessage(transport::MessageAssembler::Assembled msg)
    {
        switch (msg.hdr.type) {
          case MsgType::NetIn:
            receiveNet(std::move(msg));
            break;
          case MsgType::BlkResp:
            receiveBlockResp(std::move(msg));
            break;
          case MsgType::DevCreate:
            receiveDevCreate(std::move(msg));
            break;
          case MsgType::Heartbeat:
            receiveHeartbeat(msg);
            break;
          case MsgType::Rehome:
            receiveRehome(msg);
            break;
          default:
            vrio_warn("client ignoring message type ",
                      transport::msgTypeName(msg.hdr.type));
        }
    }

    void
    receiveNet(transport::MessageAssembler::Assembled msg)
    {
        const CostParams &c = model.config().costs;
        if (msg.payload.size() < net::kEtherHeaderSize)
            return;
        traceGuest(tg_complete);
        net::EtherHeader eh;
        {
            ByteReader r(msg.payload);
            eh = net::EtherHeader::decode(r);
        }
        Bytes payload(msg.payload.begin() + net::kEtherHeaderSize,
                      msg.payload.end());
        auto &rng = vm_.sim().random();
        double cycles = c.guest_net_rx + c.vrio_decap +
                        c.vrio_client_per_byte * double(payload.size()) +
                        stallCycles(rng, c.guest_jitter, c.guest_ghz) +
                        stallCycles(rng, c.guest_stall, c.guest_ghz);
        vm_.vcpu().run(cycles, [this, payload = std::move(payload),
                                src = eh.src]() mutable {
            if (handler)
                handler(std::move(payload), src, 0);
        });
    }

    void
    receiveBlockResp(transport::MessageAssembler::Assembled msg)
    {
        const CostParams &c = model.config().costs;
        auto verdict =
            rtq.accept(msg.hdr.request_serial, msg.hdr.generation);
        if (verdict != transport::RetransmitQueue::Accept::Ok)
            return; // stale or unknown: ignored (Section 4.5)
        traceGuest(tg_complete);

        auto it = pending.find(msg.hdr.request_serial);
        vrio_assert(it != pending.end(),
                    "accepted response without a pending request");
        auto done = std::move(it->second.done);
        pending.erase(it);

        if (blackout_pending) {
            // First accepted response since the placement flip: the
            // service gap the move cost this client ends here.
            blackout_pending = false;
            last_blackout_ =
                vm_.sim().events().now() - blackout_start;
        }

        auto status = virtio::BlkStatus(msg.hdr.status);
        double cycles = c.guest_blk_complete + c.vrio_decap +
                        c.vrio_client_per_byte * double(msg.payload.size());
        if (vm_.vcpu().resource().busyServers() > 0) {
            vm_.noteContextSwitch();
            cycles += c.guest_ctx_switch;
        }
        vm_.vcpu().run(cycles, [status, data = std::move(msg.payload),
                                done = std::move(done)]() mutable {
            done(status, std::move(data));
        });
    }

    void
    receiveDevCreate(transport::MessageAssembler::Assembled msg)
    {
        transport::DeviceCreateCmd cmd;
        ByteReader r(msg.payload);
        if (!transport::DeviceCreateCmd::decode(r, cmd))
            return;
        ++dev_creates;

        transport::DeviceAck ack;
        ack.device_id = cmd.device_id;
        ack.accepted = 1;
        Bytes payload;
        ByteWriter w(payload);
        ack.encode(w);
        TransportHeader hdr;
        hdr.type = MsgType::DevAck;
        hdr.device_id = cmd.device_id;
        hdr.total_len = uint32_t(payload.size());
        auto wire = transport::encapsulate(t_mac, iohost_mac,
                                           next_wire_id++, hdr, payload);
        transmitWire(std::move(wire));
    }
};

VrioModel::VrioModel(Rack &rack, ModelConfig cfg) : IoModel(rack, cfg)
{
    vrio_assert(cfg.kind == ModelKind::Vrio ||
                    cfg.kind == ModelKind::VrioNoPoll,
                "VrioModel requires a vRIO kind");
    auto &sim = rack.sim();

    // Shard cut (DESIGN.md §13): the rack fabric stays on shard 0,
    // each VMhost gets its own shard, and the IOhost (plus standby)
    // takes the last.  ShardScope binds object construction to a
    // partition so every captured EventQueue&/RNG is shard-local;
    // with an unsharded simulation every scope clamps to shard 0 and
    // this constructor is bit-identical to the historical one.
    vrio_assert(sim.shardCount() == 1 ||
                    sim.shardCount() == vrioShardCount(cfg.num_vmhosts,
                                                       cfg.rack.iohosts),
                "vRIO topology with ", cfg.num_vmhosts,
                " VMhosts needs ",
                vrioShardCount(cfg.num_vmhosts, cfg.rack.iohosts),
                " shards, simulation has ", sim.shardCount());

    // -- multi-IOhost rack (DESIGN.md §15) -------------------------------
    if (cfg.rack.iohosts >= 1) {
        vrio_assert(cfg.vrio_via_switch,
                    "the rack layer requires vrio_via_switch wiring: "
                    "placement is a re-addressing, not a re-cabling");
        vrio_assert(!cfg.recovery.standby,
                    "recovery.standby is subsumed by the rack layer "
                    "(every IOhost is a failover target)");
        vrio_assert(!cfg.recovery.heartbeat_via_switch,
                    "rack beats already traverse the switch");
        vrio_assert(cfg.block_backend == ModelConfig::BlockBackend::Direct,
                    "rack mode supports the Direct block backend only");
        vrio_assert(!(cfg.rack.qos.enabled && cfg.rack.coalesce),
                    "rack.qos and rack.coalesce both re-order the "
                    "fan-out queue; enable at most one");
        buildRack();
        return;
    }
    vrio_assert(!cfg.rack.qos.enabled,
                "rack.qos requires the rack layer (rack.iohosts >= 1)");
    vrio_assert(!cfg.rack.failback,
                "rack.failback requires the rack layer "
                "(rack.iohosts >= 1)");

    const uint32_t io_shard = cfg.num_vmhosts + 1;
    auto vm_shard = [](unsigned h) { return uint32_t(1 + h); };

    // -- the IOhost -----------------------------------------------------
    sim::ShardScope iohost_scope(sim, io_shard);
    hv::MachineConfig iomc;
    iomc.cores = cfg.sidecores;
    iomc.ghz = cfg.costs.iohost_ghz;
    iohost_machine =
        std::make_unique<hv::Machine>(sim, "vrio.iohost", iomc);

    iohost::IoHypervisorConfig ihc;
    ihc.num_workers = cfg.sidecores;
    ihc.polling = cfg.kind == ModelKind::Vrio;
    ihc.mtu = cfg.vrio_mtu;
    ihc.batch_max = cfg.iohost_batch_max;
    ihc.poll_pickup = cfg.iohost_poll_pickup;
    ihc.worker_ghz = cfg.costs.iohost_ghz;
    ihc.jitter_p = cfg.costs.worker_jitter.p;
    ihc.jitter_mean_us = cfg.costs.worker_jitter.mean_us;
    ihc.stall_p = cfg.costs.worker_stall.p;
    ihc.stall_mean_us = cfg.costs.worker_stall.mean_us;
    ihc.jitter_cap_us = cfg.costs.worker_jitter.cap_us;
    ihc.stall_cap_us = cfg.costs.worker_stall.cap_us;
    if (cfg.recovery.enabled) {
        ihc.heartbeat_period = cfg.recovery.heartbeat_period;
        ihc.watchdog_period = cfg.recovery.watchdog_period;
        ihc.watchdog_threshold = cfg.recovery.watchdog_threshold;
    }
    iohv = std::make_unique<iohost::IoHypervisor>(
        sim, "vrio.iohv", *iohost_machine, ihc);

    net::NicConfig enc;
    enc.gbps = cfg.iohost_external_gbps;
    enc.num_queues = 1;
    enc.mtu = 64 * 1024;
    enc.rx_ring_size = 4096;
    external_nic = std::make_unique<net::Nic>(sim, "vrio.iohost.extnic",
                                              enc);
    external_nic->setQueueMac(0, net::MacAddress::local(0x7e0000));
    rack.connectToSwitch("vrio.iohost.extlink", external_nic->port(),
                         cfg.iohost_external_gbps);
    iohv->attachExternalNic(*external_nic);

    // -- switch-path heartbeat egress ------------------------------------
    bool hb_via_switch =
        cfg.recovery.enabled && cfg.recovery.heartbeat_via_switch;
    if (hb_via_switch) {
        net::NicConfig hbc;
        hbc.gbps = cfg.direct_link_gbps;
        hbc.num_queues = 1;
        hbc.mtu = cfg.vrio_mtu;
        hb_out_nic = std::make_unique<net::Nic>(
            sim, "vrio.iohost.hbnic", hbc);
        hb_out_nic->setQueueMac(0, net::MacAddress::local(0x7d0000));
        rack.connectToSwitch("vrio.iohost.hblink", hb_out_nic->port(),
                             cfg.direct_link_gbps);
        iohv->setHeartbeatNic(*hb_out_nic);
    }

    // -- standby IOhost (failover target) --------------------------------
    if (cfg.recovery.standby) {
        vrio_assert(cfg.recovery.enabled,
                    "recovery.standby requires recovery.enabled");
        vrio_assert(cfg.vrio_via_switch,
                    "a standby IOhost requires vrio_via_switch wiring: "
                    "failover is a re-addressing, not a re-cabling");
        hv::MachineConfig smc = iomc;
        standby_machine =
            std::make_unique<hv::Machine>(sim, "vrio.standby", smc);
        // Same knobs as the primary; its heartbeats start at t=0, so
        // the switch knows its port before any client fails over.
        standby_iohv = std::make_unique<iohost::IoHypervisor>(
            sim, "vrio.standby.iohv", *standby_machine, ihc);

        net::NicConfig scn;
        scn.gbps = cfg.direct_link_gbps;
        scn.num_queues = 1;
        scn.mtu = cfg.vrio_mtu;
        scn.rx_ring_size = cfg.iohost_rx_ring;
        standby_cnic = std::make_unique<net::Nic>(
            sim, "vrio.standby.cnic", scn);
        standby_cnic->setQueueMac(0, net::MacAddress::local(0x7f8000));
        rack.connectToSwitch("vrio.standby.swport", standby_cnic->port(),
                             cfg.direct_link_gbps);
        standby_iohv->attachClientNic(*standby_cnic);

        net::NicConfig sen = enc;
        standby_extnic = std::make_unique<net::Nic>(
            sim, "vrio.standby.extnic", sen);
        standby_extnic->setQueueMac(0, net::MacAddress::local(0x7e8000));
        rack.connectToSwitch("vrio.standby.extlink",
                             standby_extnic->port(),
                             cfg.iohost_external_gbps);
        standby_iohv->attachExternalNic(*standby_extnic);
    }

    // -- VMhosts and their direct links to the IOhost --------------------
    for (unsigned h = 0; h < cfg.num_vmhosts; ++h) {
        unsigned vms_here =
            (cfg.num_vms + cfg.num_vmhosts - 1 - h) / cfg.num_vmhosts;
        if (vms_here == 0)
            vms_here = 1;

        Host host;
        unsigned slots = vms_here + cfg.spare_client_slots;
        host.slot_used.assign(slots, false);
        for (unsigned i = 0; i < vms_here; ++i)
            host.slot_used[i] = true;
        bool tvirtio =
            cfg.vrio_channel == ModelConfig::VrioChannel::Tvirtio;
        {
            // Guest machine and host NIC live on the VMhost's shard.
            sim::ShardScope host_scope(sim, vm_shard(h));
            hv::MachineConfig mc;
            // All local sidecores moved to the IOhost; the T_virtio
            // fallback brings back a local I/O core for vhost.
            mc.cores = slots + (tvirtio ? 1 : 0);
            mc.ghz = cfg.costs.guest_ghz;
            host.machine = std::make_unique<hv::Machine>(
                sim, strFormat("vrio.host%u", h), mc);

            net::NicConfig nc;
            nc.gbps = cfg.direct_link_gbps;
            nc.num_queues = slots;
            nc.mtu = cfg.vrio_mtu;
            nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
            nc.intr_coalesce_frames = 8;
            host.nic = std::make_unique<net::Nic>(
                sim, strFormat("vrio.host%u.nic", h), nc);
        }

        // The per-VMhost client NIC is IOhost hardware: it stays on
        // the IOhost's shard (the enclosing scope).
        net::NicConfig ioc;
        ioc.gbps = cfg.direct_link_gbps;
        ioc.num_queues = 1;
        ioc.mtu = cfg.vrio_mtu;
        ioc.rx_ring_size = cfg.iohost_rx_ring;
        host.iohost_port = std::make_unique<net::Nic>(
            sim, strFormat("vrio.iohost.cnic%u", h), ioc);
        host.iohost_port->setQueueMac(
            0, net::MacAddress::local(0x7f0000 + h));
        iohv->attachClientNic(*host.iohost_port);

        if (cfg.vrio_via_switch) {
            // Section 4.6 alternative: both ends plug into the rack
            // switch; the T-channel shares the fabric with external
            // traffic and pays the forwarding latency, but VMhosts
            // stay reachable if the IOhost is replaced.
            channel_links.push_back(
                &rack.connectToSwitch(strFormat("vrio.swlink%u", h),
                                      host.nic->port(),
                                      cfg.direct_link_gbps));
            channel_links.push_back(
                &rack.connectToSwitch(strFormat("vrio.swport%u", h),
                                      host.iohost_port->port(),
                                      cfg.direct_link_gbps));
        } else {
            channel_links.push_back(&rack.directLink(
                strFormat("vrio.dlink%u", h), host.nic->port(),
                host.iohost_port->port(), cfg.direct_link_gbps,
                cfg.vrio_channel_loss, cfg.direct_link_latency));
        }

        if (hb_via_switch) {
            // Beacon RX hardware is VMhost-side: the NIC and its
            // reassembler (which captures the shard event queue) must
            // live on the VMhost's shard.
            sim::ShardScope host_scope(sim, vm_shard(h));
            net::NicConfig hbc;
            hbc.gbps = cfg.direct_link_gbps;
            hbc.num_queues = 1;
            hbc.mtu = cfg.vrio_mtu;
            host.hb_nic = std::make_unique<net::Nic>(
                sim, strFormat("vrio.host%u.hbnic", h), hbc);
            host.hb_nic->setQueueMac(
                0, net::MacAddress::local(0x7c0000 + h));
            rack.connectToSwitch(strFormat("vrio.hblink%u", h),
                                 host.hb_nic->port(),
                                 cfg.direct_link_gbps);
            host.hb_reasm = std::make_unique<transport::Reassembler>(
                sim.events(), cfg.vrio_mtu);
            host.hb_nic->setRxHandler(0, [this, h](unsigned q) {
                deliverSwitchHeartbeats(h, q);
            });
        }
        hosts.push_back(std::move(host));
    }

    // -- clients and their consolidated devices --------------------------
    for (unsigned v = 0; v < cfg.num_vms; ++v) {
        unsigned h = v % cfg.num_vmhosts;
        unsigned slot = v / cfg.num_vmhosts;
        auto f_mac = net::MacAddress::local(0x500000 + v);
        auto t_mac = net::MacAddress::local(0x400000 + v);
        hv::ClientKind kind = v < cfg.client_kinds.size()
                                  ? cfg.client_kinds[v]
                                  : hv::ClientKind::KvmGuest;
        hv::Core *io_core = nullptr;
        if (cfg.vrio_channel == ModelConfig::VrioChannel::Tvirtio) {
            hv::Machine &m = *hosts[h].machine;
            io_core = &m.core(m.coreCount() - 1);
        }
        std::unique_ptr<Client> client;
        {
            // The IOclient runs inside the guest: its VM, timers and
            // per-client telemetry belong to its VMhost's shard.
            sim::ShardScope client_scope(sim, vm_shard(h));
            client = std::make_unique<Client>(
                *this, h, v, slot, hosts[h].nic.get(), f_mac, t_mac,
                hosts[h].iohost_port->queueMac(0), kind, io_core,
                strFormat("vrio.vm%u", v));
        }

        interpose::Chain *net_chain = nullptr;
        interpose::Chain *blk_chain = nullptr;
        if (cfg.chain_factory) {
            net_chain = cfg.chain_factory(client->netDeviceId(), false);
            blk_chain = cfg.chain_factory(client->blkDeviceId(), true);
        }

        iohv->mapClientPort(t_mac, h);
        if (hb_via_switch) {
            iohv->mapHeartbeatPath(t_mac,
                                   hosts[h].hb_nic->queueMac(0));
            client->hb_alt_src = hb_out_nic->queueMac(0);
            client->hb_alt_home = hosts[h].iohost_port->queueMac(0);
            client->hb_alt_set = true;
        }

        iohost::NetDeviceEntry nd;
        nd.device_id = client->netDeviceId();
        nd.f_mac = f_mac;
        nd.t_mac = t_mac;
        nd.chain = net_chain;
        iohv->addNetDevice(nd);
        if (standby_iohv) {
            // The standby consolidates the same devices, ready to
            // serve the moment a client re-homes to it.
            standby_iohv->mapClientPort(t_mac, 0);
            standby_iohv->addNetDevice(nd);
        }

        if (cfg.with_block) {
            std::unique_ptr<block::BlockDevice> disk;
            if (cfg.block_backend == ModelConfig::BlockBackend::Nvme) {
                // Still under the enclosing IOhost ShardScope: the
                // controller, its rings and the backing device all
                // live on the IOhost's shard with the workers that
                // poke them.
                if (!nvme_shared)
                    setupNvmeShared();
                uint64_t per_vm = (cfg.block_use_ssd
                                       ? cfg.ssd_cfg.capacity_bytes
                                       : cfg.ramdisk_cfg.capacity_bytes) /
                                  virtio::kSectorSize;
                uint32_t nsid = nvme_shared->ctrl->addNamespace(per_vm);
                disk = std::make_unique<nvme::NvmeBackedDevice>(
                    sim, strFormat("vrio.iohost.nvme.ns%u", v),
                    *nvme_shared->qp, nsid);
            } else if (cfg.block_use_ssd) {
                disk = std::make_unique<block::SsdModel>(
                    sim, strFormat("vrio.iohost.ssd%u", v), cfg.ssd_cfg);
            } else {
                disk = std::make_unique<block::RamDisk>(
                    sim, strFormat("vrio.iohost.rd%u", v),
                    cfg.ramdisk_cfg);
            }
            iohost::BlockDeviceEntry bd;
            bd.device_id = client->blkDeviceId();
            bd.t_mac = t_mac;
            bd.device = disk.get();
            bd.chain = blk_chain;
            iohv->addBlockDevice(bd);
            if (standby_iohv) {
                // Shared backing store: replayed requests land on the
                // same blocks whichever IOhost serves them.
                standby_iohv->addBlockDevice(bd);
            }
            client->attachRemoteDisk(disk->capacitySectors());
            remote_disks.push_back(std::move(disk));
        }

        clients.push_back(std::move(client));
    }

    // -- client-side heartbeat monitoring --------------------------------
    if (cfg.recovery.enabled && cfg.recovery.heartbeat_period > 0) {
        sim::Tick window = sim::Tick(cfg.recovery.heartbeat_miss) *
                           cfg.recovery.heartbeat_period;
        for (auto &client : clients) {
            client->hb_lapse_window = window;
            if (standby_cnic) {
                client->has_standby = true;
                client->standby_mac = standby_cnic->queueMac(0);
            }
            // The lapse timer must fire on the client's own shard.
            sim::ShardScope client_scope(
                sim, vm_shard(client->host_index));
            client->armHeartbeatMonitor();
        }
    }

    // -- device-creation handshake at simulation start -------------------
    // The I/O hypervisor announces each consolidated device to its
    // IOclient (Section 4.1); clients ack over the same channel.
    sim.events().schedule(0, [this]() {
        for (auto &client : clients) {
            transport::DeviceCreateCmd cmd;
            cmd.kind = transport::DeviceKind::Net;
            cmd.device_id = client->netDeviceId();
            cmd.mac = client->mac();
            iohv->sendDeviceCreate(cmd, client->tMac());
            if (client->hasBlockDevice()) {
                transport::DeviceCreateCmd bcmd;
                bcmd.kind = transport::DeviceKind::Block;
                bcmd.device_id = client->blkDeviceId();
                bcmd.capacity_sectors = client->blk_capacity;
                iohv->sendDeviceCreate(bcmd, client->tMac());
            }
        }
    });
}

void
VrioModel::buildRack()
{
    auto &sim = rack_.sim();
    const ModelConfig &cfg = cfg_;
    const unsigned R = cfg.rack.iohosts;
    auto vm_shard = [](unsigned h) { return uint32_t(1 + h); };
    auto io_shard = [&cfg](unsigned k) {
        return uint32_t(1 + cfg.num_vmhosts + k);
    };

    iohost::IoHypervisorConfig ihc;
    ihc.num_workers = cfg.sidecores;
    ihc.polling = cfg.kind == ModelKind::Vrio;
    ihc.mtu = cfg.vrio_mtu;
    ihc.batch_max = cfg.iohost_batch_max;
    ihc.poll_pickup = cfg.iohost_poll_pickup;
    ihc.worker_ghz = cfg.costs.iohost_ghz;
    ihc.jitter_p = cfg.costs.worker_jitter.p;
    ihc.jitter_mean_us = cfg.costs.worker_jitter.mean_us;
    ihc.stall_p = cfg.costs.worker_stall.p;
    ihc.stall_mean_us = cfg.costs.worker_stall.mean_us;
    ihc.jitter_cap_us = cfg.costs.worker_jitter.cap_us;
    ihc.stall_cap_us = cfg.costs.worker_stall.cap_us;
    if (cfg.recovery.enabled) {
        ihc.heartbeat_period = cfg.recovery.heartbeat_period;
        ihc.watchdog_period = cfg.recovery.watchdog_period;
        ihc.watchdog_threshold = cfg.recovery.watchdog_threshold;
        // Beats double as the placement policy's load feed.
        ihc.advertise_load = true;
    }
    ihc.coalesce = cfg.rack.coalesce;
    ihc.coalesce_window = cfg.rack.coalesce_window;
    ihc.coalesce_max = cfg.rack.coalesce_max;
    ihc.qos = cfg.rack.qos.enabled;
    if (cfg.rack.qos.enabled) {
        ihc.qos_cfg.high_water = cfg.rack.qos.high_water;
        ihc.qos_cfg.tenant_floor = cfg.rack.qos.tenant_floor;
        ihc.qos_cfg.shed_factor = cfg.rack.qos.shed_factor;
        ihc.qos_cfg.promote_slack = cfg.rack.qos.promote_slack;
        ihc.qos_window = cfg.rack.qos.window;
    }

    uint64_t per_vm_bytes = cfg.block_use_ssd
                                ? cfg.ssd_cfg.capacity_bytes
                                : cfg.ramdisk_cfg.capacity_bytes;
    uint64_t per_vm_sectors = per_vm_bytes / virtio::kSectorSize;

    // -- the rack IOhosts, one shard each --------------------------------
    for (unsigned k = 0; k < R; ++k) {
        sim::ShardScope scope(sim, io_shard(k));
        RackIoHost io;
        hv::MachineConfig iomc;
        iomc.cores = cfg.sidecores;
        iomc.ghz = cfg.costs.iohost_ghz;
        io.machine = std::make_unique<hv::Machine>(
            sim, strFormat("vrio.iohost%u", k), iomc);
        io.iohv = std::make_unique<iohost::IoHypervisor>(
            sim, strFormat("vrio.iohv%u", k), *io.machine, ihc);

        net::NicConfig cnc;
        cnc.gbps = cfg.direct_link_gbps;
        cnc.num_queues = 1;
        cnc.mtu = cfg.vrio_mtu;
        cnc.rx_ring_size = cfg.iohost_rx_ring;
        io.cnic = std::make_unique<net::Nic>(
            sim, strFormat("vrio.iohost%u.cnic", k), cnc);
        io.cnic->setQueueMac(0, net::MacAddress::local(0x7f0000 + k));
        channel_links.push_back(&rack_.connectToSwitch(
            strFormat("vrio.iohost%u.swport", k), io.cnic->port(),
            cfg.direct_link_gbps));
        io.iohv->attachClientNic(*io.cnic);

        net::NicConfig enc;
        enc.gbps = cfg.iohost_external_gbps;
        enc.num_queues = 1;
        enc.mtu = 64 * 1024;
        enc.rx_ring_size = 4096;
        io.extnic = std::make_unique<net::Nic>(
            sim, strFormat("vrio.iohost%u.extnic", k), enc);
        io.extnic->setQueueMac(0, net::MacAddress::local(0x7e0000 + k));
        rack_.connectToSwitch(strFormat("vrio.iohost%u.extlink", k),
                              io.extnic->port(),
                              cfg.iohost_external_gbps);
        io.iohv->attachExternalNic(*io.extnic);

        if (cfg.rack.replication) {
            // Dedicated replication NIC through the switch: mirror
            // traffic must keep flowing when client intake is gated,
            // and its switch port is a fault-injection target of its
            // own (a killed replication link starves catch-up without
            // touching the data path).
            net::NicConfig rnc;
            rnc.gbps = cfg.direct_link_gbps;
            rnc.num_queues = 1;
            rnc.mtu = cfg.vrio_mtu;
            rnc.rx_ring_size = cfg.iohost_rx_ring;
            io.rnic = std::make_unique<net::Nic>(
                sim, strFormat("vrio.iohost%u.rnic", k), rnc);
            io.rnic->setQueueMac(0,
                                 net::MacAddress::local(0x7d0000 + k));
            channel_links.push_back(&rack_.connectToSwitch(
                strFormat("vrio.iohost%u.rlink", k), io.rnic->port(),
                cfg.direct_link_gbps));
            io.iohv->attachReplicationNic(*io.rnic);
        }

        if (cfg.with_block) {
            // Each IOhost serves its own replica of the rack volume
            // (replicated-at-rest), so every VM's device works on
            // every IOhost and a placement move needs no data motion.
            uint64_t cap = cfg.rack.shared_volume
                               ? per_vm_bytes
                               : per_vm_bytes * cfg.num_vms;
            if (cfg.block_use_ssd) {
                block::SsdConfig sc = cfg.ssd_cfg;
                sc.capacity_bytes = cap;
                io.store = std::make_unique<block::SsdModel>(
                    sim, strFormat("vrio.iohost%u.store", k), sc);
            } else {
                block::RamDiskConfig rc = cfg.ramdisk_cfg;
                rc.capacity_bytes = cap;
                io.store = std::make_unique<block::RamDisk>(
                    sim, strFormat("vrio.iohost%u.store", k), rc);
            }
        }
        rio.push_back(std::move(io));
    }

    // -- replication ring: k mirrors to (k+1) % R ------------------------
    // Enabled after every IOhost exists because each needs its peer's
    // (and upstream's) replication-NIC MAC.
    if (cfg.rack.replication) {
        vrio_assert(R >= 2,
                    "rack.replication needs at least two IOhosts "
                    "(a lone host has no peer to mirror to)");
        iohost::ReplicationConfig rc;
        rc.window = cfg.rack.repl_window;
        rc.batch_max = cfg.rack.repl_batch;
        rc.flush_delay = cfg.rack.repl_flush_delay;
        rc.retx_timeout = cfg.rack.repl_retx_timeout;
        for (unsigned k = 0; k < R; ++k) {
            sim::ShardScope scope(sim, io_shard(k));
            rio[k].iohv->enableReplication(
                rc, rio[(k + 1) % R].rnic->queueMac(0),
                rio[(k + R - 1) % R].rnic->queueMac(0));
        }
    }

    // -- VMhosts, switch-wired (no per-host IOhost port) -----------------
    for (unsigned h = 0; h < cfg.num_vmhosts; ++h) {
        unsigned vms_here =
            (cfg.num_vms + cfg.num_vmhosts - 1 - h) / cfg.num_vmhosts;
        if (vms_here == 0)
            vms_here = 1;
        Host host;
        unsigned slots = vms_here + cfg.spare_client_slots;
        host.slot_used.assign(slots, false);
        for (unsigned i = 0; i < vms_here; ++i)
            host.slot_used[i] = true;
        bool tvirtio =
            cfg.vrio_channel == ModelConfig::VrioChannel::Tvirtio;
        {
            sim::ShardScope host_scope(sim, vm_shard(h));
            hv::MachineConfig mc;
            mc.cores = slots + (tvirtio ? 1 : 0);
            mc.ghz = cfg.costs.guest_ghz;
            host.machine = std::make_unique<hv::Machine>(
                sim, strFormat("vrio.host%u", h), mc);

            net::NicConfig nc;
            nc.gbps = cfg.direct_link_gbps;
            nc.num_queues = slots;
            nc.mtu = cfg.vrio_mtu;
            nc.intr_coalesce_delay = sim::Tick(600) * sim::kNanosecond;
            nc.intr_coalesce_frames = 8;
            host.nic = std::make_unique<net::Nic>(
                sim, strFormat("vrio.host%u.nic", h), nc);
        }
        channel_links.push_back(&rack_.connectToSwitch(
            strFormat("vrio.swlink%u", h), host.nic->port(),
            cfg.direct_link_gbps));
        hosts.push_back(std::move(host));
    }

    // -- clients, homed round-robin, consolidated everywhere -------------
    std::vector<net::MacAddress> rack_macs;
    for (auto &io : rio)
        rack_macs.push_back(io.cnic->queueMac(0));
    auto &m = sim.telemetry().metrics;

    for (unsigned v = 0; v < cfg.num_vms; ++v) {
        unsigned h = v % cfg.num_vmhosts;
        unsigned slot = v / cfg.num_vmhosts;
        unsigned home = iohost::PlacementPolicy::bootAssign(v, R);
        auto f_mac = net::MacAddress::local(0x500000 + v);
        auto t_mac = net::MacAddress::local(0x400000 + v);
        hv::ClientKind kind = v < cfg.client_kinds.size()
                                  ? cfg.client_kinds[v]
                                  : hv::ClientKind::KvmGuest;
        hv::Core *io_core = nullptr;
        if (cfg.vrio_channel == ModelConfig::VrioChannel::Tvirtio) {
            hv::Machine &mach = *hosts[h].machine;
            io_core = &mach.core(mach.coreCount() - 1);
        }
        std::unique_ptr<Client> client;
        {
            sim::ShardScope client_scope(sim, vm_shard(h));
            client = std::make_unique<Client>(
                *this, h, v, slot, hosts[h].nic.get(), f_mac, t_mac,
                rack_macs[home], kind, io_core,
                strFormat("vrio.vm%u", v));
        }
        client->rack_macs = rack_macs;
        client->rack_home = home;
        client->boot_home = home;
        client->failback_ = cfg.rack.failback;
        client->rack_repl_ = cfg.rack.replication;
        client->rack_loads.assign(R, {});
        client->place_cfg.imbalance_ratio = cfg.rack.resteer_ratio;
        client->resteer_dwell = cfg.rack.resteer_dwell;
        client->resteer_counter = &m.counter(
            "rack.resteers",
            telemetry::Labels{{"vm", strFormat("vrio.vm%u", v)}});

        interpose::Chain *net_chain = nullptr;
        interpose::Chain *blk_chain = nullptr;
        if (cfg.chain_factory) {
            net_chain = cfg.chain_factory(client->netDeviceId(), false);
            blk_chain = cfg.chain_factory(client->blkDeviceId(), true);
        }

        iohost::NetDeviceEntry nd;
        nd.device_id = client->netDeviceId();
        nd.f_mac = f_mac;
        nd.t_mac = t_mac;
        nd.chain = net_chain;
        for (auto &io : rio) {
            io.iohv->mapClientPort(t_mac, 0);
            io.iohv->addNetDevice(nd);
        }

        if (cfg.with_block) {
            for (unsigned k = 0; k < R; ++k) {
                iohost::BlockDeviceEntry bd;
                bd.device_id = client->blkDeviceId();
                bd.t_mac = t_mac;
                bd.device = rio[k].store.get();
                bd.chain = blk_chain;
                bd.ns_id = v;
                bd.sector_offset = cfg.rack.shared_volume
                                       ? 0
                                       : uint64_t(v) * per_vm_sectors;
                rio[k].iohv->addBlockDevice(bd);
                if (cfg.rack.qos.enabled) {
                    qos::TenantConfig tc;
                    tc.weight = v < cfg.rack.qos.weights.size()
                                    ? cfg.rack.qos.weights[v]
                                    : cfg.rack.qos.default_weight;
                    tc.slo = v < cfg.rack.qos.slos.size()
                                 ? cfg.rack.qos.slos[v]
                                 : cfg.rack.qos.default_slo;
                    rio[k].iohv->setTenant(bd.device_id, tc);
                }
            }
            client->attachRemoteDisk(per_vm_sectors);
        }
        clients.push_back(std::move(client));
    }

    // -- client-side heartbeat monitoring --------------------------------
    if (cfg.recovery.enabled && cfg.recovery.heartbeat_period > 0) {
        sim::Tick window = sim::Tick(cfg.recovery.heartbeat_miss) *
                           cfg.recovery.heartbeat_period;
        for (auto &client : clients) {
            client->hb_lapse_window = window;
            sim::ShardScope client_scope(sim,
                                         vm_shard(client->host_index));
            client->armHeartbeatMonitor();
        }
    }

    // -- device-creation handshake: the HOME IOhost announces ------------
    // Announcing from every IOhost would multiply the handshake R-fold
    // for no information; peers serve the same device ids regardless.
    for (unsigned k = 0; k < R; ++k) {
        sim::ShardScope scope(sim, io_shard(k));
        sim.events().schedule(0, [this, k]() {
            for (auto &client : clients) {
                if (client->rack_home != k)
                    continue;
                transport::DeviceCreateCmd cmd;
                cmd.kind = transport::DeviceKind::Net;
                cmd.device_id = client->netDeviceId();
                cmd.mac = client->mac();
                rio[k].iohv->sendDeviceCreate(cmd, client->tMac());
                if (client->hasBlockDevice()) {
                    transport::DeviceCreateCmd bcmd;
                    bcmd.kind = transport::DeviceKind::Block;
                    bcmd.device_id = client->blkDeviceId();
                    bcmd.capacity_sectors = client->blk_capacity;
                    rio[k].iohv->sendDeviceCreate(bcmd, client->tMac());
                }
            }
        });
    }
}

void
VrioModel::setupNvmeShared()
{
    auto &sim = rack_.sim();
    uint64_t per_vm_bytes = cfg_.block_use_ssd
                                ? cfg_.ssd_cfg.capacity_bytes
                                : cfg_.ramdisk_cfg.capacity_bytes;
    auto shared = std::make_unique<NvmeShared>();
    if (cfg_.block_use_ssd) {
        block::SsdConfig sc = cfg_.ssd_cfg;
        sc.capacity_bytes = per_vm_bytes * cfg_.num_vms;
        shared->backing = std::make_unique<block::SsdModel>(
            sim, "vrio.iohost.nvme.ssd", sc);
    } else {
        block::RamDiskConfig rc = cfg_.ramdisk_cfg;
        rc.capacity_bytes = per_vm_bytes * cfg_.num_vms;
        shared->backing = std::make_unique<block::RamDisk>(
            sim, "vrio.iohost.nvme.rd", rc);
    }
    shared->ctrl = std::make_unique<nvme::Controller>(
        sim, "vrio.iohost.nvme", *shared->backing, cfg_.nvme_cfg);
    // Hypervisor-memory arena for the shared queue pair: rings plus
    // up to queue-depth in-flight PRP buffers.
    shared->arena = std::make_unique<virtio::GuestMemory>(32u << 20);
    // No interrupt hook: the IOhost's worker context polls, so the
    // driver reaps inline when the completion lands.
    shared->qp = std::make_unique<nvme::QueuePairDriver>(
        *shared->ctrl, *shared->arena, cfg_.nvme_queue_depth);
    nvme_shared = std::move(shared);
}

VrioModel::~VrioModel() = default;

void
VrioModel::deliverSwitchHeartbeats(unsigned h, unsigned q)
{
    Host &host = hosts[h];
    for (const auto &frame : host.hb_nic->rxTake(q, 64)) {
        auto msg = host.hb_reasm->feed(*frame);
        if (!msg)
            continue;
        auto beat = host.hb_asm.feed(std::move(*msg));
        if (!beat || beat->hdr.type != MsgType::Heartbeat)
            continue;
        // The IOhost stamps the target T-MAC into the request serial;
        // deliver the beat to that client alone.
        for (auto &client : clients) {
            if (client->host_index == h &&
                client->t_mac.toU64() == beat->hdr.request_serial)
                client->receiveHeartbeat(*beat);
        }
    }
}

GuestEndpoint &
VrioModel::guest(unsigned vm_index)
{
    vrio_assert(vm_index < clients.size(), "bad VM ", vm_index);
    return *clients[vm_index];
}

const hv::Vm &
VrioModel::vmAt(unsigned vm_index) const
{
    vrio_assert(vm_index < clients.size(), "bad VM ", vm_index);
    return const_cast<Client &>(*clients[vm_index]).vm();
}

std::vector<const sim::Resource *>
VrioModel::ioResources() const
{
    std::vector<const sim::Resource *> out;
    if (!rio.empty()) {
        for (const auto &io : rio)
            for (unsigned w = 0; w < cfg_.sidecores; ++w)
                out.push_back(&io.machine->core(w).resource());
        return out;
    }
    for (unsigned w = 0; w < cfg_.sidecores; ++w)
        out.push_back(&iohost_machine->core(w).resource());
    return out;
}

void
VrioModel::migrateClient(unsigned vm_index, unsigned to_host)
{
    vrio_assert(vm_index < clients.size(), "bad VM ", vm_index);
    vrio_assert(to_host < hosts.size(), "bad host ", to_host);
    vrio_assert(rio.empty(),
                "migrateClient is not supported in rack mode (a rack "
                "client moves between IOhosts, not VMhosts)");
    Client &client = *clients[vm_index];
    vrio_assert(client.host_index != to_host,
                "client already on host ", to_host);
    Host &dst = hosts[to_host];
    unsigned new_vf = unsigned(dst.slot_used.size());
    for (unsigned i = 0; i < dst.slot_used.size(); ++i) {
        if (!dst.slot_used[i]) {
            new_vf = i;
            break;
        }
    }
    vrio_assert(new_vf < dst.slot_used.size(),
                "destination host ", to_host,
                " has no spare client slot (set spare_client_slots)");
    dst.slot_used[new_vf] = true;
    hosts[client.host_index].slot_used[client.vf] = false;
    client.rebind(to_host, new_vf, dst.nic.get(),
                  dst.machine->core(new_vf),
                  dst.iohost_port->queueMac(0));
    // Redirect the IOhost's egress for this client to the new port.
    iohv->mapClientPort(client.tMac(), to_host);
}

unsigned
VrioModel::clientHost(unsigned vm_index) const
{
    return clients.at(vm_index)->host_index;
}

std::vector<const net::Nic *>
VrioModel::allNics() const
{
    std::vector<const net::Nic *> out;
    for (const auto &host : hosts) {
        out.push_back(host.nic.get());
        if (host.iohost_port)
            out.push_back(host.iohost_port.get());
    }
    for (const auto &io : rio) {
        out.push_back(io.cnic.get());
        out.push_back(io.extnic.get());
        if (io.rnic)
            out.push_back(io.rnic.get());
    }
    if (external_nic)
        out.push_back(external_nic.get());
    return out;
}

std::vector<net::Nic *>
VrioModel::iohostClientNics()
{
    std::vector<net::Nic *> out;
    if (!rio.empty()) {
        for (auto &io : rio)
            out.push_back(io.cnic.get());
        return out;
    }
    for (auto &host : hosts)
        out.push_back(host.iohost_port.get());
    return out;
}

net::MacAddress
VrioModel::rackIoHostMac(unsigned k) const
{
    return rio.at(k).cnic->queueMac(0);
}

uint64_t
VrioModel::clientResteers(unsigned vm_index) const
{
    return clients.at(vm_index)->resteersDone();
}

unsigned
VrioModel::clientHomeIoHost(unsigned vm_index) const
{
    return clients.at(vm_index)->rack_home;
}

uint64_t
VrioModel::iohostInterrupts() const
{
    if (!rio.empty()) {
        uint64_t total = 0;
        for (const auto &io : rio)
            total += io.iohv->interruptsTaken();
        return total;
    }
    return iohv->interruptsTaken();
}

uint64_t
VrioModel::clientRetransmissions(unsigned vm_index) const
{
    return clients.at(vm_index)->retransmissions();
}

uint64_t
VrioModel::clientStaleResponses(unsigned vm_index) const
{
    return clients.at(vm_index)->staleResponses();
}

uint64_t
VrioModel::clientDevCreates(unsigned vm_index) const
{
    return clients.at(vm_index)->devCreates();
}

uint64_t
VrioModel::clientHeartbeatsSeen(unsigned vm_index) const
{
    return clients.at(vm_index)->heartbeatsSeen();
}

uint64_t
VrioModel::clientHeartbeatLapses(unsigned vm_index) const
{
    return clients.at(vm_index)->heartbeatLapses();
}

uint64_t
VrioModel::clientFailovers(unsigned vm_index) const
{
    return clients.at(vm_index)->failoversDone();
}

sim::Tick
VrioModel::clientLapseTick(unsigned vm_index) const
{
    return clients.at(vm_index)->lapseTick();
}

uint64_t
VrioModel::clientPendingBlocks(unsigned vm_index) const
{
    return clients.at(vm_index)->pendingBlocks();
}

uint64_t
VrioModel::clientBlockTimeouts(unsigned vm_index) const
{
    return clients.at(vm_index)->blockFailures();
}

void
VrioModel::scheduleRehome(unsigned vm_index, unsigned target,
                          sim::Tick at)
{
    vrio_assert(!rio.empty(), "scheduleRehome requires rack mode");
    vrio_assert(cfg_.rack.replication,
                "scheduleRehome requires rack.replication (a cold "
                "target has no warm state to activate)");
    vrio_assert(target < rio.size(), "bad re-home target ", target);
    vrio_assert(vm_index < clients.size(), "bad VM ", vm_index);
    // The home is captured now (call time, normally during setup) so
    // the drain event never peeks at client state across shards.  If
    // the client moved before @p at, the stale home still drains, but
    // the client ignores a Rehome command from a host it already left.
    Client &c = *clients[vm_index];
    const unsigned home = c.rack_home;
    const uint32_t device_id = c.blkDeviceId();
    if (home == target)
        return;
    auto &sim = rack_.sim();
    sim::ShardScope scope(sim, 1 + cfg_.num_vmhosts + home);
    sim.events().scheduleAt(at, [this, home, device_id, target]() {
        rio[home].iohv->beginRehome(device_id, uint16_t(target));
    });
}

uint64_t
VrioModel::clientRehomes(unsigned vm_index) const
{
    return clients.at(vm_index)->rehomesDone();
}

sim::Tick
VrioModel::clientLastBlackout(unsigned vm_index) const
{
    return clients.at(vm_index)->lastBlackout();
}

uint64_t
VrioModel::clientPathSuspicions(unsigned vm_index) const
{
    return clients.at(vm_index)->pathSuspicions();
}

uint64_t
VrioModel::clientFailbacks(unsigned vm_index) const
{
    return clients.at(vm_index)->failbacksDone();
}

} // namespace vrio::models
