/**
 * @file
 * The vRIO I/O model (Section 4): local hosts run only VMs; their
 * paravirtual I/O is processed by remote sidecores on an IOhost,
 * reached through per-VM SRIOV channels carrying the real transport
 * protocol of src/transport.  cfg.kind selects the polling IOhost
 * (Vrio) or the interrupt-driven ablation (VrioNoPoll).
 *
 * Table 3 rows: vrio 0/2/0/0/0; vrio w/o poll 0/2/0/0/4.
 */
#ifndef VRIO_MODELS_VRIO_HPP
#define VRIO_MODELS_VRIO_HPP

#include "block/disk_scheduler.hpp"
#include "iohost/io_hypervisor.hpp"
#include "iohost/placement.hpp"
#include "models/io_model.hpp"
#include "nvme/driver.hpp"
#include "transport/retransmit.hpp"

namespace vrio::models {

class VrioModel : public IoModel
{
  public:
    VrioModel(Rack &rack, ModelConfig cfg);
    ~VrioModel() override;

    GuestEndpoint &guest(unsigned vm_index) override;
    std::vector<const sim::Resource *> ioResources() const override;
    uint64_t iohostInterrupts() const override;

    /** The (first) I/O hypervisor — rack IOhost 0 in rack mode. */
    iohost::IoHypervisor &hypervisor() { return rackHypervisor(0); }

    // -- multi-IOhost rack (cfg.rack.iohosts >= 1) --------------------
    /** Rack IOhosts serving this model (1 for the historical wiring). */
    unsigned rackIoHostCount() const
    {
        return rio.empty() ? 1u : unsigned(rio.size());
    }
    /** Rack IOhost @p k (the historical IOhost when not in rack mode). */
    iohost::IoHypervisor &rackHypervisor(unsigned k)
    {
        return rio.empty() ? *iohv : *rio.at(k).iohv;
    }
    /** Client-channel MAC of rack IOhost @p k. */
    net::MacAddress rackIoHostMac(unsigned k) const;
    /** Placement moves (voluntary re-steers + failovers) of a client. */
    uint64_t clientResteers(unsigned vm_index) const;
    /** The rack IOhost a client is currently homed on. */
    unsigned clientHomeIoHost(unsigned vm_index) const;

    /** All NICs in the wiring (diagnostics: drop counters etc.). */
    std::vector<const net::Nic *> allNics() const;

    /**
     * The T-channel links between VMhosts and the IOhost (one per
     * VMhost when wired directly, two when wired via the switch).
     * Fault injection interposes on these to model channel loss,
     * corruption, and delay.
     */
    const std::vector<net::Link *> &channelLinks() const
    {
        return channel_links;
    }

    /** IOhost-side client NICs (RX-ring squeeze targets), per host. */
    std::vector<net::Nic *> iohostClientNics();

    /**
     * Live-migrate an IOclient to another VMhost sharing this IOhost
     * (the dynamic switch of Section 4.6, which the paper describes
     * but did not implement).  The client detaches from its SRIOV VF,
     * rebinds to a spare vCPU/VF on the destination host, and the I/O
     * hypervisor redirects its T-MAC to the new port.  Frames in
     * flight during the switch are lost and recovered by the block
     * retransmission protocol (or the guest's TCP, for networking).
     *
     * Requires cfg.spare_client_slots > 0 on the destination host;
     * panics otherwise (rack capacity planning is the caller's job).
     */
    void migrateClient(unsigned vm_index, unsigned to_host);

    /** The VMhost currently hosting a client. */
    unsigned clientHost(unsigned vm_index) const;

    /** Per-client protocol statistics (for tests and benches). */
    uint64_t clientRetransmissions(unsigned vm_index) const;
    uint64_t clientStaleResponses(unsigned vm_index) const;
    uint64_t clientDevCreates(unsigned vm_index) const;

    // -- failure detection / recovery (cfg.recovery) ------------------
    /** The standby IOhost, or null when recovery.standby is off. */
    iohost::IoHypervisor *standbyHypervisor()
    {
        return standby_iohv.get();
    }
    /**
     * The IOhost-side beacon NIC carrying switch-path heartbeats, or
     * null unless recovery.heartbeat_via_switch (fault-injection
     * target: killing its switch port starves every beat while the
     * data path stays up).
     */
    net::Nic *heartbeatBeaconNic() { return hb_out_nic.get(); }
    uint64_t clientHeartbeatsSeen(unsigned vm_index) const;
    uint64_t clientHeartbeatLapses(unsigned vm_index) const;
    uint64_t clientFailovers(unsigned vm_index) const;
    /** Tick of the client's most recent heartbeat-lapse declaration. */
    sim::Tick clientLapseTick(unsigned vm_index) const;
    /** Block requests submitted and not yet completed or failed. */
    uint64_t clientPendingBlocks(unsigned vm_index) const;
    /** Requests failed with BlkStatus::Timeout (retry cap). */
    uint64_t clientBlockTimeouts(unsigned vm_index) const;

    // -- warm-state replication / live re-homing (cfg.rack.replication)
    /**
     * Schedule a planned live re-home of @p vm_index onto rack IOhost
     * @p target at tick @p at: the then-current home drains its mirror
     * stream (IoHypervisor::beginRehome) and commands the client to
     * flip.  The home is captured when the drain starts, so a failover
     * racing the schedule simply turns the command into a no-op move.
     * Requires rack mode with replication on.
     */
    void scheduleRehome(unsigned vm_index, unsigned target, sim::Tick at);
    /** Rehome commands accepted by a client (planned flips). */
    uint64_t clientRehomes(unsigned vm_index) const;
    /**
     * Duration of the client's most recent placement-move blackout:
     * flip tick to first accepted response at the new home (0 until a
     * first move completes).
     */
    sim::Tick clientLastBlackout(unsigned vm_index) const;
    /** Lapses suppressed as PathSuspect (no failover issued). */
    uint64_t clientPathSuspicions(unsigned vm_index) const;
    /** Fail-back moves to the revived boot home (rack.failback). */
    uint64_t clientFailbacks(unsigned vm_index) const;

  protected:
    const hv::Vm &vmAt(unsigned vm_index) const override;

  private:
    class Client;

    struct Host
    {
        std::unique_ptr<hv::Machine> machine;
        std::unique_ptr<net::Nic> nic; ///< T-channel SRIOV NIC
        std::unique_ptr<net::Nic> iohost_port; ///< IOhost end of the link
        /** Occupancy of each vCPU/VF slot on this host. */
        std::vector<bool> slot_used;
        // Switch-path heartbeat receiver
        // (recovery.heartbeat_via_switch): beats for this host's
        // clients arrive here instead of over the client channel.
        std::unique_ptr<net::Nic> hb_nic;
        std::unique_ptr<transport::Reassembler> hb_reasm;
        transport::MessageAssembler hb_asm;
    };

    /** Reassemble and fan in switch-path heartbeats on host @p h. */
    void deliverSwitchHeartbeats(unsigned h, unsigned q);

    std::vector<Host> hosts;
    std::vector<std::unique_ptr<Client>> clients;
    std::vector<net::Link *> channel_links;

    std::unique_ptr<hv::Machine> iohost_machine;
    std::unique_ptr<net::Nic> external_nic;
    /** IOhost-side beacon NIC (recovery.heartbeat_via_switch). */
    std::unique_ptr<net::Nic> hb_out_nic;
    std::unique_ptr<iohost::IoHypervisor> iohv;
    std::vector<std::unique_ptr<block::BlockDevice>> remote_disks;

    /**
     * Shared NVMe backing (ModelConfig::BlockBackend::Nvme): the
     * IOhost consolidates every VM disk as a namespace of one
     * controller and reaches it through a single queue pair in
     * hypervisor memory — the interposed arrangement fig17 compares
     * against per-VM queue passthrough.
     */
    struct NvmeShared
    {
        std::unique_ptr<virtio::GuestMemory> arena;
        std::unique_ptr<block::BlockDevice> backing;
        std::unique_ptr<nvme::Controller> ctrl;
        std::unique_ptr<nvme::QueuePairDriver> qp;
    };
    std::unique_ptr<NvmeShared> nvme_shared;
    void setupNvmeShared();

    // Standby IOhost (recovery.standby).
    std::unique_ptr<hv::Machine> standby_machine;
    std::unique_ptr<net::Nic> standby_cnic;
    std::unique_ptr<net::Nic> standby_extnic;
    std::unique_ptr<iohost::IoHypervisor> standby_iohv;

    /**
     * One rack IOhost (cfg.rack.iohosts >= 1): its own machine,
     * client/external switch ports, and backing store.  Stores are
     * replicated-at-rest across the rack — every IOhost consolidates
     * every client's devices over its own replica, so any IOhost can
     * serve any client and a placement move needs no data motion.
     * Without cfg.rack.replication the simulation does not model
     * cross-replica write propagation, so tests must not assert
     * read-your-write across a re-steer; with it on, committed writes
     * propagate to the warm peer's store (DESIGN.md §16) and
     * read-your-write holds across a failover or re-home onto it.
     */
    struct RackIoHost
    {
        std::unique_ptr<hv::Machine> machine;
        std::unique_ptr<net::Nic> cnic;
        std::unique_ptr<net::Nic> extnic;
        /** Replication control channel (cfg.rack.replication only). */
        std::unique_ptr<net::Nic> rnic;
        std::unique_ptr<iohost::IoHypervisor> iohv;
        std::unique_ptr<block::BlockDevice> store;
    };
    std::vector<RackIoHost> rio;
    /** Build the multi-IOhost wiring (replaces the legacy body). */
    void buildRack();
};

} // namespace vrio::models

#endif // VRIO_MODELS_VRIO_HPP
