#include "net/ether.hpp"

namespace vrio::net {

void
EtherHeader::encode(ByteWriter &w) const
{
    w.putBytes(std::span<const uint8_t>(dst.bytes()));
    w.putBytes(std::span<const uint8_t>(src.bytes()));
    w.putU16be(ether_type);
}

EtherHeader
EtherHeader::decode(ByteReader &r)
{
    EtherHeader h;
    auto d = r.viewBytes(6);
    std::copy(d.begin(), d.end(), h.dst.bytes().begin());
    auto s = r.viewBytes(6);
    std::copy(s.begin(), s.end(), h.src.bytes().begin());
    h.ether_type = r.getU16be();
    return h;
}

} // namespace vrio::net
