/**
 * @file
 * Ethernet II header codec and MTU constants.
 */
#ifndef VRIO_NET_ETHER_HPP
#define VRIO_NET_ETHER_HPP

#include <cstdint>

#include "net/mac.hpp"
#include "util/byte_buffer.hpp"

namespace vrio::net {

/** Standard Ethernet MTU. */
constexpr uint32_t kMtuStandard = 1500;
/**
 * The jumbo MTU vRIO uses.  Chosen (Section 4.4) so a TSO fragment
 * plus headers fits in two 4KB pages, keeping <= 17 fragments per
 * 64KB message so the IOhost can reassemble into one SKB zero-copy.
 */
constexpr uint32_t kMtuVrioJumbo = 8100;
/** Largest conventional jumbo MTU. */
constexpr uint32_t kMtuJumboMax = 9000;

constexpr uint32_t kEtherHeaderSize = 14;
constexpr uint32_t kEtherFcsSize = 4;

/** EtherType values used in this library. */
enum class EtherType : uint16_t {
    Ipv4 = 0x0800,
    Arp = 0x0806,
    /** IEEE experimental; carries the raw vRIO control channel. */
    VrioControl = 0x88b5,
    /** IEEE experimental #2; payload test traffic. */
    Raw = 0x88b6,
};

struct EtherHeader
{
    MacAddress dst;
    MacAddress src;
    uint16_t ether_type = 0;

    static constexpr size_t kSize = kEtherHeaderSize;

    void encode(ByteWriter &w) const;
    static EtherHeader decode(ByteReader &r);
};

} // namespace vrio::net

#endif // VRIO_NET_ETHER_HPP
