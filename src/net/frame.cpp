#include "net/frame.hpp"

#include "net/frame_pool.hpp"

namespace vrio::net {

FramePtr
makeFrame(const EtherHeader &hdr, std::span<const uint8_t> payload,
          uint64_t pad)
{
    FramePtr f = FramePool::local().acquire();
    ByteWriter w(f->bytes);
    hdr.encode(w);
    w.putBytes(payload);
    f->pad = pad;
    return f;
}

FramePtr
makePadFrame(const EtherHeader &hdr, uint64_t pad)
{
    return makeFrame(hdr, {}, pad);
}

} // namespace vrio::net
