/**
 * @file
 * On-wire frame representation.
 *
 * A Frame carries real encoded bytes from the Ethernet header onward,
 * so protocol logic (vRIO encapsulation, TSO splitting, reassembly)
 * operates on genuine wire formats.  Bulk workloads that do not care
 * about payload *content* may represent part of the payload as `pad`
 * bytes that occupy wire time and ring slots without being
 * materialized in memory.
 */
#ifndef VRIO_NET_FRAME_HPP
#define VRIO_NET_FRAME_HPP

#include <memory>

#include "net/ether.hpp"
#include "sim/ticks.hpp"
#include "util/byte_buffer.hpp"

namespace vrio::net {

struct Frame
{
    /** Encoded bytes starting at the Ethernet header (no FCS). */
    Bytes bytes;
    /** Simulated-but-unmaterialized payload bytes. */
    uint64_t pad = 0;

    /** Cross-layer annotations used for end-to-end accounting only. */
    uint64_t trace_id = 0;
    sim::Tick born = 0;

    /**
     * Set by fault injection for frames corrupted in flight: the bytes
     * are left intact (payloads may be shared), but every FCS check
     * downstream (NIC RX, switch store-and-forward) fails and drops
     * the frame.
     */
    bool fcs_corrupt = false;

    /** Bytes this frame occupies on the wire (with FCS). */
    uint64_t wireSize() const
    {
        return bytes.size() + pad + kEtherFcsSize;
    }

    /** Decode the leading Ethernet header. */
    EtherHeader ether() const
    {
        ByteReader r(bytes);
        return EtherHeader::decode(r);
    }

    /** View of everything after the Ethernet header. */
    std::span<const uint8_t> l3() const
    {
        return std::span<const uint8_t>(bytes).subspan(kEtherHeaderSize);
    }
};

using FramePtr = std::shared_ptr<Frame>;

/** Build a frame from a header and payload (+ optional pad bytes). */
FramePtr makeFrame(const EtherHeader &hdr,
                   std::span<const uint8_t> payload, uint64_t pad = 0);

/** Build a frame whose payload is entirely simulated (@p pad bytes). */
FramePtr makePadFrame(const EtherHeader &hdr, uint64_t pad);

} // namespace vrio::net

#endif // VRIO_NET_FRAME_HPP
