#include "net/frame_pool.hpp"

namespace vrio::net {

namespace {

/**
 * Trivially-destructible flag, so the recycler can tell whether the
 * thread's pool (a non-trivial thread_local) is still alive.  Frames
 * released after pool teardown fall back to plain delete.
 */
thread_local bool tls_pool_alive = false;

} // namespace

FramePool::FramePool()
{
    tls_pool_alive = true;
}

FramePool::~FramePool()
{
    tls_pool_alive = false;
    for (Frame *f : free)
        delete f;
}

FramePool &
FramePool::local()
{
    thread_local FramePool pool;
    return pool;
}

FramePtr
FramePool::acquire()
{
    Frame *f;
    if (!free.empty()) {
        f = free.back();
        free.pop_back();
        ++reused_;
    } else {
        f = new Frame();
        ++allocated_;
    }
    return FramePtr(f, [](Frame *frame) { detail::recycleFrame(frame); });
}

void
FramePool::release(Frame *frame)
{
    if (free.size() >= kMaxFree ||
        frame->bytes.capacity() > kMaxRetainedCapacity) {
        delete frame;
        return;
    }
    frame->bytes.clear(); // keeps capacity
    frame->pad = 0;
    frame->trace_id = 0;
    frame->born = 0;
    frame->fcs_corrupt = false;
    free.push_back(frame);
}

namespace detail {

void
recycleFrame(Frame *frame)
{
    if (!tls_pool_alive) {
        delete frame;
        return;
    }
    FramePool::local().release(frame);
}

} // namespace detail

} // namespace vrio::net
