/**
 * @file
 * Recycling allocator for Frame objects.
 *
 * Every simulated packet allocates a Frame plus its payload vector;
 * across the NIC/link/switch/transport path those allocations (and
 * their frees) dominated bench wall-clock.  The pool keeps returned
 * Frames — with their payload capacity — on a per-thread free list so
 * steady-state traffic reuses warm buffers instead of hitting the
 * allocator per packet.
 *
 * The pool is thread-local: each sweep cell (one Simulation per
 * worker thread) gets its own free list, so parallel benches share
 * nothing.  Frames are created and released on the same thread in
 * normal use; a frame released on a thread whose pool is gone is
 * simply deleted.
 */
#ifndef VRIO_NET_FRAME_POOL_HPP
#define VRIO_NET_FRAME_POOL_HPP

#include <vector>

#include "net/frame.hpp"

namespace vrio::net {

namespace detail {
/** shared_ptr deleter target: return @p frame to its thread's pool. */
void recycleFrame(Frame *frame);
} // namespace detail

class FramePool
{
  public:
    FramePool();
    ~FramePool();

    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;

    /** The calling thread's pool. */
    static FramePool &local();

    /**
     * An empty Frame (cleared fields, retained payload capacity),
     * recycled back here when the last reference drops.
     */
    FramePtr acquire();

    // -- statistics ------------------------------------------------
    uint64_t reused() const { return reused_; }
    uint64_t allocated() const { return allocated_; }
    size_t freeListSize() const { return free.size(); }

  private:
    /** Free-list bound; beyond this, released frames are deleted. */
    static constexpr size_t kMaxFree = 4096;
    /** Don't hoard jumbo payload buffers (TSO bursts). */
    static constexpr size_t kMaxRetainedCapacity = 64 * 1024;

    std::vector<Frame *> free;
    uint64_t reused_ = 0;
    uint64_t allocated_ = 0;

    friend void detail::recycleFrame(Frame *frame);
    void release(Frame *frame);
};

} // namespace vrio::net

#endif // VRIO_NET_FRAME_POOL_HPP
