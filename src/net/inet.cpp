#include "net/inet.hpp"

namespace vrio::net {

uint16_t
inetChecksum(std::span<const uint8_t> data)
{
    uint64_t sum = 0;
    size_t i = 0;
    for (; i + 1 < data.size(); i += 2)
        sum += uint16_t(data[i]) << 8 | data[i + 1];
    if (i < data.size())
        sum += uint16_t(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return uint16_t(~sum);
}

void
Ipv4Header::encode(ByteWriter &w) const
{
    Bytes hdr;
    ByteWriter hw(hdr);
    hw.putU8(0x45); // version 4, IHL 5
    hw.putU8(tos);
    hw.putU16be(total_length);
    hw.putU16be(identification);
    hw.putU16be(0x4000); // DF, no fragments (TSO, not IP fragmentation)
    hw.putU8(ttl);
    hw.putU8(protocol);
    hw.putU16be(0); // checksum placeholder
    hw.putU32be(src);
    hw.putU32be(dst);
    uint16_t csum = inetChecksum(hdr);
    hdr[10] = uint8_t(csum >> 8);
    hdr[11] = uint8_t(csum);
    w.putBytes(hdr);
}

Ipv4Header
Ipv4Header::decode(ByteReader &r, bool *checksum_ok)
{
    auto raw = r.viewBytes(kIpv4HeaderSize);
    if (checksum_ok)
        *checksum_ok = inetChecksum(raw) == 0;
    ByteReader hr(raw);
    Ipv4Header h;
    hr.skip(1); // version/IHL
    h.tos = hr.getU8();
    h.total_length = hr.getU16be();
    h.identification = hr.getU16be();
    hr.skip(2); // flags/fragment
    h.ttl = hr.getU8();
    h.protocol = hr.getU8();
    hr.skip(2); // checksum
    h.src = hr.getU32be();
    h.dst = hr.getU32be();
    return h;
}

void
TcpHeader::encode(ByteWriter &w) const
{
    w.putU16be(src_port);
    w.putU16be(dst_port);
    w.putU32be(seq);
    w.putU32be(ack);
    w.putU8(0x50); // data offset 5 words
    w.putU8(flags);
    w.putU16be(window);
    w.putU16be(0); // checksum (offloaded; receiver does not verify)
    w.putU16be(0); // urgent pointer
}

TcpHeader
TcpHeader::decode(ByteReader &r)
{
    TcpHeader h;
    h.src_port = r.getU16be();
    h.dst_port = r.getU16be();
    h.seq = r.getU32be();
    h.ack = r.getU32be();
    r.skip(1); // data offset
    h.flags = r.getU8();
    h.window = r.getU16be();
    r.skip(4); // checksum + urgent
    return h;
}

} // namespace vrio::net
