/**
 * @file
 * Minimal IPv4/TCP header codecs — the "fake TCP" of Section 4.3.
 *
 * vRIO works at raw Ethernet level but prepends spec-shaped IPv4+TCP
 * headers so NIC TSO engines will segment its (up to 64KB) messages in
 * hardware, exactly like the STT tunnelling protocol the paper cites.
 * The TCP sequence number carries the byte offset of a segment within
 * the original message, so the receiver can reassemble; the ACK field
 * carries the message identifier.  Nothing else of TCP (handshakes,
 * retransmission, congestion control) exists on this channel.
 */
#ifndef VRIO_NET_INET_HPP
#define VRIO_NET_INET_HPP

#include <cstdint>

#include "util/byte_buffer.hpp"

namespace vrio::net {

constexpr size_t kIpv4HeaderSize = 20;
constexpr size_t kTcpHeaderSize = 20;

/** RFC 1071 internet checksum over @p data (pads odd length with 0). */
uint16_t inetChecksum(std::span<const uint8_t> data);

struct Ipv4Header
{
    uint8_t tos = 0;
    uint16_t total_length = 0; ///< header + payload
    uint16_t identification = 0;
    uint8_t ttl = 64;
    uint8_t protocol = 6; ///< TCP
    uint32_t src = 0;
    uint32_t dst = 0;

    static constexpr size_t kSize = kIpv4HeaderSize;

    /** Encode with a correct header checksum. */
    void encode(ByteWriter &w) const;
    /**
     * Decode; @p checksum_ok (optional) receives whether the header
     * checksum verified.
     */
    static Ipv4Header decode(ByteReader &r, bool *checksum_ok = nullptr);
};

struct TcpHeader
{
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    uint32_t seq = 0; ///< vRIO: byte offset within the original message
    uint32_t ack = 0; ///< vRIO: message identifier
    uint8_t flags = 0x10; ///< ACK, to look like established traffic
    uint16_t window = 0xffff;

    static constexpr size_t kSize = kTcpHeaderSize;

    void encode(ByteWriter &w) const;
    static TcpHeader decode(ByteReader &r);
};

} // namespace vrio::net

#endif // VRIO_NET_INET_HPP
