#include "net/link.hpp"

#include "util/logging.hpp"

namespace vrio::net {

Link::Link(sim::Simulation &sim, std::string name, LinkConfig cfg)
    : SimObject(sim, std::move(name)), cfg(cfg)
{
    auto &m = sim.telemetry().metrics;
    telemetry::Labels l{{"link", this->name()}};
    delivered = &m.counter("net.link.delivered", l);
    lost = &m.counter("net.link.lost", l);
    fault_lost = &m.counter("net.link.fault_lost", l);
    payload_corrupted = &m.counter("net.link.payload_corrupted", l);
    bytes = &m.counter("net.link.bytes", l);
    auto &tracer = sim.telemetry().tracer;
    trace_track = tracer.intern("link." + this->name());
    trace_wire = tracer.intern("wire");
}

void
Link::connect(NetPort &a, NetPort &b)
{
    vrio_assert(!end_a && !end_b, "link ", name(), " already connected");
    vrio_assert(!a.link_ && !b.link_, "port already plugged in");
    end_a = &a;
    end_b = &b;
    a.link_ = this;
    b.link_ = this;
    // Each transmitter serializes the sending endpoint's frames, so it
    // lives on that endpoint's shard queue.  Deferred to connect()
    // because only the endpoints know the shard cut.
    tx_a = std::make_unique<sim::Resource>(sim().shardEvents(a.shard()),
                                           name() + ".txA");
    tx_b = std::make_unique<sim::Resource>(sim().shardEvents(b.shard()),
                                           name() + ".txB");
    if (a.shard() != b.shard()) {
        sim().noteCrossShardLink(a.shard(), b.shard(), cfg.propagation);
        sim().noteCrossShardLink(b.shard(), a.shard(), cfg.propagation);
    }
}

void
Link::transmit(NetPort &from, FramePtr frame)
{
    vrio_assert(end_a && end_b, "transmit on unconnected link ", name());
    NetPort *to;
    sim::Resource *tx;
    if (&from == end_a) {
        to = end_b;
        tx = tx_a.get();
    } else if (&from == end_b) {
        to = end_a;
        tx = tx_b.get();
    } else {
        vrio_panic("transmit from a port not on link ", name());
    }

    int direction = to == end_b ? 0 : 1;

    uint64_t wire_bytes = frame->wireSize();
    sim::Tick serialization = sim::bytesToTicks(wire_bytes, cfg.gbps);
    tx->submit(serialization, [this, to, direction,
                               frame = std::move(frame),
                               wire_bytes]() mutable {
        bytes->add(wire_bytes);
        if (cfg.loss_probability > 0.0 &&
            sim().random().bernoulli(cfg.loss_probability)) {
            lost->inc();
            return;
        }
        sim::Tick propagation = cfg.propagation;
        if (fault_hook) {
            FaultVerdict v = fault_hook->onTransmit(*this, direction,
                                                    *frame);
            switch (v.kind) {
            case FaultVerdict::Kind::Deliver:
                break;
            case FaultVerdict::Kind::Drop:
                lost->inc();
                fault_lost->inc();
                return;
            case FaultVerdict::Kind::Corrupt:
                frame->fcs_corrupt = true;
                break;
            case FaultVerdict::Kind::CorruptPayload:
                // Flip the frame's final materialized byte: for vRIO
                // traffic that always lands inside the checksummed
                // message region (payload, or the checksum field
                // itself on header-only messages).  Frames may be
                // shared (switch flooding), so mutate a copy.
                if (!frame->bytes.empty()) {
                    auto clone = std::make_shared<Frame>(*frame);
                    clone->bytes.back() ^= 0xff;
                    frame = std::move(clone);
                    payload_corrupted->inc();
                }
                break;
            case FaultVerdict::Kind::Delay:
                propagation += v.extra_delay;
                break;
            }
        }
        delivered->inc();
        auto &tracer = sim().telemetry().tracer;
        if (tracer.enabled()) {
            // Serialization ended exactly now; the span covers wire
            // occupancy plus flight time.
            sim::Tick ser = sim::bytesToTicks(wire_bytes, cfg.gbps);
            sim::Tick start = sim().now() >= ser ? sim().now() - ser : 0;
            tracer.span(trace_track, trace_wire, start,
                        sim().now() - start + propagation,
                        telemetry::cat::kPacket, wire_bytes);
        }
        // Propagation is the shard boundary: a cross-shard delivery
        // rides the epoch mailbox (delay >= lookahead by the connect()
        // registration above); same-shard delivery degenerates to a
        // plain schedule.
        sim().scheduleCross(to->shard(), propagation,
                            [to, frame = std::move(frame)]() mutable {
                                to->receive(std::move(frame));
                            });
    });
}

} // namespace vrio::net
