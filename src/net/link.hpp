/**
 * @file
 * Point-to-point Ethernet link.
 *
 * Each direction has its own transmitter (serialization at line rate),
 * a propagation delay, and an optional Bernoulli loss process.
 * Ethernet is unreliable (Section 4.5); the loss process is how tests
 * and benches exercise the vRIO block retransmission machinery.
 */
#ifndef VRIO_NET_LINK_HPP
#define VRIO_NET_LINK_HPP

#include <functional>

#include "net/frame.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace vrio::net {

class Link;

/** Anything a link endpoint can deliver frames to. */
class NetPort
{
  public:
    virtual ~NetPort() = default;

    /** A frame has fully arrived at this port. */
    virtual void receive(FramePtr frame) = 0;

    /** The link this port is plugged into (set by Link::connect). */
    Link *link() const { return link_; }

    /**
     * Simulation shard this port executes on.  Defaults to the shard
     * bound while the port was constructed (so model factories that
     * build each partition under a ShardScope need no per-port
     * plumbing); owners that construct ports on behalf of another
     * partition override it explicitly.
     */
    uint32_t shard() const { return shard_; }
    void setShard(uint32_t s) { shard_ = s; }

  private:
    friend class Link;
    Link *link_ = nullptr;
    uint32_t shard_ = sim::Simulation::currentShardIndex();
};

struct LinkConfig
{
    double gbps = 10.0;
    sim::Tick propagation = sim::Tick(500) * sim::kNanosecond;
    /** Probability that any given frame is dropped in flight. */
    double loss_probability = 0.0;
};

/** Outcome of a fault hook's inspection of one in-flight frame. */
struct FaultVerdict
{
    enum class Kind : uint8_t {
        Deliver, ///< untouched
        Drop,    ///< lost in flight
        Corrupt, ///< delivered with a failing FCS (dropped by RX)
        Delay,   ///< delivered after extra_delay additional latency
        /**
         * Byzantine: a payload byte is flipped but the FCS still
         * passes (buffer corruption, not wire corruption).  Every
         * FCS check waves the frame through; only an end-to-end
         * check (the transport checksum) can catch it.
         */
        CorruptPayload,
    };
    Kind kind = Kind::Deliver;
    /** Extra propagation latency for Kind::Delay. */
    sim::Tick extra_delay = 0;
};

/**
 * Interface the fault-injection subsystem (src/fault) uses to
 * interpose on a link.  Links with no hook installed (the default)
 * take a single null-pointer branch per frame and produce an event
 * schedule identical to a hook-free build.
 */
class LinkFaultHook
{
  public:
    virtual ~LinkFaultHook() = default;

    /**
     * Decide the fate of a frame that finished serializing.
     * @param direction 0 for A-to-B traffic, 1 for B-to-A.
     */
    virtual FaultVerdict onTransmit(Link &link, int direction,
                                    const Frame &frame) = 0;
};

class Link : public sim::SimObject
{
  public:
    Link(sim::Simulation &sim, std::string name, LinkConfig cfg);

    /**
     * Plug both endpoints in (each port joins exactly one link).
     * This is also the shard cut: each direction's transmitter is
     * bound to its sending endpoint's shard queue, and a link whose
     * endpoints live on different shards registers its propagation
     * delay as conservative lookahead with the simulation.
     */
    void connect(NetPort &a, NetPort &b);

    /**
     * Transmit @p frame from endpoint @p from toward the other end:
     * serialization (queued at line rate) + propagation + loss.
     */
    void transmit(NetPort &from, FramePtr frame);

    double gbps() const { return cfg.gbps; }

    /**
     * Interpose @p hook on every frame (nullptr detaches).  Installing
     * a hook that always returns Deliver leaves the event schedule
     * bit-identical to running without one.
     */
    void setFaultHook(LinkFaultHook *hook) { fault_hook = hook; }

    uint64_t framesDelivered() const { return delivered->value(); }
    uint64_t framesLost() const { return lost->value(); }
    /**
     * Subset of framesLost() eaten by the fault hook (injected i.i.d.
     * or burst drops) rather than the link's own loss_probability;
     * lets benches separate injected loss from intrinsic loss.
     */
    uint64_t framesLostToFaults() const { return fault_lost->value(); }
    /** Frames delivered with an injected FCS-passing payload flip. */
    uint64_t framesPayloadCorrupted() const
    {
        return payload_corrupted->value();
    }
    uint64_t bytesCarried() const { return bytes->value(); }

  private:
    LinkConfig cfg;
    LinkFaultHook *fault_hook = nullptr;
    NetPort *end_a = nullptr;
    NetPort *end_b = nullptr;
    std::unique_ptr<sim::Resource> tx_a; ///< transmitter at end A
    std::unique_ptr<sim::Resource> tx_b;

    // Registry-backed counters (one series per link, labeled by
    // instance name); resolved once here, raw bumps in transmit().
    telemetry::Counter *delivered;
    telemetry::Counter *lost;
    telemetry::Counter *fault_lost;
    telemetry::Counter *payload_corrupted;
    telemetry::Counter *bytes;
    uint16_t trace_track; ///< interned "link.<name>" tracer track
    uint16_t trace_wire;  ///< interned "wire" span name
};

} // namespace vrio::net

#endif // VRIO_NET_LINK_HPP
