#include "net/mac.hpp"

#include "util/strutil.hpp"

namespace vrio::net {

MacAddress
MacAddress::fromU64(uint64_t value)
{
    MacAddress mac;
    for (int i = 0; i < 6; ++i)
        mac.octets[i] = uint8_t(value >> (8 * (5 - i)));
    return mac;
}

MacAddress
MacAddress::local(uint64_t index)
{
    // 0x02 prefix = locally administered, unicast.
    return fromU64(0x020000000000ull | (index & 0xffffffffffull));
}

MacAddress
MacAddress::broadcast()
{
    return fromU64(0xffffffffffffull);
}

uint64_t
MacAddress::toU64() const
{
    uint64_t v = 0;
    for (int i = 0; i < 6; ++i)
        v = v << 8 | octets[i];
    return v;
}

std::string
MacAddress::toString() const
{
    return strFormat("%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                     octets[2], octets[3], octets[4], octets[5]);
}

bool
MacAddress::isBroadcast() const
{
    return *this == broadcast();
}

bool
MacAddress::isMulticast() const
{
    return octets[0] & 0x01;
}

} // namespace vrio::net
