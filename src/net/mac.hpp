/**
 * @file
 * Ethernet MAC addresses.
 */
#ifndef VRIO_NET_MAC_HPP
#define VRIO_NET_MAC_HPP

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace vrio::net {

class MacAddress
{
  public:
    MacAddress() = default;

    /** From the low 48 bits of @p value (big-endian byte order). */
    static MacAddress fromU64(uint64_t value);

    /** Locally-administered unicast address derived from an index. */
    static MacAddress local(uint64_t index);

    /** ff:ff:ff:ff:ff:ff. */
    static MacAddress broadcast();

    uint64_t toU64() const;
    std::string toString() const;

    bool isBroadcast() const;
    /** Multicast bit (least significant bit of the first octet). */
    bool isMulticast() const;

    const std::array<uint8_t, 6> &bytes() const { return octets; }
    std::array<uint8_t, 6> &bytes() { return octets; }

    auto operator<=>(const MacAddress &) const = default;

  private:
    std::array<uint8_t, 6> octets{};
};

} // namespace vrio::net

#endif // VRIO_NET_MAC_HPP
