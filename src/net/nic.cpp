#include "net/nic.hpp"

#include "util/logging.hpp"

namespace vrio::net {

Nic::Nic(sim::Simulation &sim, std::string name, NicConfig cfg)
    : SimObject(sim, std::move(name)), cfg(cfg), queues(cfg.num_queues),
      rx_ring_limit(cfg.rx_ring_size)
{
    vrio_assert(cfg.num_queues >= 1, "NIC needs at least one queue");
    vrio_assert(cfg.rx_ring_size > 0, "RX ring must be non-empty");
    auto &m = sim.telemetry().metrics;
    telemetry::Labels l{{"nic", this->name()}};
    rx_frames = &m.counter("net.nic.rx_frames", l);
    rx_drops = &m.counter("net.nic.rx_drops", l);
    rx_crc_drops = &m.counter("net.nic.rx_crc_drops", l);
    tx_frames = &m.counter("net.nic.tx_frames", l);
    interrupts = &m.counter("net.nic.interrupts", l);
    tso_sends = &m.counter("net.nic.tso_sends", l);
}

void
Nic::setRxRingLimit(size_t limit)
{
    if (limit == 0 || limit > cfg.rx_ring_size)
        limit = cfg.rx_ring_size;
    rx_ring_limit = limit;
}

void
Nic::setQueueMac(unsigned queue, MacAddress mac)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    queues[queue].mac = mac;
}

MacAddress
Nic::queueMac(unsigned queue) const
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    return queues[queue].mac;
}

void
Nic::setRxMode(unsigned queue, RxMode mode)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    queues[queue].mode = mode;
}

void
Nic::setRxHandler(unsigned queue, std::function<void(unsigned)> fn)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    queues[queue].handler = std::move(fn);
}

void
Nic::setRxNotify(unsigned queue, std::function<void(unsigned)> fn)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    queues[queue].notify = std::move(fn);
}

size_t
Nic::rxPending(unsigned queue) const
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    return queues[queue].rx.size();
}

std::vector<FramePtr>
Nic::rxTake(unsigned queue, size_t max)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    auto &q = queues[queue];
    std::vector<FramePtr> out;
    while (!q.rx.empty() && out.size() < max) {
        out.push_back(std::move(q.rx.front()));
        q.rx.pop_front();
    }
    return out;
}

void
Nic::clearQueueMac(unsigned queue)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    queues[queue].mac = MacAddress();
}

void
Nic::addQueueMac(unsigned queue, MacAddress mac)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    extra_macs[mac] = queue;
}

int
Nic::classify(const MacAddress &dst) const
{
    if (dst.isBroadcast() || dst.isMulticast())
        return 0;
    for (size_t i = 0; i < queues.size(); ++i) {
        if (queues[i].mac == dst)
            return int(i);
    }
    auto it = extra_macs.find(dst);
    if (it != extra_macs.end())
        return int(it->second);
    return promiscuous ? 0 : -1;
}

void
Nic::receive(FramePtr frame)
{
    if (frame->fcs_corrupt) {
        // Hardware FCS check fails before any classification.
        rx_crc_drops->inc();
        return;
    }
    EtherHeader hdr = frame->ether();
    int queue = classify(hdr.dst);
    if (queue < 0) {
        // Not for us; a real NIC filters silently.
        return;
    }
    enqueueRx(unsigned(queue), std::move(frame));
}

void
Nic::enqueueRx(unsigned queue, FramePtr frame)
{
    auto &q = queues[queue];
    if (q.rx.size() >= rx_ring_limit) {
        rx_drops->inc();
        return;
    }
    rx_frames->inc();
    q.rx.push_back(std::move(frame));
    if (q.mode == RxMode::Interrupt)
        maybeInterrupt(queue);
    if (q.notify)
        q.notify(queue);
}

void
Nic::maybeInterrupt(unsigned queue)
{
    auto &q = queues[queue];
    if (!q.handler)
        return;
    if (q.rx.size() >= cfg.intr_coalesce_frames) {
        // Moderation threshold reached: fire now.
        q.intr_event.cancel();
        q.intr_scheduled = false;
        fireInterrupt(queue);
        return;
    }
    if (!q.intr_scheduled) {
        q.intr_scheduled = true;
        q.intr_event =
            sim().events().schedule(cfg.intr_coalesce_delay, [this, queue]() {
                queues[queue].intr_scheduled = false;
                fireInterrupt(queue);
            });
    }
}

void
Nic::fireInterrupt(unsigned queue)
{
    auto &q = queues[queue];
    if (q.rx.empty())
        return;
    interrupts->inc();
    q.handler(queue);
}

void
Nic::send(unsigned queue, FramePtr frame)
{
    vrio_assert(queue < queues.size(), "bad queue ", queue);
    Link *l = link();
    vrio_assert(l, "NIC ", name(), " is not connected to a link");

    uint64_t l3_size = frame->bytes.size() + frame->pad - kEtherHeaderSize;
    if (l3_size > cfg.mtu) {
        vrio_assert(cfg.tso, "oversized frame (", l3_size,
                    " > MTU ", cfg.mtu, ") with TSO disabled");
        vrio_assert(frame->pad == 0 && frameIsTcpIpv4(*frame),
                    "oversized frame is not TSO-eligible");
        tso_sends->inc();
        for (auto &seg : tsoSegment(*frame, cfg.mtu)) {
            tx_frames->inc();
            l->transmit(*this, std::move(seg));
        }
        return;
    }
    tx_frames->inc();
    l->transmit(*this, std::move(frame));
}

} // namespace vrio::net
