/**
 * @file
 * NIC model with SRIOV virtual functions, RX/TX rings, interrupt
 * coalescing, and a TSO engine.
 *
 * One Nic models one port of a physical adapter.  Queue 0 is the
 * physical function; additional queues are SRIOV VFs, each with its
 * own MAC and RX ring, assignable to a VM (the optimum model and
 * vRIO's transport channel) or polled by sidecore software (the
 * IOhost).  Ring overflow drops frames — the mechanism behind the
 * paper's Section 4.5 observation that growing the IOhost RX ring
 * from 512 to 4096 eliminated in-the-wild loss.
 */
#ifndef VRIO_NET_NIC_HPP
#define VRIO_NET_NIC_HPP

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/link.hpp"
#include "net/tso.hpp"

namespace vrio::net {

struct NicConfig
{
    double gbps = 10.0;
    uint32_t mtu = kMtuStandard;
    size_t rx_ring_size = 512;
    bool tso = true;
    /** Number of queues including the PF (>= 1). */
    unsigned num_queues = 1;
    /** Interrupt moderation: wait this long after the first frame. */
    sim::Tick intr_coalesce_delay = sim::Tick(4) * sim::kMicrosecond;
    /** ... but fire immediately once this many frames are pending. */
    size_t intr_coalesce_frames = 8;
};

class Nic : public sim::SimObject, public NetPort
{
  public:
    enum class RxMode {
        Interrupt, ///< invoke the rx handler (moderated)
        Poll,      ///< software polls rxTake(); no interrupts
    };

    Nic(sim::Simulation &sim, std::string name, NicConfig cfg);

    const NicConfig &config() const { return cfg; }

    /** The port to plug into a Link. */
    NetPort &port() { return *this; }

    /** Assign a MAC to a queue (frames to this MAC land in it). */
    void setQueueMac(unsigned queue, MacAddress mac);
    MacAddress queueMac(unsigned queue) const;

    /**
     * Add an additional MAC steered to @p queue (L2 filtering for
     * queues that serve several addresses, e.g. one sidecore queue
     * receiving for all of its VMs).
     */
    void addQueueMac(unsigned queue, MacAddress mac);

    /** Remove a queue's MAC filter (frames to it no longer match). */
    void clearQueueMac(unsigned queue);

    /**
     * Accept frames for unknown destination MACs into queue 0.
     * Used by the IOhost, which terminates many IOclient addresses.
     */
    void setPromiscuous(bool on) { promiscuous = on; }

    void setRxMode(unsigned queue, RxMode mode);

    /**
     * Interrupt handler for a queue; invoked (subject to moderation)
     * when frames arrive in Interrupt mode.  The handler models the
     * host IRQ path and is expected to rxTake() the pending frames.
     */
    void setRxHandler(unsigned queue, std::function<void(unsigned)> fn);

    /**
     * Simulation-level notification fired on *every* RX enqueue,
     * regardless of mode.  Polling consumers (sidecores, workers) use
     * it to schedule their next poll pickup instead of the simulator
     * literally spinning; it does not model an interrupt and fires no
     * interrupt accounting.
     */
    void setRxNotify(unsigned queue, std::function<void(unsigned)> fn);

    /** Frames waiting in a queue's RX ring. */
    size_t rxPending(unsigned queue) const;

    /** Take up to @p max frames from a queue's RX ring. */
    std::vector<FramePtr> rxTake(unsigned queue, size_t max);

    /**
     * Temporarily cap the usable RX ring below its configured size
     * (fault injection models memory pressure this way).  0 restores
     * the full configured ring.
     */
    void setRxRingLimit(size_t limit);

    /** The currently effective RX ring capacity. */
    size_t rxRingLimit() const { return rx_ring_limit; }

    /**
     * Transmit @p frame from @p queue.  Oversized TCP/IPv4 frames are
     * TSO-segmented when enabled; oversized frames that TSO cannot
     * handle panic (software must pre-segment, as the vRIO transport
     * driver does for block traffic).
     */
    void send(unsigned queue, FramePtr frame);

    // -- statistics ------------------------------------------------
    uint64_t rxFrames() const { return rx_frames->value(); }
    uint64_t rxDrops() const { return rx_drops->value(); }
    uint64_t rxCrcDrops() const { return rx_crc_drops->value(); }
    uint64_t txFrames() const { return tx_frames->value(); }
    uint64_t interruptsFired() const { return interrupts->value(); }
    uint64_t tsoSends() const { return tso_sends->value(); }

    // NetPort
    void receive(FramePtr frame) override;

  private:
    struct Queue
    {
        MacAddress mac;
        std::deque<FramePtr> rx;
        RxMode mode = RxMode::Interrupt;
        std::function<void(unsigned)> handler;
        std::function<void(unsigned)> notify;
        bool intr_scheduled = false;
        sim::EventHandle intr_event;
    };

    NicConfig cfg;
    std::vector<Queue> queues;
    std::map<MacAddress, unsigned> extra_macs;
    bool promiscuous = false;
    /** Effective RX ring capacity (cfg.rx_ring_size unless squeezed). */
    size_t rx_ring_limit = 0;

    // Registry-backed (one series per NIC, labeled by instance name);
    // resolved in the constructor, bumped raw on the datapath.
    telemetry::Counter *rx_frames;
    telemetry::Counter *rx_drops;
    telemetry::Counter *rx_crc_drops;
    telemetry::Counter *tx_frames;
    telemetry::Counter *interrupts;
    telemetry::Counter *tso_sends;

    void enqueueRx(unsigned queue, FramePtr frame);
    void maybeInterrupt(unsigned queue);
    void fireInterrupt(unsigned queue);
    int classify(const MacAddress &dst) const;
};

} // namespace vrio::net

#endif // VRIO_NET_NIC_HPP
