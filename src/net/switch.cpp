#include "net/switch.hpp"

#include "net/frame_pool.hpp"
#include "util/logging.hpp"

namespace vrio::net {

Switch::Switch(sim::Simulation &sim, std::string name, SwitchConfig cfg)
    : SimObject(sim, std::move(name)), cfg(cfg)
{
    auto &m = sim.telemetry().metrics;
    telemetry::Labels l{{"switch", this->name()}};
    forwarded = &m.counter("net.switch.forwarded", l);
    flooded = &m.counter("net.switch.flooded", l);
    crc_drops = &m.counter("net.switch.crc_drops", l);
    dead_port_drops = &m.counter("net.switch.dead_port_drops", l);
}

NetPort &
Switch::newPort()
{
    size_t index = ports.size();
    ports.push_back(std::make_unique<Port>(*this, index));
    // Ports execute on the switch's shard regardless of which
    // partition's wiring code asked for them (connectToSwitch runs
    // under the endpoint's ShardScope).
    ports.back()->setShard(homeShard());
    port_down.push_back(false);
    auto &m = sim().telemetry().metrics;
    telemetry::Labels l{{"switch", name()},
                        {"port", std::to_string(index)}};
    port_stats.push_back({&m.counter("net.switch.port.forwards", l),
                          &m.counter("net.switch.port.floods", l),
                          &m.counter("net.switch.port.dead_drops", l)});
    return *ports.back();
}

void
Switch::setPortDown(size_t port_index, bool down)
{
    vrio_assert(port_index < ports.size(), "no such switch port ",
                port_index);
    if (port_down[port_index] == down)
        return;
    port_down[port_index] = down;
    if (!down)
        return;
    // Flush addresses learned on the dead port; traffic to them now
    // floods, finding an alternate path if one exists (re-routing)
    // and blackholing at egress checks otherwise.
    for (auto it = mac_table.begin(); it != mac_table.end();) {
        if (it->second == port_index)
            it = mac_table.erase(it);
        else
            ++it;
    }
}

bool
Switch::portDown(size_t port_index) const
{
    vrio_assert(port_index < ports.size(), "no such switch port ",
                port_index);
    return port_down[port_index];
}

std::optional<size_t>
Switch::portOf(MacAddress mac) const
{
    auto it = mac_table.find(mac);
    if (it == mac_table.end())
        return std::nullopt;
    return it->second;
}

void
Switch::ingress(size_t port_index, FramePtr frame)
{
    if (port_down[port_index]) {
        dead_port_drops->inc();
        port_stats[port_index].dead_drops->inc();
        return;
    }
    if (frame->fcs_corrupt) {
        // Store-and-forward switches verify the FCS before queueing.
        crc_drops->inc();
        return;
    }
    EtherHeader hdr = frame->ether();

    // Learn the source address.
    if (!hdr.src.isMulticast())
        mac_table[hdr.src] = port_index;

    sim().events().schedule(
        cfg.forwarding_latency,
        [this, port_index, hdr, frame = std::move(frame)]() mutable {
            if (!hdr.dst.isMulticast()) {
                auto it = mac_table.find(hdr.dst);
                if (it != mac_table.end()) {
                    if (it->second != port_index) {
                        forwarded->inc();
                        port_stats[it->second].forwards->inc();
                        egress(it->second, std::move(frame));
                    }
                    // Destination is on the ingress port: filter.
                    return;
                }
            }
            // Unknown unicast or broadcast/multicast: flood.
            flooded->inc();
            port_stats[port_index].floods->inc();
            for (size_t i = 0; i < ports.size(); ++i) {
                if (i != port_index && ports[i]->link()) {
                    FramePtr copy = FramePool::local().acquire();
                    copy->bytes = frame->bytes;
                    copy->pad = frame->pad;
                    copy->trace_id = frame->trace_id;
                    copy->born = frame->born;
                    egress(i, std::move(copy));
                }
            }
        });
}

void
Switch::egress(size_t port_index, FramePtr frame)
{
    if (port_down[port_index]) {
        dead_port_drops->inc();
        port_stats[port_index].dead_drops->inc();
        return;
    }
    Link *link = ports[port_index]->link();
    vrio_assert(link, "egress on unconnected switch port ", port_index);
    link->transmit(*ports[port_index], std::move(frame));
}

} // namespace vrio::net
