/**
 * @file
 * Store-and-forward learning Ethernet switch (the rack ToR switch of
 * Figure 2).
 */
#ifndef VRIO_NET_SWITCH_HPP
#define VRIO_NET_SWITCH_HPP

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/link.hpp"

namespace vrio::net {

struct SwitchConfig
{
    /** Fixed forwarding latency through the fabric. */
    sim::Tick forwarding_latency = sim::Tick(800) * sim::kNanosecond;
};

class Switch : public sim::SimObject
{
  public:
    Switch(sim::Simulation &sim, std::string name, SwitchConfig cfg = {});

    /**
     * Allocate a new switch port; connect its return value to a Link.
     * Ports are never deallocated (racks are static).
     */
    NetPort &newPort();

    size_t portCount() const { return ports.size(); }
    uint64_t framesForwarded() const { return forwarded->value(); }
    uint64_t framesFlooded() const { return flooded->value(); }
    uint64_t crcDrops() const { return crc_drops->value(); }

    /** MAC table size (learned addresses). */
    size_t macTableSize() const { return mac_table.size(); }

    /**
     * Administratively kill or revive a port.  A down port drops
     * traffic in both directions, and its learned MAC-table entries
     * are flushed so subsequent frames for those addresses flood —
     * re-routing them if the destination is reachable through another
     * port, blackholing them (deadPortDrops()) if not.
     */
    void setPortDown(size_t port_index, bool down);
    bool portDown(size_t port_index) const;

    /** Port a MAC was learned on, if any. */
    std::optional<size_t> portOf(MacAddress mac) const;

    /** Frames eaten by a down port (either direction). */
    uint64_t deadPortDrops() const { return dead_port_drops->value(); }

  private:
    class Port : public NetPort
    {
      public:
        Port(Switch &sw, size_t index) : sw(sw), index(index) {}
        void receive(FramePtr frame) override
        {
            sw.ingress(index, std::move(frame));
        }

      private:
        Switch &sw;
        size_t index;
    };

    SwitchConfig cfg;
    std::vector<std::unique_ptr<Port>> ports;
    std::vector<bool> port_down;
    std::map<MacAddress, size_t> mac_table;

    // Switch-wide totals plus one series per port, so a single hot
    // port (or a blackholing dead one) is visible in exports.
    telemetry::Counter *forwarded;
    telemetry::Counter *flooded;
    telemetry::Counter *crc_drops;
    telemetry::Counter *dead_port_drops;
    struct PortStats
    {
        telemetry::Counter *forwards;   ///< egress via learned entry
        telemetry::Counter *floods;     ///< floods entering this port
        telemetry::Counter *dead_drops; ///< eaten while this port down
    };
    std::vector<PortStats> port_stats;

    void ingress(size_t port_index, FramePtr frame);
    void egress(size_t port_index, FramePtr frame);
};

} // namespace vrio::net

#endif // VRIO_NET_SWITCH_HPP
