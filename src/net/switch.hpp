/**
 * @file
 * Store-and-forward learning Ethernet switch (the rack ToR switch of
 * Figure 2).
 */
#ifndef VRIO_NET_SWITCH_HPP
#define VRIO_NET_SWITCH_HPP

#include <map>
#include <memory>
#include <vector>

#include "net/link.hpp"

namespace vrio::net {

struct SwitchConfig
{
    /** Fixed forwarding latency through the fabric. */
    sim::Tick forwarding_latency = sim::Tick(800) * sim::kNanosecond;
};

class Switch : public sim::SimObject
{
  public:
    Switch(sim::Simulation &sim, std::string name, SwitchConfig cfg = {});

    /**
     * Allocate a new switch port; connect its return value to a Link.
     * Ports are never deallocated (racks are static).
     */
    NetPort &newPort();

    size_t portCount() const { return ports.size(); }
    uint64_t framesForwarded() const { return forwarded; }
    uint64_t framesFlooded() const { return flooded; }
    uint64_t crcDrops() const { return crc_drops; }

    /** MAC table size (learned addresses). */
    size_t macTableSize() const { return mac_table.size(); }

  private:
    class Port : public NetPort
    {
      public:
        Port(Switch &sw, size_t index) : sw(sw), index(index) {}
        void receive(FramePtr frame) override
        {
            sw.ingress(index, std::move(frame));
        }

      private:
        Switch &sw;
        size_t index;
    };

    SwitchConfig cfg;
    std::vector<std::unique_ptr<Port>> ports;
    std::map<MacAddress, size_t> mac_table;
    uint64_t forwarded = 0;
    uint64_t flooded = 0;
    uint64_t crc_drops = 0;

    void ingress(size_t port_index, FramePtr frame);
    void egress(size_t port_index, FramePtr frame);
};

} // namespace vrio::net

#endif // VRIO_NET_SWITCH_HPP
