#include "net/tso.hpp"

#include "net/frame_pool.hpp"
#include "net/inet.hpp"
#include "util/logging.hpp"

namespace vrio::net {

bool
frameIsTcpIpv4(const Frame &frame)
{
    if (frame.bytes.size() <
        kEtherHeaderSize + kIpv4HeaderSize + kTcpHeaderSize) {
        return false;
    }
    EtherHeader eh = frame.ether();
    if (eh.ether_type != uint16_t(EtherType::Ipv4))
        return false;
    ByteReader r(frame.l3());
    Ipv4Header ip = Ipv4Header::decode(r);
    return ip.protocol == 6;
}

std::vector<FramePtr>
tsoSegment(const Frame &frame, uint32_t mtu)
{
    vrio_assert(frame.pad == 0, "TSO requires materialized payload");
    vrio_assert(frameIsTcpIpv4(frame), "TSO on a non-TCP/IPv4 frame");

    ByteReader r(frame.bytes);
    EtherHeader eh = EtherHeader::decode(r);
    Ipv4Header ip = Ipv4Header::decode(r);
    TcpHeader tcp = TcpHeader::decode(r);
    auto payload = std::span<const uint8_t>(frame.bytes)
                       .subspan(kEtherHeaderSize + kIpv4HeaderSize +
                                kTcpHeaderSize);

    vrio_assert(payload.size() <= kTsoMaxPayload,
                "TSO payload exceeds the 64KB TCP message limit: ",
                payload.size());

    uint32_t mss = mssForMtu(mtu);
    vrio_assert(mss > 0, "MTU ", mtu, " leaves no room for payload");

    std::vector<FramePtr> out;
    uint32_t offset = 0;
    do {
        uint32_t chunk =
            std::min<uint32_t>(mss, uint32_t(payload.size()) - offset);
        FramePtr seg = FramePool::local().acquire();
        ByteWriter w(seg->bytes);
        eh.encode(w);
        Ipv4Header seg_ip = ip;
        seg_ip.total_length =
            uint16_t(kIpv4HeaderSize + kTcpHeaderSize + chunk);
        seg_ip.identification = uint16_t(ip.identification + out.size());
        seg_ip.encode(w);
        TcpHeader seg_tcp = tcp;
        seg_tcp.seq = tcp.seq + offset; // hardware TSO seq advance
        seg_tcp.encode(w);
        w.putBytes(payload.subspan(offset, chunk));
        seg->trace_id = frame.trace_id;
        seg->born = frame.born;
        out.push_back(std::move(seg));
        offset += chunk;
    } while (offset < payload.size());

    return out;
}

} // namespace vrio::net
