/**
 * @file
 * TCP segmentation offload engine (pure functions).
 *
 * Given a frame carrying Ethernet+IPv4+TCP headers and an oversized
 * payload, produce wire-legal segments of at most MTU bytes of L3
 * payload, adjusting per-segment IP total-length and TCP sequence
 * numbers exactly as NIC TSO hardware does.  The vRIO transport leans
 * on this to ship up to 64KB messages with a single driver-side send
 * (Section 4.3).
 */
#ifndef VRIO_NET_TSO_HPP
#define VRIO_NET_TSO_HPP

#include <vector>

#include "net/frame.hpp"
#include "net/inet.hpp"

namespace vrio::net {

/** Largest payload a single TSO send may carry (64KB TCP limit). */
constexpr uint32_t kTsoMaxPayload = 64 * 1024;

/** True if the frame is Ethernet/IPv4/TCP and thus TSO-eligible. */
bool frameIsTcpIpv4(const Frame &frame);

/** MSS for a given MTU: IP and TCP headers are carried per segment. */
constexpr uint32_t
mssForMtu(uint32_t mtu)
{
    return mtu - uint32_t(kIpv4HeaderSize) - uint32_t(kTcpHeaderSize);
}

/**
 * Split @p frame into segments whose L3 size is at most @p mtu.
 * The input must satisfy frameIsTcpIpv4() and have no pad bytes.
 * Frames already within the MTU are returned as a single copy.
 * Trace annotations are propagated to every segment.
 */
std::vector<FramePtr> tsoSegment(const Frame &frame, uint32_t mtu);

} // namespace vrio::net

#endif // VRIO_NET_TSO_HPP
