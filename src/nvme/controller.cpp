#include "nvme/controller.hpp"

#include "sim/simulation.hpp"
#include "util/logging.hpp"

namespace vrio::nvme {

Controller::Controller(sim::Simulation &sim, std::string name,
                       block::BlockDevice &backend, ControllerConfig cfg)
    : SimObject(sim, std::move(name)), cfg(cfg), backend(backend),
      engine(sim.events(), this->name() + ".engine")
{
    sched = std::make_unique<block::DiskScheduler>(
        [this](block::BlockRequest req, block::BlockCallback done) {
            this->backend.submit(std::move(req), std::move(done));
        });

    auto &m = sim.telemetry().metrics;
    telemetry::Labels ctl{{"ctrl", this->name()}};
    doorbell_writes = &m.counter("nvme.doorbell.writes", ctl);
    cq_interrupts = &m.counter("nvme.cq.interrupts", ctl);
    sq_depth = &m.histogram("nvme.sq.depth", ctl);
}

Controller::~Controller() = default;

uint32_t
Controller::addNamespace(uint64_t sectors)
{
    vrio_assert(sectors > 0, "empty namespace");
    vrio_assert(next_base_sector + sectors <= backend.capacitySectors(),
                "namespaces exceed backing device capacity: need ",
                next_base_sector + sectors, " of ",
                backend.capacitySectors());
    namespaces.push_back({next_base_sector, sectors});
    next_base_sector += sectors;
    ++admin_commands;
    return uint32_t(namespaces.size());
}

uint16_t
Controller::adminCreateQueuePair(QueueSpec spec)
{
    vrio_assert(spec.mem, "queue pair needs a memory arena");
    vrio_assert(spec.depth >= 2, "queue depth must be >= 2");
    // Phase detection depends on the CQ starting zeroed: a stale
    // entry with phase bit 1 would read as a fresh completion.
    spec.mem->fill(spec.cq_base, uint64_t(spec.depth) * kCqeSize);

    auto q = std::make_unique<QueuePair>();
    q->spec = std::move(spec);
    uint16_t qid = uint16_t(qps.size() + 1);
    q->service_ns = &sim().telemetry().metrics.histogram(
        "nvme.queue.service_ns",
        {{"ctrl", name()}, {"qid", std::to_string(qid)}});
    qps.push_back(std::move(q));
    // Create I/O CQ + Create I/O SQ, mediated as one call.
    admin_commands += 2;
    return qid;
}

Controller::QueuePair &
Controller::qp(uint16_t qid)
{
    vrio_assert(qid >= 1 && qid <= qps.size(), "bad qid ", qid);
    return *qps[qid - 1];
}

uint16_t
Controller::queueDepth(uint16_t qid) const
{
    const QueuePair &q = *qps.at(qid - 1);
    return uint16_t((q.sq_tail + q.spec.depth - q.sq_head) %
                    q.spec.depth);
}

uint64_t
Controller::namespaceSectors(uint32_t nsid) const
{
    vrio_assert(nsid >= 1 && nsid <= namespaces.size(), "bad nsid ",
                nsid);
    return namespaces[nsid - 1].sectors;
}

void
Controller::ringSqDoorbell(uint16_t qid, uint16_t new_tail)
{
    qp(qid); // validate before the latency elapses
    sim().events().schedule(
        cfg.doorbell_latency, [this, qid, new_tail]() {
            QueuePair &q = qp(qid);
            vrio_assert(new_tail < q.spec.depth, "doorbell tail ",
                        new_tail, " out of range");
            q.sq_tail = new_tail;
            doorbell_writes->inc();
            // Backlog visible to the device at this doorbell: what
            // fig17 plots as nvme.sq.depth.
            sq_depth->record((q.sq_tail + q.spec.depth - q.sq_head) %
                             q.spec.depth);
            pump();
        });
}

void
Controller::ringCqDoorbell(uint16_t qid, uint16_t new_head)
{
    qp(qid);
    sim().events().schedule(cfg.doorbell_latency,
                            [this, qid, new_head]() {
                                QueuePair &q = qp(qid);
                                vrio_assert(new_head < q.spec.depth,
                                            "cq doorbell out of range");
                                q.cq_head = new_head;
                                doorbell_writes->inc();
                                pump(); // CQ slots freed; may unblock
                            });
}

bool
Controller::canFetch(const QueuePair &q, uint16_t qid) const
{
    if (q.sq_head == q.sq_tail)
        return false; // SQ empty
    // Work-conserving arbitration cap: this SQ's share of the disk
    // scheduler backlog, plus commands still on the command
    // processor, must stay under the per-queue service cap.
    if (sched->queueDepth(qid) + q.transit >= cfg.sq_service_cap)
        return false;
    // Reserve CQ space for every command in the pipeline so a slow
    // reaper can never make the controller overwrite an unconsumed
    // CQE.  (depth - 1 usable slots, per the spec's full condition.)
    unsigned cq_used =
        (q.cq_tail + q.spec.depth - q.cq_head) % q.spec.depth;
    if (q.pipeline + cq_used >= unsigned(q.spec.depth) - 1)
        return false;
    return true;
}

void
Controller::pump()
{
    if (qps.empty())
        return;
    // Round-robin with bursts: starting from rr_next, each SQ may
    // fetch up to arb_burst commands per turn; rounds repeat while
    // any queue makes progress, so an idle SQ never strands work in
    // a busy one (work conservation), while the per-queue cap keeps
    // one flooded SQ from starving the rest (fairness).
    bool progress = true;
    while (progress) {
        progress = false;
        uint16_t start = rr_next;
        for (uint16_t i = 0; i < qps.size(); ++i) {
            uint16_t qid = uint16_t((start + i) % qps.size() + 1);
            QueuePair &q = *qps[qid - 1];
            unsigned burst = 0;
            while (burst < cfg.arb_burst && canFetch(q, qid)) {
                fetchOne(qid);
                ++burst;
                progress = true;
            }
            if (burst == cfg.arb_burst) {
                // Queue used its full turn: the next pump resumes
                // with its successor.
                rr_next = uint16_t(qid % qps.size());
            }
        }
    }
}

void
Controller::fetchOne(uint16_t qid)
{
    QueuePair &q = qp(qid);
    uint64_t addr = q.spec.sq_base + uint64_t(q.sq_head) * kSqeSize;
    Command cmd = Command::decode(*q.spec.mem, addr);
    q.sq_head = uint16_t((q.sq_head + 1) % q.spec.depth);
    ++q.transit;
    ++q.pipeline;
    sim::Tick fetched = now();
    engine.submit(cfg.cmd_fixed, [this, qid, cmd, fetched]() {
        issue(qid, cmd, fetched);
    });
}

void
Controller::issue(uint16_t qid, Command cmd, sim::Tick fetched)
{
    QueuePair &q = qp(qid);
    --q.transit;

    virtio::BlkType kind;
    switch (cmd.opcode) {
      case kOpRead:
        kind = virtio::BlkType::In;
        break;
      case kOpWrite:
        kind = virtio::BlkType::Out;
        break;
      case kOpFlush:
        kind = virtio::BlkType::Flush;
        break;
      case kOpDsmDeallocate:
        kind = virtio::BlkType::Discard;
        break;
      default:
        complete(qid, cmd, fetched, kStatusInvalidOpcode, {});
        return;
    }

    if (kind != virtio::BlkType::Flush) {
        if (cmd.nsid < 1 || cmd.nsid > namespaces.size()) {
            complete(qid, cmd, fetched, kStatusInvalidField, {});
            return;
        }
        const Namespace &ns = namespaces[cmd.nsid - 1];
        if (cmd.nlb == 0 || cmd.slba + cmd.nlb > ns.sectors) {
            complete(qid, cmd, fetched, kStatusLbaOutOfRange, {});
            return;
        }
    }

    block::BlockRequest req;
    req.kind = kind;
    req.nsectors = cmd.nlb;
    if (kind != virtio::BlkType::Flush)
        req.sector = namespaces[cmd.nsid - 1].base_sector + cmd.slba;
    if (kind == virtio::BlkType::Out)
        req.data = q.spec.mem->read(cmd.prp1, req.byteLength());
    if (kind == virtio::BlkType::Flush)
        req.nsectors = 0;

    sched->submit(
        std::move(req),
        [this, qid, cmd, fetched](virtio::BlkStatus status, Bytes data) {
            complete(qid, cmd, fetched, mapStatus(status), data);
        },
        qid);
}

uint16_t
Controller::mapStatus(virtio::BlkStatus s)
{
    switch (s) {
      case virtio::BlkStatus::Ok:
        return kStatusOk;
      case virtio::BlkStatus::Unsupported:
        return kStatusInvalidField;
      default:
        return kStatusInternalError;
    }
}

void
Controller::complete(uint16_t qid, const Command &cmd, sim::Tick fetched,
                     uint16_t status, const Bytes &data)
{
    QueuePair &q = qp(qid);
    // DMA read data into the command's PRP buffer before the CQE
    // becomes visible.
    if (status == kStatusOk && cmd.opcode == kOpRead)
        q.spec.mem->write(cmd.prp1, data);

    postCqe(qid, cmd, status);
    --q.pipeline;
    ++completed_cmds;
    q.service_ns->record((now() - fetched) / sim::kNanosecond);

    // MSI-X coalescing: fire when the frame budget fills; otherwise
    // arm the delay timer so a lone completion is never stranded.
    ++q.irq_pending;
    if (q.irq_pending >= cfg.cq_coalesce_frames ||
        cfg.cq_coalesce_delay == 0) {
        fireInterrupt(qid);
    } else if (!q.irq_timer_armed) {
        q.irq_timer_armed = true;
        sim().events().schedule(cfg.cq_coalesce_delay, [this, qid]() {
            QueuePair &tq = qp(qid);
            tq.irq_timer_armed = false;
            if (tq.irq_pending > 0)
                fireInterrupt(qid);
        });
    }

    pump(); // scheduler capacity freed; fetch more
}

void
Controller::postCqe(uint16_t qid, const Command &cmd, uint16_t status)
{
    QueuePair &q = qp(qid);
    Completion c;
    c.sq_head = q.sq_head;
    c.sq_id = qid;
    c.cid = cmd.cid;
    c.status = status;
    c.phase = q.cq_phase;
    c.encode(*q.spec.mem,
             q.spec.cq_base + uint64_t(q.cq_tail) * kCqeSize);
    q.cq_tail = uint16_t((q.cq_tail + 1) % q.spec.depth);
    if (q.cq_tail == 0)
        q.cq_phase ^= 1; // ring wrapped: flip the phase tag
}

void
Controller::fireInterrupt(uint16_t qid)
{
    QueuePair &q = qp(qid);
    q.irq_pending = 0;
    ++irqs_fired;
    cq_interrupts->inc();
    if (q.spec.interrupt)
        q.spec.interrupt();
}

} // namespace vrio::nvme
