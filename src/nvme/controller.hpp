/**
 * @file
 * NVMe controller device model.
 *
 * The controller owns paired submission/completion queues mapped in a
 * guest (or hypervisor) memory arena, fetches commands on doorbell
 * writes under round-robin arbitration across SQs, executes them
 * against a backing block::BlockDevice through a block::DiskScheduler,
 * and posts phase-tagged completions with MSI-X-style per-CQ
 * interrupts (optionally coalesced).
 *
 * Queue pairs are created through the admin interface
 * (adminCreateQueuePair) — the one operation that stays
 * hypervisor-mediated in the I/O-queues-passthrough model per Chen et
 * al.: I/O submission and completion never leave guest context, queue
 * and namespace lifecycle always does.
 *
 * Timing model: a doorbell write reaches the controller after
 * `doorbell_latency` (PCIe posted write); each fetched command charges
 * `cmd_fixed` on the controller's single command processor; data
 * transfer time lives in the backing device's bandwidth model, so it
 * is not double-charged here.
 *
 * Arbitration is work-conserving: an SQ is skipped only when it is
 * empty or when its share of the scheduler backlog has reached
 * `sq_service_cap` (read straight from DiskScheduler::queueDepth) —
 * an idle queue never blocks a busy one.
 */
#ifndef VRIO_NVME_CONTROLLER_HPP
#define VRIO_NVME_CONTROLLER_HPP

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "block/disk_scheduler.hpp"
#include "nvme/nvme_defs.hpp"
#include "sim/resource.hpp"
#include "telemetry/metrics.hpp"

namespace vrio::nvme {

struct ControllerConfig
{
    /** PCIe posted-write latency of a doorbell reaching the device. */
    sim::Tick doorbell_latency = sim::Tick(400) * sim::kNanosecond;
    /** Fixed fetch+decode+issue cost per command (command processor). */
    sim::Tick cmd_fixed = sim::Tick(700) * sim::kNanosecond;
    /** Commands fetched from one SQ per round-robin turn. */
    unsigned arb_burst = 4;
    /**
     * Per-SQ cap on scheduler occupancy (in-flight + conflict-held);
     * arbitration stops fetching from an SQ at the cap and resumes as
     * its completions drain.
     */
    unsigned sq_service_cap = 8;
    /** Completions per CQ accumulated before an interrupt fires. */
    unsigned cq_coalesce_frames = 1;
    /** Max time a completion waits for coalescing company (0=none). */
    sim::Tick cq_coalesce_delay = 0;
};

class Controller : public sim::SimObject
{
  public:
    /** Everything needed to create one SQ/CQ pair. */
    struct QueueSpec
    {
        /** Arena holding both rings and the PRP data buffers. */
        virtio::GuestMemory *mem = nullptr;
        /** Ring bases: depth * kSqeSize / depth * kCqeSize bytes. */
        uint64_t sq_base = 0;
        uint64_t cq_base = 0;
        /** Entries per ring (>= 2; one slot stays open per NVMe). */
        uint16_t depth = 32;
        /** MSI-X vector: invoked per (possibly coalesced) interrupt. */
        std::function<void()> interrupt;
    };

    Controller(sim::Simulation &sim, std::string name,
               block::BlockDevice &backend, ControllerConfig cfg);
    ~Controller() override;

    /**
     * Carve a namespace of @p sectors from the backing device
     * (sequentially from the last namespace's end).  Returns the
     * 1-based nsid.  Admin-mediated.
     */
    uint32_t addNamespace(uint64_t sectors);

    /**
     * Create an I/O SQ/CQ pair (admin Create I/O CQ + Create I/O SQ,
     * collapsed into one mediated call).  Zeroes the CQ ring so phase
     * detection starts clean.  Returns the 1-based qid.
     */
    uint16_t adminCreateQueuePair(QueueSpec spec);

    /**
     * SQ tail doorbell write: @p new_tail is the driver's tail after
     * publishing SQEs.  Takes effect doorbell_latency later, then
     * arbitration runs.
     */
    void ringSqDoorbell(uint16_t qid, uint16_t new_tail);

    /** CQ head doorbell write: the driver consumed up to @p new_head. */
    void ringCqDoorbell(uint16_t qid, uint16_t new_head);

    uint64_t namespaceSectors(uint32_t nsid) const;
    uint16_t queueCount() const { return uint16_t(qps.size()); }
    uint16_t queueDepth(uint16_t qid) const;
    /** Admin commands executed (queue creation, namespace attach). */
    uint64_t adminCommands() const { return admin_commands; }
    /** I/O commands completed (CQEs posted). */
    uint64_t completedCommands() const { return completed_cmds; }
    /** MSI-X interrupts fired across all CQs. */
    uint64_t interruptsFired() const { return irqs_fired; }

    const ControllerConfig &config() const { return cfg; }
    block::DiskScheduler &scheduler() { return *sched; }

  private:
    struct Inflight
    {
        Command cmd;
        sim::Tick fetched = 0;
    };

    struct QueuePair
    {
        QueueSpec spec;
        /** Controller-side ring state. */
        uint16_t sq_tail = 0; ///< last doorbell value
        uint16_t sq_head = 0; ///< next SQE to fetch
        uint16_t cq_tail = 0; ///< next CQE slot to write
        uint16_t cq_head = 0; ///< last CQ doorbell value
        uint8_t cq_phase = 1; ///< spec: phase starts at 1
        /** Fetched but not yet handed to the disk scheduler. */
        unsigned transit = 0;
        /** Fetched but CQE not yet posted (bounds CQ occupancy). */
        unsigned pipeline = 0;
        /** Completions since the last interrupt fired. */
        unsigned irq_pending = 0;
        bool irq_timer_armed = false;
        telemetry::LogHistogram *service_ns = nullptr;
    };

    struct Namespace
    {
        uint64_t base_sector = 0;
        uint64_t sectors = 0;
    };

    ControllerConfig cfg;
    block::BlockDevice &backend;
    std::unique_ptr<block::DiskScheduler> sched;
    /** Single command processor serializing fetch/decode/issue. */
    sim::Resource engine;
    std::vector<std::unique_ptr<QueuePair>> qps; ///< index = qid - 1
    std::vector<Namespace> namespaces;           ///< index = nsid - 1
    uint64_t next_base_sector = 0;
    uint16_t rr_next = 0;
    uint64_t admin_commands = 0;
    uint64_t completed_cmds = 0;
    uint64_t irqs_fired = 0;

    telemetry::Counter *doorbell_writes = nullptr;
    telemetry::Counter *cq_interrupts = nullptr;
    telemetry::LogHistogram *sq_depth = nullptr;

    QueuePair &qp(uint16_t qid);
    /** Round-robin arbitration: fetch while any SQ has room + work. */
    void pump();
    bool canFetch(const QueuePair &q, uint16_t qid) const;
    void fetchOne(uint16_t qid);
    void issue(uint16_t qid, Command cmd, sim::Tick fetched);
    void complete(uint16_t qid, const Command &cmd, sim::Tick fetched,
                  uint16_t status, const Bytes &data);
    void postCqe(uint16_t qid, const Command &cmd, uint16_t status);
    void fireInterrupt(uint16_t qid);
    static uint16_t mapStatus(virtio::BlkStatus s);
};

} // namespace vrio::nvme

#endif // VRIO_NVME_CONTROLLER_HPP
