#include "nvme/driver.hpp"

#include <vector>

#include "util/logging.hpp"

namespace vrio::nvme {

QueuePairDriver::QueuePairDriver(Controller &ctrl,
                                 virtio::GuestMemory &mem,
                                 uint16_t depth,
                                 std::function<void()> interrupt_hook)
    : ctrl(ctrl), mem(mem), depth_(depth)
{
    sq_base = mem.alloc(uint64_t(depth) * kSqeSize, 4096);
    cq_base = mem.alloc(uint64_t(depth) * kCqeSize, 4096);

    Controller::QueueSpec spec;
    spec.mem = &mem;
    spec.sq_base = sq_base;
    spec.cq_base = cq_base;
    spec.depth = depth;
    if (interrupt_hook) {
        spec.interrupt = std::move(interrupt_hook);
    } else {
        spec.interrupt = [this]() { reap(); };
    }
    qid_ = ctrl.adminCreateQueuePair(std::move(spec));
}

QueuePairDriver::~QueuePairDriver()
{
    mem.free(sq_base);
    mem.free(cq_base);
}

bool
QueuePairDriver::sqFull() const
{
    return (unsigned(sq_tail) + depth_ - sq_head_known) % depth_ ==
           unsigned(depth_) - 1;
}

uint16_t
QueuePairDriver::allocCid()
{
    // Rolling 16-bit id, skipping ones still outstanding (possible
    // when the controller runs far ahead of the reaper).
    while (inflight.count(next_cid))
        ++next_cid;
    return next_cid++;
}

bool
QueuePairDriver::trySubmit(uint32_t nsid, block::BlockRequest req,
                           block::BlockCallback done)
{
    Pending p{nsid, std::move(req), std::move(done)};
    return tryIssue(p);
}

bool
QueuePairDriver::tryIssue(Pending &p)
{
    if (sqFull())
        return false;

    block::BlockRequest &req = p.req;
    Command cmd;
    cmd.cid = allocCid();
    cmd.nsid = p.nsid;
    cmd.slba = req.sector;
    cmd.nlb = req.nsectors;

    Inflight fl;
    fl.kind = req.kind;
    switch (req.kind) {
      case virtio::BlkType::In:
        cmd.opcode = kOpRead;
        fl.bytes = uint32_t(req.byteLength());
        fl.prp = mem.alloc(fl.bytes ? fl.bytes : 1, 512);
        cmd.prp1 = fl.prp;
        break;
      case virtio::BlkType::Out:
        cmd.opcode = kOpWrite;
        vrio_assert(req.data.size() == req.byteLength(),
                    "short write payload");
        fl.bytes = uint32_t(req.data.size());
        fl.prp = mem.alloc(fl.bytes ? fl.bytes : 1, 512);
        cmd.prp1 = fl.prp;
        mem.write(fl.prp, req.data);
        break;
      case virtio::BlkType::Flush:
        cmd.opcode = kOpFlush;
        cmd.nlb = 0;
        break;
      case virtio::BlkType::Discard:
        cmd.opcode = kOpDsmDeallocate;
        break;
      default:
        vrio_panic("unsupported block op ", unsigned(req.kind));
    }
    fl.done = std::move(p.done);

    cmd.encode(mem, sq_base + uint64_t(sq_tail) * kSqeSize);
    inflight.emplace(cmd.cid, std::move(fl));
    sq_tail = uint16_t((sq_tail + 1) % depth_);
    ++doorbells;
    ctrl.ringSqDoorbell(qid_, sq_tail);
    return true;
}

void
QueuePairDriver::submit(uint32_t nsid, block::BlockRequest req,
                        block::BlockCallback done)
{
    // Park behind any existing backlog (FIFO order), then push as far
    // into the SQ as the ring allows.
    backlog.push_back(Pending{nsid, std::move(req), std::move(done)});
    drainBacklog();
}

void
QueuePairDriver::drainBacklog()
{
    while (!backlog.empty() && tryIssue(backlog.front()))
        backlog.pop_front();
}

unsigned
QueuePairDriver::reap()
{
    struct Ready
    {
        block::BlockCallback done;
        virtio::BlkStatus status;
        Bytes data;
    };
    std::vector<Ready> ready;

    unsigned n = 0;
    while (true) {
        Completion c = Completion::decode(
            mem, cq_base + uint64_t(cq_head) * kCqeSize);
        if (c.phase != phase_expect)
            break; // next entry not yet posted
        sq_head_known = c.sq_head;
        auto it = inflight.find(c.cid);
        vrio_assert(it != inflight.end(), "CQE for unknown cid ",
                    c.cid);
        Inflight fl = std::move(it->second);
        inflight.erase(it);

        virtio::BlkStatus status =
            c.status == kStatusOk ? virtio::BlkStatus::Ok
            : c.status == kStatusInvalidOpcode ||
                    c.status == kStatusInvalidField
                ? virtio::BlkStatus::Unsupported
                : virtio::BlkStatus::IoErr;
        Bytes data;
        if (fl.kind == virtio::BlkType::In &&
            status == virtio::BlkStatus::Ok)
            data = mem.read(fl.prp, fl.bytes);
        if (fl.prp)
            mem.free(fl.prp);
        ready.push_back(
            Ready{std::move(fl.done), status, std::move(data)});

        cq_head = uint16_t((cq_head + 1) % depth_);
        if (cq_head == 0)
            phase_expect ^= 1; // consumed past the wrap point
        ++n;
    }

    if (n) {
        ++doorbells;
        ctrl.ringCqDoorbell(qid_, cq_head);
        // Freed SQ slots first (sq_head_known advanced), so parked
        // requests are older than anything a callback submits.
        drainBacklog();
    }
    for (Ready &r : ready)
        r.done(r.status, std::move(r.data));
    return n;
}

} // namespace vrio::nvme
