/**
 * @file
 * NVMe queue-pair driver: the software half of the queue machinery.
 *
 * A QueuePairDriver owns one SQ/CQ pair on a Controller: it allocates
 * the rings and per-command PRP buffers in its memory arena, encodes
 * SQEs, rings the tail doorbell, and reaps phase-tagged CQEs when the
 * controller's MSI-X vector fires.  Both interposition arrangements
 * are built from this one class:
 *
 *  - passthrough: one driver per VM, rings in the VM's own guest
 *    memory, interrupts delivered to the guest (Chen et al.);
 *  - interposed: one shared driver at the IOhost, rings in
 *    hypervisor memory, every VM's namespace multiplexed through it
 *    (the serialization the fig17 comparison measures).
 *
 * Backpressure surface: trySubmit() refuses when the SQ ring is full
 * (the spec's depth-1 occupancy rule against the head learned from
 * CQEs); submit() layers a FIFO overflow backlog on top that drains
 * as completions free slots.
 */
#ifndef VRIO_NVME_DRIVER_HPP
#define VRIO_NVME_DRIVER_HPP

#include <deque>
#include <map>

#include "nvme/controller.hpp"

namespace vrio::nvme {

class QueuePairDriver
{
  public:
    /**
     * Creates the rings in @p mem and the queue pair on @p ctrl (an
     * admin-mediated operation).  @p interrupt_hook, when set, is
     * invoked on each MSI-X interrupt *instead of* an immediate
     * reap() — the caller charges its interrupt-delivery costs and
     * then calls reap() itself.  Unset = reap inline (polled host
     * context).
     */
    QueuePairDriver(Controller &ctrl, virtio::GuestMemory &mem,
                    uint16_t depth,
                    std::function<void()> interrupt_hook = {});
    ~QueuePairDriver();

    QueuePairDriver(const QueuePairDriver &) = delete;
    QueuePairDriver &operator=(const QueuePairDriver &) = delete;

    /**
     * Encode and publish one request against namespace @p nsid;
     * returns false when the SQ is full, in which case the request is
     * dropped, not queued (callers that must not lose work use
     * submit()).  @p done fires after the CQE is reaped, with read
     * data copied out of the PRP buffer.
     */
    bool trySubmit(uint32_t nsid, block::BlockRequest req,
                   block::BlockCallback done);

    /** trySubmit with an unbounded FIFO overflow backlog behind it. */
    void submit(uint32_t nsid, block::BlockRequest req,
                block::BlockCallback done);

    /**
     * Drain the CQ: consume every entry carrying the expected phase
     * tag, ring the CQ head doorbell, refill the SQ from the backlog,
     * then run completion callbacks.  Returns CQEs consumed.
     */
    unsigned reap();

    Controller &controller() { return ctrl; }
    uint16_t qid() const { return qid_; }
    uint16_t depth() const { return depth_; }
    /** Commands submitted to the SQ and not yet reaped. */
    unsigned outstanding() const { return unsigned(inflight.size()); }
    size_t backlogLength() const { return backlog.size(); }
    /** True when trySubmit would refuse right now. */
    bool sqFull() const;
    uint64_t doorbellWrites() const { return doorbells; }

  private:
    struct Pending
    {
        uint32_t nsid;
        block::BlockRequest req;
        block::BlockCallback done;
    };

    struct Inflight
    {
        block::BlockCallback done;
        uint64_t prp = 0;    ///< arena buffer (0 = none)
        uint32_t bytes = 0;  ///< data length
        virtio::BlkType kind = virtio::BlkType::In;
    };

    Controller &ctrl;
    virtio::GuestMemory &mem;
    uint16_t depth_;
    uint16_t qid_ = 0;
    uint64_t sq_base = 0;
    uint64_t cq_base = 0;

    uint16_t sq_tail = 0;
    /** Head as last advertised by a CQE's sq_head field. */
    uint16_t sq_head_known = 0;
    uint16_t cq_head = 0;
    uint8_t phase_expect = 1;
    uint16_t next_cid = 0;
    uint64_t doorbells = 0;

    std::map<uint16_t, Inflight> inflight;
    std::deque<Pending> backlog;

    uint16_t allocCid();
    /** Publish @p p when the SQ has room; moves from p only then. */
    bool tryIssue(Pending &p);
    void drainBacklog();
};

} // namespace vrio::nvme

#endif // VRIO_NVME_DRIVER_HPP
