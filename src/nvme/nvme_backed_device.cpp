#include "nvme/nvme_backed_device.hpp"

namespace vrio::nvme {

NvmeBackedDevice::NvmeBackedDevice(sim::Simulation &sim,
                                   std::string name,
                                   QueuePairDriver &qp, uint32_t nsid)
    : BlockDevice(sim, std::move(name)), qp(qp), nsid_(nsid),
      sectors(qp.controller().namespaceSectors(nsid))
{}

void
NvmeBackedDevice::submit(block::BlockRequest req,
                         block::BlockCallback done)
{
    // Sectors are namespace-relative already; the controller rebases
    // onto the shared backing device and bounds-checks (out-of-range
    // posts an LBA-out-of-range CQE, surfaced as IoErr).
    qp.submit(nsid_, std::move(req),
              [this, done = std::move(done)](virtio::BlkStatus status,
                                             Bytes data) {
                  ++completed;
                  done(status, std::move(data));
              });
}

} // namespace vrio::nvme
