/**
 * @file
 * block::BlockDevice adapter over one NVMe namespace.
 *
 * This is the interposed arrangement's device: the IOhost consolidates
 * every VM's disk as a namespace of one shared NVMe controller and
 * funnels all of them through a single shared queue pair in
 * hypervisor memory — exactly the single-queue software path whose
 * scaling fig17 compares against per-VM queue passthrough.  The
 * adapter slots transparently behind iohost::BlockDeviceEntry, so the
 * whole vRIO transport/worker machinery runs unchanged on top.
 */
#ifndef VRIO_NVME_NVME_BACKED_DEVICE_HPP
#define VRIO_NVME_NVME_BACKED_DEVICE_HPP

#include "block/block_device.hpp"
#include "nvme/driver.hpp"

namespace vrio::nvme {

class NvmeBackedDevice : public block::BlockDevice
{
  public:
    /**
     * @param qp the (shared) queue pair all requests ride.
     * @param nsid this device's namespace on the controller.
     */
    NvmeBackedDevice(sim::Simulation &sim, std::string name,
                     QueuePairDriver &qp, uint32_t nsid);

    uint64_t capacitySectors() const override { return sectors; }
    void submit(block::BlockRequest req,
                block::BlockCallback done) override;

    uint32_t nsid() const { return nsid_; }

  private:
    QueuePairDriver &qp;
    uint32_t nsid_;
    uint64_t sectors;
};

} // namespace vrio::nvme

#endif // VRIO_NVME_NVME_BACKED_DEVICE_HPP
