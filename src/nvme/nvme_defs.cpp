#include "nvme/nvme_defs.hpp"

namespace vrio::nvme {

// SQE byte layout (subset of the spec's command format):
//   [0]     opcode            [2..3]   cid
//   [4..7]  nsid              [24..31] prp1
//   [40..47] slba (CDW10/11)  [48..49] nlb - 1 (CDW12 bits 15:0)
void
Command::encode(virtio::GuestMemory &mem, uint64_t addr) const
{
    mem.fill(addr, kSqeSize);
    mem.writeU16(addr + 0, uint16_t(opcode)); // opcode + zero flags
    mem.writeU16(addr + 2, cid);
    mem.writeU32(addr + 4, nsid);
    mem.writeU64(addr + 24, prp1);
    mem.writeU64(addr + 40, slba);
    mem.writeU16(addr + 48, nlb ? uint16_t(nlb - 1) : 0);
    // Bit 0 of CDW13 distinguishes "nlb present": flush has none.
    mem.writeU16(addr + 50, nlb ? 1 : 0);
}

Command
Command::decode(const virtio::GuestMemory &mem, uint64_t addr)
{
    Command c;
    c.opcode = uint8_t(mem.readU16(addr + 0));
    c.cid = mem.readU16(addr + 2);
    c.nsid = mem.readU32(addr + 4);
    c.prp1 = mem.readU64(addr + 24);
    c.slba = mem.readU64(addr + 40);
    uint16_t nlb0 = mem.readU16(addr + 48);
    c.nlb = mem.readU16(addr + 50) ? uint32_t(nlb0) + 1 : 0;
    return c;
}

// CQE byte layout:
//   [0..3]  result (DW0)      [8..9]   sq_head   [10..11] sq_id
//   [12..13] cid              [14..15] status << 1 | phase
void
Completion::encode(virtio::GuestMemory &mem, uint64_t addr) const
{
    mem.writeU32(addr + 0, result);
    mem.writeU32(addr + 4, 0);
    mem.writeU16(addr + 8, sq_head);
    mem.writeU16(addr + 10, sq_id);
    mem.writeU16(addr + 12, cid);
    mem.writeU16(addr + 14, uint16_t(status << 1) | (phase & 1));
}

Completion
Completion::decode(const virtio::GuestMemory &mem, uint64_t addr)
{
    Completion c;
    c.result = mem.readU32(addr + 0);
    c.sq_head = mem.readU16(addr + 8);
    c.sq_id = mem.readU16(addr + 10);
    c.cid = mem.readU16(addr + 12);
    uint16_t sp = mem.readU16(addr + 14);
    c.status = sp >> 1;
    c.phase = sp & 1;
    return c;
}

} // namespace vrio::nvme
