/**
 * @file
 * NVMe wire structures: 64-byte submission queue entries, 16-byte
 * completion queue entries, opcodes and status codes.
 *
 * The layouts follow the NVMe 1.x base specification closely enough
 * that the queue mechanics are faithful — command identifier and
 * namespace id in the SQE's first dwords, PRP1 at byte 24, the
 * starting LBA in CDW10/11 and the 0's-based block count in CDW12;
 * CQE with SQ head pointer in DW2 and CID + phase tag + status in
 * DW3.  Simplifications are documented inline: PRP lists collapse to
 * one contiguous guest buffer (PRP1), and DSM deallocate carries a
 * single LBA range in SLBA/NLB instead of a range-descriptor buffer.
 */
#ifndef VRIO_NVME_NVME_DEFS_HPP
#define VRIO_NVME_NVME_DEFS_HPP

#include <cstdint>

#include "virtio/guest_memory.hpp"

namespace vrio::nvme {

constexpr uint32_t kSqeSize = 64;
constexpr uint32_t kCqeSize = 16;
/** LBA size; matches the virtio sector the block layer speaks. */
constexpr uint32_t kLbaSize = 512;

// -- I/O command set opcodes (NVMe base spec, figure "Opcodes") -------
constexpr uint8_t kOpFlush = 0x00;
constexpr uint8_t kOpWrite = 0x01;
constexpr uint8_t kOpRead = 0x02;
/** Dataset Management; we model only the deallocate (TRIM) form. */
constexpr uint8_t kOpDsmDeallocate = 0x09;

// -- status codes (generic command status, SCT 0) ---------------------
constexpr uint16_t kStatusOk = 0x00;
constexpr uint16_t kStatusInvalidOpcode = 0x01;
constexpr uint16_t kStatusInvalidField = 0x02;
constexpr uint16_t kStatusInternalError = 0x06;
constexpr uint16_t kStatusLbaOutOfRange = 0x80;

/**
 * One submission queue entry.  `nlb` is the 1-based sector count at
 * the API surface; the wire encoding stores the spec's 0's-based
 * value in CDW12 bits 15:0.
 */
struct Command
{
    uint8_t opcode = 0;
    /** Command identifier, unique among this SQ's outstanding cmds. */
    uint16_t cid = 0;
    /** Namespace id (1-based; 0 is invalid). */
    uint32_t nsid = 0;
    /** Guest-physical address of the (contiguous) data buffer. */
    uint64_t prp1 = 0;
    /** Starting LBA, namespace-relative. */
    uint64_t slba = 0;
    /** Number of logical blocks (1-based; 0 for flush). */
    uint32_t nlb = 0;

    void encode(virtio::GuestMemory &mem, uint64_t addr) const;
    static Command decode(const virtio::GuestMemory &mem, uint64_t addr);
};

/** One completion queue entry. */
struct Completion
{
    /** Command-specific result (DW0); unused by the I/O set here. */
    uint32_t result = 0;
    /** SQ head pointer at posting time (frees SQ slots driver-side). */
    uint16_t sq_head = 0;
    /** Submission queue the command came from. */
    uint16_t sq_id = 0;
    uint16_t cid = 0;
    /** Status code (kStatus*). */
    uint16_t status = 0;
    /** Phase tag: flips each time the CQ wraps. */
    uint8_t phase = 0;

    void encode(virtio::GuestMemory &mem, uint64_t addr) const;
    static Completion decode(const virtio::GuestMemory &mem,
                             uint64_t addr);
};

} // namespace vrio::nvme

#endif // VRIO_NVME_NVME_DEFS_HPP
