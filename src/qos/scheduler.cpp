#include "qos/scheduler.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace vrio::qos {

void
FairScheduler::setTenant(uint32_t tenant, TenantConfig tc)
{
    vrio_assert(tc.weight > 0, "tenant weight must be positive, got ",
                tc.weight);
    tenants_[tenant].cfg = tc;
}

size_t
FairScheduler::shareOf(const Tenant &t) const
{
    double wsum = 0;
    for (const auto &[id, tt] : tenants_)
        wsum += tt.cfg.weight;
    double frac = wsum > 0 ? t.cfg.weight / wsum : 1.0;
    size_t share = size_t(frac * double(cfg_.high_water));
    return std::max(share, cfg_.tenant_floor);
}

size_t
FairScheduler::shareOf(uint32_t tenant) const
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        Tenant t;
        return shareOf(t);
    }
    return shareOf(it->second);
}

size_t
FairScheduler::queued(uint32_t tenant) const
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.fifo.size();
}

Verdict
FairScheduler::push(uint32_t tenant, uint64_t token, double cost,
                    sim::Tick now)
{
    vrio_assert(cost > 0, "request cost must be positive, got ", cost);
    Tenant &t = tenants_[tenant];
    Verdict v = Verdict::Admitted;
    if (total_ >= cfg_.high_water) {
        size_t share = shareOf(t);
        if (double(t.fifo.size()) >=
            cfg_.shed_factor * double(share)) {
            ++sheds_;
            return Verdict::Shed;
        }
        if (t.fifo.size() >= share)
            v = Verdict::Deferred;
    }
    Item item;
    item.token = token;
    item.start = std::max(vtime_, t.last_finish);
    double charged =
        cost * (v == Verdict::Deferred ? cfg_.defer_penalty : 1.0);
    item.finish = item.start + charged / t.cfg.weight;
    t.last_finish = item.finish;
    item.queued_at = now;
    item.deadline = t.cfg.slo ? now + t.cfg.slo : 0;
    t.fifo.push_back(item);
    ++total_;
    if (v == Verdict::Deferred)
        ++deferrals_;
    return v;
}

std::optional<FairScheduler::Popped>
FairScheduler::pop(sim::Tick now)
{
    if (total_ == 0)
        return std::nullopt;

    // Fair lane: the head with the minimum finish tag (tie: minimum
    // start tag, then lowest tenant id via map order).
    auto fair = tenants_.end();
    double fair_f = 0, fair_s = 0;
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
        if (it->second.fifo.empty())
            continue;
        const Item &h = it->second.fifo.front();
        if (fair == tenants_.end() || h.finish < fair_f ||
            (h.finish == fair_f && h.start < fair_s)) {
            fair = it;
            fair_f = h.finish;
            fair_s = h.start;
        }
    }
    vrio_assert(fair != tenants_.end(), "queued count out of sync");

    // Deadline lane: among heads whose slack is exhausted, the
    // earliest deadline wins (tie: lowest tenant id via map order).
    auto pick = tenants_.end();
    sim::Tick pick_deadline = 0;
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
        if (it->second.fifo.empty())
            continue;
        const Item &h = it->second.fifo.front();
        if (h.deadline == 0 || h.deadline > now + cfg_.promote_slack)
            continue;
        if (pick == tenants_.end() || h.deadline < pick_deadline) {
            pick = it;
            pick_deadline = h.deadline;
        }
    }

    bool promoted = pick != tenants_.end() && pick != fair;
    if (pick == tenants_.end())
        pick = fair;
    if (promoted)
        ++promotions_;

    Tenant &t = pick->second;
    Item h = t.fifo.front();
    t.fifo.pop_front();
    --total_;
    vtime_ = std::max(vtime_, h.start);

    Popped p;
    p.tenant = pick->first;
    p.token = h.token;
    p.queued_at = h.queued_at;
    p.promoted = promoted;
    return p;
}

void
FairScheduler::clear()
{
    for (auto &[id, t] : tenants_) {
        t.fifo.clear();
        t.last_finish = 0;
    }
    vtime_ = 0;
    total_ = 0;
}

} // namespace vrio::qos
