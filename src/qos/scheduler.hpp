/**
 * @file
 * Multi-tenant QoS scheduling for the IOhost fan-out point
 * (DESIGN.md §17).
 *
 * `FairScheduler` is a pure, deterministic policy object: start-time
 * weighted fair queueing (SFQ) over virtual-time tags, with an
 * optional deadline lane that EDF-promotes requests whose SLO slack
 * is exhausted, plus admission control that defers or sheds
 * over-budget tenants once aggregate queue depth crosses a
 * high-water mark.  It holds opaque tokens only — the IOhost keeps
 * the request bodies — and consumes no randomness, so its decisions
 * are a pure function of the push/pop sequence (f(seed, shards),
 * never threads).
 *
 * Discipline:
 *  - Each request gets a start tag S = max(V, tenant.last_finish) and
 *    a finish tag F = S + cost / weight; the tenant's FIFO preserves
 *    per-device order (the steering layer requires it).
 *  - pop() serves the tenant head with the minimum finish tag and
 *    advances V to the served start tag — the classic SFQ rule, which
 *    bounds any tenant's lag behind its weighted share by one
 *    max-cost request.
 *  - Deadline lane: a head whose deadline (enqueue + SLO) is within
 *    `promote_slack` of now is served first, earliest deadline wins.
 *    Only heads are eligible, so promotion never reorders a tenant
 *    against itself.
 *  - Admission: under pressure (total >= high_water) each tenant is
 *    entitled to share = max(tenant_floor, weight_fraction *
 *    high_water).  Occupancy at or past shed_factor * share sheds the
 *    request (the IOhost releases its duplicate-filter entry and the
 *    client's retransmit timer retries it); occupancy at or past the
 *    share defers it — it still queues, but with a finish-tag penalty
 *    that pushes it behind compliant traffic without ever starving it
 *    (tags are finite, so every deferred request eventually holds the
 *    minimum).
 */
#ifndef VRIO_QOS_SCHEDULER_HPP
#define VRIO_QOS_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "sim/ticks.hpp"

namespace vrio::qos {

/** Per-tenant QoS contract. */
struct TenantConfig
{
    /** Fair-share weight (relative; must be > 0). */
    double weight = 1.0;
    /**
     * Latency SLO target (0 = none).  A queued request's deadline is
     * its enqueue tick plus this; the deadline lane promotes it once
     * the remaining slack drops below `promote_slack`, and the IOhost
     * counts a violation when the end-to-end latency exceeds it.
     */
    sim::Tick slo = 0;
};

struct SchedulerConfig
{
    /** Aggregate queued-request count that arms admission control. */
    size_t high_water = 64;
    /** Per-tenant minimum share under pressure (requests). */
    size_t tenant_floor = 4;
    /** Shed when a tenant's occupancy reaches this multiple of share. */
    double shed_factor = 2.0;
    /** Promote a head whose deadline is within this slack of now. */
    sim::Tick promote_slack = sim::Tick(50) * sim::kMicrosecond;
    /** Finish-tag cost multiplier applied to deferred requests. */
    double defer_penalty = 4.0;
};

enum class Verdict
{
    Admitted, ///< queued at full priority
    Deferred, ///< queued with a finish-tag penalty (over share)
    Shed      ///< rejected; the client retransmits later
};

class FairScheduler
{
  public:
    explicit FairScheduler(SchedulerConfig cfg) : cfg_(cfg) {}

    /**
     * Declare a tenant's weight/SLO.  Unknown tenants seen by push()
     * get TenantConfig defaults (weight 1, no SLO).
     */
    void setTenant(uint32_t tenant, TenantConfig tc);

    /**
     * Offer one request of abstract @p cost.  On Admitted/Deferred
     * the token is queued; on Shed it is not (the caller unwinds its
     * admission state and relies on client retransmission).
     */
    Verdict push(uint32_t tenant, uint64_t token, double cost,
                 sim::Tick now);

    struct Popped
    {
        uint32_t tenant = 0;
        uint64_t token = 0;
        sim::Tick queued_at = 0;
        /** Served out of fair order by the deadline lane. */
        bool promoted = false;
    };
    /** Serve the next request, or nullopt when idle. */
    std::optional<Popped> pop(sim::Tick now);

    /** Drop all queued requests and reset virtual time (crash). */
    void clear();

    size_t queued() const { return total_; }
    size_t queued(uint32_t tenant) const;
    bool empty() const { return total_ == 0; }
    double virtualTime() const { return vtime_; }
    /** The share admission control grants @p tenant right now. */
    size_t shareOf(uint32_t tenant) const;
    uint64_t sheds() const { return sheds_; }
    uint64_t deferrals() const { return deferrals_; }
    uint64_t promotions() const { return promotions_; }

  private:
    struct Item
    {
        uint64_t token = 0;
        double start = 0;
        double finish = 0;
        sim::Tick queued_at = 0;
        sim::Tick deadline = 0; ///< 0 = no SLO
    };
    struct Tenant
    {
        TenantConfig cfg;
        /** Finish tag of this tenant's last queued request. */
        double last_finish = 0;
        std::deque<Item> fifo;
    };

    size_t shareOf(const Tenant &t) const;

    SchedulerConfig cfg_;
    /** Ordered map: scans are deterministic, ties break on tenant id. */
    std::map<uint32_t, Tenant> tenants_;
    double vtime_ = 0;
    size_t total_ = 0;
    uint64_t sheds_ = 0;
    uint64_t deferrals_ = 0;
    uint64_t promotions_ = 0;
};

} // namespace vrio::qos

#endif // VRIO_QOS_SCHEDULER_HPP
