#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace vrio::sim {

void
EventHandle::cancel()
{
    if (queue && queue->cancelSlot(slot, generation))
        queue = nullptr; // inert from now on
}

bool
EventHandle::pending() const
{
    return queue && queue->slotPending(slot, generation);
}

uint32_t
EventQueue::allocSlot(Callback fn)
{
    uint32_t idx;
    if (free_head != kNoSlot) {
        idx = free_head;
        free_head = slots[idx].next_free;
    } else {
        idx = uint32_t(slots.size());
        slots.emplace_back();
    }
    Slot &s = slots[idx];
    s.fn = std::move(fn);
    s.armed = true;
    ++live_count;
    return idx;
}

EventQueue::Callback
EventQueue::releaseSlot(uint32_t slot)
{
    Slot &s = slots[slot];
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.armed = false;
    ++s.generation;
    s.next_free = free_head;
    free_head = slot;
    --live_count;
    return fn;
}

bool
EventQueue::cancelSlot(uint32_t slot, uint32_t gen)
{
    if (slot >= slots.size() || !slots[slot].armed ||
        slots[slot].generation != gen) {
        return false; // already fired/cancelled, or slot was reused
    }
    releaseSlot(slot); // drops the closure immediately
    ++stale_count;     // its heap entry is now lazily deleted
    compactIfBloated();
    return true;
}

bool
EventQueue::slotPending(uint32_t slot, uint32_t gen) const
{
    return slot < slots.size() && slots[slot].armed &&
           slots[slot].generation == gen;
}

EventHandle
EventQueue::scheduleAt(Tick when, Callback fn)
{
    vrio_assert(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    uint32_t slot = allocSlot(std::move(fn));
    EventHandle handle;
    handle.queue = this;
    handle.slot = slot;
    handle.generation = slots[slot].generation;
    heap.push_back(Entry{when, next_seq++, slot, slots[slot].generation});
    std::push_heap(heap.begin(), heap.end(), later);
    return handle;
}

EventHandle
EventQueue::schedule(Tick delay, Callback fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::skimTop()
{
    while (!heap.empty()) {
        const Entry &top = heap.front();
        if (slots[top.slot].armed && slots[top.slot].generation == top.gen)
            return;
        std::pop_heap(heap.begin(), heap.end(), later);
        heap.pop_back();
        --stale_count;
    }
}

void
EventQueue::compactIfBloated()
{
    // Rebuilding is O(n); only worth it once stale entries dominate.
    if (stale_count < 64 || stale_count * 2 < heap.size())
        return;
    std::erase_if(heap, [this](const Entry &e) {
        return !slots[e.slot].armed || slots[e.slot].generation != e.gen;
    });
    std::make_heap(heap.begin(), heap.end(), later);
    stale_count = 0;
}

Tick
EventQueue::nextEventTick() const
{
    vrio_assert(!empty(), "nextEventTick on an empty queue");
    auto *self = const_cast<EventQueue *>(this);
    self->skimTop();
    return heap.front().when;
}

bool
EventQueue::step()
{
    skimTop();
    if (heap.empty())
        return false;
    Entry entry = heap.front();
    std::pop_heap(heap.begin(), heap.end(), later);
    heap.pop_back();
    now_ = entry.when;
    // Move the closure out before invoking: the callback may schedule
    // new events and reallocate the slot vector.
    Callback fn = releaseSlot(entry.slot);
    fn();
    return true;
}

uint64_t
EventQueue::fireTick()
{
    // Precondition: skimTop() ran, so the heap top is live.  Pop every
    // entry sharing the top tick in one pass; successive heap pops
    // come off in (when, seq) order, so the batch preserves the exact
    // order one-at-a-time stepping would use.  Same-tick events
    // scheduled *by* batch members get larger seqs and land in the
    // caller's next fireTick() round — again matching unbatched order.
    const Tick tick = heap.front().when;
    now_ = tick;
    // Swap the scratch buffer out so a callback that re-enters
    // runUntil() on this queue starts from a fresh (empty) buffer
    // instead of clobbering ours.
    std::vector<Entry> batch;
    std::swap(batch, batch_scratch);
    batch.clear();
    while (!heap.empty() && heap.front().when == tick) {
        std::pop_heap(heap.begin(), heap.end(), later);
        batch.push_back(heap.back());
        heap.pop_back();
    }
    uint64_t executed = 0;
    for (const Entry &entry : batch) {
        const Slot &slot = slots[entry.slot];
        if (!slot.armed || slot.generation != entry.gen) {
            // Cancelled: either a stale heap entry we popped (skimTop
            // would have dropped it) or cancelled by an earlier batch
            // member after the pop; cancelSlot counted both as stale
            // heap residents, so square the books here.
            if (stale_count > 0)
                --stale_count;
            continue;
        }
        Callback fn = releaseSlot(entry.slot);
        fn();
        ++executed;
    }
    std::swap(batch, batch_scratch);
    if (tm_fired) {
        tm_fired->add(executed);
        tm_per_tick->record(executed);
        tm_depth->record(live_count);
    }
    return executed;
}

uint64_t
EventQueue::runUntil(Tick limit)
{
    uint64_t executed = 0;
    while (true) {
        skimTop();
        if (heap.empty() || heap.front().when > limit) {
            // Time advances to the limit even when idle, so periodic
            // reporting and utilization windows line up.
            if (limit > now_)
                now_ = limit;
            return executed;
        }
        executed += fireTick();
    }
}

uint64_t
EventQueue::runToCompletion()
{
    uint64_t executed = 0;
    while (true) {
        skimTop();
        if (heap.empty())
            return executed;
        executed += fireTick();
    }
}

} // namespace vrio::sim
