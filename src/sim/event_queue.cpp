#include "sim/event_queue.hpp"

#include <utility>

#include "util/logging.hpp"

namespace vrio::sim {

void
EventHandle::cancel()
{
    if (state)
        state->cancelled = true;
}

bool
EventHandle::pending() const
{
    return state && !state->cancelled && !state->fired;
}

EventHandle
EventQueue::scheduleAt(Tick when, std::function<void()> fn)
{
    vrio_assert(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    EventHandle handle;
    handle.state = std::make_shared<EventHandle::State>();
    heap.push(Entry{when, next_seq++, std::move(fn), handle.state});
    return handle;
}

EventHandle
EventQueue::schedule(Tick delay, std::function<void()> fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::skim()
{
    while (!heap.empty() && heap.top().state->cancelled)
        heap.pop();
}

bool
EventQueue::empty() const
{
    // skim() is non-const; emulate by checking live entries lazily.
    auto *self = const_cast<EventQueue *>(this);
    self->skim();
    return heap.empty();
}

Tick
EventQueue::nextEventTick() const
{
    vrio_assert(!empty(), "nextEventTick on an empty queue");
    return heap.top().when;
}

bool
EventQueue::step()
{
    skim();
    if (heap.empty())
        return false;
    Entry entry = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    now_ = entry.when;
    entry.state->fired = true;
    entry.fn();
    return true;
}

uint64_t
EventQueue::runUntil(Tick limit)
{
    uint64_t executed = 0;
    while (true) {
        skim();
        if (heap.empty() || heap.top().when > limit) {
            // Time advances to the limit even when idle, so periodic
            // reporting and utilization windows line up.
            if (limit > now_)
                now_ = limit;
            return executed;
        }
        step();
        ++executed;
    }
}

uint64_t
EventQueue::runToCompletion()
{
    uint64_t executed = 0;
    while (step())
        ++executed;
    return executed;
}

} // namespace vrio::sim
