/**
 * @file
 * The event queue at the heart of the discrete-event simulator.
 *
 * Events are closures scheduled at absolute ticks.  Ties are broken by
 * insertion order, which makes simulations fully deterministic for a
 * given seed.  Events can be cancelled (used heavily by the
 * retransmission timers of the vRIO block protocol).
 */
#ifndef VRIO_SIM_EVENT_QUEUE_HPP
#define VRIO_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/ticks.hpp"

namespace vrio::sim {

/**
 * Handle to a scheduled event.  Default-constructed handles are inert.
 * The handle does not own the event; cancelling after the event fired
 * is a harmless no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent a pending event from firing. */
    void cancel();
    /** True if the event is still scheduled and not cancelled. */
    bool pending() const;

  private:
    friend class EventQueue;
    struct State
    {
        bool cancelled = false;
        bool fired = false;
    };
    std::shared_ptr<State> state;
};

class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventHandle scheduleAt(Tick when, std::function<void()> fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventHandle schedule(Tick delay, std::function<void()> fn);

    /** True when no runnable events remain. */
    bool empty() const;

    /** Next pending event time; panics when empty. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Time stops at the last executed event (or at @p limit if that is
     * earlier than the next event).
     *
     * @return number of events executed.
     */
    uint64_t runUntil(Tick limit);

    /** Run until no events remain. */
    uint64_t runToCompletion();

    /** Execute exactly one event if one exists; returns false if idle. */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<EventHandle::State> state;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick now_ = 0;
    uint64_t next_seq = 0;

    /** Drop cancelled entries from the top of the heap. */
    void skim();
};

} // namespace vrio::sim

#endif // VRIO_SIM_EVENT_QUEUE_HPP
