/**
 * @file
 * The event queue at the heart of the discrete-event simulator.
 *
 * Events are closures scheduled at absolute ticks.  Ties are broken by
 * insertion order, which makes simulations fully deterministic for a
 * given seed.  Events can be cancelled (used heavily by the
 * retransmission timers of the vRIO block protocol).
 *
 * Hot-path design: the heap holds 24-byte POD entries; the callback
 * itself lives in a free-listed slot pool and is stored inline (no
 * heap closure) for captures up to ~96 bytes.  Handles refer to slots
 * by (index, generation) — no shared_ptr state — so cancellation is a
 * generation check.  Cancelled entries are removed from the heap
 * lazily; compaction keeps long-lived cancelled timers (retransmit
 * pattern) from bloating the heap.
 */
#ifndef VRIO_SIM_EVENT_QUEUE_HPP
#define VRIO_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "sim/small_function.hpp"
#include "sim/ticks.hpp"
#include "telemetry/metrics.hpp"

namespace vrio::sim {

class EventQueue;

/**
 * Handle to a scheduled event.  Default-constructed handles are inert.
 * The handle does not own the event; cancelling after the event fired
 * is a harmless no-op, and a stale handle can never affect a later
 * event that reuses the same slot (the generation check fails).
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent a pending event from firing. */
    void cancel();
    /** True if the event is still scheduled and not cancelled. */
    bool pending() const;

  private:
    friend class EventQueue;
    EventQueue *queue = nullptr;
    uint32_t slot = 0;
    uint32_t generation = 0;
};

class EventQueue
{
  public:
    /** Callback type; inline up to 96 bytes of capture. */
    using Callback = SmallFunction<void(), 96>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventHandle scheduleAt(Tick when, Callback fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventHandle schedule(Tick delay, Callback fn);

    /** True when no runnable events remain. */
    bool empty() const { return live_count == 0; }

    /** Next pending event time; panics when empty. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Time stops at the last executed event (or at @p limit if that is
     * earlier than the next event).
     *
     * Events sharing a tick are popped from the heap in one batch
     * (amortizing the heap sift and the top-skimming checks); the
     * execution order is identical to one-at-a-time stepping because
     * pops yield (when, seq) order and same-tick events scheduled by a
     * batch member get larger seqs, placing them in a follow-up batch.
     *
     * @return number of events executed.
     */
    uint64_t runUntil(Tick limit);

    /** Run until no events remain. */
    uint64_t runToCompletion();

    /** Execute exactly one event if one exists; returns false if idle. */
    bool step();

    /**
     * Bind telemetry handles (all three or none).  Unattached (the
     * default, and the state of every standalone queue) the hot path
     * pays exactly one null-pointer test per same-tick batch.
     * `Simulation` attaches its own hub's handles at construction.
     */
    void
    attachTelemetry(telemetry::Counter *fired,
                    telemetry::LogHistogram *per_tick,
                    telemetry::LogHistogram *depth)
    {
        tm_fired = fired;
        tm_per_tick = per_tick;
        tm_depth = depth;
    }

    // -- introspection (tests / microbenchmarks) -------------------
    /** Live (scheduled, not fired/cancelled) events. */
    size_t liveEvents() const { return live_count; }
    /** Heap entries resident, including lazily-deleted ones. */
    size_t heapSize() const { return heap.size(); }
    /** Callback slots ever allocated (pool high-water mark). */
    size_t slotCapacity() const { return slots.size(); }

  private:
    friend class EventHandle;

    static constexpr uint32_t kNoSlot = UINT32_MAX;

    /**
     * Pooled callback storage.  `generation` increments every time the
     * slot is released (fire or cancel), invalidating old handles.
     */
    struct Slot
    {
        Callback fn;
        uint32_t generation = 0;
        uint32_t next_free = kNoSlot;
        bool armed = false;
    };

    /** POD heap entry; the closure stays in the slot pool. */
    struct Entry
    {
        Tick when;
        uint64_t seq;
        uint32_t slot;
        uint32_t gen;
    };

    /** std::push_heap is a max-heap; invert to pop earliest first. */
    static bool
    later(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    std::vector<Entry> heap;
    std::vector<Slot> slots;
    /** Reused batch buffer for same-tick firing (see fireTick). */
    std::vector<Entry> batch_scratch;
    uint32_t free_head = kNoSlot;
    size_t live_count = 0;   ///< armed slots
    size_t stale_count = 0;  ///< cancelled entries still in the heap
    Tick now_ = 0;
    uint64_t next_seq = 0;

    // Telemetry handles; null when no Simulation owns this queue.
    telemetry::Counter *tm_fired = nullptr;
    telemetry::LogHistogram *tm_per_tick = nullptr;
    telemetry::LogHistogram *tm_depth = nullptr;

    uint32_t allocSlot(Callback fn);
    /** Take the callback out and recycle the slot. */
    Callback releaseSlot(uint32_t slot);

    bool cancelSlot(uint32_t slot, uint32_t gen);
    bool slotPending(uint32_t slot, uint32_t gen) const;

    /** Pop and run every live entry at the top tick; returns count. */
    uint64_t fireTick();

    /** Drop lazily-deleted entries from the top of the heap. */
    void skimTop();
    /** Rebuild the heap without stale entries once they dominate. */
    void compactIfBloated();
};

} // namespace vrio::sim

#endif // VRIO_SIM_EVENT_QUEUE_HPP
