#include "sim/random.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace vrio::sim {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
Random::splitMix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Random::Random(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitMix64(x);
}

uint64_t
Random::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Random::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Random::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Random::uniformInt(uint64_t lo, uint64_t hi)
{
    vrio_assert(lo <= hi, "uniformInt: lo > hi");
    uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % span;
}

bool
Random::bernoulli(double p)
{
    return uniform() < p;
}

double
Random::exponential(double mean)
{
    vrio_assert(mean > 0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u == 0.0);
    return -mean * std::log(u);
}

double
Random::normal(double mean, double stddev)
{
    double u1;
    do {
        u1 = uniform();
    } while (u1 == 0.0);
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Random::lognormalMean(double mean, double sigma)
{
    vrio_assert(mean > 0, "lognormal mean must be positive");
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
    double mu = std::log(mean) - sigma * sigma / 2.0;
    return std::exp(normal(mu, sigma));
}

Random
Random::split()
{
    return Random(next());
}

void
Random::jump()
{
    // Standard xoshiro256** jump polynomial (equivalent to 2^128
    // next() calls), from the reference implementation.
    static constexpr uint64_t kJump[] = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
    uint64_t t[4] = {0, 0, 0, 0};
    for (uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (uint64_t(1) << b)) {
                t[0] ^= s[0];
                t[1] ^= s[1];
                t[2] ^= s[2];
                t[3] ^= s[3];
            }
            next();
        }
    }
    s[0] = t[0];
    s[1] = t[1];
    s[2] = t[2];
    s[3] = t[3];
}

Random
Random::split(uint64_t label) const
{
    // Feed (state, label) through the splitMix64 chain the seed
    // constructor uses, so even adjacent labels decorrelate fully.
    uint64_t x = 0x9e3779b97f4a7c15ull ^ label;
    Random out(0);
    for (int i = 0; i < 4; ++i) {
        x ^= s[i];
        out.s[i] = splitMix64(x);
    }
    return out;
}

Random
Random::split(std::string_view label) const
{
    // FNV-1a folds the name into a 64-bit stream label.
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : label) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ull;
    }
    return split(h);
}

} // namespace vrio::sim
