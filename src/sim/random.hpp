/**
 * @file
 * Deterministic pseudo-random source (xoshiro256**).
 *
 * A dedicated implementation (rather than <random> engines) keeps
 * experiment results bit-identical across standard library versions,
 * which the regression tests rely on.
 */
#ifndef VRIO_SIM_RANDOM_HPP
#define VRIO_SIM_RANDOM_HPP

#include <cstdint>

namespace vrio::sim {

class Random
{
  public:
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Raw 64 random bits. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t uniformInt(uint64_t lo, uint64_t hi);

    /** True with probability @p p. */
    bool bernoulli(double p);

    /** Exponential with the given mean (inter-arrival times). */
    double exponential(double mean);

    /** Normal via Box-Muller. */
    double normal(double mean, double stddev);

    /**
     * Log-normal parameterized by the target arithmetic mean and the
     * sigma of the underlying normal; used for filebench-style file
     * size distributions (mean 28KB in the Webserver personality).
     */
    double lognormalMean(double mean, double sigma);

    /** Fork an independent stream (for per-VM generators). */
    Random split();

  private:
    uint64_t s[4];

    static uint64_t splitMix64(uint64_t &x);
};

} // namespace vrio::sim

#endif // VRIO_SIM_RANDOM_HPP
