/**
 * @file
 * Deterministic pseudo-random source (xoshiro256**).
 *
 * A dedicated implementation (rather than <random> engines) keeps
 * experiment results bit-identical across standard library versions,
 * which the regression tests rely on.
 */
#ifndef VRIO_SIM_RANDOM_HPP
#define VRIO_SIM_RANDOM_HPP

#include <cstdint>
#include <string_view>

namespace vrio::sim {

class Random
{
  public:
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Raw 64 random bits. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t uniformInt(uint64_t lo, uint64_t hi);

    /** True with probability @p p. */
    bool bernoulli(double p);

    /** Exponential with the given mean (inter-arrival times). */
    double exponential(double mean);

    /** Normal via Box-Muller. */
    double normal(double mean, double stddev);

    /**
     * Log-normal parameterized by the target arithmetic mean and the
     * sigma of the underlying normal; used for filebench-style file
     * size distributions (mean 28KB in the Webserver personality).
     */
    double lognormalMean(double mean, double sigma);

    /** Fork an independent stream (for per-VM generators). */
    Random split();

    // -- seed-sequence API --------------------------------------------
    // Splittable sub-streams so independent random processes (fault
    // injection vs. workload arrivals) and within-cell replication
    // (same sweep cell, k repetitions) never share draws.

    /**
     * Advance this generator by 2^128 steps (the xoshiro256** jump
     * polynomial), partitioning its sequence into non-overlapping
     * blocks.  Replication pattern: copy the generator, jump() the
     * original, hand the copy to the replicate.
     */
    void jump();

    /**
     * Derive an independent labeled substream without disturbing this
     * generator (const: the parent's own draws are unaffected, so
     * attaching a consumer of a substream cannot perturb the parent's
     * schedule).  Equal (state, label) pairs yield equal substreams.
     */
    Random split(uint64_t label) const;

    /** Labeled substream keyed by a human-readable name. */
    Random split(std::string_view label) const;

  private:
    uint64_t s[4];

    static uint64_t splitMix64(uint64_t &x);
};

} // namespace vrio::sim

#endif // VRIO_SIM_RANDOM_HPP
