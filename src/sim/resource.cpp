#include "sim/resource.hpp"

#include <utility>

#include "util/logging.hpp"

namespace vrio::sim {

Resource::Resource(EventQueue &eq, std::string name, unsigned servers)
    : eq(eq), name_(std::move(name)), nservers(servers)
{
    vrio_assert(servers >= 1, "resource needs at least one server");
}

void
Resource::submit(Tick service_time, JobFn on_done)
{
    Job job;
    job.service = service_time;
    job.on_done = std::move(on_done);
    job.enqueued = eq.now();
    if (busy < nservers && !paused_ && queue.empty()) {
        beginService(std::move(job));
    } else {
        ++contended;
        queue.push_back(std::move(job));
    }
}

void
Resource::submitPreempt(Tick service_time, JobFn on_done)
{
    Job job;
    job.service = service_time;
    job.on_done = std::move(on_done);
    job.enqueued = eq.now();
    if (busy < nservers && !paused_) {
        beginService(std::move(job));
    } else {
        ++contended;
        queue.push_back(std::move(job));
    }
}

void
Resource::submitDeferred(ServiceFn make_job, JobFn on_done)
{
    Job job;
    job.service = 0;
    job.make_service = std::move(make_job);
    job.on_done = std::move(on_done);
    job.enqueued = eq.now();
    if (busy < nservers && !paused_ && queue.empty()) {
        beginService(std::move(job));
    } else {
        ++contended;
        queue.push_back(std::move(job));
    }
}

void
Resource::setPaused(bool paused)
{
    if (paused_ == paused)
        return;
    paused_ = paused;
    // Resuming drains the backlog onto every free server; each
    // completion keeps the drain going through startNext() as usual.
    while (!paused_ && !queue.empty() && busy < nservers)
        startNext();
}

void
Resource::beginService(Job job)
{
    ++busy;
    Tick wait = eq.now() - job.enqueued;
    wait_hist.add(ticksToMicros(wait));
    Tick service =
        job.make_service ? job.make_service() : job.service;
    auto done = std::move(job.on_done);
    eq.schedule(service, [this, service, done = std::move(done)]() mutable {
        busy_ticks += service;
        ++completed_;
        --busy;
        if (done)
            done();
        startNext();
    });
}

void
Resource::startNext()
{
    if (!queue.empty() && busy < nservers && !paused_) {
        Job job = std::move(queue.front());
        queue.pop_front();
        beginService(std::move(job));
    }
}

double
Resource::utilizationSince(Tick start_tick) const
{
    Tick now = eq.now();
    if (now <= start_tick)
        return 0.0;
    // busy_ticks only counts *completed* service; good enough for the
    // window sizes used in reporting (>> individual job lengths).
    Tick window = now - start_tick;
    return double(busy_ticks) / double(window * nservers);
}

void
Resource::resetStats()
{
    completed_ = 0;
    contended = 0;
    busy_ticks = 0;
    stats_epoch = eq.now();
    wait_hist.reset();
}

UtilizationSampler::UtilizationSampler(EventQueue &eq, const Resource &res,
                                       Tick window, Tick until)
    : eq(eq), res(res), window(window), until(until)
{
    vrio_assert(window > 0, "sampler window must be positive");
    eq.schedule(window, [this]() { sample(); });
}

void
UtilizationSampler::sample()
{
    Tick busy = res.busyTicks();
    double util =
        double(busy - last_busy) / double(window * res.servers());
    last_busy = busy;
    // Busy time can exceed the window slightly when a long job
    // completes inside it; clamp for presentation.
    if (util > 1.0)
        util = 1.0;
    series_.add(eq.now(), util * 100.0);
    if (until == 0 || eq.now() + window <= until)
        eq.schedule(window, [this]() { sample(); });
}

} // namespace vrio::sim
