/**
 * @file
 * FIFO queueing resources.
 *
 * A Resource models anything that serves one job at a time per server:
 * CPU cores, sidecores/workers, link transmitters, disk channels.
 * Queueing behaviour at shared resources is what produces the paper's
 * contention effects (Fig. 8's latency gap growth, Elvis's sidecore
 * saturation, Fig. 13b's 13 Gbps/sidecore ceiling), so the resource
 * tracks wait-time and utilization statistics natively.
 */
#ifndef VRIO_SIM_RESOURCE_HPP
#define VRIO_SIM_RESOURCE_HPP

#include <deque>
#include <string>

#include "sim/event_queue.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "stats/time_series.hpp"

namespace vrio::sim {

class Resource
{
  public:
    /**
     * @param eq event queue driving this resource.
     * @param name stat-reporting name.
     * @param servers number of identical servers (a dual-socket core
     *        pool is `servers = ncores`; a link transmitter is 1).
     */
    /** Completion/service callbacks; inline up to 64 bytes of capture. */
    using JobFn = SmallFunction<void(), 64>;
    using ServiceFn = SmallFunction<Tick(), 64>;

    Resource(EventQueue &eq, std::string name, unsigned servers = 1);

    /**
     * Enqueue a job of length @p service_time; @p on_done runs at
     * completion time.  Jobs are served strictly FIFO: a submission
     * joins the back of a nonempty queue even when a server is free.
     * The only externally observable free-server/nonempty-queue state
     * is inside a completion callback — the finishing job's server is
     * released before the callback so busyServers() excludes it — so
     * this gate is precisely "a job submitted from a completion
     * callback cannot overtake jobs already waiting".
     */
    void submit(Tick service_time, JobFn on_done);

    /**
     * Like submit() but dispatches ahead of any queued backlog when a
     * server is free.  Models preemptive work — interrupt injection,
     * vCPU exit handling — that a core takes up immediately rather
     * than behind its run queue.
     */
    void submitPreempt(Tick service_time, JobFn on_done);

    /**
     * Like submit() but the job's service time is only determined when
     * service begins (e.g. batched NIC polling whose batch size depends
     * on what has accumulated).  @p make_job returns the service time
     * and is invoked at service start; @p on_done runs at completion.
     * FIFO-gated the same way as submit().
     */
    void submitDeferred(ServiceFn make_job, JobFn on_done);

    const std::string &name() const { return name_; }
    unsigned servers() const { return nservers; }

    /** Jobs completed so far. */
    uint64_t completed() const { return completed_; }
    /** Sum of busy time across all servers. */
    Tick busyTicks() const { return busy_ticks; }
    /** Jobs currently waiting (not in service). */
    size_t queueLength() const { return queue.size(); }
    /** Servers currently serving a job. */
    unsigned busyServers() const { return busy; }
    /** Jobs that found all servers busy and had to wait. */
    uint64_t contendedJobs() const { return contended; }

    /**
     * Pause/resume job admission.  A paused resource finishes jobs
     * already in service but starts nothing new; submissions queue up
     * behind the pause.  Models a wedged worker core: the stall lasts
     * until someone calls setPaused(false), at which point the backlog
     * drains in FIFO order.
     */
    void setPaused(bool paused);
    bool paused() const { return paused_; }

    /** Distribution of per-job queueing delay (microseconds). */
    const stats::Histogram &waitHistogram() const { return wait_hist; }

    /** Mean utilization per server over [start_tick, now]. */
    double utilizationSince(Tick start_tick) const;

    /** Reset statistics (does not affect in-flight jobs). */
    void resetStats();

  private:
    struct Job
    {
        Tick service;
        ServiceFn make_service;
        JobFn on_done;
        Tick enqueued;
    };

    EventQueue &eq;
    std::string name_;
    unsigned nservers;
    unsigned busy = 0;
    bool paused_ = false;
    std::deque<Job> queue;

    uint64_t completed_ = 0;
    uint64_t contended = 0;
    Tick busy_ticks = 0;
    Tick stats_epoch = 0;
    stats::Histogram wait_hist;

    void startNext();
    void beginService(Job job);
};

/**
 * Periodically samples a resource's utilization into a TimeSeries;
 * drives the CPU-usage traces of Fig. 15.
 */
class UtilizationSampler
{
  public:
    /**
     * Sample every @p window ticks starting one window from now.
     * Stops sampling after @p until (0 = forever).
     */
    UtilizationSampler(EventQueue &eq, const Resource &res, Tick window,
                       Tick until = 0);

    const stats::TimeSeries &series() const { return series_; }

  private:
    EventQueue &eq;
    const Resource &res;
    Tick window;
    Tick until;
    Tick last_busy = 0;
    stats::TimeSeries series_;

    void sample();
};

} // namespace vrio::sim

#endif // VRIO_SIM_RESOURCE_HPP
