#include "sim/simulation.hpp"

#include <algorithm>
#include <cstdlib>

#include "telemetry/export.hpp"
#include "util/logging.hpp"

namespace vrio::sim {

Simulation::Simulation(const Config &cfg)
{
    unsigned n = cfg.shards ? cfg.shards : 1;
    threads_ = std::clamp(cfg.threads ? cfg.threads : 1u, 1u, n);

    Random root(cfg.seed);
    shards_.reserve(n);
    for (unsigned s = 0; s < n; ++s) {
        auto sh = std::make_unique<Shard>();
        // Shard 0 keeps the seed's historical stream bit-for-bit so a
        // 1-shard Config run equals the legacy constructor; the other
        // shards get independent labeled substreams.
        sh->rng = s == 0 ? root : root.split(uint64_t(s));
        sh->inbox.resize(n);
        shards_.push_back(std::move(sh));
    }

    if (n > 1)
        telem.metrics.enableSharding(n);
    auto *fired = &telem.metrics.counter("sim.events.fired");
    auto *per_tick = &telem.metrics.histogram("sim.events.per_tick");
    auto *depth = &telem.metrics.histogram("sim.queue.depth");
    for (auto &sh : shards_)
        sh->eq.attachTelemetry(fired, per_tick, depth);

    // Arm the tracer when a trace export is requested for the process;
    // tests and benches can also arm it programmatically.  Span
    // emission is single-threaded by design, so the tracer stays dark
    // in sharded mode — metrics (striped) are the parallel-safe lens.
    if (n == 1 && telemetry::Sink::traceArmed())
        telem.tracer.enable();
}

Simulation::Simulation(uint64_t seed) : Simulation(Config{seed, 1, 1}) {}

Simulation::~Simulation()
{
    if (!workers_.empty()) {
        {
            std::lock_guard lk(pool_mu_);
            shutdown_.store(true, std::memory_order_release);
        }
        pool_cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }
}

EventQueue &
Simulation::shardEvents(unsigned s)
{
    vrio_assert(s < shards_.size(), "shard index ", s, " out of range");
    return shards_[s]->eq;
}

Random &
Simulation::shardRandom(unsigned s)
{
    vrio_assert(s < shards_.size(), "shard index ", s, " out of range");
    return shards_[s]->rng;
}

void
Simulation::noteCrossShardLink(uint32_t a, uint32_t b, Tick latency)
{
    if (shards_.size() == 1 || a == b)
        return;
    vrio_assert(!in_region_, "cross-shard wiring during a run");
    vrio_assert(latency > 0, "cross-shard link ", a, "->", b,
                " needs nonzero latency for conservative lookahead");
    if (lookahead_ == 0 || latency < lookahead_)
        lookahead_ = latency;
}

void
Simulation::scheduleCross(uint32_t dst, Tick delay, EventQueue::Callback fn)
{
    if (shards_.size() == 1) {
        shards_[0]->eq.schedule(delay, std::move(fn));
        return;
    }
    vrio_assert(dst < shards_.size(), "shard index ", dst, " out of range");
    auto &t = detail::t_shard;
    bool bound = t.sim == this;
    uint32_t src = bound ? t.index : 0;
    Tick when = (bound ? t.eq->now() : shards_[0]->eq.now()) + delay;
    if (src == dst) {
        shards_[dst]->eq.scheduleAt(when, std::move(fn));
        return;
    }
    vrio_assert(delay >= lookahead_, "cross-shard delay ", delay,
                " below lookahead ", lookahead_);
    if (!in_region_) {
        // Wiring/handshake time: destination queues are quiescent, so
        // schedule directly instead of waiting for a barrier.
        shards_[dst]->eq.scheduleAt(when, std::move(fn));
        return;
    }
    shards_[dst]->inbox[src].push_back({when, std::move(fn)});
}

void
Simulation::runUntil(Tick limit)
{
    if (shards_.size() == 1) {
        shards_[0]->eq.runUntil(limit);
        return;
    }
    epochLoop(limit, false);
}

void
Simulation::runToCompletion()
{
    if (shards_.size() == 1) {
        shards_[0]->eq.runToCompletion();
        return;
    }
    epochLoop(0, true);
}

/**
 * Conservative epoch loop.  Each window: T = min next-event tick over
 * all shards, H = min(T + lookahead - 1, limit); every shard runs its
 * own queue up to H concurrently; the barrier merges mailboxes.  Any
 * event executing at t <= H sends cross-shard work for t + delay >=
 * T + lookahead = H + 1 > H, i.e. strictly beyond every shard's clock
 * at the barrier — so no shard ever sees an arrival in its past.
 */
void
Simulation::epochLoop(Tick limit, bool to_completion)
{
    vrio_assert(!in_region_, "re-entrant Simulation run");
    // No declared cross-shard edge means the shards are independent:
    // each may run to the horizon in a single window.
    const Tick ahead = lookahead_ ? lookahead_ - 1 : ~Tick(0);

    in_region_ = true;
    openRegion();
    while (true) {
        bool any = false;
        Tick t = 0;
        for (auto &sh : shards_) {
            if (sh->eq.empty())
                continue;
            Tick e = sh->eq.nextEventTick();
            if (!any || e < t) {
                t = e;
                any = true;
            }
        }
        if (!any || (!to_completion && t > limit))
            break;
        Tick h = t + std::min(ahead, ~Tick(0) - t); // saturating
        if (!to_completion && h > limit)
            h = limit;
        runEpoch(h);
        drainInboxes();
    }
    closeRegion();
    in_region_ = false;

    if (!to_completion) {
        // Advance idle shard clocks to the horizon (runUntil on an
        // idle queue just moves now_) so per-shard clocks agree with
        // the single-shard contract: now() == limit after runUntil.
        for (auto &sh : shards_)
            sh->eq.runUntil(limit);
    }
}

void
Simulation::runEpoch(Tick horizon)
{
    epoch_limit_ = horizon;
    if (threads_ == 1) {
        runShardSlice(0, horizon);
        return;
    }
    epoch_done_.store(0, std::memory_order_relaxed);
    // Release: publishes epoch_limit_ and all pre-epoch state (the
    // drained mailboxes of the previous window) to the workers.
    epoch_seq_.fetch_add(1, std::memory_order_release);
    runShardSlice(0, horizon);
    while (epoch_done_.load(std::memory_order_acquire) != threads_ - 1)
        std::this_thread::yield();
}

void
Simulation::runShardSlice(unsigned slot, Tick horizon)
{
    // Static assignment: shard s is always driven as slot s % threads,
    // so the shard->thread map is a function of the config alone.
    for (unsigned s = slot; s < shards_.size(); s += threads_) {
        ShardScope scope(*this, s);
        shards_[s]->eq.runUntil(horizon);
    }
}

void
Simulation::drainInboxes()
{
    // Deterministic merge: destinations in shard order, sources in
    // shard order, entries in source send order.  The sequence numbers
    // the destination queue hands out are therefore a pure function of
    // the shard count — never of the thread count or of which worker
    // finished first.
    for (auto &dst : shards_) {
        for (auto &box : dst->inbox) {
            for (auto &ev : box)
                dst->eq.scheduleAt(ev.when, std::move(ev.fn));
            box.clear();
        }
    }
}

void
Simulation::openRegion()
{
    if (threads_ == 1)
        return;
    if (workers_.empty()) {
        workers_.reserve(threads_ - 1);
        for (unsigned w = 1; w < threads_; ++w)
            workers_.emplace_back([this, w] { workerMain(w); });
    }
    {
        std::lock_guard lk(pool_mu_);
        region_open_ = true;
        region_live_.store(true, std::memory_order_release);
    }
    pool_cv_.notify_all();
}

void
Simulation::closeRegion()
{
    if (threads_ == 1)
        return;
    {
        std::lock_guard lk(pool_mu_);
        region_open_ = false;
    }
    region_live_.store(false, std::memory_order_release);
}

void
Simulation::workerMain(unsigned slot)
{
    uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock lk(pool_mu_);
            pool_cv_.wait(lk, [this] {
                return region_open_ ||
                       shutdown_.load(std::memory_order_relaxed);
            });
        }
        if (shutdown_.load(std::memory_order_acquire))
            return;
        // Inside a run region: spin (yielding) on the epoch counter.
        // Yield keeps oversubscribed configs (more threads than cores)
        // from starving the coordinator.
        while (region_live_.load(std::memory_order_acquire)) {
            uint64_t e = epoch_seq_.load(std::memory_order_acquire);
            if (e == seen) {
                std::this_thread::yield();
                continue;
            }
            seen = e;
            runShardSlice(slot, epoch_limit_);
            epoch_done_.fetch_add(1, std::memory_order_acq_rel);
        }
    }
}

ShardScope::ShardScope(Simulation &sim, uint32_t shard)
{
    prev_ = detail::t_shard;
    prev_slot_ = telemetry::shardSlot();
    uint32_t s = sim.shardCount() > 1 ? shard : 0;
    detail::t_shard = {&sim, &sim.shardEvents(s), &sim.shardRandom(s), s};
    telemetry::setShardSlot(s);
}

ShardScope::~ShardScope()
{
    detail::t_shard = prev_;
    telemetry::setShardSlot(prev_slot_);
}

} // namespace vrio::sim
