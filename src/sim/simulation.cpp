#include "sim/simulation.hpp"

namespace vrio::sim {

Simulation::Simulation(uint64_t seed) : rng(seed) {}

} // namespace vrio::sim
