#include "sim/simulation.hpp"

#include <cstdlib>

#include "telemetry/export.hpp"

namespace vrio::sim {

Simulation::Simulation(uint64_t seed) : rng(seed)
{
    eq.attachTelemetry(&telem.metrics.counter("sim.events.fired"),
                       &telem.metrics.histogram("sim.events.per_tick"),
                       &telem.metrics.histogram("sim.queue.depth"));
    // Arm the tracer when a trace export is requested for the process;
    // tests and benches can also arm it programmatically.
    if (telemetry::Sink::traceArmed())
        telem.tracer.enable();
}

} // namespace vrio::sim
