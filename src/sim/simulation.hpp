/**
 * @file
 * Top-level simulation context: event queue + RNG + statistics.
 */
#ifndef VRIO_SIM_SIMULATION_HPP
#define VRIO_SIM_SIMULATION_HPP

#include <string>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "stats/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace vrio::sim {

class Simulation
{
  public:
    explicit Simulation(uint64_t seed = 1);

    EventQueue &events() { return eq; }
    Random &random() { return rng; }
    stats::Registry &stats() { return registry; }
    telemetry::Hub &telemetry() { return telem; }
    const telemetry::Hub &telemetry() const { return telem; }

    Tick now() const { return eq.now(); }

    /** Run until @p limit (absolute tick) or until idle. */
    void runUntil(Tick limit) { eq.runUntil(limit); }
    /** Run until no events remain. */
    void runToCompletion() { eq.runToCompletion(); }

    /** Schedule @p fn after @p delay. */
    EventHandle after(Tick delay, EventQueue::Callback fn)
    {
        return eq.schedule(delay, std::move(fn));
    }

  private:
    EventQueue eq;
    Random rng;
    stats::Registry registry;
    telemetry::Hub telem;
};

/**
 * Base for named objects that live inside a simulation (machines,
 * NICs, devices, workers).  Holds the back-reference and a dotted
 * instance name used as the stats prefix.
 */
class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name)
        : sim_(sim), name_(std::move(name))
    {}
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    Simulation &sim() const { return sim_; }
    const std::string &name() const { return name_; }
    Tick now() const { return sim_.now(); }

  protected:
    stats::Counter &
    statCounter(const std::string &leaf) const
    {
        return sim_.stats().counter(name_ + "." + leaf);
    }
    stats::Histogram &
    statHistogram(const std::string &leaf) const
    {
        return sim_.stats().histogram(name_ + "." + leaf);
    }

  private:
    Simulation &sim_;
    std::string name_;
};

} // namespace vrio::sim

#endif // VRIO_SIM_SIMULATION_HPP
