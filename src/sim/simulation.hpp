/**
 * @file
 * Top-level simulation context: event queue(s) + RNG + statistics.
 *
 * A Simulation is either one event loop — the deterministic golden
 * mode every figure is captured with — or a set of per-partition
 * shard loops run under a conservative-lookahead epoch scheme
 * (DESIGN.md §13).  The single-shard path is byte-identical to the
 * historical simulator; sharding changes the event interleaving only
 * across partitions that never share model state.
 *
 * Determinism contract: results are a pure function of (seed, shard
 * count).  The thread count never affects them — shard s is always
 * driven as slot s % threads, every shard owns a private RNG
 * substream, and cross-shard events are merged at epoch barriers in
 * fixed (destination, source, send-order) order, so the same events
 * fire at the same ticks with the same sequence numbers whether one
 * thread or eight drive the shards.
 */
#ifndef VRIO_SIM_SIMULATION_HPP
#define VRIO_SIM_SIMULATION_HPP

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "stats/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace vrio::sim {

class Simulation;

namespace detail {

/**
 * Thread-local binding to the shard this thread is currently
 * constructing for or executing (set by ShardScope).  Lets
 * `Simulation::events()` resolve to the right shard queue without the
 * thousands of existing call sites changing.
 */
struct ShardBinding
{
    Simulation *sim = nullptr;
    EventQueue *eq = nullptr;
    Random *rng = nullptr;
    uint32_t index = 0;
};

inline thread_local ShardBinding t_shard{};

} // namespace detail

class Simulation
{
  public:
    struct Config
    {
        uint64_t seed = 1;
        /**
         * Model partitions.  1 (the default) is the single-threaded
         * golden mode running the historical event loop verbatim.
         */
        unsigned shards = 1;
        /**
         * OS threads driving the shard loops, clamped to [1, shards].
         * Never affects results — only wall-clock.
         */
        unsigned threads = 1;
    };

    explicit Simulation(uint64_t seed = 1);
    explicit Simulation(const Config &cfg);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * The event queue of the calling thread's bound shard; shard 0
     * (the historical single queue) when unbound.
     */
    EventQueue &
    events()
    {
        auto &t = detail::t_shard;
        return t.sim == this ? *t.eq : shards_[0]->eq;
    }

    /** The bound shard's RNG substream (see events()). */
    Random &
    random()
    {
        auto &t = detail::t_shard;
        return t.sim == this ? *t.rng : shards_[0]->rng;
    }

    stats::Registry &stats() { return registry; }
    telemetry::Hub &telemetry() { return telem; }
    const telemetry::Hub &telemetry() const { return telem; }

    /** The bound shard's clock (see events()). */
    Tick
    now() const
    {
        const auto &t = detail::t_shard;
        return t.sim == this ? t.eq->now() : shards_[0]->eq.now();
    }

    unsigned shardCount() const { return unsigned(shards_.size()); }
    unsigned threadCount() const { return threads_; }

    /** Direct access to shard @p s's queue (model wiring only). */
    EventQueue &shardEvents(unsigned s);
    /** Shard @p s's RNG substream (ShardScope plumbing). */
    Random &shardRandom(unsigned s);

    /**
     * Shard the calling thread is bound to, 0 when unbound.  Static:
     * safe to call with no Simulation in hand (object constructors).
     */
    static uint32_t
    currentShardIndex()
    {
        return detail::t_shard.sim ? detail::t_shard.index : 0;
    }

    /**
     * Declare a model edge crossing from shard @p a to shard @p b
     * whose events always carry at least @p latency of delay.  The
     * minimum over all declared edges is the conservative lookahead
     * bounding each epoch window.  Must be called during wiring, not
     * mid-run; no-op when single-shard or a == b.
     */
    void noteCrossShardLink(uint32_t a, uint32_t b, Tick latency);

    /** Minimum declared cross-shard latency (0: no cross edges). */
    Tick lookahead() const { return lookahead_; }

    /**
     * Schedule @p fn on shard @p dst at now + @p delay, where "now" is
     * the calling shard's clock.  Same-shard (and single-shard) sends
     * degenerate to a plain schedule; cross-shard sends inside a run
     * are buffered in a per-(dst, src) mailbox and merged at the next
     * epoch barrier.  Cross-shard @p delay must be >= the lookahead —
     * that is what makes the epoch window safe.
     */
    void scheduleCross(uint32_t dst, Tick delay, EventQueue::Callback fn);

    /** Run until @p limit (absolute tick) or until idle. */
    void runUntil(Tick limit);
    /** Run until no events remain. */
    void runToCompletion();

    /** Schedule @p fn after @p delay on the calling shard's queue. */
    EventHandle
    after(Tick delay, EventQueue::Callback fn)
    {
        return events().schedule(delay, std::move(fn));
    }

  private:
    struct CrossEvent
    {
        Tick when;
        EventQueue::Callback fn;
    };

    struct Shard
    {
        EventQueue eq;
        Random rng{1};
        /**
         * inbox[src]: cross-shard arrivals.  Appended only by src's
         * driving thread during an epoch; drained only by the
         * coordinator at the barrier.  No two threads ever touch the
         * same vector concurrently, so no lock is needed.
         */
        std::vector<std::vector<CrossEvent>> inbox;
    };

    void epochLoop(Tick limit, bool to_completion);
    void runEpoch(Tick horizon);
    void runShardSlice(unsigned slot, Tick horizon);
    void drainInboxes();
    void openRegion();
    void closeRegion();
    void workerMain(unsigned slot);

    std::vector<std::unique_ptr<Shard>> shards_;
    unsigned threads_ = 1;
    Tick lookahead_ = 0;
    bool in_region_ = false;

    stats::Registry registry;
    telemetry::Hub telem;

    // -- worker pool (lazy; only ever populated when threads_ > 1) ----
    std::vector<std::thread> workers_;
    std::mutex pool_mu_;
    std::condition_variable pool_cv_;
    /** Guarded by pool_mu_; workers park on pool_cv_ between runs. */
    bool region_open_ = false;
    /** Lock-free mirror of region_open_ for the workers' spin loop. */
    std::atomic<bool> region_live_{false};
    std::atomic<bool> shutdown_{false};
    /** Monotonic epoch number; bumping it releases the next window. */
    std::atomic<uint64_t> epoch_seq_{0};
    std::atomic<unsigned> epoch_done_{0};
    /** Published before the epoch_seq_ release bump. */
    Tick epoch_limit_ = 0;
};

/**
 * RAII shard binding: while in scope, this thread's
 * `Simulation::events()/random()/now()` resolve to @p shard, objects
 * constructed record it as their home shard, and telemetry bumps land
 * in the shard's counter stripes.  Model factories wrap each
 * partition's construction in one; the epoch engine wraps each
 * shard's execution slice.
 */
class ShardScope
{
  public:
    ShardScope(Simulation &sim, uint32_t shard);
    ~ShardScope();

    ShardScope(const ShardScope &) = delete;
    ShardScope &operator=(const ShardScope &) = delete;

  private:
    detail::ShardBinding prev_;
    unsigned prev_slot_;
};

/**
 * Base for named objects that live inside a simulation (machines,
 * NICs, devices, workers).  Holds the back-reference and a dotted
 * instance name used as the stats prefix.
 */
class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name)
        : sim_(sim), name_(std::move(name))
    {}
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    Simulation &sim() const { return sim_; }
    const std::string &name() const { return name_; }
    Tick now() const { return sim_.now(); }

    /** Shard this object was constructed under (0 when unsharded). */
    uint32_t homeShard() const { return home_shard_; }

  protected:
    stats::Counter &
    statCounter(const std::string &leaf) const
    {
        return sim_.stats().counter(name_ + "." + leaf);
    }
    stats::Histogram &
    statHistogram(const std::string &leaf) const
    {
        return sim_.stats().histogram(name_ + "." + leaf);
    }

  private:
    Simulation &sim_;
    std::string name_;
    uint32_t home_shard_ = Simulation::currentShardIndex();
};

} // namespace vrio::sim

#endif // VRIO_SIM_SIMULATION_HPP
