/**
 * @file
 * Small-buffer-optimized move-only callable.
 *
 * The event queue fires tens of millions of closures per simulated
 * second; std::function heap-allocates for anything beyond two words
 * of capture, which made closure allocation the single hottest line
 * in end-to-end benches.  SmallFunction stores captures up to
 * `Inline` bytes in place (no allocation, no atomic refcounts) and
 * falls back to the heap only for oversized captures.
 *
 * Move-only on purpose: event callbacks are consumed exactly once,
 * and copyability is what forces std::function to box everything.
 */
#ifndef VRIO_SIM_SMALL_FUNCTION_HPP
#define VRIO_SIM_SMALL_FUNCTION_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace vrio::sim {

template <typename Sig, size_t Inline = 48> class SmallFunction;

template <typename R, typename... Args, size_t Inline>
class SmallFunction<R(Args...), Inline>
{
  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    /** Wrap any callable; inline when it fits, heap-boxed otherwise. */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, SmallFunction>>>
    SmallFunction(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable signature mismatch");
        if constexpr (sizeof(Fn) <= Inline &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (storage()) Fn(std::forward<F>(fn));
            invoke_ = [](void *s, Args &&...args) -> R {
                return (*std::launder(reinterpret_cast<Fn *>(s)))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](Op op, void *s, void *dst) {
                Fn *self = std::launder(reinterpret_cast<Fn *>(s));
                if (op == Op::MoveTo)
                    ::new (dst) Fn(std::move(*self));
                self->~Fn();
            };
        } else {
            *reinterpret_cast<Fn **>(storage()) =
                new Fn(std::forward<F>(fn));
            invoke_ = [](void *s, Args &&...args) -> R {
                return (**reinterpret_cast<Fn **>(s))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](Op op, void *s, void *dst) {
                Fn **self = reinterpret_cast<Fn **>(s);
                if (op == Op::MoveTo) {
                    *reinterpret_cast<Fn **>(dst) = *self;
                    return; // ownership transferred, nothing to delete
                }
                delete *self;
            };
        }
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(storage(), std::forward<Args>(args)...);
    }

  private:
    enum class Op { MoveTo, Destroy };
    using InvokeFn = R (*)(void *, Args &&...);
    using ManageFn = void (*)(Op, void *, void *);

    alignas(std::max_align_t) unsigned char buf[Inline];
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;

    void *storage() { return buf; }

    void
    reset()
    {
        if (manage_)
            manage_(Op::Destroy, storage(), nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        if (other.manage_) {
            other.manage_(Op::MoveTo, other.storage(), storage());
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }
};

} // namespace vrio::sim

#endif // VRIO_SIM_SMALL_FUNCTION_HPP
