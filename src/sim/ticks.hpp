/**
 * @file
 * Simulated-time definitions.
 *
 * Ticks are picoseconds.  Picosecond resolution keeps cycle-accurate
 * arithmetic exact for the clock rates in the paper's testbed
 * (2.2/2.7/2.93 GHz) while still allowing ~5000 hours of simulated
 * time in 64 bits.
 */
#ifndef VRIO_SIM_TICKS_HPP
#define VRIO_SIM_TICKS_HPP

#include <cstdint>

namespace vrio::sim {

using Tick = uint64_t;

constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000 * kPicosecond;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Ticks taken by @p cycles CPU cycles at @p ghz GHz. */
constexpr Tick
cyclesToTicks(double cycles, double ghz)
{
    // cycles / (ghz * 1e9 Hz) seconds = cycles / ghz nanoseconds.
    // Round to nearest to keep e.g. 2200 cycles @ 2.2 GHz == 1 us.
    return Tick(cycles / ghz * double(kNanosecond) + 0.5);
}

/** Ticks needed to serialize @p bytes at @p gbps gigabits per second. */
constexpr Tick
bytesToTicks(uint64_t bytes, double gbps)
{
    // bytes*8 bits at gbps*1e9 bit/s = bytes*8/gbps nanoseconds.
    return Tick(double(bytes) * 8.0 / gbps * double(kNanosecond));
}

/** Convert ticks to (double) microseconds for reporting. */
constexpr double
ticksToMicros(Tick t)
{
    return double(t) / double(kMicrosecond);
}

/** Convert ticks to (double) seconds for reporting. */
constexpr double
ticksToSeconds(Tick t)
{
    return double(t) / double(kSecond);
}

} // namespace vrio::sim

#endif // VRIO_SIM_TICKS_HPP
