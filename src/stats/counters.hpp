/**
 * @file
 * Trivial counter/gauge/running-average statistics.
 */
#ifndef VRIO_STATS_COUNTERS_HPP
#define VRIO_STATS_COUNTERS_HPP

#include <cstdint>

namespace vrio::stats {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(uint64_t by = 1) { count_ += by; }
    uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    uint64_t count_ = 0;
};

/** Last-value gauge. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/**
 * Numerically stable running mean/variance (Welford's algorithm);
 * used where retaining samples would be wasteful, e.g. per-packet
 * queueing delays in long throughput runs.
 */
class RunningStats
{
  public:
    void add(double v);
    uint64_t count() const { return n; }
    double mean() const { return n ? m : 0.0; }
    /** Population variance. */
    double variance() const { return n > 1 ? s / double(n) : 0.0; }
    double min() const { return n ? min_ : 0.0; }
    double max() const { return n ? max_ : 0.0; }
    void reset() { *this = RunningStats(); }

  private:
    uint64_t n = 0;
    double m = 0;
    double s = 0;
    double min_ = 0;
    double max_ = 0;
};

inline void
RunningStats::add(double v)
{
    ++n;
    if (n == 1) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    double delta = v - m;
    m += delta / double(n);
    s += delta * (v - m);
}

} // namespace vrio::stats

#endif // VRIO_STATS_COUNTERS_HPP
