#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace vrio::stats {

void
Histogram::add(double value)
{
    samples.push_back(value);
    total += value;
    sorted = false;
}

double
Histogram::mean() const
{
    return samples.empty() ? 0.0 : total / double(samples.size());
}

double
Histogram::stddev() const
{
    if (samples.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0;
    for (double s : samples)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / double(samples.size()));
}

double
Histogram::min() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.front();
}

double
Histogram::max() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.back();
}

double
Histogram::percentile(double p) const
{
    vrio_assert(p >= 0.0 && p <= 100.0, "percentile ", p, " out of range");
    if (samples.empty())
        return 0.0;
    ensureSorted();
    if (p >= 100.0)
        return samples.back();
    // Nearest-rank: ceil(p/100 * n) with 1-based rank.
    size_t rank = size_t(std::ceil(p / 100.0 * double(samples.size())));
    if (rank == 0)
        rank = 1;
    return samples[rank - 1];
}

double
Histogram::percentileInterpolated(double p) const
{
    vrio_assert(p >= 0.0 && p <= 100.0, "percentile ", p, " out of range");
    if (samples.empty())
        return 0.0;
    ensureSorted();
    if (samples.size() == 1)
        return samples.front();
    double rank = p / 100.0 * double(samples.size() - 1);
    size_t lo = size_t(rank);
    if (lo >= samples.size() - 1)
        return samples.back();
    double frac = rank - double(lo);
    return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

void
Histogram::reset()
{
    samples.clear();
    total = 0;
    sorted = false;
}

void
Histogram::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

} // namespace vrio::stats
