/**
 * @file
 * Sample-retaining histogram with exact percentiles.
 *
 * The paper reports both averages (Fig. 7, 9, ...) and deep tail
 * percentiles down to 99.999% and the maximum (Table 4).  Deep tails
 * cannot be recovered from bucketized histograms without careful bucket
 * design, so this histogram retains every sample; the experiment scales
 * in this repository (at most a few million samples per run) make that
 * affordable.
 */
#ifndef VRIO_STATS_HISTOGRAM_HPP
#define VRIO_STATS_HISTOGRAM_HPP

#include <cstdint>
#include <vector>

namespace vrio::stats {

class Histogram
{
  public:
    /** Record one sample. */
    void add(double value);

    /** Number of recorded samples. */
    uint64_t count() const { return samples.size(); }
    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /** Population standard deviation; 0 when empty. */
    double stddev() const;
    double min() const;
    double max() const;
    /** Sum of all samples. */
    double sum() const { return total; }

    /**
     * Exact percentile by nearest-rank on the sorted samples.
     *
     * @param p percentile in [0, 100]; 100 returns the maximum.
     */
    double percentile(double p) const;

    /**
     * Percentile by linear interpolation between closest order
     * statistics (the C = 1 / "exclusive" convention shared by numpy
     * and most SLO tooling): rank = p/100 * (n-1), interpolating
     * between floor and ceil.  Smoother than nearest-rank for deep
     * tails (p999/p9999) over modest sample counts, where
     * nearest-rank jumps a whole sample at a time.
     *
     * @param p percentile in [0, 100]; 0 returns the minimum,
     *          100 the maximum.
     */
    double percentileInterpolated(double p) const;

    /** Drop all samples. */
    void reset();

    /** Read-only access to the raw samples (unsorted). */
    const std::vector<double> &raw() const { return samples; }

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = false;
    double total = 0;

    void ensureSorted() const;
};

} // namespace vrio::stats

#endif // VRIO_STATS_HISTOGRAM_HPP
