#include "stats/registry.hpp"

#include "util/strutil.hpp"

namespace vrio::stats {

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard lk(mu);
    return counters[name];
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard lk(mu);
    return histograms[name];
}

bool
Registry::hasCounter(const std::string &name) const
{
    std::lock_guard lk(mu);
    return counters.count(name) != 0;
}

bool
Registry::hasHistogram(const std::string &name) const
{
    std::lock_guard lk(mu);
    return histograms.count(name) != 0;
}

uint64_t
Registry::counterValue(const std::string &name) const
{
    std::lock_guard lk(mu);
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

std::vector<std::string>
Registry::counterNames(const std::string &prefix) const
{
    std::lock_guard lk(mu);
    std::vector<std::string> out;
    for (const auto &[name, _] : counters) {
        if (name.rfind(prefix, 0) == 0)
            out.push_back(name);
    }
    return out;
}

std::vector<std::string>
Registry::histogramNames(const std::string &prefix) const
{
    std::lock_guard lk(mu);
    std::vector<std::string> out;
    for (const auto &[name, _] : histograms) {
        if (name.rfind(prefix, 0) == 0)
            out.push_back(name);
    }
    return out;
}

std::string
Registry::dump() const
{
    std::lock_guard lk(mu);
    std::string out;
    for (const auto &[name, c] : counters)
        out += strFormat("%-48s %12llu\n", name.c_str(),
                         (unsigned long long)c.value());
    for (const auto &[name, h] : histograms) {
        out += strFormat("%-48s n=%llu mean=%.3f p50=%.3f p99=%.3f "
                         "max=%.3f\n",
                         name.c_str(), (unsigned long long)h.count(),
                         h.mean(), h.percentile(50), h.percentile(99),
                         h.max());
    }
    return out;
}

void
Registry::resetAll()
{
    std::lock_guard lk(mu);
    for (auto &[_, c] : counters)
        c.reset();
    for (auto &[_, h] : histograms)
        h.reset();
}

} // namespace vrio::stats
