/**
 * @file
 * Named statistic registry.
 *
 * Simulation objects register their counters/histograms under
 * hierarchical dotted names ("iohost.worker0.batches") so experiments
 * can dump everything or query specific stats after a run.
 */
#ifndef VRIO_STATS_REGISTRY_HPP
#define VRIO_STATS_REGISTRY_HPP

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/counters.hpp"
#include "stats/histogram.hpp"

namespace vrio::stats {

/**
 * Find-or-create is guarded by a mutex because a few runtime paths
 * (fault injection verdicts, rare IOhost control events) resolve
 * stats by name mid-run, which in a sharded simulation can happen on
 * any shard thread.  Handles stay stable (node-based maps) and the
 * bumps themselves remain plain counters: every individual stat is
 * owned by one shard's objects, so no two threads bump the same one.
 */
class Registry
{
  public:
    /** Find-or-create a counter named @p name. */
    Counter &counter(const std::string &name);
    /** Find-or-create a histogram named @p name. */
    Histogram &histogram(const std::string &name);

    /** True if a counter with this exact name exists. */
    bool hasCounter(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    /** Counter value, or 0 if absent. */
    uint64_t counterValue(const std::string &name) const;

    /** All counter names with the given prefix, sorted. */
    std::vector<std::string> counterNames(const std::string &prefix = "")
        const;
    std::vector<std::string> histogramNames(const std::string &prefix = "")
        const;

    /** Multi-line human-readable dump of every stat. */
    std::string dump() const;

    /** Reset all values (names are retained). */
    void resetAll();

  private:
    mutable std::mutex mu;
    std::map<std::string, Counter> counters;
    std::map<std::string, Histogram> histograms;
};

} // namespace vrio::stats

#endif // VRIO_STATS_REGISTRY_HPP
