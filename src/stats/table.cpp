#include "stats/table.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/strutil.hpp"

namespace vrio::stats {

void
Table::setHeader(std::vector<std::string> names)
{
    vrio_assert(rows.empty(), "setHeader after rows were added");
    header = std::move(names);
}

void
Table::addRow(std::vector<std::string> cells)
{
    vrio_assert(header.empty() || cells.size() == header.size(),
                "row arity ", cells.size(), " != header arity ",
                header.size());
    rows.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &vals,
              int precision)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : vals)
        cells.push_back(strFormat("%.*f", precision, v));
    addRow(std::move(cells));
}

const std::string &
Table::cell(size_t row, size_t col) const
{
    vrio_assert(row < rows.size() && col < rows[row].size(),
                "table cell (", row, ",", col, ") out of range");
    return rows[row][col];
}

std::string
Table::toString() const
{
    // Column widths across header and all rows.
    size_t ncols = header.size();
    for (const auto &r : rows)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = std::max(width[c], header[c].size());
    for (const auto &r : rows) {
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    }

    std::string out = "== " + title_ + " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            // Left-align first column (labels), right-align the rest.
            int pad = int(width[c]);
            out += padTo(cells[c], c == 0 ? -pad : pad);
            if (c + 1 < cells.size())
                out += "  ";
        }
        out += "\n";
    };
    if (!header.empty()) {
        emit(header);
        size_t total = 0;
        for (size_t c = 0; c < ncols; ++c)
            total += width[c] + (c + 1 < ncols ? 2 : 0);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &r : rows)
        emit(r);
    return out;
}

std::string
Table::toCsv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            if (c + 1 < cells.size())
                out += ",";
        }
        out += "\n";
    };
    if (!header.empty())
        emit(header);
    for (const auto &r : rows)
        emit(r);
    return out;
}

} // namespace vrio::stats
