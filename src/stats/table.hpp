/**
 * @file
 * ASCII/CSV result-table builder.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * by printing a Table: figures become their underlying data series
 * (one row per x value, one column per curve).
 */
#ifndef VRIO_STATS_TABLE_HPP
#define VRIO_STATS_TABLE_HPP

#include <string>
#include <vector>

namespace vrio::stats {

class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; must precede addRow(). */
    void setHeader(std::vector<std::string> names);

    /** Append a preformatted row (must match header arity). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a row of doubles with @p precision. */
    void addRow(const std::string &label, const std::vector<double> &vals,
                int precision = 2);

    size_t rowCount() const { return rows.size(); }
    const std::string &title() const { return title_; }
    /** Cell text at (row, col); panics when out of range. */
    const std::string &cell(size_t row, size_t col) const;

    /** Render with aligned columns and a rule under the header. */
    std::string toString() const;
    /** Render as CSV (no title line). */
    std::string toCsv() const;

  private:
    std::string title_;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace vrio::stats

#endif // VRIO_STATS_TABLE_HPP
