#include "stats/time_series.hpp"

#include "util/logging.hpp"

namespace vrio::stats {

void
TimeSeries::add(uint64_t tick, double value)
{
    vrio_assert(data.empty() || tick >= data.back().tick,
                "TimeSeries ticks must be non-decreasing");
    data.push_back({tick, value});
}

double
TimeSeries::mean() const
{
    if (data.empty())
        return 0.0;
    double acc = 0;
    for (const auto &p : data)
        acc += p.value;
    return acc / double(data.size());
}

double
TimeSeries::max() const
{
    double best = 0.0;
    for (const auto &p : data)
        best = p.value > best ? p.value : best;
    return best;
}

double
TimeSeries::last() const
{
    return data.empty() ? 0.0 : data.back().value;
}

std::vector<TimeSeries::Point>
TimeSeries::runningAverage() const
{
    std::vector<Point> out;
    out.reserve(data.size());
    double acc = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        acc += data[i].value;
        out.push_back({data[i].tick, acc / double(i + 1)});
    }
    return out;
}

std::vector<TimeSeries::Point>
TimeSeries::resample(uint64_t start, uint64_t end, uint64_t window) const
{
    vrio_assert(window > 0, "resample window must be positive");
    std::vector<Point> out;
    size_t i = 0;
    while (i < data.size() && data[i].tick < start)
        ++i;
    for (uint64_t w = start; w < end; w += window) {
        uint64_t w_end = w + window;
        double acc = 0;
        uint64_t n = 0;
        while (i < data.size() && data[i].tick < w_end) {
            acc += data[i].value;
            ++n;
            ++i;
        }
        out.push_back({w, n ? acc / double(n) : 0.0});
    }
    return out;
}

} // namespace vrio::stats
