/**
 * @file
 * Timestamped value series, used for CPU-utilization traces (Fig. 15)
 * and throughput-over-time plots.
 */
#ifndef VRIO_STATS_TIME_SERIES_HPP
#define VRIO_STATS_TIME_SERIES_HPP

#include <cstdint>
#include <vector>

namespace vrio::stats {

class TimeSeries
{
  public:
    struct Point
    {
        uint64_t tick;
        double value;
    };

    /** Record @p value at time @p tick (ticks must be non-decreasing). */
    void add(uint64_t tick, double value);

    const std::vector<Point> &points() const { return data; }
    bool empty() const { return data.empty(); }

    /** Mean of values (unweighted by time). */
    double mean() const;

    /** Largest value recorded (0 when empty); cwnd-trace peaks. */
    double max() const;

    /** Most recent value (0 when empty); end-of-run SRTT/cwnd. */
    double last() const;

    /**
     * Running average series: point i holds the mean of values 0..i.
     * Mirrors the "avg." line of the paper's Fig. 15.
     */
    std::vector<Point> runningAverage() const;

    /**
     * Resample into fixed windows of @p window ticks covering
     * [start, end); each output point is the mean of the input values
     * whose tick falls in that window (empty windows repeat 0).
     */
    std::vector<Point> resample(uint64_t start, uint64_t end,
                                uint64_t window) const;

  private:
    std::vector<Point> data;
};

} // namespace vrio::stats

#endif // VRIO_STATS_TIME_SERIES_HPP
