#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace vrio::telemetry {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
categoryName(uint8_t c)
{
    switch (c) {
      case cat::kPacket: return "packet";
      case cat::kIo: return "io";
      case cat::kRecovery: return "recovery";
      case cat::kFault: return "fault";
      case cat::kSim: return "sim";
      default: return "misc";
    }
}

/** Ticks (ps) to Chrome's microsecond timebase, exact to 1 ps. */
std::string
ticksToUs(sim::Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%06llu",
                  (unsigned long long)(t / sim::kMicrosecond),
                  (unsigned long long)(t % sim::kMicrosecond));
    return buf;
}

std::string
seriesLabel(const MetricsRegistry::Series &s)
{
    std::string out = s.name;
    if (!s.labels.kv.empty()) {
        out += '{';
        for (size_t i = 0; i < s.labels.kv.size(); ++i) {
            if (i)
                out += ',';
            out += s.labels.kv[i].first;
            out += '=';
            out += s.labels.kv[i].second;
        }
        out += '}';
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Track (and name) interning is shared; only ids actually used as
    // a track get a thread_name metadata record.
    std::vector<bool> used_tracks;
    tracer.forEach([&](const TraceEvent &ev) {
        if (ev.track >= used_tracks.size())
            used_tracks.resize(ev.track + 1, false);
        used_tracks[ev.track] = true;
    });
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
          "\"args\":{\"name\":\"vrio\"}}";
    for (size_t t = 0; t < used_tracks.size(); ++t) {
        if (!used_tracks[t])
            continue;
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(tracer.internedName(uint16_t(t))) << "\"}}";
    }

    tracer.forEach([&](const TraceEvent &ev) {
        sep();
        os << "{\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":"
           << ev.track << ",\"ts\":" << ticksToUs(ev.ts);
        if (ev.phase == 'X')
            os << ",\"dur\":" << ticksToUs(ev.dur);
        os << ",\"name\":\"" << jsonEscape(tracer.internedName(ev.name))
           << "\",\"cat\":\"" << categoryName(ev.category) << "\"";
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
        os << ",\"args\":{\"arg\":" << ev.arg << "}}";
    });
    os << "\n]}\n";
}

void
writeMetricsCsv(std::ostream &os, const MetricsRegistry &metrics,
                const std::string &label, bool with_header)
{
    if (with_header)
        os << "cell,kind,series,value,count,sum,mean,min,max,p50,p90,p99\n";
    metrics.forEach([&](const MetricsRegistry::Series &s) {
        os << label << ',';
        switch (s.kind) {
          case MetricsRegistry::Kind::CounterK:
            os << "counter," << seriesLabel(s) << ','
               << s.counter.value() << ",,,,,,,,\n";
            break;
          case MetricsRegistry::Kind::GaugeK:
            os << "gauge," << seriesLabel(s) << ','
               << fmtDouble(s.gauge.value()) << ",,,,,,,,\n";
            break;
          case MetricsRegistry::Kind::ProbeK:
            os << "probe," << seriesLabel(s) << ','
               << fmtDouble(s.sampler ? s.sampler() : 0) << ",,,,,,,,\n";
            break;
          case MetricsRegistry::Kind::HistogramK: {
            const LogHistogram &h = s.histogram;
            os << "histogram," << seriesLabel(s) << ",,"
               << h.count() << ',' << h.sum() << ','
               << fmtDouble(h.mean()) << ',' << h.min() << ','
               << h.max() << ',' << fmtDouble(h.quantile(0.50)) << ','
               << fmtDouble(h.quantile(0.90)) << ','
               << fmtDouble(h.quantile(0.99)) << "\n";
            break;
          }
        }
    });
}

void
writeMetricsSummary(std::ostream &os, const MetricsRegistry &metrics,
                    const std::string &label)
{
    os << "== telemetry: " << label << " ==\n";
    metrics.forEach([&](const MetricsRegistry::Series &s) {
        os << "  " << seriesLabel(s) << " = ";
        switch (s.kind) {
          case MetricsRegistry::Kind::CounterK:
            os << s.counter.value();
            break;
          case MetricsRegistry::Kind::GaugeK:
            os << fmtDouble(s.gauge.value());
            break;
          case MetricsRegistry::Kind::ProbeK:
            os << fmtDouble(s.sampler ? s.sampler() : 0);
            break;
          case MetricsRegistry::Kind::HistogramK:
            os << "count=" << s.histogram.count()
               << " mean=" << fmtDouble(s.histogram.mean())
               << " p50=" << fmtDouble(s.histogram.quantile(0.50))
               << " p99=" << fmtDouble(s.histogram.quantile(0.99))
               << " max=" << s.histogram.max();
            break;
        }
        os << "\n";
    });
}

namespace {

struct SinkState
{
    std::mutex mu;
    bool atexit_registered = false;
    bool flushed = false;
    // Best trace candidate so far: serialized once at submit time
    // (the tracer dies with its simulation, the sink outlives it).
    std::string trace_json;
    std::string trace_label;
    size_t trace_events = 0;
    // Every metrics submission, sorted at flush for thread-order
    // independence.
    std::vector<std::pair<std::string, std::string>> metric_blocks;
};

SinkState &
state()
{
    static SinkState s;
    return s;
}

} // namespace

Sink &
Sink::instance()
{
    static Sink sink;
    return sink;
}

const std::string &
Sink::tracePath()
{
    static const std::string path = []() {
        const char *p = std::getenv("VRIO_TRACE");
        return std::string(p ? p : "");
    }();
    return path;
}

const std::string &
Sink::metricsPath()
{
    static const std::string path = []() {
        const char *p = std::getenv("VRIO_METRICS");
        return std::string(p ? p : "");
    }();
    return path;
}

void
Sink::submit(const std::string &label, const Hub &hub)
{
    if (!armed())
        return;
    SinkState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.atexit_registered) {
        st.atexit_registered = true;
        // Both path caches must be constructed before the handler is
        // registered, or their destructors run before flush() at exit
        // and flush reads dead strings (armed() above short-circuits,
        // so it may have constructed only one of them).
        tracePath();
        metricsPath();
        std::atexit([]() { Sink::instance().flush(); });
    }
    if (traceArmed() && hub.tracer.enabled() && hub.tracer.size() > 0) {
        size_t n = hub.tracer.size();
        bool better = n > st.trace_events ||
                      (n == st.trace_events && !st.trace_label.empty() &&
                       label < st.trace_label);
        if (better) {
            std::ostringstream os;
            writeChromeTrace(os, hub.tracer);
            st.trace_json = os.str();
            st.trace_label = label;
            st.trace_events = n;
        }
    }
    if (metricsArmed() && hub.metrics.size() > 0) {
        std::ostringstream os;
        bool csv = metricsPath().size() >= 4 &&
                   metricsPath().compare(metricsPath().size() - 4, 4,
                                         ".csv") == 0;
        if (csv)
            writeMetricsCsv(os, hub.metrics, label, /*with_header=*/false);
        else
            writeMetricsSummary(os, hub.metrics, label);
        st.metric_blocks.emplace_back(label, os.str());
    }
}

void
Sink::flush()
{
    SinkState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.flushed)
        return;
    st.flushed = true;
    if (traceArmed() && !st.trace_json.empty()) {
        std::ofstream f(tracePath());
        if (f)
            f << st.trace_json;
    }
    if (metricsArmed() && !st.metric_blocks.empty()) {
        std::stable_sort(st.metric_blocks.begin(), st.metric_blocks.end());
        std::ofstream f(metricsPath());
        if (f) {
            bool csv = metricsPath().size() >= 4 &&
                       metricsPath().compare(metricsPath().size() - 4, 4,
                                             ".csv") == 0;
            if (csv)
                f << "cell,kind,series,value,count,sum,mean,min,max,"
                     "p50,p90,p99\n";
            for (const auto &[label, block] : st.metric_blocks)
                f << block;
        }
    }
}

} // namespace vrio::telemetry
