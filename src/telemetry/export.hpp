/**
 * @file
 * Telemetry exporters: Chrome `about://tracing` JSON for the tracer,
 * CSV and plain-text summaries for the metrics registry, and the
 * process-wide Sink that collects per-simulation submissions and
 * writes the files named by `VRIO_TRACE` / `VRIO_METRICS` at exit.
 *
 * Arming is strictly opt-in via environment: when neither variable is
 * set, `Sink::armed()` is false, nothing is serialized, and no file is
 * touched — the zero-cost contract the golden harness relies on.
 */
#ifndef VRIO_TELEMETRY_EXPORT_HPP
#define VRIO_TELEMETRY_EXPORT_HPP

#include <ostream>
#include <string>

#include "telemetry/telemetry.hpp"

namespace vrio::telemetry {

/**
 * Serialize the tracer ring as Chrome trace-event JSON
 * (`{"traceEvents": [...]}`), loadable in Perfetto or
 * about://tracing.  Each interned track becomes one named thread
 * track; timestamps convert from ticks (ps) to microseconds.
 */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/**
 * Serialize every metrics series as CSV rows prefixed with @p label
 * (one submission = one experiment cell).  Emits a header only when
 * @p with_header.
 */
void writeMetricsCsv(std::ostream &os, const MetricsRegistry &metrics,
                     const std::string &label, bool with_header);

/** Human-readable summary of the registry (counters first). */
void writeMetricsSummary(std::ostream &os, const MetricsRegistry &metrics,
                         const std::string &label);

/**
 * Process-wide collection point.  Every `core::Testbed` submits its
 * simulation's hub on teardown; submissions from parallel sweep
 * threads are serialized under a mutex.  The trace file receives the
 * single richest submission (most retained events; ties broken by
 * label) because one Chrome trace models one timeline; the metrics
 * file receives every submission, sorted by label so parallel cell
 * completion order cannot change the output.
 */
class Sink
{
  public:
    static Sink &instance();

    /** Cached `VRIO_TRACE` / `VRIO_METRICS` (empty = unset). */
    static const std::string &tracePath();
    static const std::string &metricsPath();
    static bool traceArmed() { return !tracePath().empty(); }
    static bool metricsArmed() { return !metricsPath().empty(); }
    static bool armed() { return traceArmed() || metricsArmed(); }

    /** Record one simulation's telemetry under @p label. */
    void submit(const std::string &label, const Hub &hub);

    /** Write the collected output files; idempotent. */
    void flush();

  private:
    Sink() = default;
};

} // namespace vrio::telemetry

#endif // VRIO_TELEMETRY_EXPORT_HPP
