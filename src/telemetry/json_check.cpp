#include "telemetry/json_check.hpp"

#include <cctype>
#include <cstdlib>

namespace vrio::telemetry {

const JsonValue *
JsonValue::get(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

struct Parser
{
    std::string_view text;
    size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("dangling escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("short \\u escape");
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(uint8_t(text[pos + i])))
                            return fail("bad \\u escape");
                    }
                    // Validation only: fold to '?' rather than decode.
                    pos += 4;
                    out += '?';
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else if (uint8_t(c) < 0x20) {
                return fail("raw control character in string");
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.arr.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.str);
        }
        if (c == 't') {
            if (text.substr(pos, 4) != "true")
                return fail("bad literal");
            pos += 4;
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (text.substr(pos, 5) != "false")
                return fail("bad literal");
            pos += 5;
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (text.substr(pos, 4) != "null")
                return fail("bad literal");
            pos += 4;
            out.type = JsonValue::Type::Null;
            return true;
        }
        // Number.
        size_t start = pos;
        if (c == '-')
            ++pos;
        bool digits = false;
        while (pos < text.size() && std::isdigit(uint8_t(text[pos]))) {
            ++pos;
            digits = true;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            while (pos < text.size() && std::isdigit(uint8_t(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() && std::isdigit(uint8_t(text[pos])))
                ++pos;
        }
        if (!digits)
            return fail("expected value");
        out.type = JsonValue::Type::Number;
        out.number = std::strtod(std::string(text.substr(start, pos - start))
                                     .c_str(),
                                 nullptr);
        return true;
    }
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out, 0)) {
        err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        err = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

TraceCheck
checkChromeTrace(std::string_view text)
{
    TraceCheck out;
    JsonValue doc;
    if (!parseJson(text, doc, out.error))
        return out;
    const JsonValue *events = doc.get("traceEvents");
    if (!events || events->type != JsonValue::Type::Array) {
        out.error = "missing traceEvents array";
        return out;
    }
    for (const JsonValue &ev : events->arr) {
        if (ev.type != JsonValue::Type::Object) {
            out.error = "non-object trace event";
            return out;
        }
        const JsonValue *ph = ev.get("ph");
        const JsonValue *pid = ev.get("pid");
        if (!ph || ph->type != JsonValue::Type::String || !pid) {
            out.error = "trace event missing ph/pid";
            return out;
        }
        if (ph->str == "M") {
            const JsonValue *name = ev.get("name");
            if (name && name->str == "thread_name") {
                const JsonValue *args = ev.get("args");
                const JsonValue *tname = args ? args->get("name") : nullptr;
                if (tname && tname->type == JsonValue::Type::String)
                    out.tracks.insert(tname->str);
            }
            continue;
        }
        const JsonValue *ts = ev.get("ts");
        if (!ts || ts->type != JsonValue::Type::Number) {
            out.error = "trace event missing numeric ts";
            return out;
        }
        if (ph->str == "X") {
            const JsonValue *dur = ev.get("dur");
            if (!dur || dur->type != JsonValue::Type::Number) {
                out.error = "span event missing numeric dur";
                return out;
            }
        }
        ++out.events;
    }
    out.ok = true;
    return out;
}

} // namespace vrio::telemetry
