/**
 * @file
 * Minimal JSON parser + Chrome-trace validity checker.
 *
 * Exists so CI can assert an exported trace is well-formed without
 * adding a JSON dependency (nothing may be installed in the build
 * image).  The parser accepts strict JSON — objects, arrays, strings
 * with escapes, numbers, true/false/null — which is exactly what the
 * exporter emits; it is a validator, not a general-purpose library.
 */
#ifndef VRIO_TELEMETRY_JSON_CHECK_HPP
#define VRIO_TELEMETRY_JSON_CHECK_HPP

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vrio::telemetry {

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** Object member lookup; null if absent or not an object. */
    const JsonValue *get(std::string_view key) const;
};

/** Parse @p text as one JSON document; false + @p err on failure. */
bool parseJson(std::string_view text, JsonValue &out, std::string &err);

struct TraceCheck
{
    bool ok = false;
    std::string error;
    size_t events = 0;            ///< non-metadata trace events
    std::set<std::string> tracks; ///< thread_name metadata values
};

/**
 * Validate a Chrome trace-event document: parses, requires a
 * `traceEvents` array whose entries carry `ph`/`pid`, and collects
 * the named tracks and event count.
 */
TraceCheck checkChromeTrace(std::string_view text);

} // namespace vrio::telemetry

#endif // VRIO_TELEMETRY_JSON_CHECK_HPP
