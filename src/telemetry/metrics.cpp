#include "telemetry/metrics.hpp"

#include "util/logging.hpp"

namespace vrio::telemetry {

std::string
MetricsRegistry::seriesKey(std::string_view name, const Labels &l)
{
    std::string key(name);
    if (l.kv.empty())
        return key;
    auto sorted = l.kv;
    std::sort(sorted.begin(), sorted.end());
    key += '{';
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            key += ',';
        key += sorted[i].first;
        key += '=';
        key += sorted[i].second;
    }
    key += '}';
    return key;
}

MetricsRegistry::Series &
MetricsRegistry::fetch(std::string_view name, Labels labels, Kind kind)
{
    std::string key = seriesKey(name, labels);
    auto it = series_.find(key);
    if (it != series_.end()) {
        vrio_assert(it->second->kind == kind,
                    "telemetry series re-registered with a different kind: ",
                    key);
        return *it->second;
    }
    auto s = std::make_unique<Series>();
    s->name = std::string(name);
    std::sort(labels.kv.begin(), labels.kv.end());
    s->labels = std::move(labels);
    s->kind = kind;
    Series &ref = *s;
    series_.emplace(std::move(key), std::move(s));
    return ref;
}

Counter &
MetricsRegistry::counter(std::string_view name, Labels labels)
{
    return fetch(name, std::move(labels), Kind::CounterK).counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name, Labels labels)
{
    return fetch(name, std::move(labels), Kind::GaugeK).gauge;
}

LogHistogram &
MetricsRegistry::histogram(std::string_view name, Labels labels)
{
    return fetch(name, std::move(labels), Kind::HistogramK).histogram;
}

void
MetricsRegistry::probe(std::string_view name, Labels labels,
                       std::function<double()> fn)
{
    fetch(name, std::move(labels), Kind::ProbeK).sampler = std::move(fn);
}

uint64_t
MetricsRegistry::sumCounters(std::string_view name) const
{
    uint64_t total = 0;
    for (const auto &[key, s] : series_) {
        if (s->kind == Kind::CounterK && s->name == name)
            total += s->counter.value();
    }
    return total;
}

const MetricsRegistry::Series *
MetricsRegistry::find(std::string_view name, Labels labels) const
{
    auto it = series_.find(seriesKey(name, labels));
    return it == series_.end() ? nullptr : it->second.get();
}

} // namespace vrio::telemetry
