#include "telemetry/metrics.hpp"

#include "util/logging.hpp"

namespace vrio::telemetry {

void
Counter::stripe(unsigned shards)
{
    if (shards <= 1 || nstripes_ == shards)
        return;
    vrio_assert(nstripes_ == 0, "counter re-striped with a new width");
    stripes_ = std::make_unique<Slot[]>(shards);
    nstripes_ = shards;
}

void
LogHistogram::Data::merge(const Data &o)
{
    if (o.count == 0)
        return;
    if (count == 0 || o.min < min)
        min = o.min;
    if (o.max > max)
        max = o.max;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b] += o.buckets[b];
    count += o.count;
    sum += o.sum;
}

void
LogHistogram::Data::clear()
{
    buckets.fill(0);
    count = sum = min = max = 0;
}

LogHistogram::Data
LogHistogram::merged() const
{
    Data d = data_;
    for (unsigned s = 0; s < nstripes_; ++s)
        d.merge(stripes_[s]);
    return d;
}

void
LogHistogram::reset()
{
    data_.clear();
    for (unsigned s = 0; s < nstripes_; ++s)
        stripes_[s].clear();
}

void
LogHistogram::stripe(unsigned shards)
{
    if (shards <= 1 || nstripes_ == shards)
        return;
    vrio_assert(nstripes_ == 0, "histogram re-striped with a new width");
    stripes_ = std::make_unique<Data[]>(shards);
    nstripes_ = shards;
}

std::string
MetricsRegistry::seriesKey(std::string_view name, const Labels &l)
{
    std::string key(name);
    if (l.kv.empty())
        return key;
    auto sorted = l.kv;
    std::sort(sorted.begin(), sorted.end());
    key += '{';
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            key += ',';
        key += sorted[i].first;
        key += '=';
        key += sorted[i].second;
    }
    key += '}';
    return key;
}

MetricsRegistry::Series &
MetricsRegistry::fetch(std::string_view name, Labels labels, Kind kind)
{
    std::string key = seriesKey(name, labels);
    auto it = series_.find(key);
    if (it != series_.end()) {
        vrio_assert(it->second->kind == kind,
                    "telemetry series re-registered with a different kind: ",
                    key);
        return *it->second;
    }
    auto s = std::make_unique<Series>();
    s->name = std::string(name);
    std::sort(labels.kv.begin(), labels.kv.end());
    s->labels = std::move(labels);
    s->kind = kind;
    if (stripe_shards_) {
        s->counter.stripe(stripe_shards_);
        s->histogram.stripe(stripe_shards_);
    }
    Series &ref = *s;
    series_.emplace(std::move(key), std::move(s));
    return ref;
}

void
MetricsRegistry::enableSharding(unsigned shards)
{
    if (shards <= 1)
        return;
    stripe_shards_ = shards;
    for (auto &[key, s] : series_) {
        s->counter.stripe(shards);
        s->histogram.stripe(shards);
    }
}

Counter &
MetricsRegistry::counter(std::string_view name, Labels labels)
{
    return fetch(name, std::move(labels), Kind::CounterK).counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name, Labels labels)
{
    return fetch(name, std::move(labels), Kind::GaugeK).gauge;
}

LogHistogram &
MetricsRegistry::histogram(std::string_view name, Labels labels)
{
    return fetch(name, std::move(labels), Kind::HistogramK).histogram;
}

void
MetricsRegistry::probe(std::string_view name, Labels labels,
                       std::function<double()> fn)
{
    fetch(name, std::move(labels), Kind::ProbeK).sampler = std::move(fn);
}

uint64_t
MetricsRegistry::sumCounters(std::string_view name) const
{
    uint64_t total = 0;
    for (const auto &[key, s] : series_) {
        if (s->kind == Kind::CounterK && s->name == name)
            total += s->counter.value();
    }
    return total;
}

const MetricsRegistry::Series *
MetricsRegistry::find(std::string_view name, Labels labels) const
{
    auto it = series_.find(seriesKey(name, labels));
    return it == series_.end() ? nullptr : it->second.get();
}

} // namespace vrio::telemetry
