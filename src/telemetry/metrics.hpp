/**
 * @file
 * Rack-wide metrics registry: hierarchical, label-aware counters,
 * gauges and fixed-bucket log2 histograms.
 *
 * The contract that keeps telemetry off the simulator's hot path:
 * handles are resolved ONCE at setup (`registry.counter(name, labels)`
 * does a map lookup and may allocate) and every subsequent update is a
 * raw `uint64_t` bump through the returned reference — no string
 * hashing, no allocation, no branch beyond the caller's own.  Nothing
 * in this module touches stdout, the RNG, or the event queue, so an
 * instrumented run with no exporters armed is byte-identical to an
 * uninstrumented one by construction.
 */
#ifndef VRIO_TELEMETRY_METRICS_HPP
#define VRIO_TELEMETRY_METRICS_HPP

#include <array>
#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vrio::telemetry {

/** Monotonic event count.  Bumps are single adds on a raw word. */
class Counter
{
  public:
    void inc() { ++v_; }
    void add(uint64_t n) { v_ += n; }
    uint64_t value() const { return v_; }
    void reset() { v_ = 0; }

  private:
    uint64_t v_ = 0;
};

/** Last-write-wins instantaneous value (queue depth, cwnd, ...). */
class Gauge
{
  public:
    void set(double v) { v_ = v; }
    double value() const { return v_; }
    void reset() { v_ = 0; }

  private:
    double v_ = 0;
};

/**
 * Fixed-bucket log2 histogram: bucket 0 holds the value 0, bucket k
 * (k >= 1) holds values in [2^(k-1), 2^k).  65 buckets cover the full
 * uint64 range, so `record` is branch-free apart from the zero check:
 * one count-leading-zeros, three adds.  No samples are retained —
 * quantiles come back at bucket resolution (geometric midpoint),
 * which is plenty for latency distributions spanning decades.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    /** Bucket index for @p v: 0 -> 0, [2^(k-1), 2^k) -> k. */
    static unsigned
    bucketOf(uint64_t v)
    {
        return unsigned(std::bit_width(v)); // one clz; 0 maps to 0
    }

    /** Inclusive lower edge of bucket @p b. */
    static uint64_t
    bucketLow(unsigned b)
    {
        return b == 0 ? 0 : uint64_t(1) << (b - 1);
    }

    /** Exclusive upper edge of bucket @p b (0 -> 1). */
    static uint64_t
    bucketHigh(unsigned b)
    {
        return b == 0 ? 1 : uint64_t(1) << b;
    }

    void
    record(uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (v < min_ || count_ == 1)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0; }
    uint64_t bucketCount(unsigned b) const { return buckets_[b]; }

    /**
     * Bucket-resolution quantile estimate: the geometric midpoint of
     * the bucket containing the q-th sample.
     */
    double
    quantile(double q) const
    {
        if (count_ == 0)
            return 0;
        uint64_t rank = uint64_t(q * double(count_ - 1)) + 1;
        uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= rank) {
                if (b == 0)
                    return 0;
                double lo = double(bucketLow(b));
                double hi = double(bucketHigh(b));
                return lo + (hi - lo) / 2.0;
            }
        }
        return double(max_);
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = sum_ = max_ = 0;
        min_ = 0;
    }

  private:
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

/**
 * A small set of key=value labels.  Order given by the caller is
 * irrelevant: the registry sorts by key before building the series
 * identity, so {a=1,b=2} and {b=2,a=1} name the same series.
 */
struct Labels
{
    std::vector<std::pair<std::string, std::string>> kv;

    Labels() = default;
    Labels(std::initializer_list<std::pair<std::string, std::string>> init)
        : kv(init)
    {}

    bool empty() const { return kv.empty(); }
};

/**
 * Find-or-create registry of metric series.  A series is identified
 * by (name, sorted labels); looking the same identity up twice
 * returns the same handle, so setup code anywhere in the tree can
 * share a series without coordination.  Handles are stable for the
 * registry's lifetime (node-based storage).
 */
class MetricsRegistry
{
  public:
    enum class Kind { CounterK, GaugeK, HistogramK, ProbeK };

    Counter &counter(std::string_view name, Labels labels = {});
    Gauge &gauge(std::string_view name, Labels labels = {});
    LogHistogram &histogram(std::string_view name, Labels labels = {});

    /**
     * Pull-style series: @p fn is sampled only when an exporter walks
     * the registry, so pre-existing component counters can surface in
     * exports with zero hot-path change.  Re-registering the same
     * identity replaces the sampler.
     */
    void probe(std::string_view name, Labels labels,
               std::function<double()> fn);

    struct Series
    {
        std::string name;
        Labels labels;
        Kind kind;
        Counter counter;
        Gauge gauge;
        LogHistogram histogram;
        std::function<double()> sampler;
    };

    /** Number of registered series. */
    size_t size() const { return series_.size(); }

    /**
     * Visit every series in deterministic (key-sorted) order —
     * exporters rely on this so output never depends on registration
     * order.
     */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const auto &[key, s] : series_)
            fn(*s);
    }

    /** Sum of all counter series with @p name (any labels). */
    uint64_t sumCounters(std::string_view name) const;

    /** The single series with exactly this identity, or null. */
    const Series *find(std::string_view name, Labels labels = {}) const;

  private:
    Series &fetch(std::string_view name, Labels labels, Kind kind);
    static std::string seriesKey(std::string_view name, const Labels &l);

    std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

} // namespace vrio::telemetry

#endif // VRIO_TELEMETRY_METRICS_HPP
