/**
 * @file
 * Rack-wide metrics registry: hierarchical, label-aware counters,
 * gauges and fixed-bucket log2 histograms.
 *
 * The contract that keeps telemetry off the simulator's hot path:
 * handles are resolved ONCE at setup (`registry.counter(name, labels)`
 * does a map lookup and may allocate) and every subsequent update is a
 * raw `uint64_t` bump through the returned reference — no string
 * hashing, no allocation, no branch beyond the caller's own.  Nothing
 * in this module touches stdout, the RNG, or the event queue, so an
 * instrumented run with no exporters armed is byte-identical to an
 * uninstrumented one by construction.
 */
#ifndef VRIO_TELEMETRY_METRICS_HPP
#define VRIO_TELEMETRY_METRICS_HPP

#include <array>
#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vrio::telemetry {

/**
 * Stripe slot of the shard the current thread is executing (0 when
 * the simulation is not sharded).  Set by the parallel simulator
 * (`sim::ShardScope`); read on every bump of a striped series.
 */
inline thread_local unsigned t_shard_slot = 0;

inline void setShardSlot(unsigned slot) { t_shard_slot = slot; }
inline unsigned shardSlot() { return t_shard_slot; }

/**
 * Monotonic event count.  Bumps are single adds on a raw word.
 *
 * In a sharded simulation the counter is striped: each shard bumps a
 * private cache-line-padded slot (indexed by the thread's shard slot)
 * and `value()` merges on read, so concurrent shards never touch the
 * same word.  Unstriped (the default) the hot path is the historical
 * single add behind one null-pointer test.
 */
class Counter
{
  public:
    void inc() { add(1); }
    void
    add(uint64_t n)
    {
        if (stripes_)
            stripes_[t_shard_slot].v += n;
        else
            v_ += n;
    }
    uint64_t
    value() const
    {
        uint64_t v = v_;
        for (unsigned s = 0; s < nstripes_; ++s)
            v += stripes_[s].v;
        return v;
    }
    void
    reset()
    {
        v_ = 0;
        for (unsigned s = 0; s < nstripes_; ++s)
            stripes_[s].v = 0;
    }

    /** Give each of @p shards a private bump slot. */
    void stripe(unsigned shards);

  private:
    struct alignas(64) Slot
    {
        uint64_t v = 0;
    };
    uint64_t v_ = 0;
    unsigned nstripes_ = 0;
    std::unique_ptr<Slot[]> stripes_;
};

/** Last-write-wins instantaneous value (queue depth, cwnd, ...). */
class Gauge
{
  public:
    void set(double v) { v_ = v; }
    double value() const { return v_; }
    void reset() { v_ = 0; }

  private:
    double v_ = 0;
};

/**
 * Fixed-bucket log2 histogram: bucket 0 holds the value 0, bucket k
 * (k >= 1) holds values in [2^(k-1), 2^k).  65 buckets cover the full
 * uint64 range, so `record` is branch-free apart from the zero check:
 * one count-leading-zeros, three adds.  No samples are retained —
 * quantiles come back at bucket resolution (geometric midpoint),
 * which is plenty for latency distributions spanning decades.
 *
 * Like Counter, a histogram can be striped for a sharded simulation:
 * each shard records into a private bucket array and every read-side
 * accessor folds the stripes.  Reads happen at reporting time only,
 * so the merge cost is off the hot path.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    /** Bucket index for @p v: 0 -> 0, [2^(k-1), 2^k) -> k. */
    static unsigned
    bucketOf(uint64_t v)
    {
        return unsigned(std::bit_width(v)); // one clz; 0 maps to 0
    }

    /** Inclusive lower edge of bucket @p b. */
    static uint64_t
    bucketLow(unsigned b)
    {
        return b == 0 ? 0 : uint64_t(1) << (b - 1);
    }

    /** Exclusive upper edge of bucket @p b (0 -> 1). */
    static uint64_t
    bucketHigh(unsigned b)
    {
        return b == 0 ? 1 : uint64_t(1) << b;
    }

    void
    record(uint64_t v)
    {
        (stripes_ ? stripes_[t_shard_slot] : data_).record(v);
    }

    uint64_t count() const { return merged().count; }
    uint64_t sum() const { return merged().sum; }
    uint64_t
    min() const
    {
        Data d = merged();
        return d.count ? d.min : 0;
    }
    uint64_t max() const { return merged().max; }
    double
    mean() const
    {
        Data d = merged();
        return d.count ? double(d.sum) / double(d.count) : 0;
    }
    uint64_t bucketCount(unsigned b) const { return merged().buckets[b]; }

    /**
     * Bucket-resolution quantile estimate: the geometric midpoint of
     * the bucket containing the q-th sample.
     */
    double
    quantile(double q) const
    {
        Data d = merged();
        if (d.count == 0)
            return 0;
        uint64_t rank = uint64_t(q * double(d.count - 1)) + 1;
        uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += d.buckets[b];
            if (seen >= rank) {
                if (b == 0)
                    return 0;
                double lo = double(bucketLow(b));
                double hi = double(bucketHigh(b));
                return lo + (hi - lo) / 2.0;
            }
        }
        return double(d.max);
    }

    void reset();

    /** Give each of @p shards a private bucket array. */
    void stripe(unsigned shards);

  private:
    struct Data
    {
        std::array<uint64_t, kBuckets> buckets{};
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t min = 0;
        uint64_t max = 0;

        void
        record(uint64_t v)
        {
            ++buckets[bucketOf(v)];
            ++count;
            sum += v;
            if (v < min || count == 1)
                min = v;
            if (v > max)
                max = v;
        }

        void merge(const Data &o);
        void clear();
    };

    /** Fold all stripes into one view (identity when unstriped). */
    Data merged() const;

    Data data_;
    unsigned nstripes_ = 0;
    std::unique_ptr<Data[]> stripes_;
};

/**
 * A small set of key=value labels.  Order given by the caller is
 * irrelevant: the registry sorts by key before building the series
 * identity, so {a=1,b=2} and {b=2,a=1} name the same series.
 */
struct Labels
{
    std::vector<std::pair<std::string, std::string>> kv;

    Labels() = default;
    Labels(std::initializer_list<std::pair<std::string, std::string>> init)
        : kv(init)
    {}

    bool empty() const { return kv.empty(); }
};

/**
 * Find-or-create registry of metric series.  A series is identified
 * by (name, sorted labels); looking the same identity up twice
 * returns the same handle, so setup code anywhere in the tree can
 * share a series without coordination.  Handles are stable for the
 * registry's lifetime (node-based storage).
 */
class MetricsRegistry
{
  public:
    enum class Kind { CounterK, GaugeK, HistogramK, ProbeK };

    Counter &counter(std::string_view name, Labels labels = {});
    Gauge &gauge(std::string_view name, Labels labels = {});
    LogHistogram &histogram(std::string_view name, Labels labels = {});

    /**
     * Pull-style series: @p fn is sampled only when an exporter walks
     * the registry, so pre-existing component counters can surface in
     * exports with zero hot-path change.  Re-registering the same
     * identity replaces the sampler.
     */
    void probe(std::string_view name, Labels labels,
               std::function<double()> fn);

    struct Series
    {
        std::string name;
        Labels labels;
        Kind kind;
        Counter counter;
        Gauge gauge;
        LogHistogram histogram;
        std::function<double()> sampler;
    };

    /** Number of registered series. */
    size_t size() const { return series_.size(); }

    /**
     * Visit every series in deterministic (key-sorted) order —
     * exporters rely on this so output never depends on registration
     * order.
     */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const auto &[key, s] : series_)
            fn(*s);
    }

    /** Sum of all counter series with @p name (any labels). */
    uint64_t sumCounters(std::string_view name) const;

    /** The single series with exactly this identity, or null. */
    const Series *find(std::string_view name, Labels labels = {}) const;

    /**
     * Stripe every counter/histogram series — existing and future —
     * for @p shards concurrent writers (see Counter::stripe).  Called
     * once by the sharded simulator before any shard thread runs;
     * registration itself must still happen from one thread at a time
     * (model construction and run regions never overlap).  Gauges are
     * left unstriped: last-write-wins has no meaningful parallel
     * merge and no simulator hot path sets one.
     */
    void enableSharding(unsigned shards);

  private:
    Series &fetch(std::string_view name, Labels labels, Kind kind);
    static std::string seriesKey(std::string_view name, const Labels &l);

    std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
    unsigned stripe_shards_ = 0;
};

} // namespace vrio::telemetry

#endif // VRIO_TELEMETRY_METRICS_HPP
