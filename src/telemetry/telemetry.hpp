/**
 * @file
 * Per-simulation telemetry hub: one metrics registry + one tracer.
 * Owned by `sim::Simulation`; components reach it through
 * `sim().telemetry()` and resolve their handles once at construction.
 */
#ifndef VRIO_TELEMETRY_TELEMETRY_HPP
#define VRIO_TELEMETRY_TELEMETRY_HPP

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace vrio::telemetry {

struct Hub
{
    MetricsRegistry metrics;
    Tracer tracer;
};

} // namespace vrio::telemetry

#endif // VRIO_TELEMETRY_TELEMETRY_HPP
