#include "telemetry/trace.hpp"

namespace vrio::telemetry {

uint16_t
Tracer::intern(std::string_view s)
{
    auto it = intern_ids_.find(s);
    if (it != intern_ids_.end())
        return it->second;
    uint16_t id = uint16_t(intern_names_.size());
    intern_names_.emplace_back(s);
    intern_ids_.emplace(std::string(s), id);
    return id;
}

const std::string &
Tracer::internedName(uint16_t id) const
{
    static const std::string unknown = "?";
    return id < intern_names_.size() ? intern_names_[id] : unknown;
}

bool
Tracer::firstInstant(std::string_view name, sim::Tick from,
                     sim::Tick &out) const
{
    auto it = intern_ids_.find(name);
    if (it == intern_ids_.end())
        return false;
    uint16_t id = it->second;
    bool found = false;
    sim::Tick best = 0;
    forEach([&](const TraceEvent &ev) {
        if (ev.phase != 'i' || ev.name != id || ev.ts < from)
            return;
        if (!found || ev.ts < best) {
            best = ev.ts;
            found = true;
        }
    });
    out = best;
    return found;
}

uint64_t
Tracer::countNamed(std::string_view name) const
{
    auto it = intern_ids_.find(name);
    if (it == intern_ids_.end())
        return 0;
    uint16_t id = it->second;
    uint64_t n = 0;
    forEach([&](const TraceEvent &ev) {
        if (ev.name == id)
            ++n;
    });
    return n;
}

} // namespace vrio::telemetry
