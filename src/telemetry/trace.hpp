/**
 * @file
 * Virtual-time event tracer.
 *
 * Records span ("X") and instant ("i") events against interned track
 * names into a pre-sized ring.  Timestamps are simulation ticks
 * (picoseconds) — there is exactly one clock domain, the DES virtual
 * clock, so a trace from a deterministic run is itself deterministic.
 *
 * Cost model: a disabled tracer costs one predictable branch per emit
 * site (`if (tracer.enabled())`).  An enabled tracer costs a 32-byte
 * POD store into the ring; when the ring is full the oldest event is
 * overwritten and `droppedEvents()` counts the loss, so arming a trace
 * can never grow memory without bound or perturb the simulation.
 * Track/name interning happens at component setup, never per event.
 */
#ifndef VRIO_TELEMETRY_TRACE_HPP
#define VRIO_TELEMETRY_TRACE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/ticks.hpp"

namespace vrio::telemetry {

/** Event categories; the tracer can be armed with a subset mask. */
namespace cat {
constexpr uint8_t kPacket = 1 << 0;   ///< packet lifecycle spans
constexpr uint8_t kIo = 1 << 1;       ///< IOhost dispatch/service
constexpr uint8_t kRecovery = 1 << 2; ///< lapse/quarantine/failover
constexpr uint8_t kFault = 1 << 3;    ///< injected fault windows
constexpr uint8_t kSim = 1 << 4;      ///< simulator internals
constexpr uint8_t kAll = 0xff;
} // namespace cat

/** One recorded event; 32-byte POD, ring storage. */
struct TraceEvent
{
    sim::Tick ts;   ///< virtual-time start, ticks
    sim::Tick dur;  ///< span length in ticks; 0 for instants
    uint64_t arg;   ///< one free numeric argument (serial, vm, ...)
    uint16_t track; ///< interned track id
    uint16_t name;  ///< interned event-name id
    uint8_t category;
    char phase;     ///< 'X' span, 'i' instant
};

class Tracer
{
  public:
    static constexpr size_t kDefaultCapacity = 1 << 16;

    /** Arm the tracer: allocate the ring, accept matching categories. */
    void
    enable(size_t capacity = kDefaultCapacity, uint8_t category_mask = cat::kAll)
    {
        ring_.assign(capacity ? capacity : 1, TraceEvent{});
        head_ = count_ = dropped_ = 0;
        mask_ = category_mask;
        enabled_ = true;
    }

    void
    disable()
    {
        enabled_ = false;
        ring_.clear();
        ring_.shrink_to_fit();
        head_ = count_ = 0;
    }

    bool enabled() const { return enabled_; }
    uint8_t categoryMask() const { return mask_; }

    /**
     * Intern a track (or event-name) string; safe to call during
     * setup whether or not the tracer is armed.  The same string
     * always yields the same id.
     */
    uint16_t intern(std::string_view s);

    /** The interned string for @p id ("?" if unknown). */
    const std::string &internedName(uint16_t id) const;

    void
    span(uint16_t track, uint16_t name, sim::Tick start, sim::Tick dur,
         uint8_t category, uint64_t arg = 0)
    {
        emit({start, dur, arg, track, name, category, 'X'});
    }

    void
    instant(uint16_t track, uint16_t name, sim::Tick ts, uint8_t category,
            uint64_t arg = 0)
    {
        emit({ts, 0, arg, track, name, category, 'i'});
    }

    size_t size() const { return count_; }
    size_t capacity() const { return ring_.size(); }
    uint64_t droppedEvents() const { return dropped_; }

    /** Visit retained events oldest-first. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (size_t i = 0; i < count_; ++i)
            fn(ring_[(head_ + i) % ring_.size()]);
    }

    /**
     * Tick of the earliest retained instant whose event name is
     * @p name at or after @p from; false if none.
     */
    bool firstInstant(std::string_view name, sim::Tick from,
                      sim::Tick &out) const;

    /** Number of retained events with event name @p name. */
    uint64_t countNamed(std::string_view name) const;

  private:
    void
    emit(TraceEvent ev)
    {
        if (!(ev.category & mask_))
            return;
        if (count_ < ring_.size()) {
            ring_[(head_ + count_) % ring_.size()] = ev;
            ++count_;
        } else {
            // Full: overwrite the oldest retained event.
            ring_[head_] = ev;
            head_ = (head_ + 1) % ring_.size();
            ++dropped_;
        }
    }

    bool enabled_ = false;
    uint8_t mask_ = cat::kAll;
    std::vector<TraceEvent> ring_;
    size_t head_ = 0;
    size_t count_ = 0;
    uint64_t dropped_ = 0;

    std::map<std::string, uint16_t, std::less<>> intern_ids_;
    std::vector<std::string> intern_names_;
};

} // namespace vrio::telemetry

#endif // VRIO_TELEMETRY_TRACE_HPP
