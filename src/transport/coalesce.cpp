#include "transport/coalesce.hpp"

#include <algorithm>
#include <map>

namespace vrio::transport {

namespace {

constexpr size_t kSector = virtio::kSectorSize;

/** Stable (lba, arrival) order inside one kind bucket. */
void
sortByLba(std::vector<CoalesceEntry> &v)
{
    std::stable_sort(v.begin(), v.end(),
                     [](const CoalesceEntry &a, const CoalesceEntry &b) {
                         if (a.lba != b.lba)
                             return a.lba < b.lba;
                         return a.arrival < b.arrival;
                     });
}

/**
 * Chain a sorted bucket into runs.  `joins` decides whether the next
 * entry may join the open run; on join the run's covered range grows
 * to the union (which for exact adjacency is plain concatenation).
 */
void
chainRuns(std::vector<CoalesceEntry> bucket, size_t max_run,
          bool reads_overlap, std::vector<MergedRun> &out)
{
    sortByLba(bucket);
    MergedRun run;
    auto close = [&]() {
        if (!run.parts.empty())
            out.push_back(std::move(run));
        run = MergedRun{};
    };
    for (auto &e : bucket) {
        bool join = false;
        if (!run.parts.empty() && run.parts.size() < max_run) {
            if (reads_overlap)
                join = e.lba <= run.end(); // touch or overlap
            else
                join = e.lba == run.end(); // exact adjacency only
        }
        if (!join) {
            close();
            run.blk_type = e.blk_type;
            run.lba = e.lba;
            run.nsectors = e.nsectors;
            run.parts.push_back(std::move(e));
            continue;
        }
        run.nsectors =
            uint32_t(std::max(run.end(), e.end()) - run.lba);
        run.parts.push_back(std::move(e));
    }
    close();
}

/** Fold a namespace's FLUSH (or zero-length) bucket into runs. */
void
foldRuns(std::vector<CoalesceEntry> bucket, size_t max_run,
         std::vector<MergedRun> &out)
{
    MergedRun run;
    for (auto &e : bucket) {
        if (!run.parts.empty() && run.parts.size() >= max_run) {
            out.push_back(std::move(run));
            run = MergedRun{};
        }
        if (run.parts.empty()) {
            run.blk_type = e.blk_type;
            run.lba = e.lba;
            run.nsectors = 0;
        }
        run.parts.push_back(std::move(e));
    }
    if (!run.parts.empty())
        out.push_back(std::move(run));
}

} // namespace

uint64_t
MergedRun::firstArrival() const
{
    uint64_t first = UINT64_MAX;
    for (const CoalesceEntry &p : parts)
        first = std::min(first, p.arrival);
    return first;
}

std::vector<MergedRun>
planMergedRuns(std::vector<CoalesceEntry> entries, size_t max_run)
{
    if (max_run == 0)
        max_run = 1;
    std::vector<CoalesceEntry> reads, writes;
    // FLUSH/TRIM are namespace fences: bucket per (kind, ns) so they
    // can never fold across namespaces.  std::map keys on ids, not
    // addresses, so bucket order is run-to-run deterministic.
    std::map<uint32_t, std::vector<CoalesceEntry>> flushes;
    std::map<uint32_t, std::vector<CoalesceEntry>> discards;
    for (auto &e : entries) {
        switch (virtio::BlkType(e.blk_type)) {
          case virtio::BlkType::In:
            reads.push_back(std::move(e));
            break;
          case virtio::BlkType::Out:
            writes.push_back(std::move(e));
            break;
          case virtio::BlkType::Flush:
            flushes[e.ns_id].push_back(std::move(e));
            break;
          case virtio::BlkType::Discard:
            discards[e.ns_id].push_back(std::move(e));
            break;
        }
    }

    std::vector<MergedRun> runs;
    chainRuns(std::move(reads), max_run, /*reads_overlap=*/true, runs);
    chainRuns(std::move(writes), max_run, /*reads_overlap=*/false, runs);
    for (auto &[ns, bucket] : flushes)
        foldRuns(std::move(bucket), max_run, runs);
    for (auto &[ns, bucket] : discards)
        chainRuns(std::move(bucket), max_run, /*reads_overlap=*/false,
                  runs);

    std::stable_sort(runs.begin(), runs.end(),
                     [](const MergedRun &a, const MergedRun &b) {
                         return a.firstArrival() < b.firstArrival();
                     });
    return runs;
}

Bytes
buildRunPayload(const MergedRun &run)
{
    Bytes data(size_t(run.nsectors) * kSector, 0);
    for (const CoalesceEntry &p : run.parts) {
        size_t off = size_t(p.lba - run.lba) * kSector;
        size_t len = std::min(p.payload.size(), data.size() - off);
        std::copy_n(p.payload.begin(), len, data.begin() + off);
    }
    return data;
}

Bytes
sliceRunData(const MergedRun &run, const CoalesceEntry &part,
             const Bytes &data)
{
    size_t off = size_t(part.lba - run.lba) * kSector;
    size_t len = size_t(part.nsectors) * kSector;
    if (off + len > data.size())
        return {};
    return Bytes(data.begin() + off, data.begin() + off + len);
}

} // namespace vrio::transport
