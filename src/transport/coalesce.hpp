/**
 * @file
 * Cross-VM request coalescing: merge planning for the IOhost fan-out
 * point (the "Cross-IP Request Coalescing" relocation argument).
 *
 * The I/O hypervisor briefly stages block requests arriving from
 * different clients and, when the merge window closes, hands the
 * staged set to planMergedRuns(), which groups same-destination,
 * adjacent-LBA requests into runs the backend serves as ONE
 * submission.  Completions are split back per-VM by the caller using
 * sliceRunData().
 *
 * This layer is pure data-in/data-out — no simulation state, no
 * clocks, no RNG — so the merge rules are unit-testable in isolation
 * and trivially deterministic: output order depends only on entry
 * LBAs and arrival order, never on container addresses.
 *
 * Merge rules (DESIGN.md §15):
 *  - reads (BlkType::In) merge when their sector ranges touch or
 *    overlap: adjacency, exact duplicates, subsets and partial
 *    overlaps all collapse into one covering backend read;
 *  - writes (BlkType::Out) merge only on exact adjacency — an
 *    overlapping write pair has an ordering obligation a single
 *    submission cannot express, so it never merges;
 *  - data requests may merge across namespaces of the same backing
 *    device (a shared volume striped across VMs is the point), but
 *    FLUSH and TRIM are namespace fences: they only fold with other
 *    FLUSH/TRIM of the *same* namespace;
 *  - a run never exceeds `max_run` member requests.
 */
#ifndef VRIO_TRANSPORT_COALESCE_HPP
#define VRIO_TRANSPORT_COALESCE_HPP

#include <cstdint>
#include <vector>

#include "util/byte_buffer.hpp"
#include "virtio/virtio_blk.hpp"

namespace vrio::transport {

/** One staged block request, normalized to backend sector space. */
struct CoalesceEntry
{
    uint32_t device_id = 0;
    uint64_t serial = 0;
    uint16_t generation = 0;
    /** virtio::BlkType of the request. */
    uint8_t blk_type = 0;
    /** Namespace (per-VM region) on the shared backing device. */
    uint32_t ns_id = 0;
    /** Backend LBA (client sector + the namespace's sector offset). */
    uint64_t lba = 0;
    uint32_t nsectors = 0;
    /** Staging order; fan-back completes parts in this order. */
    uint64_t arrival = 0;
    /** Whether the wire payload arrived zero-copy (write accounting). */
    bool zero_copy = true;
    /** Write payload (empty for reads / flush / discard). */
    Bytes payload;

    uint64_t end() const { return lba + nsectors; }
};

/** One backend submission covering `parts` staged requests. */
struct MergedRun
{
    uint8_t blk_type = 0;
    uint64_t lba = 0;
    uint32_t nsectors = 0;
    /** Members in (lba, arrival) order. */
    std::vector<CoalesceEntry> parts;

    bool merged() const { return parts.size() > 1; }
    uint64_t end() const { return lba + nsectors; }
    /** Earliest arrival among parts (run ordering key). */
    uint64_t firstArrival() const;
};

/**
 * Plan backend submissions for one staged set against one backing
 * device.  Runs come back ordered by their earliest member's arrival,
 * so a flush of the staging buffer preserves rough request order.
 */
std::vector<MergedRun> planMergedRuns(std::vector<CoalesceEntry> entries,
                                      size_t max_run);

/** Assemble a merged write run's backend payload (parts placed by LBA). */
Bytes buildRunPayload(const MergedRun &run);

/**
 * Carve @p part's slice out of a merged read run's completion data
 * (the per-VM fan-back).  Returns an empty buffer if @p data is too
 * short to cover the part (error completions carry no data).
 */
Bytes sliceRunData(const MergedRun &run, const CoalesceEntry &part,
                   const Bytes &data);

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_COALESCE_HPP
