#include "transport/control.hpp"

namespace vrio::transport {

void
DeviceCreateCmd::encode(ByteWriter &w) const
{
    w.putU8(uint8_t(kind));
    w.putU32le(device_id);
    w.putBytes(std::span<const uint8_t>(mac.bytes()));
    w.putU64le(capacity_sectors);
}

bool
DeviceCreateCmd::decode(ByteReader &r, DeviceCreateCmd &out)
{
    if (r.remaining() < kSize)
        return false;
    out.kind = DeviceKind(r.getU8());
    out.device_id = r.getU32le();
    auto m = r.viewBytes(6);
    std::copy(m.begin(), m.end(), out.mac.bytes().begin());
    out.capacity_sectors = r.getU64le();
    return true;
}

void
DeviceAck::encode(ByteWriter &w) const
{
    w.putU32le(device_id);
    w.putU8(accepted);
}

bool
DeviceAck::decode(ByteReader &r, DeviceAck &out)
{
    if (r.remaining() < kSize)
        return false;
    out.device_id = r.getU32le();
    out.accepted = r.getU8();
    return true;
}

void
HeartbeatMsg::encode(ByteWriter &w) const
{
    w.putU64le(seq);
    w.putU32le(incarnation);
    if (has_load)
        w.putU32le(load_ns);
}

bool
HeartbeatMsg::decode(ByteReader &r, HeartbeatMsg &out)
{
    if (r.remaining() < kSize)
        return false;
    out.seq = r.getU64le();
    out.incarnation = r.getU32le();
    if (r.remaining() >= sizeof(uint32_t)) {
        out.load_ns = r.getU32le();
        out.has_load = true;
    } else {
        out.load_ns = 0;
        out.has_load = false;
    }
    return true;
}

} // namespace vrio::transport
