#include "transport/control.hpp"

namespace vrio::transport {

void
DeviceCreateCmd::encode(ByteWriter &w) const
{
    w.putU8(uint8_t(kind));
    w.putU32le(device_id);
    w.putBytes(std::span<const uint8_t>(mac.bytes()));
    w.putU64le(capacity_sectors);
}

bool
DeviceCreateCmd::decode(ByteReader &r, DeviceCreateCmd &out)
{
    if (r.remaining() < kSize)
        return false;
    out.kind = DeviceKind(r.getU8());
    out.device_id = r.getU32le();
    auto m = r.viewBytes(6);
    std::copy(m.begin(), m.end(), out.mac.bytes().begin());
    out.capacity_sectors = r.getU64le();
    return true;
}

void
DeviceAck::encode(ByteWriter &w) const
{
    w.putU32le(device_id);
    w.putU8(accepted);
}

bool
DeviceAck::decode(ByteReader &r, DeviceAck &out)
{
    if (r.remaining() < kSize)
        return false;
    out.device_id = r.getU32le();
    out.accepted = r.getU8();
    return true;
}

void
HeartbeatMsg::encode(ByteWriter &w) const
{
    w.putU64le(seq);
    w.putU32le(incarnation);
    if (has_load)
        w.putU32le(load_ns);
}

bool
HeartbeatMsg::decode(ByteReader &r, HeartbeatMsg &out)
{
    if (r.remaining() < kSize)
        return false;
    out.seq = r.getU64le();
    out.incarnation = r.getU32le();
    if (r.remaining() >= sizeof(uint32_t)) {
        out.load_ns = r.getU32le();
        out.has_load = true;
    } else {
        out.load_ns = 0;
        out.has_load = false;
    }
    return true;
}

void
ReplicaRecord::encode(ByteWriter &w) const
{
    w.putU8(uint8_t(kind));
    w.putU32le(device_id);
    w.putU64le(serial);
    w.putU16le(generation);
    w.putU8(blk_type);
    w.putU64le(sector);
    w.putU32le(io_len);
    w.putU32le(uint32_t(payload.size()));
    if (!payload.empty())
        w.putBytes(std::span<const uint8_t>(payload));
}

bool
ReplicaRecord::decode(ByteReader &r, ReplicaRecord &out)
{
    if (r.remaining() < kFixedSize)
        return false;
    out.kind = Kind(r.getU8());
    out.device_id = r.getU32le();
    out.serial = r.getU64le();
    out.generation = r.getU16le();
    out.blk_type = r.getU8();
    out.sector = r.getU64le();
    out.io_len = r.getU32le();
    uint32_t payload_len = r.getU32le();
    if (r.remaining() < payload_len)
        return false;
    auto b = r.viewBytes(payload_len);
    out.payload.assign(b.begin(), b.end());
    return true;
}

void
ReplicaSyncMsg::encode(ByteWriter &w) const
{
    w.putU64le(first_seq);
    w.putU32le(incarnation);
    w.putU16le(uint16_t(records.size()));
    for (const ReplicaRecord &rec : records)
        rec.encode(w);
}

bool
ReplicaSyncMsg::decode(ByteReader &r, ReplicaSyncMsg &out)
{
    if (r.remaining() < kHeaderSize)
        return false;
    out.first_seq = r.getU64le();
    out.incarnation = r.getU32le();
    uint16_t count = r.getU16le();
    out.records.clear();
    out.records.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
        ReplicaRecord rec;
        if (!ReplicaRecord::decode(r, rec))
            return false;
        out.records.push_back(std::move(rec));
    }
    return true;
}

void
ReplicaAckMsg::encode(ByteWriter &w) const
{
    w.putU64le(cum_seq);
    w.putU32le(incarnation);
}

bool
ReplicaAckMsg::decode(ByteReader &r, ReplicaAckMsg &out)
{
    if (r.remaining() < kSize)
        return false;
    out.cum_seq = r.getU64le();
    out.incarnation = r.getU32le();
    return true;
}

void
RehomeCmd::encode(ByteWriter &w) const
{
    w.putU8(uint8_t(phase));
    w.putU32le(device_id);
    w.putU16le(target);
    w.putU64le(floor_serial);
}

bool
RehomeCmd::decode(ByteReader &r, RehomeCmd &out)
{
    if (r.remaining() < kSize)
        return false;
    out.phase = Phase(r.getU8());
    out.device_id = r.getU32le();
    out.target = r.getU16le();
    out.floor_serial = r.getU64le();
    return true;
}

} // namespace vrio::transport
