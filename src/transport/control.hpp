/**
 * @file
 * Control-channel payloads: device lifecycle commands.
 *
 * In vRIO "device creation is done via the I/O hypervisor.  The
 * transport driver therefore has a secondary role: receiving commands
 * from the I/O hypervisor to create and destroy paravirtual devices
 * in the IOclient" (Section 4.1).  These payloads ride in DevCreate /
 * DevDestroy / DevAck transport messages.
 */
#ifndef VRIO_TRANSPORT_CONTROL_HPP
#define VRIO_TRANSPORT_CONTROL_HPP

#include <cstdint>
#include <vector>

#include "net/mac.hpp"
#include "util/byte_buffer.hpp"

namespace vrio::transport {

enum class DeviceKind : uint8_t {
    Net = 1,
    Block = 2,
};

/** DevCreate payload. */
struct DeviceCreateCmd
{
    DeviceKind kind = DeviceKind::Net;
    uint32_t device_id = 0;
    /** Net: the front-end (F) MAC the device answers to. */
    net::MacAddress mac;
    /** Block: device capacity in sectors. */
    uint64_t capacity_sectors = 0;

    static constexpr size_t kSize = 1 + 4 + 6 + 8;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, DeviceCreateCmd &out);
};

/** DevAck payload. */
struct DeviceAck
{
    uint32_t device_id = 0;
    uint8_t accepted = 1;

    static constexpr size_t kSize = 5;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, DeviceAck &out);
};

/**
 * Heartbeat payload: the liveness beacon each I/O hypervisor
 * broadcasts to its clients.  `seq` increments per beat;
 * `incarnation` increments each time the IOhost restarts, so a client
 * can tell a recovered primary from one that never went away.
 *
 * Rack extension: an IOhost may piggyback a load digest (mean worker
 * residency in ns over the last beat period) so clients can make
 * placement decisions from the beats they already receive.  The field
 * is strictly opt-in on the wire — `has_load == false` encodes the
 * historical 12-byte beat bit-for-bit, and decode only reads the
 * digest when the extra bytes are present — so single-IOhost runs
 * stay byte-identical.
 */
struct HeartbeatMsg
{
    uint64_t seq = 0;
    uint32_t incarnation = 0;
    /** Advertised load digest (valid when has_load). */
    uint32_t load_ns = 0;
    bool has_load = false;

    static constexpr size_t kSize = 12;
    static constexpr size_t kSizeWithLoad = 16;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, HeartbeatMsg &out);
};

/**
 * One entry in a warm-state mirror stream (ReplicaSync payload).
 *
 * The primary ships three record kinds to its replication peer:
 *   InService — a block request was admitted (duplicate-filter entry
 *               plus enough descriptor state to replay it; writes
 *               carry the payload so the peer never needs to ask).
 *   Commit    — a write/flush/trim completed and its response is about
 *               to be released; the peer applies the payload it saved
 *               at InService time to its own store replica and moves
 *               the entry to the committed table.
 *   Forget    — a read completed; the peer drops its in-service entry
 *               (nothing to apply, nothing worth remembering).
 */
struct ReplicaRecord
{
    enum class Kind : uint8_t {
        InService = 1,
        Commit = 2,
        Forget = 3,
    };

    Kind kind = Kind::InService;
    uint32_t device_id = 0;
    uint64_t serial = 0;
    uint16_t generation = 0;
    uint8_t blk_type = 0;
    uint64_t sector = 0;
    uint32_t io_len = 0;
    Bytes payload; ///< write data (InService for writes), else empty

    /** Encoded size excluding the payload bytes. */
    static constexpr size_t kFixedSize = 1 + 4 + 8 + 2 + 1 + 8 + 4 + 4;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, ReplicaRecord &out);
};

/**
 * ReplicaSync payload: a batch of sequenced mirror records.  Records
 * carry contiguous sequence numbers starting at `first_seq`; the
 * receiver applies in order and acknowledges cumulatively, so a lost
 * batch is recovered by go-back-N retransmission from the sender's
 * unacked log.
 */
struct ReplicaSyncMsg
{
    uint64_t first_seq = 0;
    uint32_t incarnation = 0; ///< sender restart epoch
    std::vector<ReplicaRecord> records;

    static constexpr size_t kHeaderSize = 8 + 4 + 2;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, ReplicaSyncMsg &out);
};

/** ReplicaAck payload: highest contiguously applied sequence. */
struct ReplicaAckMsg
{
    uint64_t cum_seq = 0;
    uint32_t incarnation = 0; ///< echoes the sender's stream epoch

    static constexpr size_t kSize = 8 + 4;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, ReplicaAckMsg &out);
};

/**
 * Rehome payload, used in both directions of a placement flip:
 *   Command  — IOhost -> client: "your home is now rack IOhost
 *              `target`" (the drain-mirror-flip handoff of a planned
 *              live re-home).
 *   Activate — client -> new home: "I am homed on you now; promote
 *              your warm state for `device_id`" (replay unacked
 *              in-service requests, seed the duplicate filter).
 */
struct RehomeCmd
{
    enum class Phase : uint8_t {
        Command = 1,
        Activate = 2,
    };

    Phase phase = Phase::Command;
    uint32_t device_id = 0;
    uint16_t target = 0; ///< rack IOhost index (Command only)
    /**
     * Activate only: the client's lowest outstanding request serial.
     * Warm entries below it belong to requests that already completed
     * (their Forget/Commit was lost with the crash) — replaying them
     * would re-apply old writes, so the activation drops them.
     */
    uint64_t floor_serial = 0;

    static constexpr size_t kSize = 1 + 4 + 2 + 8;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, RehomeCmd &out);
};

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_CONTROL_HPP
