/**
 * @file
 * Control-channel payloads: device lifecycle commands.
 *
 * In vRIO "device creation is done via the I/O hypervisor.  The
 * transport driver therefore has a secondary role: receiving commands
 * from the I/O hypervisor to create and destroy paravirtual devices
 * in the IOclient" (Section 4.1).  These payloads ride in DevCreate /
 * DevDestroy / DevAck transport messages.
 */
#ifndef VRIO_TRANSPORT_CONTROL_HPP
#define VRIO_TRANSPORT_CONTROL_HPP

#include <cstdint>

#include "net/mac.hpp"
#include "util/byte_buffer.hpp"

namespace vrio::transport {

enum class DeviceKind : uint8_t {
    Net = 1,
    Block = 2,
};

/** DevCreate payload. */
struct DeviceCreateCmd
{
    DeviceKind kind = DeviceKind::Net;
    uint32_t device_id = 0;
    /** Net: the front-end (F) MAC the device answers to. */
    net::MacAddress mac;
    /** Block: device capacity in sectors. */
    uint64_t capacity_sectors = 0;

    static constexpr size_t kSize = 1 + 4 + 6 + 8;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, DeviceCreateCmd &out);
};

/** DevAck payload. */
struct DeviceAck
{
    uint32_t device_id = 0;
    uint8_t accepted = 1;

    static constexpr size_t kSize = 5;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, DeviceAck &out);
};

/**
 * Heartbeat payload: the liveness beacon each I/O hypervisor
 * broadcasts to its clients.  `seq` increments per beat;
 * `incarnation` increments each time the IOhost restarts, so a client
 * can tell a recovered primary from one that never went away.
 *
 * Rack extension: an IOhost may piggyback a load digest (mean worker
 * residency in ns over the last beat period) so clients can make
 * placement decisions from the beats they already receive.  The field
 * is strictly opt-in on the wire — `has_load == false` encodes the
 * historical 12-byte beat bit-for-bit, and decode only reads the
 * digest when the extra bytes are present — so single-IOhost runs
 * stay byte-identical.
 */
struct HeartbeatMsg
{
    uint64_t seq = 0;
    uint32_t incarnation = 0;
    /** Advertised load digest (valid when has_load). */
    uint32_t load_ns = 0;
    bool has_load = false;

    static constexpr size_t kSize = 12;
    static constexpr size_t kSizeWithLoad = 16;

    void encode(ByteWriter &w) const;
    static bool decode(ByteReader &r, HeartbeatMsg &out);
};

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_CONTROL_HPP
