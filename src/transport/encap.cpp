#include "transport/encap.hpp"

#include "net/frame_pool.hpp"
#include "util/logging.hpp"

namespace vrio::transport {

net::FramePtr
encapsulate(net::MacAddress src, net::MacAddress dst, uint32_t wire_msg_id,
            const TransportHeader &hdr, std::span<const uint8_t> payload)
{
    vrio_assert(payload.size() <= kMaxMessagePayload,
                "transport payload ", payload.size(),
                " exceeds the 64KB message bound");
    vrio_assert(hdr.total_len == payload.size(),
                "header total_len ", hdr.total_len, " != payload ",
                payload.size());

    net::FramePtr frame = net::FramePool::local().acquire();
    ByteWriter w(frame->bytes);

    net::EtherHeader eh;
    eh.dst = dst;
    eh.src = src;
    eh.ether_type = uint16_t(net::EtherType::Ipv4);
    eh.encode(w);

    size_t message_bytes = TransportHeader::kSize + payload.size();
    net::Ipv4Header ip;
    ip.total_length = uint16_t(
        std::min<size_t>(0xffff, net::kIpv4HeaderSize +
                                     net::kTcpHeaderSize + message_bytes));
    // Addresses derived from MACs; the channel is point-to-point L2,
    // the IP layer exists only to satisfy NIC TSO engines.
    ip.src = uint32_t(src.toU64());
    ip.dst = uint32_t(dst.toU64());
    ip.encode(w);

    net::TcpHeader tcp;
    tcp.src_port = kVrioPort;
    tcp.dst_port = kVrioPort;
    tcp.seq = 0; // offset 0; TSO advances per segment
    tcp.ack = wire_msg_id;
    tcp.encode(w);

    hdr.encode(w);
    w.putBytes(payload);

    // End-to-end checksum over the message region (header + payload);
    // the receiver's reassembler verifies it once the full message is
    // back together.
    constexpr size_t kL234 = net::kEtherHeaderSize + net::kIpv4HeaderSize +
                             net::kTcpHeaderSize;
    sealMessage(std::span<uint8_t>(frame->bytes).subspan(kL234));
    return frame;
}

bool
decapsulate(const net::Frame &frame, Segment &out)
{
    constexpr size_t kMinSize = net::kEtherHeaderSize +
                                net::kIpv4HeaderSize + net::kTcpHeaderSize;
    if (frame.bytes.size() < kMinSize)
        return false;

    ByteReader r(frame.bytes);
    net::EtherHeader eh = net::EtherHeader::decode(r);
    if (eh.ether_type != uint16_t(net::EtherType::Ipv4))
        return false;
    net::Ipv4Header ip = net::Ipv4Header::decode(r);
    if (ip.protocol != 6)
        return false;
    net::TcpHeader tcp = net::TcpHeader::decode(r);
    if (tcp.src_port != kVrioPort || tcp.dst_port != kVrioPort)
        return false;

    out.src = eh.src;
    out.dst = eh.dst;
    out.wire_msg_id = tcp.ack;
    out.offset = tcp.seq;
    out.data = std::span<const uint8_t>(frame.bytes).subspan(kMinSize);
    return true;
}

uint32_t
skbPagesNeeded(uint32_t message_bytes, uint32_t mtu)
{
    constexpr uint32_t kPage = 4096;
    uint32_t mss = net::mssForMtu(mtu);
    uint32_t pages = 0;
    uint32_t remaining = message_bytes;
    while (remaining > 0) {
        uint32_t chunk = std::min(mss, remaining);
        // Each received fragment is stored with its L3/L4 headers.
        uint32_t frag_bytes =
            chunk + net::kIpv4HeaderSize + net::kTcpHeaderSize;
        pages += (frag_bytes + kPage - 1) / kPage;
        remaining -= chunk;
    }
    return pages;
}

bool
zeroCopyEligible(uint32_t message_bytes, uint32_t mtu)
{
    // An SKB maps up to 17 fragments, each contained in a 4KB page;
    // reassembly is zero-copy iff the message's received fragments
    // fit in that page budget (Section 4.4).  MTU 8100 makes a full
    // 64KB message need exactly 17 pages; MTU 9000 would need 22.
    return skbPagesNeeded(message_bytes, mtu) <= kSkbMaxFrags;
}

} // namespace vrio::transport
