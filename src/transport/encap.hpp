/**
 * @file
 * Encapsulation of vRIO transport messages into wire frames.
 *
 * A transport message (header + up to ~64KB payload) becomes one
 * Ethernet frame carrying fake IPv4+TCP headers (Section 4.3).  The
 * TCP sequence number is the byte offset within the message (so NIC
 * TSO segmentation produces self-describing segments) and the TCP
 * ACK number is a per-sender wire-message id used as the reassembly
 * key.  decapsulate() recovers a segment's place in its message.
 */
#ifndef VRIO_TRANSPORT_ENCAP_HPP
#define VRIO_TRANSPORT_ENCAP_HPP

#include "net/frame.hpp"
#include "net/inet.hpp"
#include "net/tso.hpp"
#include "transport/header.hpp"

namespace vrio::transport {

/** TCP port identifying the vRIO channel in the fake headers. */
constexpr uint16_t kVrioPort = 0x5652;

/** Largest payload one transport message may carry (Section 4.3). */
constexpr uint32_t kMaxMessagePayload =
    net::kTsoMaxPayload - uint32_t(TransportHeader::kSize);

/**
 * Build the wire frame for one transport message.
 *
 * @param wire_msg_id per-sender id keying reassembly at the receiver.
 * @return a frame that may exceed the MTU; the sending NIC applies
 *         TSO (the frame is Ethernet/IPv4/TCP by construction).
 */
net::FramePtr encapsulate(net::MacAddress src, net::MacAddress dst,
                          uint32_t wire_msg_id,
                          const TransportHeader &hdr,
                          std::span<const uint8_t> payload);

/** A decoded wire segment (one frame of a possibly-TSO-split message). */
struct Segment
{
    net::MacAddress src;
    net::MacAddress dst;
    uint32_t wire_msg_id = 0;
    uint32_t offset = 0; ///< byte offset within the message
    /** Message bytes carried by this frame (hdr+payload substring). */
    std::span<const uint8_t> data;
};

/**
 * Parse a frame as a vRIO wire segment.
 * @return false if the frame is not vRIO traffic (wrong EtherType,
 *         not TCP, or wrong port).
 */
bool decapsulate(const net::Frame &frame, Segment &out);

/**
 * Pages an SKB needs to hold a reassembled message of @p message_bytes
 * sent over @p mtu, under the kernel constraint that each received
 * fragment occupies whole pages (Section 4.4's 17-fragment analysis).
 */
uint32_t skbPagesNeeded(uint32_t message_bytes, uint32_t mtu);

/** Linux SKB frag limit the MTU=8100 choice is engineered around. */
constexpr uint32_t kSkbMaxFrags = 17;

/**
 * True when a message of @p message_bytes arriving over @p mtu can be
 * reassembled zero-copy (its fragments fit the 17-page SKB budget).
 */
bool zeroCopyEligible(uint32_t message_bytes, uint32_t mtu);

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_ENCAP_HPP
