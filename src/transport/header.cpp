#include "transport/header.hpp"

#include "util/crc32.hpp"
#include "util/logging.hpp"

namespace vrio::transport {

void
TransportHeader::encode(ByteWriter &w) const
{
    w.putU16le(kMagic);
    w.putU8(kVersion);
    w.putU8(uint8_t(type));
    w.putU32le(device_id);
    w.putU64le(request_serial);
    w.putU16le(generation);
    w.putU16le(part);
    w.putU16le(parts);
    w.putU16le(flags);
    w.putU32le(total_len);
    w.putU32le(io_len);
    w.putU64le(sector);
    w.putU8(blk_type);
    w.putU8(status);
    w.putU16le(payload_csum);
}

bool
TransportHeader::decode(ByteReader &r, TransportHeader &out)
{
    if (r.remaining() < kSize)
        return false;
    if (r.getU16le() != kMagic)
        return false;
    if (r.getU8() != kVersion)
        return false;
    out.type = MsgType(r.getU8());
    out.device_id = r.getU32le();
    out.request_serial = r.getU64le();
    out.generation = r.getU16le();
    out.part = r.getU16le();
    out.parts = r.getU16le();
    out.flags = r.getU16le();
    out.total_len = r.getU32le();
    out.io_len = r.getU32le();
    out.sector = r.getU64le();
    out.blk_type = r.getU8();
    out.status = r.getU8();
    out.payload_csum = r.getU16le();
    return true;
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::NetOut:
        return "net-out";
      case MsgType::NetIn:
        return "net-in";
      case MsgType::BlkReq:
        return "blk-req";
      case MsgType::BlkResp:
        return "blk-resp";
      case MsgType::DevCreate:
        return "dev-create";
      case MsgType::DevDestroy:
        return "dev-destroy";
      case MsgType::DevAck:
        return "dev-ack";
      case MsgType::Heartbeat:
        return "heartbeat";
      case MsgType::ReplicaSync:
        return "replica-sync";
      case MsgType::ReplicaAck:
        return "replica-ack";
      case MsgType::Rehome:
        return "rehome";
    }
    return "unknown";
}

namespace {

uint16_t
checksumWithFieldZeroed(std::span<uint8_t> message)
{
    uint8_t &lo = message[TransportHeader::kCsumOffset];
    uint8_t &hi = message[TransportHeader::kCsumOffset + 1];
    uint8_t saved_lo = lo, saved_hi = hi;
    lo = hi = 0;
    uint16_t csum = uint16_t(crc32(message) & 0xffff);
    lo = saved_lo;
    hi = saved_hi;
    return csum;
}

} // namespace

void
sealMessage(std::span<uint8_t> message)
{
    vrio_assert(message.size() >= TransportHeader::kSize,
                "sealing a truncated transport message");
    uint16_t csum = checksumWithFieldZeroed(message);
    message[TransportHeader::kCsumOffset] = uint8_t(csum & 0xff);
    message[TransportHeader::kCsumOffset + 1] = uint8_t(csum >> 8);
}

bool
verifyMessage(std::span<uint8_t> message)
{
    if (message.size() < TransportHeader::kSize)
        return false;
    uint16_t stored =
        uint16_t(message[TransportHeader::kCsumOffset]) |
        uint16_t(message[TransportHeader::kCsumOffset + 1]) << 8;
    return checksumWithFieldZeroed(message) == stored;
}

} // namespace vrio::transport
