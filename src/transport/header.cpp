#include "transport/header.hpp"

namespace vrio::transport {

void
TransportHeader::encode(ByteWriter &w) const
{
    w.putU16le(kMagic);
    w.putU8(kVersion);
    w.putU8(uint8_t(type));
    w.putU32le(device_id);
    w.putU64le(request_serial);
    w.putU16le(generation);
    w.putU16le(part);
    w.putU16le(parts);
    w.putU16le(flags);
    w.putU32le(total_len);
    w.putU32le(io_len);
    w.putU64le(sector);
    w.putU8(blk_type);
    w.putU8(status);
    w.putU16le(0); // reserved
}

bool
TransportHeader::decode(ByteReader &r, TransportHeader &out)
{
    if (r.remaining() < kSize)
        return false;
    if (r.getU16le() != kMagic)
        return false;
    if (r.getU8() != kVersion)
        return false;
    out.type = MsgType(r.getU8());
    out.device_id = r.getU32le();
    out.request_serial = r.getU64le();
    out.generation = r.getU16le();
    out.part = r.getU16le();
    out.parts = r.getU16le();
    out.flags = r.getU16le();
    out.total_len = r.getU32le();
    out.io_len = r.getU32le();
    out.sector = r.getU64le();
    out.blk_type = r.getU8();
    out.status = r.getU8();
    r.skip(2); // reserved
    return true;
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::NetOut:
        return "net-out";
      case MsgType::NetIn:
        return "net-in";
      case MsgType::BlkReq:
        return "blk-req";
      case MsgType::BlkResp:
        return "blk-resp";
      case MsgType::DevCreate:
        return "dev-create";
      case MsgType::DevDestroy:
        return "dev-destroy";
      case MsgType::DevAck:
        return "dev-ack";
    }
    return "unknown";
}

} // namespace vrio::transport
