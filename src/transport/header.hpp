/**
 * @file
 * vRIO transport wire header.
 *
 * Every vRIO message between an IOclient's transport driver and the
 * I/O hypervisor starts with this header, carried inside the fake
 * TCP/IP encapsulation of Section 4.3.  It conveys the virtio
 * metadata the paper reuses ("the front-end device identifier, type
 * of request, and request size"), plus the identifiers that drive
 * reassembly and the block retransmission protocol of Section 4.5.
 *
 * Layout (little-endian, 40 bytes):
 *
 *   0  u16 magic          'VR' (0x5652)
 *   2  u8  version        1
 *   3  u8  type           MsgType
 *   4  u32 device_id      front-end device identifier
 *   8  u64 request_serial per-device request number
 *  16  u16 generation     retransmission generation (unique-id rule)
 *  18  u16 part           software-segmentation part index
 *  20  u16 parts          total parts in the full request
 *  22  u16 flags
 *  24  u32 total_len      payload bytes following this header
 *  28  u32 io_len         block: total request bytes (read length, or
 *                         write length across all parts)
 *  32  u64 sector         block: starting sector
 *  40  u8  blk_type       block: virtio::BlkType
 *  41  u8  status         responses: virtio::BlkStatus
 *  42  u16 payload_csum   truncated CRC-32 over header + payload
 *
 * The checksum covers the encoded header (with the checksum field
 * itself zeroed) plus the full message payload, and is verified when
 * the reassembler completes a message.  Link-level FCS already drops
 * garbled frames; this end-to-end check is what catches byzantine
 * corruption that *passes* FCS (bit flips inside a switch or NIC
 * buffer, modeled by fault::FaultPlan's corrupt_payload_rate).
 */
#ifndef VRIO_TRANSPORT_HEADER_HPP
#define VRIO_TRANSPORT_HEADER_HPP

#include <cstdint>
#include <span>

#include "util/byte_buffer.hpp"

namespace vrio::transport {

constexpr uint16_t kMagic = 0x5652; // 'VR'
constexpr uint8_t kVersion = 1;

enum class MsgType : uint8_t {
    NetOut = 1,   ///< client -> IOhost: guest transmit
    NetIn = 2,    ///< IOhost -> client: guest receive
    BlkReq = 3,   ///< client -> IOhost: block request
    BlkResp = 4,  ///< IOhost -> client: block completion
    DevCreate = 5,///< IOhost -> client: create a front-end
    DevDestroy = 6,
    DevAck = 7,   ///< client -> IOhost: control acknowledgement
    Heartbeat = 8,///< IOhost -> client: liveness beacon
    ReplicaSync = 9, ///< IOhost -> peer IOhost: warm-state mirror batch
    ReplicaAck = 10, ///< peer IOhost -> IOhost: cumulative mirror ack
    Rehome = 11,  ///< placement flip: IOhost command / client activation
};

/** Header flag bits. */
constexpr uint16_t kFlagRetransmit = 1; ///< diagnostic marking only

struct TransportHeader
{
    MsgType type = MsgType::NetOut;
    uint32_t device_id = 0;
    uint64_t request_serial = 0;
    uint16_t generation = 0;
    uint16_t part = 0;
    uint16_t parts = 1;
    uint16_t flags = 0;
    uint32_t total_len = 0;
    uint32_t io_len = 0;
    uint64_t sector = 0;
    uint8_t blk_type = 0;
    uint8_t status = 0;
    uint16_t payload_csum = 0;

    static constexpr size_t kSize = 44;
    /** Byte offset of payload_csum within the encoded header. */
    static constexpr size_t kCsumOffset = 42;

    void encode(ByteWriter &w) const;

    /**
     * Decode; returns false on bad magic/version (corrupt or foreign
     * frame — callers must treat the wire as untrusted).
     */
    static bool decode(ByteReader &r, TransportHeader &out);
};

const char *msgTypeName(MsgType type);

/**
 * Stamp @p message (encoded header + payload, at least kSize bytes)
 * with its end-to-end checksum: truncated CRC-32 computed with the
 * checksum field zeroed.  Called once per message by encapsulate().
 */
void sealMessage(std::span<uint8_t> message);

/**
 * Verify a sealed message.  Temporarily zeroes the checksum field for
 * the computation and restores it; returns true iff the stored value
 * matches.  A mismatch means the payload was corrupted somewhere FCS
 * could not see.
 */
bool verifyMessage(std::span<uint8_t> message);

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_HEADER_HPP
