#include "transport/reassembly.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "util/logging.hpp"

namespace vrio::transport {

Reassembler::Reassembler(sim::EventQueue &eq, uint32_t mtu,
                         sim::Tick timeout)
    : eq(eq), mtu(mtu), timeout(timeout)
{}

void
Reassembler::scheduleSweep()
{
    if (sweep_scheduled)
        return;
    sweep_scheduled = true;
    eq.schedule(timeout, [this]() {
        sweep_scheduled = false;
        sweep();
    });
}

void
Reassembler::sweep()
{
    sim::Tick now = eq.now();
    for (auto it = partials.begin(); it != partials.end();) {
        if (now - it->second.last_activity >= timeout) {
            ++expired;
            it = partials.erase(it);
        } else {
            ++it;
        }
    }
    if (!partials.empty())
        scheduleSweep();
}

std::optional<Message>
Reassembler::feed(const net::Frame &frame)
{
    Segment seg;
    if (!decapsulate(frame, seg)) {
        ++foreign;
        return std::nullopt;
    }

    Key key{seg.src.toU64(), seg.wire_msg_id};
    Partial &p = partials[key];
    p.src = seg.src;
    p.dst = seg.dst;
    p.last_activity = eq.now();

    // Reject duplicate or overlapping segments (can happen when a
    // wire-message id is reused after an expiry raced a late frame).
    auto overlap = [&](uint32_t off, uint32_t len) {
        for (const auto &[eoff, elen] : p.extents) {
            if (off < eoff + elen && eoff < off + len)
                return true;
        }
        return false;
    };
    uint32_t len = uint32_t(seg.data.size());
    if (len == 0 || overlap(seg.offset, len)) {
        ++duplicate_segments;
        return std::nullopt;
    }

    if (p.data.size() < seg.offset + len)
        p.data.resize(seg.offset + len);
    std::memcpy(p.data.data() + seg.offset, seg.data.data(), len);
    p.extents[seg.offset] = len;
    p.bytes_received += len;
    ++p.frags;

    // The segment at offset 0 carries the transport header, which
    // tells us the full message length.
    if (seg.offset == 0) {
        ByteReader r(seg.data);
        TransportHeader hdr;
        if (!TransportHeader::decode(r, hdr)) {
            // Corrupt leading segment: drop the whole partial.
            partials.erase(key);
            ++foreign;
            return std::nullopt;
        }
        p.expected_total =
            uint32_t(TransportHeader::kSize) + hdr.total_len;
    }

    auto done = tryComplete(key, p);
    if (!done)
        scheduleSweep();
    return done;
}

std::optional<Message>
Reassembler::tryComplete(const Key &key, Partial &p)
{
    if (!p.expected_total || p.bytes_received < *p.expected_total)
        return std::nullopt;
    vrio_assert(p.bytes_received == *p.expected_total,
                "reassembly overshoot: ", p.bytes_received, " > ",
                *p.expected_total);

    // End-to-end integrity: FCS-passing corruption (a bit flip inside
    // a buffer rather than on the wire) surfaces only here, once the
    // whole message is back together.  Drop it; the sender's
    // retransmission machinery recovers.
    if (!verifyMessage(std::span<uint8_t>(p.data))) {
        partials.erase(key);
        ++checksum_drops;
        return std::nullopt;
    }

    Message msg;
    ByteReader r(p.data);
    bool ok = TransportHeader::decode(r, msg.hdr);
    vrio_assert(ok, "header decode failed on a complete message");
    msg.payload = r.getBytes(msg.hdr.total_len);
    msg.src = p.src;
    msg.dst = p.dst;
    msg.zero_copy = zeroCopyEligible(*p.expected_total, mtu);
    if (!msg.zero_copy)
        ++copied;

    partials.erase(key);
    ++completed;
    return msg;
}

std::optional<MessageAssembler::Assembled>
MessageAssembler::feed(Message msg)
{
    if (msg.hdr.parts <= 1) {
        Assembled a;
        a.hdr = msg.hdr;
        a.payload = std::move(msg.payload);
        a.src = msg.src;
        a.zero_copy = msg.zero_copy;
        return a;
    }

    GroupKey key{msg.src.toU64(), msg.hdr.device_id,
                 msg.hdr.request_serial, msg.hdr.generation};
    Group &g = groups[key];
    g.expected_parts = msg.hdr.parts;
    uint16_t part = msg.hdr.part;
    g.parts[part] = std::move(msg);

    if (g.parts.size() < g.expected_parts)
        return std::nullopt;

    Assembled a;
    a.hdr = g.parts.begin()->second.hdr;
    a.src = g.parts.begin()->second.src;
    for (auto &[idx, m] : g.parts) {
        vrio_assert(idx < g.expected_parts, "part index out of range");
        a.payload.insert(a.payload.end(), m.payload.begin(),
                         m.payload.end());
        a.zero_copy = a.zero_copy && m.zero_copy;
    }
    a.hdr.part = 0;
    a.hdr.parts = 1;
    a.hdr.total_len = uint32_t(a.payload.size());
    groups.erase(key);
    return a;
}

bool
DuplicateFilter::admit(uint32_t device_id, uint64_t serial,
                       uint16_t generation)
{
    auto [it, inserted] =
        in_service.try_emplace({device_id, serial}, Entry{generation});
    if (inserted)
        return true;
    // Generations wrap only after 65k retries of one request (the
    // retransmit queue gives up orders of magnitude earlier), so a
    // plain max is safe.
    if (generation > it->second.generation)
        it->second.generation = generation;
    ++suppressed_;
    return false;
}

void
DuplicateFilter::bind(uint32_t device_id, uint64_t serial, unsigned worker)
{
    auto it = in_service.find({device_id, serial});
    if (it != in_service.end())
        it->second.worker = worker;
}

uint16_t
DuplicateFilter::take(uint32_t device_id, uint64_t serial, uint16_t fallback)
{
    auto it = in_service.find({device_id, serial});
    if (it == in_service.end())
        return fallback;
    uint16_t generation = std::max(fallback, it->second.generation);
    in_service.erase(it);
    return generation;
}

size_t
DuplicateFilter::dropWorker(unsigned worker)
{
    size_t dropped = 0;
    for (auto it = in_service.begin(); it != in_service.end();) {
        if (it->second.worker == worker) {
            it = in_service.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

size_t
DuplicateFilter::inServiceOf(uint32_t device_id) const
{
    auto first = in_service.lower_bound({device_id, 0});
    auto last = in_service.lower_bound({device_id + 1, 0});
    return size_t(std::distance(first, last));
}

size_t
DuplicateFilter::dropDevice(uint32_t device_id)
{
    auto first = in_service.lower_bound({device_id, 0});
    auto last = in_service.lower_bound({device_id + 1, 0});
    size_t dropped = size_t(std::distance(first, last));
    in_service.erase(first, last);
    return dropped;
}

bool
DuplicateFilter::seed(uint32_t device_id, uint64_t serial,
                      uint16_t generation)
{
    auto [it, inserted] =
        in_service.try_emplace({device_id, serial}, Entry{generation});
    (void)it;
    return inserted;
}

void
MessageAssembler::dropRequest(uint32_t device_id, uint64_t serial)
{
    for (auto it = groups.begin(); it != groups.end();) {
        if (it->first.device_id == device_id &&
            it->first.serial == serial) {
            it = groups.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace vrio::transport
