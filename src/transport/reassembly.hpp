/**
 * @file
 * Two-level reassembly at the receiving side of the vRIO channel.
 *
 * Level 1 (Reassembler): wire segments (TSO splits of one transport
 * message) -> complete transport message.  Keyed by (source MAC,
 * wire message id); byte offsets come from the fake TCP sequence
 * numbers.  Incomplete messages expire after a timeout, modelling the
 * receiver discarding stale partial SKB chains when a segment was
 * lost.
 *
 * Level 2 (MessageAssembler): multiple transport messages that a
 * driver software-segmented (block payloads larger than the 64KB TSO
 * bound, Section 4.3) -> the original request payload.
 */
#ifndef VRIO_TRANSPORT_REASSEMBLY_HPP
#define VRIO_TRANSPORT_REASSEMBLY_HPP

#include <map>
#include <optional>

#include "sim/event_queue.hpp"
#include "transport/encap.hpp"

namespace vrio::transport {

/** A fully reassembled transport message. */
struct Message
{
    TransportHeader hdr;
    Bytes payload;
    net::MacAddress src;
    net::MacAddress dst;
    /** Whether reassembly stayed within the zero-copy page budget. */
    bool zero_copy = true;
};

class Reassembler
{
  public:
    /**
     * @param eq event queue for partial-message expiry.
     * @param mtu the channel MTU (for zero-copy accounting).
     * @param timeout how long a partial message may linger.
     */
    Reassembler(sim::EventQueue &eq, uint32_t mtu,
                sim::Tick timeout = sim::Tick(50) * sim::kMillisecond);

    /**
     * Feed one received frame.  Non-vRIO frames are ignored (counted).
     * @return a complete message when this frame finishes one.
     */
    std::optional<Message> feed(const net::Frame &frame);

    size_t partialCount() const { return partials.size(); }
    uint64_t messagesCompleted() const { return completed; }
    uint64_t partialsExpired() const { return expired; }
    uint64_t foreignFrames() const { return foreign; }
    uint64_t duplicateSegments() const { return duplicate_segments; }
    /** Messages whose size/MTU forced a copying reassembly. */
    uint64_t copiedReassemblies() const { return copied; }

  private:
    struct Key
    {
        uint64_t src_mac;
        uint32_t wire_msg_id;
        auto operator<=>(const Key &) const = default;
    };
    struct Partial
    {
        Bytes data;               ///< message bytes, dense from 0
        std::map<uint32_t, uint32_t> extents; ///< offset -> length
        uint32_t bytes_received = 0;
        uint32_t frags = 0;
        std::optional<uint32_t> expected_total; ///< from offset-0 hdr
        net::MacAddress src;
        net::MacAddress dst;
        sim::Tick last_activity = 0;
    };

    sim::EventQueue &eq;
    uint32_t mtu;
    sim::Tick timeout;
    std::map<Key, Partial> partials;

    uint64_t completed = 0;
    uint64_t expired = 0;
    uint64_t foreign = 0;
    uint64_t duplicate_segments = 0;
    uint64_t copied = 0;
    bool sweep_scheduled = false;

    void scheduleSweep();
    void sweep();
    std::optional<Message> tryComplete(const Key &key, Partial &p);
};

/** Level-2 assembly of software-segmented multi-part requests. */
class MessageAssembler
{
  public:
    /** A fully assembled request (all parts concatenated). */
    struct Assembled
    {
        TransportHeader hdr; ///< header of part 0 (part/parts cleared)
        Bytes payload;
        net::MacAddress src;
        /** True only if every part reassembled zero-copy. */
        bool zero_copy = true;
    };

    /**
     * Feed a complete transport message; returns the assembled
     * request when all of its parts have arrived.  Single-part
     * messages pass straight through.
     */
    std::optional<Assembled> feed(Message msg);

    size_t pendingGroups() const { return groups.size(); }

    /**
     * Drop partially assembled state for a given request (used when
     * a retransmitted generation supersedes an old one).
     */
    void dropRequest(uint32_t device_id, uint64_t serial);

  private:
    struct GroupKey
    {
        uint64_t src_mac;
        uint32_t device_id;
        uint64_t serial;
        uint16_t generation;
        auto operator<=>(const GroupKey &) const = default;
    };
    struct Group
    {
        std::map<uint16_t, Message> parts;
        uint16_t expected_parts = 0;
    };

    std::map<GroupKey, Group> groups;
};

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_REASSEMBLY_HPP
