/**
 * @file
 * Two-level reassembly at the receiving side of the vRIO channel.
 *
 * Level 1 (Reassembler): wire segments (TSO splits of one transport
 * message) -> complete transport message.  Keyed by (source MAC,
 * wire message id); byte offsets come from the fake TCP sequence
 * numbers.  Incomplete messages expire after a timeout, modelling the
 * receiver discarding stale partial SKB chains when a segment was
 * lost.
 *
 * Level 2 (MessageAssembler): multiple transport messages that a
 * driver software-segmented (block payloads larger than the 64KB TSO
 * bound, Section 4.3) -> the original request payload.
 */
#ifndef VRIO_TRANSPORT_REASSEMBLY_HPP
#define VRIO_TRANSPORT_REASSEMBLY_HPP

#include <map>
#include <optional>

#include "sim/event_queue.hpp"
#include "transport/encap.hpp"

namespace vrio::transport {

/** A fully reassembled transport message. */
struct Message
{
    TransportHeader hdr;
    Bytes payload;
    net::MacAddress src;
    net::MacAddress dst;
    /** Whether reassembly stayed within the zero-copy page budget. */
    bool zero_copy = true;
};

class Reassembler
{
  public:
    /**
     * @param eq event queue for partial-message expiry.
     * @param mtu the channel MTU (for zero-copy accounting).
     * @param timeout how long a partial message may linger.
     */
    Reassembler(sim::EventQueue &eq, uint32_t mtu,
                sim::Tick timeout = sim::Tick(50) * sim::kMillisecond);

    /**
     * Feed one received frame.  Non-vRIO frames are ignored (counted).
     * @return a complete message when this frame finishes one.
     */
    std::optional<Message> feed(const net::Frame &frame);

    size_t partialCount() const { return partials.size(); }
    uint64_t messagesCompleted() const { return completed; }
    uint64_t partialsExpired() const { return expired; }
    uint64_t foreignFrames() const { return foreign; }
    uint64_t duplicateSegments() const { return duplicate_segments; }
    /** Messages whose size/MTU forced a copying reassembly. */
    uint64_t copiedReassemblies() const { return copied; }
    /** Complete messages dropped by the end-to-end checksum. */
    uint64_t checksumDrops() const { return checksum_drops; }

  private:
    struct Key
    {
        uint64_t src_mac;
        uint32_t wire_msg_id;
        auto operator<=>(const Key &) const = default;
    };
    struct Partial
    {
        Bytes data;               ///< message bytes, dense from 0
        std::map<uint32_t, uint32_t> extents; ///< offset -> length
        uint32_t bytes_received = 0;
        uint32_t frags = 0;
        std::optional<uint32_t> expected_total; ///< from offset-0 hdr
        net::MacAddress src;
        net::MacAddress dst;
        sim::Tick last_activity = 0;
    };

    sim::EventQueue &eq;
    uint32_t mtu;
    sim::Tick timeout;
    std::map<Key, Partial> partials;

    uint64_t completed = 0;
    uint64_t expired = 0;
    uint64_t foreign = 0;
    uint64_t duplicate_segments = 0;
    uint64_t copied = 0;
    uint64_t checksum_drops = 0;
    bool sweep_scheduled = false;

    void scheduleSweep();
    void sweep();
    std::optional<Message> tryComplete(const Key &key, Partial &p);
};

/** Level-2 assembly of software-segmented multi-part requests. */
class MessageAssembler
{
  public:
    /** A fully assembled request (all parts concatenated). */
    struct Assembled
    {
        TransportHeader hdr; ///< header of part 0 (part/parts cleared)
        Bytes payload;
        net::MacAddress src;
        /** True only if every part reassembled zero-copy. */
        bool zero_copy = true;
    };

    /**
     * Feed a complete transport message; returns the assembled
     * request when all of its parts have arrived.  Single-part
     * messages pass straight through.
     */
    std::optional<Assembled> feed(Message msg);

    size_t pendingGroups() const { return groups.size(); }

    /**
     * Drop partially assembled state for a given request (used when
     * a retransmitted generation supersedes an old one).
     */
    void dropRequest(uint32_t device_id, uint64_t serial);

  private:
    struct GroupKey
    {
        uint64_t src_mac;
        uint32_t device_id;
        uint64_t serial;
        uint16_t generation;
        auto operator<=>(const GroupKey &) const = default;
    };
    struct Group
    {
        std::map<uint16_t, Message> parts;
        uint16_t expected_parts = 0;
    };

    std::map<GroupKey, Group> groups;
};

/**
 * Server-side half of the Section 4.5 unique-id rule: sequence-based
 * duplicate suppression for idempotent retries.  A retransmitted block
 * request whose original is still executing must not run twice; the
 * filter tracks requests in service by (device, serial) and remembers
 * the newest generation seen so the eventual response can be stamped
 * with a generation the client's retransmit queue still accepts.
 */
class DuplicateFilter
{
  public:
    /**
     * Offer an arriving request.  @return true when it is new and
     * should execute; false when an older generation is already in
     * service (the duplicate is suppressed, but its generation is
     * recorded for response stamping).
     */
    bool admit(uint32_t device_id, uint64_t serial, uint16_t generation);

    /** Bind the in-service entry to the worker executing it. */
    void bind(uint32_t device_id, uint64_t serial, unsigned worker);

    /**
     * The request is completing and its response is about to leave:
     * forget the entry and return the newest generation seen, so a
     * response computed for generation g still matches a client that
     * has since retried with g+1.  @p fallback is returned when the
     * entry is gone (filter cleared by a crash, or never admitted).
     */
    uint16_t take(uint32_t device_id, uint64_t serial, uint16_t fallback);

    /**
     * Abandon every entry bound to @p worker (watchdog quarantine).
     * Their clients will retry; without this, the stale entries would
     * suppress those retries forever.  @return entries dropped.
     */
    size_t dropWorker(unsigned worker);

    /**
     * Abandon every entry of @p device_id (per-device starvation
     * quarantine: the worker is alive but this queue stopped moving,
     * so its clients' retries must be re-admitted and re-steered).
     * @return entries dropped.
     */
    size_t dropDevice(uint32_t device_id);

    /**
     * Seed an entry from a replication peer's warm state (failover
     * handoff).  Unlike admit(), seeding neither counts a suppression
     * nor bumps an existing newer generation: a live entry means the
     * client's retry beat the replay, and the retry's generation is
     * the one the response must carry.  @return true when the seeded
     * entry is new (the caller should replay the request).
     */
    bool seed(uint32_t device_id, uint64_t serial, uint16_t generation);

    /** Crash semantics: in-service state does not survive an outage. */
    void clear() { in_service.clear(); }

    uint64_t suppressed() const { return suppressed_; }
    size_t inService() const { return in_service.size(); }
    /** In-service entries of one device (starvation-watchdog input). */
    size_t inServiceOf(uint32_t device_id) const;

  private:
    struct Entry
    {
        uint16_t generation = 0;
        unsigned worker = kNoWorker;
    };
    static constexpr unsigned kNoWorker = ~0u;

    std::map<std::pair<uint32_t, uint64_t>, Entry> in_service;
    uint64_t suppressed_ = 0;
};

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_REASSEMBLY_HPP
