#include "transport/retransmit.hpp"

#include <limits>

#include "util/logging.hpp"

namespace vrio::transport {

RetransmitQueue::RetransmitQueue(sim::EventQueue &eq, RetransmitConfig cfg,
                                 SendFn send, GiveUpFn give_up)
    : eq(eq), cfg(cfg), send(std::move(send)), give_up(std::move(give_up))
{
    vrio_assert(cfg.initial_timeout > 0, "timeout must be positive");
}

void
RetransmitQueue::track(uint64_t serial)
{
    auto [it, inserted] = live.emplace(serial, Entry{});
    vrio_assert(inserted, "duplicate live serial ", serial);
    it->second.timeout = cfg.initial_timeout;
    send(serial, 0);
    arm(serial);
}

void
RetransmitQueue::arm(uint64_t serial)
{
    auto it = live.find(serial);
    vrio_assert(it != live.end(), "arming unknown serial ", serial);
    // Backed-off timeouts can saturate near Tick max; keep the
    // absolute expiry representable.
    sim::Tick delay = it->second.timeout;
    sim::Tick headroom = std::numeric_limits<sim::Tick>::max() - eq.now();
    if (delay > headroom)
        delay = headroom;
    it->second.timer =
        eq.schedule(delay, [this, serial]() {
            expire(serial);
        });
}

void
RetransmitQueue::expire(uint64_t serial)
{
    auto it = live.find(serial);
    if (it == live.end())
        return; // completed concurrently
    Entry &e = it->second;
    if (e.attempts >= cfg.max_retries) {
        ++give_ups;
        live.erase(it);
        give_up(serial);
        return;
    }
    ++e.attempts;
    ++retransmits;
    ++e.generation; // the new unique identifier for this attempt
    // Exponential backoff per Section 4.5.  An explicit max_timeout
    // caps the doubling; without one (max_timeout == 0) the doubling
    // must still saturate instead of wrapping Tick after ~50 retries.
    sim::Tick cap = cfg.max_timeout > 0
                        ? cfg.max_timeout
                        : std::numeric_limits<sim::Tick>::max() / 2;
    e.timeout = e.timeout > cap / 2 ? cap : e.timeout * 2;
    send(serial, e.generation);
    arm(serial);
}

RetransmitQueue::Accept
RetransmitQueue::accept(uint64_t serial, uint16_t generation)
{
    auto it = live.find(serial);
    if (it == live.end())
        return Accept::Unknown;
    if (it->second.generation != generation) {
        ++stale;
        return Accept::Stale;
    }
    it->second.timer.cancel();
    live.erase(it);
    return Accept::Ok;
}

void
RetransmitQueue::kickAll()
{
    for (auto &[serial, e] : live) {
        e.timer.cancel();
        ++e.generation;
        ++retransmits;
        e.timeout = cfg.initial_timeout;
        send(serial, e.generation);
        arm(serial);
    }
}

void
RetransmitQueue::cancel(uint64_t serial)
{
    auto it = live.find(serial);
    if (it == live.end())
        return;
    it->second.timer.cancel();
    live.erase(it);
}

} // namespace vrio::transport
