#include "transport/retransmit.hpp"

#include "util/logging.hpp"

namespace vrio::transport {

RetransmitQueue::RetransmitQueue(sim::EventQueue &eq, RetransmitConfig cfg,
                                 SendFn send, GiveUpFn give_up)
    : eq(eq), cfg(cfg), send(std::move(send)), give_up(std::move(give_up))
{
    vrio_assert(cfg.initial_timeout > 0, "timeout must be positive");
}

void
RetransmitQueue::track(uint64_t serial)
{
    auto [it, inserted] = live.emplace(serial, Entry{});
    vrio_assert(inserted, "duplicate live serial ", serial);
    it->second.timeout = cfg.initial_timeout;
    send(serial, 0);
    arm(serial);
}

void
RetransmitQueue::arm(uint64_t serial)
{
    auto it = live.find(serial);
    vrio_assert(it != live.end(), "arming unknown serial ", serial);
    it->second.timer =
        eq.schedule(it->second.timeout, [this, serial]() {
            expire(serial);
        });
}

void
RetransmitQueue::expire(uint64_t serial)
{
    auto it = live.find(serial);
    if (it == live.end())
        return; // completed concurrently
    Entry &e = it->second;
    if (e.attempts >= cfg.max_retries) {
        ++give_ups;
        live.erase(it);
        give_up(serial);
        return;
    }
    ++e.attempts;
    ++retransmits;
    ++e.generation; // the new unique identifier for this attempt
    e.timeout *= 2; // exponential backoff per Section 4.5
    if (cfg.max_timeout > 0 && e.timeout > cfg.max_timeout)
        e.timeout = cfg.max_timeout;
    send(serial, e.generation);
    arm(serial);
}

RetransmitQueue::Accept
RetransmitQueue::accept(uint64_t serial, uint16_t generation)
{
    auto it = live.find(serial);
    if (it == live.end())
        return Accept::Unknown;
    if (it->second.generation != generation) {
        ++stale;
        return Accept::Stale;
    }
    it->second.timer.cancel();
    live.erase(it);
    return Accept::Ok;
}

void
RetransmitQueue::cancel(uint64_t serial)
{
    auto it = live.find(serial);
    if (it == live.end())
        return;
    it->second.timer.cancel();
    live.erase(it);
}

} // namespace vrio::transport
