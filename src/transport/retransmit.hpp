/**
 * @file
 * Block-request retransmission (Section 4.5).
 *
 * Ethernet is unreliable; virtual networking rides on its guests' TCP,
 * but block I/O needs the transport to provide reliability itself.
 * The protocol: every tracked request carries a unique (serial,
 * generation) identifier; a timer starts at 10 ms and doubles on each
 * expiry; expiry bumps the generation and retransmits; responses whose
 * generation is not current are "stale" and ignored; after a retry cap
 * the request fails with a device error.  The guest disk scheduler's
 * single-outstanding-request-per-block invariant (block/disk_scheduler)
 * is what makes blind retransmission safe.
 */
#ifndef VRIO_TRANSPORT_RETRANSMIT_HPP
#define VRIO_TRANSPORT_RETRANSMIT_HPP

#include <functional>
#include <map>

#include "sim/event_queue.hpp"

namespace vrio::transport {

struct RetransmitConfig
{
    /** First timeout; doubles after every expiry (10 ms per paper). */
    sim::Tick initial_timeout = sim::Tick(10) * sim::kMillisecond;
    /** Backoff ceiling; 0 = uncapped doubling. */
    sim::Tick max_timeout = 0;
    /** Retransmissions before the request is failed. */
    unsigned max_retries = 6;
};

class RetransmitQueue
{
  public:
    /**
     * @param send invoked to (re)send a request at a new generation.
     * @param give_up invoked when the retry cap is exceeded; the
     *        caller raises a device error (BlkStatus::IoErr).
     */
    using SendFn = std::function<void(uint64_t serial, uint16_t gen)>;
    using GiveUpFn = std::function<void(uint64_t serial)>;

    RetransmitQueue(sim::EventQueue &eq, RetransmitConfig cfg,
                    SendFn send, GiveUpFn give_up);

    /**
     * Track a new request and perform the initial send (generation 0).
     * Serials must be unique among live requests.
     */
    void track(uint64_t serial);

    /** Outcome of matching an arriving response. */
    enum class Accept {
        Ok,      ///< current generation; request completed
        Stale,   ///< old generation; ignore the response
        Unknown, ///< not tracked (already completed or failed)
    };

    /**
     * Match a response.  Accept::Ok cancels the timer and forgets the
     * request.
     */
    Accept accept(uint64_t serial, uint16_t generation);

    /** Abandon a tracked request (e.g. device destroyed). */
    void cancel(uint64_t serial);

    /**
     * Immediately retransmit every live request at a fresh generation
     * with the backoff reset, without consuming a retry attempt.
     * Called on failover: the requests are not lost to congestion,
     * they were addressed to a dead IOhost — waiting out a backed-off
     * timer would stretch recovery by hundreds of milliseconds.
     */
    void kickAll();

    size_t inFlight() const { return live.size(); }
    uint64_t retransmissions() const { return retransmits; }
    uint64_t giveUps() const { return give_ups; }
    uint64_t staleResponses() const { return stale; }

  private:
    struct Entry
    {
        uint16_t generation = 0;
        unsigned attempts = 0;
        sim::Tick timeout;
        sim::EventHandle timer;
    };

    sim::EventQueue &eq;
    RetransmitConfig cfg;
    SendFn send;
    GiveUpFn give_up;
    std::map<uint64_t, Entry> live;

    uint64_t retransmits = 0;
    uint64_t give_ups = 0;
    uint64_t stale = 0;

    void arm(uint64_t serial);
    void expire(uint64_t serial);
};

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_RETRANSMIT_HPP
