#include "transport/segmenter.hpp"

#include "transport/encap.hpp"
#include "util/logging.hpp"

namespace vrio::transport {

std::vector<SoftSegment>
segmentRequest(const TransportHeader &proto, Bytes payload,
               uint32_t max_part)
{
    if (max_part == 0)
        max_part = kMaxMessagePayload;
    vrio_assert(max_part > 0, "max_part must be positive");

    std::vector<SoftSegment> out;
    if (payload.empty()) {
        SoftSegment seg;
        seg.hdr = proto;
        seg.hdr.part = 0;
        seg.hdr.parts = 1;
        seg.hdr.total_len = 0;
        out.push_back(std::move(seg));
        return out;
    }

    size_t nparts = (payload.size() + max_part - 1) / max_part;
    vrio_assert(nparts <= 0xffff, "request needs too many parts: ",
                nparts);
    for (size_t i = 0; i < nparts; ++i) {
        size_t off = i * max_part;
        size_t len = std::min<size_t>(max_part, payload.size() - off);
        SoftSegment seg;
        seg.hdr = proto;
        seg.hdr.part = uint16_t(i);
        seg.hdr.parts = uint16_t(nparts);
        seg.hdr.total_len = uint32_t(len);
        seg.payload.assign(payload.begin() + off,
                           payload.begin() + off + len);
        out.push_back(std::move(seg));
    }
    return out;
}

} // namespace vrio::transport
