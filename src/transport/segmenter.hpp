/**
 * @file
 * Software segmentation of oversized requests (Section 4.3).
 *
 * "Network stacks do not produce packet sizes bigger than 64KB, so
 * the vRIO transport driver only needs to segment block I/O traffic."
 * segmentRequest() splits a request payload into <= 64KB transport
 * messages, each of which becomes one TSO send.
 */
#ifndef VRIO_TRANSPORT_SEGMENTER_HPP
#define VRIO_TRANSPORT_SEGMENTER_HPP

#include <vector>

#include "transport/header.hpp"

namespace vrio::transport {

/** One software segment: a header and the payload slice it carries. */
struct SoftSegment
{
    TransportHeader hdr;
    Bytes payload;
};

/**
 * Split @p payload into parts of at most @p max_part bytes (default:
 * the TSO message bound).  @p proto is the prototype header: its
 * type/device/serial/generation/sector fields are copied to each part
 * and part/parts/total_len are filled in.  Zero-length payloads yield
 * a single empty part (e.g. block reads carry no request data).
 */
std::vector<SoftSegment>
segmentRequest(const TransportHeader &proto, Bytes payload,
               uint32_t max_part = 0);

} // namespace vrio::transport

#endif // VRIO_TRANSPORT_SEGMENTER_HPP
