#include "util/byte_buffer.hpp"

#include "util/logging.hpp"

namespace vrio {

void
ByteWriter::putU8(uint8_t v)
{
    buf.push_back(v);
}

void
ByteWriter::putU16le(uint16_t v)
{
    buf.push_back(uint8_t(v));
    buf.push_back(uint8_t(v >> 8));
}

void
ByteWriter::putU32le(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(uint8_t(v >> (8 * i)));
}

void
ByteWriter::putU64le(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(uint8_t(v >> (8 * i)));
}

void
ByteWriter::putU16be(uint16_t v)
{
    buf.push_back(uint8_t(v >> 8));
    buf.push_back(uint8_t(v));
}

void
ByteWriter::putU32be(uint32_t v)
{
    for (int i = 3; i >= 0; --i)
        buf.push_back(uint8_t(v >> (8 * i)));
}

void
ByteWriter::putU64be(uint64_t v)
{
    for (int i = 7; i >= 0; --i)
        buf.push_back(uint8_t(v >> (8 * i)));
}

void
ByteWriter::putBytes(std::span<const uint8_t> data)
{
    buf.insert(buf.end(), data.begin(), data.end());
}

void
ByteWriter::putZeros(size_t count, uint8_t fill)
{
    buf.insert(buf.end(), count, fill);
}

void
ByteReader::need(size_t count) const
{
    if (pos + count > buf.size()) {
        vrio_panic("ByteReader overrun: need ", count, " bytes at offset ",
                   pos, " of ", buf.size());
    }
}

uint8_t
ByteReader::getU8()
{
    need(1);
    return buf[pos++];
}

uint16_t
ByteReader::getU16le()
{
    need(2);
    uint16_t v = uint16_t(buf[pos]) | uint16_t(buf[pos + 1]) << 8;
    pos += 2;
    return v;
}

uint32_t
ByteReader::getU32le()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(buf[pos + i]) << (8 * i);
    pos += 4;
    return v;
}

uint64_t
ByteReader::getU64le()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(buf[pos + i]) << (8 * i);
    pos += 8;
    return v;
}

uint16_t
ByteReader::getU16be()
{
    need(2);
    uint16_t v = uint16_t(buf[pos]) << 8 | uint16_t(buf[pos + 1]);
    pos += 2;
    return v;
}

uint32_t
ByteReader::getU32be()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v = v << 8 | buf[pos + i];
    pos += 4;
    return v;
}

uint64_t
ByteReader::getU64be()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = v << 8 | buf[pos + i];
    pos += 8;
    return v;
}

Bytes
ByteReader::getBytes(size_t count)
{
    need(count);
    Bytes out(buf.begin() + pos, buf.begin() + pos + count);
    pos += count;
    return out;
}

std::span<const uint8_t>
ByteReader::viewBytes(size_t count)
{
    need(count);
    auto view = buf.subspan(pos, count);
    pos += count;
    return view;
}

void
ByteReader::skip(size_t count)
{
    need(count);
    pos += count;
}

} // namespace vrio
