/**
 * @file
 * Bounds-checked byte buffer with endian-aware codecs.
 *
 * All wire formats in the library (Ethernet frames, fake TCP/IP
 * headers, the vRIO transport header, virtio ring structures) are
 * serialized through ByteReader/ByteWriter so that out-of-bounds
 * accesses are caught at the point of the bug rather than corrupting
 * adjacent state.
 */
#ifndef VRIO_UTIL_BYTE_BUFFER_HPP
#define VRIO_UTIL_BYTE_BUFFER_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vrio {

/** Growable owned byte array used for packet payloads and disk data. */
using Bytes = std::vector<uint8_t>;

/**
 * Sequential writer over a growable byte vector.
 *
 * Integers can be appended in little-endian (virtio is a little-endian
 * protocol) or big-endian (network order for the fake TCP/IP headers).
 */
class ByteWriter
{
  public:
    /** Append to @p out, starting at its current end. */
    explicit ByteWriter(Bytes &out) : buf(out), start(out.size()) {}

    void putU8(uint8_t v);
    void putU16le(uint16_t v);
    void putU32le(uint32_t v);
    void putU64le(uint64_t v);
    void putU16be(uint16_t v);
    void putU32be(uint32_t v);
    void putU64be(uint64_t v);
    /** Append a raw byte span. */
    void putBytes(std::span<const uint8_t> data);
    /** Append @p count copies of @p fill. */
    void putZeros(size_t count, uint8_t fill = 0);

    /** Number of bytes written through this writer so far. */
    size_t written() const { return buf.size() - start; }

  private:
    Bytes &buf;
    size_t start = 0;
};

/**
 * Sequential bounds-checked reader over a byte span.
 *
 * Reading past the end panics (it indicates a protocol-decoder bug or
 * a truncated frame that the caller failed to length-check).  Callers
 * that handle untrusted lengths should consult remaining() first.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const uint8_t> data) : buf(data) {}

    uint8_t getU8();
    uint16_t getU16le();
    uint32_t getU32le();
    uint64_t getU64le();
    uint16_t getU16be();
    uint32_t getU32be();
    uint64_t getU64be();
    /** Copy @p count bytes out of the stream. */
    Bytes getBytes(size_t count);
    /** View of the next @p count bytes without copying. */
    std::span<const uint8_t> viewBytes(size_t count);
    /** Discard @p count bytes. */
    void skip(size_t count);

    size_t remaining() const { return buf.size() - pos; }
    size_t offset() const { return pos; }

  private:
    std::span<const uint8_t> buf;
    size_t pos = 0;

    void need(size_t count) const;
};

} // namespace vrio

#endif // VRIO_UTIL_BYTE_BUFFER_HPP
