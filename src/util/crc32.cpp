#include "util/crc32.hpp"

#include <array>

namespace vrio {

namespace {

std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> g_table = makeTable();

} // namespace

uint32_t
crc32Update(uint32_t seed, std::span<const uint8_t> data)
{
    uint32_t c = seed ^ 0xffffffffu;
    for (uint8_t byte : data)
        c = g_table[(c ^ byte) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

uint32_t
crc32(std::span<const uint8_t> data)
{
    return crc32Update(0, data);
}

} // namespace vrio
