/**
 * @file
 * CRC32 (IEEE 802.3 polynomial), used for Ethernet frame check
 * sequences and block-content fingerprints in the dedup service.
 */
#ifndef VRIO_UTIL_CRC32_HPP
#define VRIO_UTIL_CRC32_HPP

#include <cstdint>
#include <span>

namespace vrio {

/** CRC32 of @p data with the standard IEEE seed/finalization. */
uint32_t crc32(std::span<const uint8_t> data);

/** Incremental variant: feed a previous crc32() result as @p seed. */
uint32_t crc32Update(uint32_t seed, std::span<const uint8_t> data);

} // namespace vrio

#endif // VRIO_UTIL_CRC32_HPP
