#include "util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace vrio {

std::string
toHex(std::span<const uint8_t> data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::string
hexDump(std::span<const uint8_t> data)
{
    std::string out;
    char line[128];
    for (size_t off = 0; off < data.size(); off += 16) {
        int n = std::snprintf(line, sizeof(line), "%08zx  ", off);
        out.append(line, n);
        for (size_t i = 0; i < 16; ++i) {
            if (off + i < data.size()) {
                n = std::snprintf(line, sizeof(line), "%02x ",
                                  data[off + i]);
                out.append(line, n);
            } else {
                out.append("   ");
            }
            if (i == 7)
                out.push_back(' ');
        }
        out.append(" |");
        for (size_t i = 0; i < 16 && off + i < data.size(); ++i) {
            uint8_t b = data[off + i];
            out.push_back(std::isprint(b) ? char(b) : '.');
        }
        out.append("|\n");
    }
    return out;
}

} // namespace vrio
