/**
 * @file
 * Debug helpers for printing byte buffers.
 */
#ifndef VRIO_UTIL_HEXDUMP_HPP
#define VRIO_UTIL_HEXDUMP_HPP

#include <cstdint>
#include <span>
#include <string>

namespace vrio {

/** Compact lowercase hex string ("deadbeef"). */
std::string toHex(std::span<const uint8_t> data);

/** Classic 16-bytes-per-line hex dump with offsets and ASCII gutter. */
std::string hexDump(std::span<const uint8_t> data);

} // namespace vrio

#endif // VRIO_UTIL_HEXDUMP_HPP
