#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vrio {

namespace {
// Atomic so parallel sweep workers can read the level while another
// thread (or main) sets it.
std::atomic<LogLevel> g_level{LogLevel::Normal};
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Normal)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Normal)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace vrio
