/**
 * @file
 * Error-reporting and logging helpers.
 *
 * Follows the gem5 convention: panic() is for conditions that indicate
 * a bug in this library itself (it aborts, so a debugger or core dump
 * can capture the state), while fatal() is for user errors such as bad
 * configuration (it exits cleanly with an error code).  warn() and
 * inform() emit diagnostics without terminating.
 */
#ifndef VRIO_UTIL_LOGGING_HPP
#define VRIO_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace vrio {

/** Verbosity levels for inform()/warn() output. */
enum class LogLevel { Quiet, Normal, Verbose, Debug };

/** Set the global verbosity. Messages below this level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
buildMsg(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace vrio

/** Internal invariant violated: abort with a message. */
#define vrio_panic(...)                                                     \
    ::vrio::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::vrio::detail::buildMsg(__VA_ARGS__))

/** Unrecoverable user/configuration error: exit(1) with a message. */
#define vrio_fatal(...)                                                     \
    ::vrio::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::vrio::detail::buildMsg(__VA_ARGS__))

/** Non-fatal diagnostic about suspicious behaviour. */
#define vrio_warn(...)                                                      \
    ::vrio::detail::warnImpl(::vrio::detail::buildMsg(__VA_ARGS__))

/** Status message for the user. */
#define vrio_inform(...)                                                    \
    ::vrio::detail::informImpl(::vrio::detail::buildMsg(__VA_ARGS__))

/** Debug-level trace message (dropped unless LogLevel::Debug). */
#define vrio_debug(...)                                                     \
    ::vrio::detail::debugImpl(::vrio::detail::buildMsg(__VA_ARGS__))

/** Assert an invariant of the library; aborts via panic on failure. */
#define vrio_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            vrio_panic("assertion failed: " #cond " ",                     \
                       ::vrio::detail::buildMsg("" __VA_ARGS__));           \
        }                                                                   \
    } while (0)

#endif // VRIO_UTIL_LOGGING_HPP
