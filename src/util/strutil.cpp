#include "util/strutil.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace vrio {

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(n, '\0');
    std::vsnprintf(out.data(), n + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::string
siAbbrev(double value, int precision)
{
    const char *suffix = "";
    double v = std::fabs(value);
    if (v >= 1e9) {
        value /= 1e9;
        suffix = "G";
    } else if (v >= 1e6) {
        value /= 1e6;
        suffix = "M";
    } else if (v >= 1e3) {
        value /= 1e3;
        suffix = "K";
    }
    return strFormat("%.*f%s", precision, value, suffix);
}

std::string
formatGbps(double bits_per_sec, int precision)
{
    return strFormat("%.*f Gbps", precision, bits_per_sec / 1e9);
}

std::string
formatNanos(double nanos, int precision)
{
    if (nanos < 1e3)
        return strFormat("%.*f ns", precision, nanos);
    if (nanos < 1e6)
        return strFormat("%.*f us", precision, nanos / 1e3);
    if (nanos < 1e9)
        return strFormat("%.*f ms", precision, nanos / 1e6);
    return strFormat("%.*f s", precision, nanos / 1e9);
}

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
}

std::string
padTo(const std::string &s, int pad)
{
    size_t width = size_t(pad < 0 ? -pad : pad);
    if (s.size() >= width)
        return s;
    std::string spaces(width - s.size(), ' ');
    return pad > 0 ? spaces + s : s + spaces;
}

} // namespace vrio
