/**
 * @file
 * Small string/number formatting helpers shared by the stats tables
 * and the bench binaries.
 */
#ifndef VRIO_UTIL_STRUTIL_HPP
#define VRIO_UTIL_STRUTIL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace vrio {

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** "1.5K", "2.3M", "4.1G" style SI abbreviation of a count. */
std::string siAbbrev(double value, int precision = 1);

/** "12.3 Gbps" style formatting of bits per second. */
std::string formatGbps(double bits_per_sec, int precision = 2);

/** "12.3 us" / "1.2 ms" style formatting of nanoseconds. */
std::string formatNanos(double nanos, int precision = 1);

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> splitString(const std::string &s, char sep);

/** Left-pad (pad > 0) or right-pad (pad < 0) to |pad| columns. */
std::string padTo(const std::string &s, int pad);

} // namespace vrio

#endif // VRIO_UTIL_STRUTIL_HPP
