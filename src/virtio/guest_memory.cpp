#include "virtio/guest_memory.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace vrio::virtio {

GuestMemory::GuestMemory(size_t size) : mem(size, 0)
{
    vrio_assert(size > 0, "guest memory must be non-empty");
    free_list[0] = size;
}

uint64_t
GuestMemory::alloc(size_t size, size_t align)
{
    vrio_assert(size > 0, "zero-size allocation");
    vrio_assert(align > 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
    for (auto it = free_list.begin(); it != free_list.end(); ++it) {
        uint64_t base = it->first;
        size_t avail = it->second;
        uint64_t aligned = (base + align - 1) & ~uint64_t(align - 1);
        uint64_t pad = aligned - base;
        if (pad + size > avail)
            continue;
        // Carve [aligned, aligned+size) out of this extent.
        size_t tail = avail - pad - size;
        free_list.erase(it);
        if (pad > 0)
            free_list[base] = pad;
        if (tail > 0)
            free_list[aligned + size] = tail;
        live[aligned] = size;
        allocated_bytes += size;
        return aligned;
    }
    vrio_panic("guest memory exhausted: need ", size, " bytes, ",
               mem.size() - allocated_bytes, " free (fragmented)");
}

void
GuestMemory::free(uint64_t addr)
{
    auto it = live.find(addr);
    vrio_assert(it != live.end(), "free of unallocated address ", addr);
    size_t len = it->second;
    live.erase(it);
    allocated_bytes -= len;

    // Insert and coalesce with neighbours.
    auto [pos, inserted] = free_list.emplace(addr, len);
    vrio_assert(inserted, "double free at ", addr);
    // Merge with next extent.
    auto next = std::next(pos);
    if (next != free_list.end() && pos->first + pos->second == next->first) {
        pos->second += next->second;
        free_list.erase(next);
    }
    // Merge with previous extent.
    if (pos != free_list.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            free_list.erase(pos);
        }
    }
}

void
GuestMemory::check(uint64_t addr, size_t len) const
{
    if (addr + len > mem.size() || addr + len < addr) {
        vrio_panic("guest memory access out of bounds: [", addr, ", ",
                   addr + len, ") of ", mem.size());
    }
}

void
GuestMemory::write(uint64_t addr, std::span<const uint8_t> data)
{
    check(addr, data.size());
    std::memcpy(mem.data() + addr, data.data(), data.size());
}

void
GuestMemory::fill(uint64_t addr, size_t len, uint8_t value)
{
    check(addr, len);
    std::memset(mem.data() + addr, value, len);
}

Bytes
GuestMemory::read(uint64_t addr, size_t len) const
{
    check(addr, len);
    return Bytes(mem.begin() + addr, mem.begin() + addr + len);
}

std::span<uint8_t>
GuestMemory::window(uint64_t addr, size_t len)
{
    check(addr, len);
    return {mem.data() + addr, len};
}

std::span<const uint8_t>
GuestMemory::window(uint64_t addr, size_t len) const
{
    check(addr, len);
    return {mem.data() + addr, len};
}

uint16_t
GuestMemory::readU16(uint64_t addr) const
{
    check(addr, 2);
    return uint16_t(mem[addr]) | uint16_t(mem[addr + 1]) << 8;
}

uint32_t
GuestMemory::readU32(uint64_t addr) const
{
    check(addr, 4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(mem[addr + i]) << (8 * i);
    return v;
}

uint64_t
GuestMemory::readU64(uint64_t addr) const
{
    check(addr, 8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(mem[addr + i]) << (8 * i);
    return v;
}

void
GuestMemory::writeU16(uint64_t addr, uint16_t v)
{
    check(addr, 2);
    mem[addr] = uint8_t(v);
    mem[addr + 1] = uint8_t(v >> 8);
}

void
GuestMemory::writeU32(uint64_t addr, uint32_t v)
{
    check(addr, 4);
    for (int i = 0; i < 4; ++i)
        mem[addr + i] = uint8_t(v >> (8 * i));
}

void
GuestMemory::writeU64(uint64_t addr, uint64_t v)
{
    check(addr, 8);
    for (int i = 0; i < 8; ++i)
        mem[addr + i] = uint8_t(v >> (8 * i));
}

} // namespace vrio::virtio
