/**
 * @file
 * Flat guest-physical memory with a first-fit allocator.
 *
 * Virtqueues, packet buffers and block I/O buffers live inside a
 * GuestMemory instance, addressed by guest-physical addresses exactly
 * as a real virtio device sees them.  The baseline and Elvis models
 * share these pages between guest and host; vRIO's transport driver
 * reads them when encapsulating requests for the IOhost.
 */
#ifndef VRIO_VIRTIO_GUEST_MEMORY_HPP
#define VRIO_VIRTIO_GUEST_MEMORY_HPP

#include <cstdint>
#include <map>
#include <span>

#include "util/byte_buffer.hpp"

namespace vrio::virtio {

class GuestMemory
{
  public:
    /** @param size memory size in bytes. */
    explicit GuestMemory(size_t size);

    /**
     * Allocate @p size bytes aligned to @p align; returns the guest
     * address.  Panics on exhaustion (sized experiments pre-compute
     * their footprints; exhaustion is a library bug).
     */
    uint64_t alloc(size_t size, size_t align = 8);

    /** Release a block previously returned by alloc(). */
    void free(uint64_t addr);

    /** Copy bytes into guest memory (bounds-checked). */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /**
     * Set @p len bytes to @p value (bounds-checked).  Queue rings must
     * start zeroed — an NVMe completion ring's phase bits in
     * particular — regardless of what a previous tenant left behind.
     */
    void fill(uint64_t addr, size_t len, uint8_t value = 0);

    /** Copy bytes out of guest memory (bounds-checked). */
    Bytes read(uint64_t addr, size_t len) const;

    /** Bounds-checked window into the backing store. */
    std::span<uint8_t> window(uint64_t addr, size_t len);
    std::span<const uint8_t> window(uint64_t addr, size_t len) const;

    uint16_t readU16(uint64_t addr) const;
    uint32_t readU32(uint64_t addr) const;
    uint64_t readU64(uint64_t addr) const;
    void writeU16(uint64_t addr, uint16_t v);
    void writeU32(uint64_t addr, uint32_t v);
    void writeU64(uint64_t addr, uint64_t v);

    size_t size() const { return mem.size(); }
    /** Bytes currently handed out by alloc(). */
    size_t bytesAllocated() const { return allocated_bytes; }
    /** Number of live allocations. */
    size_t allocationCount() const { return live.size(); }

  private:
    Bytes mem;
    /** addr -> length of live allocations. */
    std::map<uint64_t, size_t> live;
    /** addr -> length of free extents, coalesced. */
    std::map<uint64_t, size_t> free_list;
    size_t allocated_bytes = 0;

    void check(uint64_t addr, size_t len) const;
};

} // namespace vrio::virtio

#endif // VRIO_VIRTIO_GUEST_MEMORY_HPP
