#include "virtio/virtio_blk.hpp"

namespace vrio::virtio {

void
VirtioBlkReq::encode(ByteWriter &w) const
{
    w.putU32le(uint32_t(type));
    w.putU32le(reserved);
    w.putU64le(sector);
}

VirtioBlkReq
VirtioBlkReq::decode(ByteReader &r)
{
    VirtioBlkReq req;
    req.type = BlkType(r.getU32le());
    req.reserved = r.getU32le();
    req.sector = r.getU64le();
    return req;
}

} // namespace vrio::virtio
