/**
 * @file
 * virtio-blk request header and status (virtio spec 5.2.6).
 *
 * A block request chain is: 16-byte header (device-readable), data
 * buffers (readable for writes, writable for reads), and a one-byte
 * status (device-writable).
 */
#ifndef VRIO_VIRTIO_VIRTIO_BLK_HPP
#define VRIO_VIRTIO_VIRTIO_BLK_HPP

#include <cstdint>

#include "util/byte_buffer.hpp"

namespace vrio::virtio {

enum class BlkType : uint32_t {
    In = 0,    ///< read from device
    Out = 1,   ///< write to device
    Flush = 4,
    /** TRIM/deallocate a sector range (virtio spec 5.2.6 discard). */
    Discard = 11,
};

enum class BlkStatus : uint8_t {
    Ok = 0,
    IoErr = 1,
    Unsupported = 2,
    /**
     * Not a virtio wire status: delivered locally by the vRIO client
     * when a request exhausts its retransmission budget (Section 4.5
     * extended with failure detection) — the guest sees the request
     * fail instead of hanging forever.
     */
    Timeout = 3,
};

constexpr uint32_t kSectorSize = 512;

struct VirtioBlkReq
{
    BlkType type = BlkType::In;
    uint32_t reserved = 0;
    uint64_t sector = 0; ///< in 512-byte sectors

    static constexpr size_t kSize = 16;

    void encode(ByteWriter &w) const;
    static VirtioBlkReq decode(ByteReader &r);
};

} // namespace vrio::virtio

#endif // VRIO_VIRTIO_VIRTIO_BLK_HPP
